#!/usr/bin/env python
"""Lint: no direct runtime ``numpy`` imports in ``repro.nn`` / ``repro.optim``.

The array-backend dispatch layer (:mod:`repro.tensor.backend`) only
keeps training portable across array libraries if layer and optimizer
math goes through the active backend rather than reaching for ``np.``
directly.  This checker fails on any runtime ``import numpy`` /
``from numpy import ...`` in those packages.

Allowed:

* imports inside ``if TYPE_CHECKING:`` blocks — type hints only, never
  executed;
* the documented host-boundary allowlist below.

Run from the repo root::

    python tools/check_numpy_imports.py

Exit code 0 when clean, 1 with a per-violation listing otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Files allowed to import numpy at runtime, with the reason on record.
ALLOWLIST = {
    "nn/module.py": "host state-dict boundary (state_dict/load_state_dict land host arrays)",
    "nn/init.py": "host RNG boundary (all init draws on the host generator for determinism)",
}

CHECKED_PACKAGES = ("nn", "optim")


def _is_type_checking_if(node: ast.If) -> bool:
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _runtime_numpy_imports(tree: ast.Module) -> list[int]:
    """Line numbers of numpy imports reachable at runtime."""

    def visit(body) -> list[int]:
        lines: list[int] = []
        for node in body:
            if isinstance(node, ast.Import):
                lines.extend(
                    a.lineno for a in node.names if a.name.split(".")[0] == "numpy"
                )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "numpy":
                    lines.append(node.lineno)
            elif isinstance(node, ast.If):
                if not _is_type_checking_if(node):
                    lines.extend(visit(node.body))
                lines.extend(visit(node.orelse))
            elif hasattr(node, "body"):
                lines.extend(visit(node.body))
                for attr in ("orelse", "finalbody", "handlers"):
                    for sub in getattr(node, attr, ()):
                        lines.extend(visit(getattr(sub, "body", [sub])))
        return lines

    return visit(tree.body)


def check(src_root: Path) -> list[str]:
    """Violation strings (``path:line``) for the checked packages."""
    violations: list[str] = []
    for package in CHECKED_PACKAGES:
        package_dir = src_root / "repro" / package
        for path in sorted(package_dir.rglob("*.py")):
            rel = path.relative_to(src_root / "repro").as_posix()
            if rel in ALLOWLIST:
                continue
            tree = ast.parse(path.read_text(), filename=str(path))
            for lineno in _runtime_numpy_imports(tree):
                violations.append(f"{path}:{lineno}")
    return violations


def main(argv: list[str] | None = None) -> int:
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent / "src"
    violations = check(root)
    if violations:
        print("runtime numpy imports outside the dispatch layer:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        print(
            "route array math through repro.tensor.backend.active_backend() "
            "(see tools/check_numpy_imports.py ALLOWLIST for the documented "
            "host-boundary exceptions)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
