"""run_comparison: parameter merging and fairness guarantees."""

import numpy as np
import pytest

from repro.experiments.runner import (
    ALL_METHODS,
    DEFAULT_METHOD_PARAMS,
    run_comparison,
)
from repro.fl.config import FLConfig


@pytest.fixture
def micro_config():
    return FLConfig(
        dataset="synth_cifar10",
        model="mlp",
        heterogeneity=0.5,
        num_clients=6,
        participation=0.5,
        rounds=2,
        local_epochs=1,
        batch_size=16,
        eval_every=1,
        seed=11,
        dataset_params={"samples_per_client": 20, "num_test": 60},
    )


class TestRunComparison:
    def test_all_methods_constant(self):
        assert ALL_METHODS == [
            "fedavg", "fedprox", "scaffold", "fedgen", "clusamp", "fedcross",
        ]

    def test_defaults_include_paper_tuning(self):
        assert DEFAULT_METHOD_PARAMS["fedcross"]["selection"] == "lowest"
        assert "mu" in DEFAULT_METHOD_PARAMS["fedprox"]

    def test_method_params_override_defaults(self, micro_config):
        comparison = run_comparison(
            micro_config,
            methods=["fedcross"],
            method_params={"fedcross": {"alpha": 0.6}},
        )
        cfg = comparison.results["fedcross"].config
        assert cfg.method_params["alpha"] == 0.6
        assert cfg.method_params["selection"] == "lowest"  # default kept

    def test_shared_data_across_methods(self, micro_config):
        """Fairness: identical initial accuracy trajectory start points."""
        comparison = run_comparison(micro_config, methods=["fedavg", "fedprox"])
        # FedProx with default mu is near-FedAvg; but the real check is
        # that both saw the same dataset: state key sets and history
        # lengths agree, and first-round communication is identical.
        fa = comparison.results["fedavg"].history.records[0]
        fp = comparison.results["fedprox"].history.records[0]
        assert fa.comm_down_params == fp.comm_down_params

    def test_accessors(self, micro_config):
        comparison = run_comparison(micro_config, methods=["fedavg", "fedcross"])
        assert set(comparison.final_accuracies()) == {"fedavg", "fedcross"}
        assert set(comparison.best_accuracies()) == {"fedavg", "fedcross"}
        curves = comparison.curves()
        assert all(len(c) == 2 for c in curves.values())
        assert comparison.eval_rounds() == [0, 1]
