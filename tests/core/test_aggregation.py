"""CrossAggr and GlobalModelGen."""

import numpy as np
import pytest

from repro.core.aggregation import cross_aggregate, global_model_generation, validate_alpha


class TestValidateAlpha:
    def test_accepts_open_interval(self):
        assert validate_alpha(0.5) == 0.5
        assert validate_alpha(0.999) == 0.999

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_outside(self, alpha):
        with pytest.raises(ValueError):
            validate_alpha(alpha)


class TestCrossAggregate:
    def test_formula(self):
        a = {"w": np.array([1.0, 0.0])}
        b = {"w": np.array([0.0, 1.0])}
        out = cross_aggregate(a, b, alpha=0.75)
        np.testing.assert_allclose(out["w"], [0.75, 0.25])

    def test_alpha_weighting_asymmetric(self):
        a = {"w": np.array([1.0])}
        b = {"w": np.array([0.0])}
        ab = cross_aggregate(a, b, 0.9)["w"][0]
        ba = cross_aggregate(b, a, 0.9)["w"][0]
        assert ab == pytest.approx(0.9)
        assert ba == pytest.approx(0.1)

    def test_preserves_dtype_and_shape(self):
        a = {"w": np.ones((2, 3), dtype=np.float32)}
        b = {"w": np.zeros((2, 3), dtype=np.float32)}
        out = cross_aggregate(a, b, 0.5)
        assert out["w"].dtype == np.float32
        assert out["w"].shape == (2, 3)

    def test_integer_buffers_carried_from_model(self):
        """Regression: averaging int buffers then truncating back
        silently corrupted step counters and the like."""
        a = {"w": np.array([1.0]), "steps": np.array([3], dtype=np.int64)}
        b = {"w": np.array([0.0]), "steps": np.array([100], dtype=np.int64)}
        out = cross_aggregate(a, b, alpha=0.5)
        np.testing.assert_array_equal(out["steps"], [3])
        assert out["steps"].dtype == np.int64

    def test_key_mismatch_raises(self):
        with pytest.raises(KeyError):
            cross_aggregate({"a": np.zeros(1)}, {"b": np.zeros(1)}, 0.5)

    def test_identical_models_fixed_point(self, rng):
        state = {"w": rng.standard_normal(5)}
        out = cross_aggregate(state, state, 0.7)
        np.testing.assert_allclose(out["w"], state["w"], rtol=1e-7)

    def test_does_not_mutate_inputs(self):
        a = {"w": np.array([1.0])}
        b = {"w": np.array([3.0])}
        cross_aggregate(a, b, 0.6)
        np.testing.assert_array_equal(a["w"], [1.0])
        np.testing.assert_array_equal(b["w"], [3.0])

    def test_multi_key_state(self, rng):
        a = {"w": rng.standard_normal(3), "b": rng.standard_normal(2)}
        b = {"w": rng.standard_normal(3), "b": rng.standard_normal(2)}
        out = cross_aggregate(a, b, 0.8)
        for k in a:
            np.testing.assert_allclose(out[k], 0.8 * a[k] + 0.2 * b[k], rtol=1e-7)


class TestGlobalModelGen:
    def test_uniform_average(self):
        pool = [{"w": np.array([0.0])}, {"w": np.array([1.0])}, {"w": np.array([2.0])}]
        out = global_model_generation(pool)
        np.testing.assert_allclose(out["w"], [1.0])

    def test_single_model_identity(self, rng):
        state = {"w": rng.standard_normal(4)}
        out = global_model_generation([state])
        np.testing.assert_allclose(out["w"], state["w"], rtol=1e-7)

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            global_model_generation([])

    def test_average_of_cross_aggregated_pool_preserved_in_order(self, rng):
        """In-order cross-aggregation preserves the pool mean (Eq. 2)."""
        from repro.core.selection import select_in_order

        k = 5
        pool = [{"w": rng.standard_normal(6)} for _ in range(k)]
        mean_before = np.mean([s["w"] for s in pool], axis=0)
        for r in range(3):
            new_pool = [
                cross_aggregate(pool[i], pool[select_in_order(i, r, k)], 0.7)
                for i in range(k)
            ]
            pool = new_pool
        mean_after = np.mean([s["w"] for s in pool], axis=0)
        np.testing.assert_allclose(mean_after, mean_before, rtol=1e-10)
