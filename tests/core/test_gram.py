"""GramTracker: incremental Gram maintenance and (K, K) algebra."""

import numpy as np
import pytest

from repro.core.gram import GramTracker
from repro.core.pool import PoolBuffer, cosine_from_gram


def make_pool(k=5, rng=None, dtype=np.float64):
    rng = rng if rng is not None else np.random.default_rng(0)
    states = [
        {"w": rng.standard_normal(11), "b": rng.standard_normal(4)} for _ in range(k)
    ]
    return PoolBuffer.from_states(
        [{key: v.astype(dtype) for key, v in s.items()} for s in states], dtype=dtype
    )


class TestMaintenance:
    def test_from_pool_matches_fresh_gram(self, rng):
        pool = make_pool(rng=rng)
        tracker = GramTracker.from_pool(pool)
        np.testing.assert_allclose(tracker.gram, pool.gram_matrix(), rtol=1e-12)

    def test_masked_tracker_matches_masked_gram(self, rng):
        pool = make_pool(rng=rng)
        tracker = GramTracker.from_pool(pool, param_keys={"w"})
        np.testing.assert_allclose(
            tracker.gram, pool.gram_matrix(param_keys={"w"}), rtol=1e-12
        )

    def test_update_row_tracks_pool_mutation(self, rng):
        pool = make_pool(rng=rng)
        tracker = GramTracker.from_pool(pool)
        pool.matrix[2] = rng.standard_normal(pool.num_scalars)
        tracker.update_row(2)
        np.testing.assert_allclose(tracker.gram, pool.gram_matrix(), rtol=1e-12)

    def test_update_order_is_bitwise_irrelevant(self, rng):
        """The streamed-vs-gathered keystone: any full update sequence
        lands on the same bits."""
        pool = make_pool(k=6, rng=rng)
        reference = GramTracker(pool)
        for i in range(6):
            reference.update_row(i)
        for order in ([5, 4, 3, 2, 1, 0], [3, 0, 5, 1, 4, 2], [0, 2, 4, 1, 3, 5]):
            tracker = GramTracker(pool)
            for i in order:
                tracker.update_row(i)
            np.testing.assert_array_equal(tracker.gram, reference.gram)

    def test_stale_entries_overwritten_by_later_update(self, rng):
        """A row updated before its partner changed is refreshed by the
        partner's own update — the streaming-collect access pattern."""
        pool = make_pool(k=3, rng=rng)
        tracker = GramTracker(pool)
        tracker.update_row(0)
        pool.matrix[1] = rng.standard_normal(pool.num_scalars)
        tracker.update_row(1)  # refreshes the (0, 1) pair with fresh data
        tracker.update_row(2)
        np.testing.assert_allclose(tracker.gram, pool.gram_matrix(), rtol=1e-12)

    def test_update_out_of_range_rejected(self, rng):
        tracker = GramTracker(make_pool(rng=rng))
        with pytest.raises(IndexError):
            tracker.update_row(5)

    def test_bad_gram_shape_rejected(self, rng):
        with pytest.raises(ValueError, match="does not match pool size"):
            GramTracker(make_pool(k=4, rng=rng), gram=np.zeros((3, 3)))


class TestAlgebra:
    def test_similarity_matches_pool_cosine(self, rng):
        pool = make_pool(rng=rng)
        tracker = GramTracker.from_pool(pool, param_keys={"w"})
        np.testing.assert_allclose(
            tracker.similarity(),
            pool.similarity_matrix("cosine", param_keys={"w"}),
            rtol=1e-12,
        )

    def test_similarity_to_is_similarity_row(self, rng):
        tracker = GramTracker.from_pool(make_pool(rng=rng))
        np.testing.assert_array_equal(tracker.similarity_to(2), tracker.similarity()[2])

    def test_zero_norm_rows_get_zero_similarity(self):
        pool = PoolBuffer.from_states(
            [{"w": np.zeros(4)}, {"w": np.ones(4)}], dtype=np.float64
        )
        sim = GramTracker.from_pool(pool).similarity()
        assert sim[0, 0] == 0.0 and sim[0, 1] == 0.0 and sim[1, 0] == 0.0
        assert sim[1, 1] == pytest.approx(1.0)

    def test_dispersion_matches_pool(self, rng):
        pool = make_pool(rng=rng)
        tracker = GramTracker.from_pool(pool)
        assert tracker.dispersion() == pytest.approx(pool.dispersion(), rel=1e-9)

    def test_dispersion_zero_for_identical_pool(self, rng):
        state = {"w": rng.standard_normal(6)}
        pool = PoolBuffer.broadcast(state, 4, dtype=np.float64)
        # Gram sums cancel to round-off; the clip keeps the sqrt real.
        assert GramTracker.from_pool(pool).dispersion() == pytest.approx(0.0, abs=1e-6)

    def test_cosine_from_gram_diag_is_one(self, rng):
        pool = make_pool(rng=rng)
        sim = cosine_from_gram(pool.gram_matrix())
        np.testing.assert_allclose(np.diag(sim), 1.0, rtol=1e-12)


class TestClosedFormCrossAggregate:
    def test_matches_recompute_on_new_pool(self, rng):
        pool = make_pool(k=6, rng=rng)
        tracker = GramTracker.from_pool(pool)
        co = np.array([1, 2, 3, 4, 5, 0])
        new_pool = pool.cross_aggregate(co, 0.8)
        got = tracker.cross_aggregated(co, 0.8, pool=new_pool)
        ref = GramTracker.from_pool(new_pool)
        scale = np.abs(ref.gram).max()
        np.testing.assert_allclose(got.gram, ref.gram, rtol=1e-10, atol=1e-10 * scale)
        assert got.pool is new_pool

    def test_propeller_matrix_matches_recompute(self, rng):
        k = 5
        pool = make_pool(k=k, rng=rng)
        tracker = GramTracker.from_pool(pool)
        props = np.array([[(i + 1) % k, (i + 2) % k] for i in range(k)])
        new_pool = pool.cross_aggregate(props, 0.7)
        got = tracker.cross_aggregated(props, 0.7, pool=new_pool)
        ref = GramTracker.from_pool(new_pool)
        scale = np.abs(ref.gram).max()
        np.testing.assert_allclose(got.gram, ref.gram, rtol=1e-10, atol=1e-10 * scale)

    def test_param_keys_carried_to_derived_tracker(self, rng):
        pool = make_pool(rng=rng)
        tracker = GramTracker.from_pool(pool, param_keys={"w"})
        derived = tracker.cross_aggregated(np.array([1, 2, 3, 4, 0]), 0.9)
        assert derived.param_keys == {"w"}

    def test_tracked_integer_fields_rejected(self, rng):
        """cross_aggregate carries integer fields unblended, so the
        bilinear Gram expansion would diverge by O(value²) — refuse
        loudly instead of silently voiding the tolerance contract."""
        states = [
            {"w": rng.standard_normal(4), "step": np.array(1000 * (i + 1))}
            for i in range(3)
        ]
        pool = PoolBuffer.from_states(states, dtype=np.float64)
        tracker = GramTracker.from_pool(pool)  # mask includes the counter
        with pytest.raises(ValueError, match="integer fields"):
            tracker.cross_aggregated(np.array([1, 2, 0]), 0.9)
        # Restricting the mask to float parameters keeps it valid.
        masked = GramTracker.from_pool(pool, param_keys={"w"})
        derived = masked.cross_aggregated(np.array([1, 2, 0]), 0.9)
        assert derived.gram.shape == (3, 3)

    def test_bad_co_shape_rejected(self, rng):
        tracker = GramTracker.from_pool(make_pool(rng=rng))
        with pytest.raises(ValueError, match="1- or 2-dimensional"):
            tracker.cross_aggregated(np.zeros((2, 2, 2), dtype=np.int64), 0.9)
        with pytest.raises(ValueError, match="does not match pool size"):
            tracker.cross_aggregated(np.array([0, 1]), 0.9)


class TestSelectionFromGram:
    def test_gram_selection_matches_fresh_selection_value(self, rng):
        """Gram-driven argmin must achieve the same best similarity as a
        fresh recompute (indices may differ only on exact ties)."""
        pool = make_pool(k=6, rng=rng)
        tracker = GramTracker.from_pool(pool)
        fresh = pool.select_collaborators("lowest", measure="cosine")
        via_gram = pool.select_collaborators(
            "lowest", measure="cosine", gram=tracker.gram
        )
        sim = pool.similarity_matrix("cosine")
        for i in range(6):
            np.testing.assert_allclose(
                sim[i, via_gram[i]], sim[i, fresh[i]], rtol=1e-9, atol=1e-12
            )
            assert via_gram[i] != i

    def test_gram_rejected_for_euclidean(self, rng):
        pool = make_pool(rng=rng)
        with pytest.raises(ValueError, match="cosine"):
            pool.select_collaborators(
                "lowest", measure="euclidean", gram=np.eye(len(pool))
            )

    def test_gram_shape_validated(self, rng):
        pool = make_pool(rng=rng)
        with pytest.raises(ValueError, match="does not match pool size"):
            pool.select_collaborators("lowest", gram=np.eye(3))

    def test_in_order_ignores_gram(self, rng):
        pool = make_pool(rng=rng)
        got = pool.select_collaborators("in_order", round_idx=1, gram=np.eye(len(pool)))
        np.testing.assert_array_equal(
            got, pool.select_collaborators("in_order", round_idx=1)
        )
