"""Propeller models and dynamic alpha."""

import pytest

from repro.core.acceleration import DynamicAlphaSchedule, propeller_indices


class TestPropellerIndices:
    def test_returns_requested_count(self):
        out = propeller_indices(0, 0, 8, 3)
        assert len(out) == 3

    def test_distinct_and_not_self(self):
        for r in range(6):
            for i in range(6):
                out = propeller_indices(i, r, 6, 4)
                assert i not in out
                assert len(set(out)) == len(out)

    def test_capped_at_k_minus_one(self):
        out = propeller_indices(0, 0, 4, 99)
        assert len(out) == 3
        assert set(out) == {1, 2, 3}

    def test_first_propeller_is_in_order_choice(self):
        from repro.core.selection import select_in_order

        for r in range(5):
            for i in range(5):
                assert propeller_indices(i, r, 5, 2)[0] == select_in_order(i, r, 5)

    def test_k_one_self(self):
        assert propeller_indices(0, 0, 1, 3) == [0]

    def test_rotates_with_round(self):
        a = propeller_indices(0, 0, 6, 2)
        b = propeller_indices(0, 1, 6, 2)
        assert a != b


class TestDynamicAlpha:
    def test_endpoints(self):
        sched = DynamicAlphaSchedule(target=0.99, ramp_rounds=10)
        assert sched.alpha_at(0) == pytest.approx(0.5)
        assert sched.alpha_at(10) == pytest.approx(0.99)
        assert sched.alpha_at(100) == pytest.approx(0.99)

    def test_monotone_ramp(self):
        sched = DynamicAlphaSchedule(target=0.9, ramp_rounds=8)
        values = [sched.alpha_at(r) for r in range(9)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_zero_ramp_constant(self):
        sched = DynamicAlphaSchedule(target=0.95, ramp_rounds=0)
        assert sched.alpha_at(0) == 0.95

    def test_custom_start(self):
        sched = DynamicAlphaSchedule(target=0.9, ramp_rounds=4, start=0.7)
        assert sched.alpha_at(0) == pytest.approx(0.7)
        assert sched.alpha_at(2) == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicAlphaSchedule(target=0.4, ramp_rounds=5)  # target < start
        with pytest.raises(ValueError):
            DynamicAlphaSchedule(target=1.0, ramp_rounds=5)
        with pytest.raises(ValueError):
            DynamicAlphaSchedule(target=0.9, ramp_rounds=-1)
