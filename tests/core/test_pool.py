"""StateLayout / PoolBuffer: the vectorized middleware-pool engine."""

import numpy as np
import pytest

from repro.core.pool import PoolBuffer
from repro.utils.layout import StateLayout
from repro.utils.params import flatten_state_dict


def make_state(rng, with_int=False):
    state = {
        "b.weight": rng.standard_normal((3, 2)).astype(np.float32),
        "a.bias": rng.standard_normal(4).astype(np.float32),
        "c.scale": rng.standard_normal(()).astype(np.float32),
    }
    if with_int:
        state["c.steps"] = np.array([7], dtype=np.int64)
    return state


def make_pool(rng, k=4, with_int=False):
    return [make_state(rng, with_int=with_int) for _ in range(k)]


class TestStateLayout:
    def test_sorted_key_order_matches_flatten_state_dict(self, rng):
        state = make_state(rng)
        layout = StateLayout.from_state(state)
        assert list(layout.keys) == sorted(state)
        np.testing.assert_array_equal(
            layout.flatten(state), flatten_state_dict(state)
        )

    def test_cached_by_signature(self, rng):
        a, b = make_state(rng), make_state(rng)
        assert StateLayout.from_state(a) is StateLayout.from_state(b)

    def test_unflatten_roundtrip(self, rng):
        state = make_state(rng, with_int=True)
        layout = StateLayout.from_state(state)
        row = layout.flatten(state)
        back = layout.unflatten(row)
        assert set(back) == set(state)
        for key in state:
            np.testing.assert_array_equal(back[key], state[key])
            assert back[key].dtype == state[key].dtype
            assert back[key].shape == state[key].shape

    def test_mask_selects_exactly_the_keys(self, rng):
        state = make_state(rng)
        layout = StateLayout.from_state(state)
        mask = layout.mask({"a.bias"})
        assert mask.sum() == 4
        full = layout.flatten(state)
        np.testing.assert_array_equal(full[mask], state["a.bias"])

    def test_mask_is_cached(self, rng):
        layout = StateLayout.from_state(make_state(rng))
        assert layout.mask({"a.bias"}) is layout.mask({"a.bias"})
        assert layout.mask(None) is layout.mask(None)

    def test_integer_mask(self, rng):
        state = make_state(rng, with_int=True)
        layout = StateLayout.from_state(state)
        assert layout.integer_keys == ("c.steps",)
        assert layout.integer_mask().sum() == 1

    def test_flatten_rejects_mismatched_keys(self, rng):
        layout = StateLayout.from_state(make_state(rng))
        with pytest.raises(KeyError):
            layout.flatten({"other": np.zeros(2)})


class TestPoolBufferBasics:
    def test_from_states_roundtrip(self, rng):
        pool = make_pool(rng, k=3, with_int=True)
        buf = PoolBuffer.from_states(pool)
        assert len(buf) == 3
        for i, state in enumerate(pool):
            back = buf.as_state(i)
            for key in state:
                np.testing.assert_array_equal(back[key], state[key])
                assert back[key].dtype == state[key].dtype

    def test_as_state_views_are_zero_copy(self, rng):
        buf = PoolBuffer.from_states(make_pool(rng, k=2))
        view = buf.as_state(0)["a.bias"]
        buf.matrix[0, buf.layout.by_key["a.bias"].offset] = 42.0
        assert view.reshape(-1)[0] == 42.0

    def test_broadcast_replicates_one_state(self, rng):
        state = make_state(rng)
        buf = PoolBuffer.broadcast(state, 5)
        assert len(buf) == 5
        np.testing.assert_array_equal(buf.matrix[0], buf.matrix[4])

    def test_set_state_rejects_mismatched_keys(self, rng):
        buf = PoolBuffer.from_states(make_pool(rng, k=2))
        with pytest.raises(KeyError):
            buf.set_state(0, {"bogus": np.zeros(1)})

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            PoolBuffer.from_states([])


class TestVectorizedSimilarity:
    def test_cosine_gram_unit_diagonal(self, rng):
        buf = PoolBuffer.from_states(make_pool(rng, k=5))
        sim = buf.similarity_matrix("cosine")
        np.testing.assert_allclose(np.diag(sim), np.ones(5), rtol=1e-6)
        np.testing.assert_allclose(sim, sim.T, atol=1e-12)

    def test_zero_norm_row_gets_zero_similarity(self, rng):
        pool = make_pool(rng, k=3)
        zeroed = {k: np.zeros_like(v) for k, v in pool[1].items()}
        buf = PoolBuffer.from_states([pool[0], zeroed, pool[2]])
        sim = buf.similarity_matrix("cosine")
        np.testing.assert_array_equal(sim[1], np.zeros(3))
        np.testing.assert_array_equal(sim[:, 1], np.zeros(3))

    def test_euclidean_diag_is_zero(self, rng):
        buf = PoolBuffer.from_states(make_pool(rng, k=4))
        sim = buf.similarity_matrix("euclidean")
        np.testing.assert_allclose(np.diag(sim), np.zeros(4), atol=1e-12)
        assert (sim <= 0).all()

    def test_similarity_to_matches_matrix_row(self, rng):
        buf = PoolBuffer.from_states(make_pool(rng, k=5))
        sim = buf.similarity_matrix("cosine")
        for i in range(5):
            np.testing.assert_allclose(
                buf.similarity_to(i, "cosine"), sim[i], rtol=1e-12
            )

    def test_unknown_measure_rejected(self, rng):
        buf = PoolBuffer.from_states(make_pool(rng, k=2))
        with pytest.raises(KeyError):
            buf.similarity_matrix("manhattan")


class TestVectorizedSelection:
    def test_in_order_matches_closed_form(self, rng):
        from repro.core.selection import select_in_order

        buf = PoolBuffer.from_states(make_pool(rng, k=6))
        for r in range(8):
            co = buf.select_collaborators("in_order", round_idx=r)
            expected = [select_in_order(i, r, 6) for i in range(6)]
            np.testing.assert_array_equal(co, expected)

    def test_never_selects_self(self, rng):
        buf = PoolBuffer.from_states(make_pool(rng, k=5))
        for strategy in ("in_order", "highest", "lowest"):
            co = buf.select_collaborators(strategy, round_idx=2)
            assert all(co[i] != i for i in range(5))

    def test_single_model_selects_self(self, rng):
        buf = PoolBuffer.from_states(make_pool(rng, k=1))
        np.testing.assert_array_equal(
            buf.select_collaborators("lowest"), np.zeros(1, dtype=np.int64)
        )

    def test_unknown_strategy_rejected(self, rng):
        buf = PoolBuffer.from_states(make_pool(rng, k=3))
        with pytest.raises(ValueError, match="unknown strategy"):
            buf.select_collaborators("random")


class TestVectorizedAggregation:
    def test_cross_aggregate_blends_rows(self, rng):
        pool = make_pool(rng, k=3)
        buf = PoolBuffer.from_states(pool)
        co = np.array([1, 2, 0])
        out = buf.cross_aggregate(co, alpha=0.75)
        for i in range(3):
            got = out.as_state(i)
            for key in pool[i]:
                expected = (
                    0.75 * pool[i][key].astype(np.float64)
                    + 0.25 * pool[co[i]][key].astype(np.float64)
                ).astype(np.float32)
                np.testing.assert_array_equal(got[key], expected)

    def test_integer_fields_carried_not_averaged(self, rng):
        pool = make_pool(rng, k=3, with_int=True)
        for i, state in enumerate(pool):
            state["c.steps"] = np.array([10 * (i + 1)], dtype=np.int64)
        buf = PoolBuffer.from_states(pool)
        out = buf.cross_aggregate(np.array([1, 2, 0]), alpha=0.5)
        for i in range(3):
            np.testing.assert_array_equal(
                out.as_state(i)["c.steps"], pool[i]["c.steps"]
            )
        mean = buf.mean_state()
        np.testing.assert_array_equal(mean["c.steps"], pool[0]["c.steps"])

    def test_propeller_groups_fuse_with_group_mean(self, rng):
        pool = make_pool(rng, k=4)
        buf = PoolBuffer.from_states(pool)
        groups = np.array([[1, 2], [2, 3], [3, 0], [0, 1]])
        out = buf.cross_aggregate(groups, alpha=0.8)
        for i in range(4):
            got = out.as_state(i)
            for key in pool[i]:
                group_mean = 0.5 * pool[groups[i, 0]][key].astype(np.float64) + (
                    0.5 * pool[groups[i, 1]][key].astype(np.float64)
                )
                expected = (
                    0.8 * pool[i][key].astype(np.float64) + 0.2 * group_mean
                ).astype(np.float32)
                np.testing.assert_allclose(got[key], expected, rtol=1e-6)

    def test_mean_state_matches_numpy_mean(self, rng):
        pool = make_pool(rng, k=4)
        buf = PoolBuffer.from_states(pool)
        mean = buf.mean_state()
        for key in pool[0]:
            expected = np.mean([s[key] for s in pool], axis=0)
            np.testing.assert_allclose(mean[key], expected, rtol=1e-5, atol=1e-7)

    def test_mean_state_weight_validation(self, rng):
        buf = PoolBuffer.from_states(make_pool(rng, k=2))
        with pytest.raises(ValueError):
            buf.mean_state(weights=[1.0])
        with pytest.raises(ValueError):
            buf.mean_state(weights=[0.0, 0.0])

    def test_dispersion_zero_for_identical_pool(self, rng):
        state = make_state(rng)
        buf = PoolBuffer.broadcast(state, 4)
        assert buf.dispersion() == 0.0

    def test_float32_pool_rejects_unrepresentable_integers(self, rng):
        state = make_state(rng, with_int=True)
        state["c.steps"] = np.array([2**24 + 1], dtype=np.int64)
        with pytest.raises(ValueError, match="round-trip"):
            PoolBuffer.broadcast(state, 2, dtype=np.float32)
        # a wider pool dtype accepts the same value
        buf = PoolBuffer.broadcast(state, 2, dtype=np.float64)
        np.testing.assert_array_equal(buf.as_state(0)["c.steps"], [2**24 + 1])


class TestCustomMeasureFallback:
    def test_registered_measure_still_works_via_reference_loop(self, rng):
        """Custom measures on SIMILARITY_MEASURES (the module's
        extension point) must keep working even though the vectorized
        engine only knows cosine/euclidean."""
        from repro.core import selection

        def manhattan(x, y):
            return -float(np.abs(x - y).sum())

        selection.SIMILARITY_MEASURES["manhattan"] = manhattan
        try:
            pool = make_pool(rng, k=4)
            sim = selection.similarity_matrix(pool, measure="manhattan")
            assert sim.shape == (4, 4)
            ref = selection._reference_similarity_matrix(pool, "manhattan", None)
            np.testing.assert_array_equal(sim, ref)

            sel = selection.CoModelSel("lowest", measure="manhattan")
            buf = PoolBuffer.from_states(pool, dtype=np.float64)
            co = sel.select_all(buf, round_idx=0)
            for i in range(4):
                assert co[i] == selection._reference_select_by_similarity(
                    i, pool, "manhattan", None, want_highest=False
                )
        finally:
            del selection.SIMILARITY_MEASURES["manhattan"]


class TestBlockwiseOps:
    """Row-blocked cross-aggregation / euclidean similarity must be
    bit-identical for every block size (the out-of-core guarantee)."""

    def test_cross_aggregate_block_size_invariant(self, rng):
        pool = make_pool(rng, k=7, with_int=True)
        buf = PoolBuffer.from_states(pool, dtype=np.float32)
        co = (np.arange(7) + 2) % 7
        ref = buf.cross_aggregate(co, 0.93, block_rows=7).matrix
        for block in (1, 2, 3, 5, 100):
            got = buf.cross_aggregate(co, 0.93, block_rows=block).matrix
            np.testing.assert_array_equal(got, ref)

    def test_propeller_cross_aggregate_block_size_invariant(self, rng):
        pool = make_pool(rng, k=6)
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        groups = np.stack([(np.arange(6) + 1) % 6, (np.arange(6) + 3) % 6], axis=1)
        ref = buf.cross_aggregate(groups, 0.8, block_rows=6).matrix
        for block in (1, 2, 4):
            got = buf.cross_aggregate(groups, 0.8, block_rows=block).matrix
            np.testing.assert_array_equal(got, ref)

    def test_cross_aggregate_default_block_on_memmap(self, rng):
        pool = make_pool(rng, k=5, with_int=True)
        dense = PoolBuffer.from_states(pool, dtype=np.float32, backend="dense")
        mm = PoolBuffer.from_states(pool, dtype=np.float32, backend="memmap")
        co = (np.arange(5) + 1) % 5
        out = mm.cross_aggregate(co, 0.9)
        assert out.backend == "memmap"
        np.testing.assert_array_equal(
            out.matrix, dense.cross_aggregate(co, 0.9).matrix
        )

    def test_euclidean_block_size_agreement(self, rng):
        """Cross-block-size agreement is ulp-tight (the P reduction may
        move by the last ulp with operand shape); same block size is
        exactly reproducible."""
        pool = make_pool(rng, k=6)
        buf = PoolBuffer.from_states(pool, dtype=np.float32)
        ref = buf.similarity_matrix("euclidean", block_rows=6)
        for block in (1, 2, 4, 50):
            got = buf.similarity_matrix("euclidean", block_rows=block)
            np.testing.assert_allclose(got, ref, rtol=1e-13, atol=0)
            np.testing.assert_array_equal(
                got, buf.similarity_matrix("euclidean", block_rows=block)
            )

    def test_euclidean_matches_per_row_loop(self, rng):
        buf = PoolBuffer.from_states(make_pool(rng, k=5), dtype=np.float64)
        v = buf.matrix.astype(np.float64, copy=False)
        ref = np.zeros((5, 5))
        for i in range(5):
            diff = v - v[i]
            ref[i] = -np.sqrt(np.einsum("kp,kp->k", diff, diff))
        np.testing.assert_allclose(
            buf.similarity_matrix("euclidean"), ref, rtol=1e-13, atol=0
        )

    def test_euclidean_cancellation_safety(self, rng):
        """Near-identical rows (the converged-pool regime) must keep
        small distances instead of collapsing to the catastrophic
        cancellation of the norm-expansion formula."""
        base = rng.standard_normal(8) * 1e3
        states = [
            {"w": (base + eps).astype(np.float64)}
            for eps in (0.0, 1e-7, 2e-7)
        ]
        buf = PoolBuffer.from_states(states, dtype=np.float64)
        sim = buf.similarity_matrix("euclidean")
        expected = -np.sqrt(8) * 1e-7
        np.testing.assert_allclose(sim[0, 1], expected, rtol=1e-6)
        np.testing.assert_allclose(sim[1, 2], expected, rtol=1e-6)
        assert sim[0, 2] < sim[0, 1] < 0.0

    def test_mean_state_precise_streams_rows(self, rng):
        """precise=True must match the old whole-matrix float64 path."""
        pool = make_pool(rng, k=6, with_int=True)
        buf = PoolBuffer.from_states(pool, dtype=np.float32)
        weights = [float(w) for w in rng.integers(1, 9, size=6)]
        m = buf.matrix.astype(np.float64)
        acc = np.zeros(buf.num_scalars)
        w = np.asarray(weights) / np.sum(weights)
        for i in range(6):
            acc += w[i] * m[i]
        ref = acc.astype(np.float32)
        got = buf.mean_state(weights, precise=True)
        flat = np.empty(buf.num_scalars, dtype=np.float32)
        buf.layout.flatten_into(got, flat)
        int_mask = buf.layout.integer_mask()
        np.testing.assert_array_equal(flat[~int_mask], ref[~int_mask])
        np.testing.assert_array_equal(flat[int_mask], buf.matrix[0, int_mask])
