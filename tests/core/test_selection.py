"""CoModelSel: the three strategies and similarity measures."""

import numpy as np
import pytest

from repro.core.selection import (
    CoModelSel,
    cosine_similarity,
    euclidean_similarity,
    select_highest_similarity,
    select_in_order,
    select_lowest_similarity,
    similarity_matrix,
)


def states_from_vectors(vectors):
    return [{"w": np.asarray(v, dtype=np.float64)} for v in vectors]


class TestCosine:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_opposite_vectors(self):
        v = np.array([1.0, 0.0])
        assert cosine_similarity(v, -v) == pytest.approx(-1.0)

    def test_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_zero_vector_safe(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_scale_invariance(self, rng):
        a, b = rng.standard_normal(10), rng.standard_normal(10)
        assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(5 * a, 0.1 * b))


class TestEuclidean:
    def test_identical_is_max(self):
        v = np.ones(4)
        assert euclidean_similarity(v, v) == 0.0
        assert euclidean_similarity(v, v + 1) < 0.0

    def test_ordering(self):
        a = np.zeros(3)
        near, far = np.full(3, 0.1), np.full(3, 5.0)
        assert euclidean_similarity(a, near) > euclidean_similarity(a, far)


class TestInOrder:
    def test_paper_formula(self):
        # (i + (r % (K-1) + 1)) % K
        assert select_in_order(0, 0, 4) == 1
        assert select_in_order(0, 1, 4) == 2
        assert select_in_order(3, 0, 4) == 0
        assert select_in_order(2, 2, 4) == (2 + (2 % 3 + 1)) % 4

    def test_never_self(self):
        for k in (2, 3, 5, 8):
            for r in range(2 * k):
                for i in range(k):
                    assert select_in_order(i, r, k) != i

    def test_permutation_every_round(self):
        """Every model is chosen as a collaborator exactly once."""
        for k in (2, 3, 6):
            for r in range(k + 2):
                chosen = [select_in_order(i, r, k) for i in range(k)]
                assert sorted(chosen) == list(range(k))

    def test_covers_all_partners_in_k_minus_1_rounds(self):
        k = 5
        for i in range(k):
            partners = {select_in_order(i, r, k) for r in range(k - 1)}
            assert partners == set(range(k)) - {i}

    def test_k_equals_one_self(self):
        assert select_in_order(0, 3, 1) == 0


class TestSimilaritySelection:
    def test_highest_picks_most_aligned(self):
        states = states_from_vectors([[1, 0], [0.9, 0.1], [-1, 0]])
        assert select_highest_similarity(0, states) == 1

    def test_lowest_picks_least_aligned(self):
        states = states_from_vectors([[1, 0], [0.9, 0.1], [-1, 0]])
        assert select_lowest_similarity(0, states) == 2

    def test_never_selects_self(self):
        states = states_from_vectors([[1, 0], [1, 0], [1, 0]])
        for i in range(3):
            assert select_highest_similarity(i, states) != i
            assert select_lowest_similarity(i, states) != i

    def test_euclidean_measure_differs_from_cosine(self):
        # b is aligned with a but far; c is less aligned but close.
        states = states_from_vectors([[1.0, 0.0], [10.0, 0.0], [0.8, 0.6]])
        assert select_highest_similarity(0, states, measure="cosine") == 1
        assert select_highest_similarity(0, states, measure="euclidean") == 2

    def test_param_keys_filtering(self):
        states = [
            {"w": np.array([1.0, 0.0]), "buf": np.array([0.0])},
            {"w": np.array([1.0, 0.0]), "buf": np.array([100.0])},
            {"w": np.array([-1.0, 0.0]), "buf": np.array([0.0])},
        ]
        # restricted to "w", model 1 is identical to 0
        assert select_highest_similarity(0, states, param_keys={"w"}) == 1

    def test_single_model_returns_self(self):
        states = states_from_vectors([[1, 2]])
        assert select_lowest_similarity(0, states) == 0


class TestSimilarityMatrix:
    def test_symmetric_with_unit_diagonal(self, rng):
        states = states_from_vectors(rng.standard_normal((4, 6)))
        sim = similarity_matrix(states)
        np.testing.assert_allclose(sim, sim.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(sim), np.ones(4), rtol=1e-9)

    def test_values_in_range(self, rng):
        states = states_from_vectors(rng.standard_normal((5, 8)))
        sim = similarity_matrix(states)
        assert (sim <= 1.0 + 1e-9).all() and (sim >= -1.0 - 1e-9).all()


class TestCoModelSelWrapper:
    def test_strategy_dispatch(self):
        states = states_from_vectors([[1, 0], [0.9, 0.1], [-1, 0]])
        assert CoModelSel("lowest")(0, states, 0) == 2
        assert CoModelSel("highest")(0, states, 0) == 1
        assert CoModelSel("in_order")(0, states, 0) == 1

    def test_invalid_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            CoModelSel("random")

    def test_invalid_measure(self):
        with pytest.raises(ValueError, match="unknown measure"):
            CoModelSel("lowest", measure="manhattan")

    def test_case_insensitive_strategy(self):
        assert CoModelSel("LOWEST").strategy == "lowest"
