"""Pool storage backends: registry, memmap lifecycle, dense equivalence."""

import gc
import os

import numpy as np
import pytest

from repro.core.pool import PoolBuffer
from repro.core.storage import (
    DenseStorage,
    MemmapStorage,
    POOL_BACKENDS,
    PoolStorage,
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.utils.layout import StateLayout


def make_state(rng, with_int=False):
    state = {
        "b.weight": rng.standard_normal((3, 2)).astype(np.float32),
        "a.bias": rng.standard_normal(4).astype(np.float32),
    }
    if with_int:
        state["c.steps"] = np.array([7], dtype=np.int64)
    return state


class TestBackendRegistry:
    def test_builtin_backends_present(self):
        assert available_backends() == ["dense", "memmap"]

    def test_resolve_is_case_insensitive(self):
        assert resolve_backend("DENSE") is DenseStorage
        assert resolve_backend("memmap") is MemmapStorage

    def test_unknown_backend_raises_with_available_list(self):
        with pytest.raises(KeyError, match="unknown pool backend"):
            resolve_backend("gpu")
        try:
            resolve_backend("gpu")
        except KeyError as exc:
            assert "dense" in str(exc) and "memmap" in str(exc)

    def test_duplicate_backend_rejected(self):
        with pytest.raises(KeyError, match="already registered"):

            @register_backend("dense")
            class Dup(PoolStorage):
                pass

    def test_third_party_backend_pluggable(self, rng):
        @register_backend("test_only")
        class TestOnly(DenseStorage):
            pass

        try:
            buf = PoolBuffer.from_states(
                [make_state(rng)], backend="test_only"
            )
            assert buf.backend == "test_only"
        finally:
            del POOL_BACKENDS["test_only"]


class TestMemmapLifecycle:
    def test_backing_file_created_and_cleaned_up(self):
        storage = MemmapStorage.allocate((2, 8), dtype=np.float32)
        path = storage.path
        assert os.path.exists(path)
        storage.array[:] = 1.5
        storage.flush()
        del storage
        gc.collect()
        assert not os.path.exists(path)

    def test_respects_memmap_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MEMMAP_DIR", str(tmp_path))
        storage = MemmapStorage.allocate((2, 4))
        assert os.path.dirname(storage.path) == str(tmp_path)

    def test_clone_is_independent(self):
        storage = MemmapStorage.allocate((2, 4), dtype=np.float64)
        storage.array[:] = 3.0
        clone = storage.clone()
        assert clone.path != storage.path
        storage.array[:] = -1.0
        np.testing.assert_array_equal(clone.array, np.full((2, 4), 3.0))


class TestDenseMemmapEquivalence:
    """The acceptance bar: memmap must be bit-transparent vs dense."""

    def _pools(self, rng, k=4):
        states = [make_state(rng, with_int=True) for _ in range(k)]
        dense = PoolBuffer.from_states(states, backend="dense")
        memmap = PoolBuffer.from_states(states, backend="memmap")
        return dense, memmap

    def test_pack_and_matrix_identical(self, rng):
        dense, memmap = self._pools(rng)
        np.testing.assert_array_equal(np.asarray(memmap.matrix), dense.matrix)
        assert dense.backend == "dense" and memmap.backend == "memmap"

    def test_similarity_identical(self, rng):
        dense, memmap = self._pools(rng)
        np.testing.assert_array_equal(
            memmap.similarity_matrix("cosine"), dense.similarity_matrix("cosine")
        )
        np.testing.assert_array_equal(
            memmap.select_collaborators("lowest"),
            dense.select_collaborators("lowest"),
        )

    def test_cross_aggregate_identical_and_stays_on_backend(self, rng):
        dense, memmap = self._pools(rng)
        co = np.array([1, 2, 3, 0])
        out_d = dense.cross_aggregate(co, alpha=0.9)
        out_m = memmap.cross_aggregate(co, alpha=0.9)
        assert out_d.backend == "dense"
        assert out_m.backend == "memmap"
        np.testing.assert_array_equal(np.asarray(out_m.matrix), out_d.matrix)

    @pytest.mark.parametrize("precise", [True, False])
    def test_mean_state_identical(self, rng, precise):
        dense, memmap = self._pools(rng)
        weights = [1.0, 2.0, 3.0, 4.0]
        mean_d = dense.mean_state(weights, precise=precise)
        mean_m = memmap.mean_state(weights, precise=precise)
        for key in mean_d:
            np.testing.assert_array_equal(mean_m[key], mean_d[key])

    def test_broadcast_identical(self, rng):
        state = make_state(rng)
        d = PoolBuffer.broadcast(state, 3, backend="dense")
        m = PoolBuffer.broadcast(state, 3, backend="memmap")
        np.testing.assert_array_equal(np.asarray(m.matrix), d.matrix)


class TestEndToEndBackendEquivalence:
    @pytest.mark.parametrize("method", ["fedcross", "fedavg", "scaffold"])
    def test_memmap_history_bit_identical_to_dense(self, tiny_config, method):
        """`--backend memmap` must reproduce dense runs bit-for-bit."""
        from repro.fl.simulation import run_simulation

        cfg = tiny_config.replace(rounds=2).with_method(method)
        dense = run_simulation(cfg.replace(backend="dense"))
        memmap = run_simulation(cfg.replace(backend="memmap"))
        assert dense.history.accuracies == memmap.history.accuracies
        assert [r.loss for r in dense.history.records] == [
            r.loss for r in memmap.history.records
        ]
        assert [r.train_loss for r in dense.history.records] == [
            r.train_loss for r in memmap.history.records
        ]
        for key in dense.final_state:
            np.testing.assert_array_equal(
                dense.final_state[key], memmap.final_state[key]
            )
