"""Pool storage backends: registry, memmap lifecycle, sharded layout,
and op-level dense equivalence.

End-to-end (full fit) backend equivalence lives in the cross-backend
matrix suite, ``tests/integration/test_backend_matrix.py``.
"""

import gc
import os

import numpy as np
import pytest

from repro.core.pool import PoolBuffer
from repro.core.storage import (
    DenseStorage,
    MemmapStorage,
    POOL_BACKENDS,
    PoolStorage,
    ShardedStorage,
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.utils.layout import StateLayout


def make_state(rng, with_int=False):
    state = {
        "b.weight": rng.standard_normal((3, 2)).astype(np.float32),
        "a.bias": rng.standard_normal(4).astype(np.float32),
    }
    if with_int:
        state["c.steps"] = np.array([7], dtype=np.int64)
    return state


# backend -> options used by the op-equivalence parametrization
NON_DENSE = {
    "memmap": {},
    "sharded": {"shards": 3},
}


class TestBackendRegistry:
    def test_builtin_backends_present(self):
        assert available_backends() == ["dense", "distributed", "memmap", "sharded"]

    def test_resolve_is_case_insensitive(self):
        assert resolve_backend("DENSE") is DenseStorage
        assert resolve_backend("memmap") is MemmapStorage
        assert resolve_backend("Sharded") is ShardedStorage

    def test_unknown_backend_raises_value_error_with_available_list(self):
        """--backend typos must fail with the fix in the message: a
        ValueError naming every registered backend, not a bare KeyError."""
        with pytest.raises(ValueError, match="unknown pool backend"):
            resolve_backend("gpu")
        try:
            resolve_backend("gpu")
        except ValueError as exc:
            message = str(exc)
            assert "dense" in message and "memmap" in message
            assert "sharded" in message

    def test_duplicate_backend_rejected(self):
        with pytest.raises(KeyError, match="already registered"):

            @register_backend("dense")
            class Dup(PoolStorage):
                pass

    def test_third_party_backend_pluggable(self, rng):
        @register_backend("test_only")
        class TestOnly(DenseStorage):
            pass

        try:
            buf = PoolBuffer.from_states(
                [make_state(rng)], backend="test_only"
            )
            assert buf.backend == "test_only"
        finally:
            del POOL_BACKENDS["test_only"]

    def test_single_medium_backends_reject_options(self):
        with pytest.raises(ValueError, match="accepts no storage options"):
            DenseStorage.allocate((2, 4), shards=3)
        with pytest.raises(ValueError, match="accepts no storage options"):
            MemmapStorage.allocate((2, 4), shards=3)


class TestMemmapLifecycle:
    def test_backing_file_created_and_cleaned_up(self):
        storage = MemmapStorage.allocate((2, 8), dtype=np.float32)
        path = storage.path
        assert os.path.exists(path)
        storage.array[:] = 1.5
        storage.flush()
        del storage
        gc.collect()
        assert not os.path.exists(path)

    def test_respects_memmap_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MEMMAP_DIR", str(tmp_path))
        storage = MemmapStorage.allocate((2, 4))
        assert os.path.dirname(storage.path) == str(tmp_path)

    def test_clone_is_independent(self):
        storage = MemmapStorage.allocate((2, 4), dtype=np.float64)
        storage.array[:] = 3.0
        clone = storage.clone()
        assert clone.path != storage.path
        storage.array[:] = -1.0
        np.testing.assert_array_equal(clone.array, np.full((2, 4), 3.0))


class TestShardedLayout:
    def test_even_contiguous_boundaries(self):
        storage = ShardedStorage.allocate((7, 4), shards=3)
        assert storage.num_shards == 3
        assert storage.shard_boundaries() == (0, 2, 5, 7)
        assert [b1 - b0 for b0, b1 in storage.shard_spans()] == [2, 3, 2]
        assert storage.shape == (7, 4)

    def test_shard_count_clamped_to_rows(self):
        assert ShardedStorage.allocate((3, 2), shards=10).num_shards == 3
        assert ShardedStorage.allocate((3, 2), shards=1).num_shards == 1

    def test_env_default_shard_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_SHARDS", "2")
        assert ShardedStorage.allocate((8, 2)).num_shards == 2
        monkeypatch.delenv("REPRO_POOL_SHARDS")
        assert ShardedStorage.allocate((8, 2)).num_shards == 4

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            ShardedStorage.allocate((4, 2), shards=0)
        with pytest.raises(ValueError, match="cannot itself be 'sharded'"):
            ShardedStorage.allocate((4, 2), placement="sharded")
        with pytest.raises(ValueError, match="unknown pool backend"):
            ShardedStorage.allocate((4, 2), placement="gpu")

    def test_row_is_writable_view_into_owning_shard(self):
        storage = ShardedStorage.allocate((6, 3), shards=3)
        storage.row(4)[:] = 2.5
        shard = storage.shards[2]  # rows 4-5
        np.testing.assert_array_equal(shard.array[0], np.full(3, 2.5))

    def test_row_block_shard_local_is_view_cross_shard_is_copy(self):
        storage = ShardedStorage.from_array(
            np.arange(24, dtype=np.float32).reshape(8, 3), shards=4
        )
        local = storage.row_block(2, 4)  # shard 1 exactly
        assert local.base is storage.shards[1].array or local is storage.shards[1].array
        crossing = storage.row_block(1, 5)
        assert crossing.base is None  # gathered copy
        np.testing.assert_array_equal(
            crossing, np.arange(3, 15, dtype=np.float32).reshape(4, 3)
        )

    def test_write_and_gather_scatter_across_shards(self):
        storage = ShardedStorage.allocate((6, 2), shards=3)
        values = np.arange(8, dtype=np.float32).reshape(4, 2)
        storage.write_rows(1, values)
        np.testing.assert_array_equal(storage.row_block(1, 5), values)
        gathered = storage.gather_rows([4, 0, 2])
        np.testing.assert_array_equal(gathered[0], storage.row(4))
        np.testing.assert_array_equal(gathered[2], storage.row(2))

    def test_array_is_gathered_readonly_copy(self):
        storage = ShardedStorage.from_array(
            np.ones((4, 2), dtype=np.float32), shards=2
        )
        snapshot = storage.array
        assert not snapshot.flags.writeable
        with pytest.raises(ValueError):
            snapshot[0, 0] = 9.0

    def test_memmap_placement_and_flush(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MEMMAP_DIR", str(tmp_path))
        storage = ShardedStorage.allocate((5, 3), shards=2, placement="memmap")
        assert storage.placement == "memmap"
        assert all(isinstance(s, MemmapStorage) for s in storage.shards)
        storage.fill_rows(np.ones(3, dtype=np.float32))
        storage.flush()
        np.testing.assert_array_equal(storage.array, np.ones((5, 3)))

    def test_clone_and_allocate_like_preserve_configuration(self):
        storage = ShardedStorage.from_array(
            np.arange(10, dtype=np.float32).reshape(5, 2), shards=2
        )
        clone = storage.clone()
        storage.row(0)[:] = -1.0
        np.testing.assert_array_equal(clone.row(0), [0.0, 1.0])
        derived = storage.allocate_like((9, 2), dtype=np.float32)
        assert isinstance(derived, ShardedStorage)
        assert derived.num_shards == 2
        assert derived.placement == storage.placement
        np.testing.assert_array_equal(derived.array, np.zeros((9, 2)))


class TestDenseEquivalence:
    """Op-level acceptance bar: every backend bit-transparent vs dense."""

    def _pools(self, rng, backend, k=4):
        states = [make_state(rng, with_int=True) for _ in range(k)]
        dense = PoolBuffer.from_states(states, backend="dense")
        other = PoolBuffer.from_states(
            states, backend=backend, backend_options=NON_DENSE[backend]
        )
        return dense, other

    @pytest.mark.parametrize("backend", sorted(NON_DENSE))
    def test_pack_and_matrix_identical(self, rng, backend):
        dense, other = self._pools(rng, backend)
        np.testing.assert_array_equal(np.asarray(other.matrix), dense.matrix)
        assert dense.backend == "dense" and other.backend == backend

    @pytest.mark.parametrize("backend", sorted(NON_DENSE))
    def test_similarity_identical(self, rng, backend):
        dense, other = self._pools(rng, backend)
        np.testing.assert_array_equal(
            other.similarity_matrix("cosine"), dense.similarity_matrix("cosine")
        )
        np.testing.assert_array_equal(
            other.select_collaborators("lowest"),
            dense.select_collaborators("lowest"),
        )

    @pytest.mark.parametrize("backend", sorted(NON_DENSE))
    def test_cross_aggregate_identical_and_stays_on_backend(self, rng, backend):
        dense, other = self._pools(rng, backend)
        co = np.array([1, 2, 3, 0])
        out_d = dense.cross_aggregate(co, alpha=0.9)
        out_o = other.cross_aggregate(co, alpha=0.9)
        assert out_d.backend == "dense"
        assert out_o.backend == backend
        np.testing.assert_array_equal(np.asarray(out_o.matrix), out_d.matrix)

    @pytest.mark.parametrize("backend", sorted(NON_DENSE))
    @pytest.mark.parametrize("precise", [True, False])
    def test_mean_state_identical(self, rng, backend, precise):
        dense, other = self._pools(rng, backend)
        weights = [1.0, 2.0, 3.0, 4.0]
        mean_d = dense.mean_state(weights, precise=precise)
        mean_o = other.mean_state(weights, precise=precise)
        for key in mean_d:
            np.testing.assert_array_equal(mean_o[key], mean_d[key])

    @pytest.mark.parametrize("backend", sorted(NON_DENSE))
    def test_broadcast_identical(self, rng, backend):
        state = make_state(rng)
        d = PoolBuffer.broadcast(state, 3, backend="dense")
        o = PoolBuffer.broadcast(
            state, 3, backend=backend, backend_options=NON_DENSE[backend]
        )
        np.testing.assert_array_equal(np.asarray(o.matrix), d.matrix)

    def test_sharded_upload_lands_in_owning_shard(self, rng):
        """set_state / set_row write through to the shard, not a copy."""
        states = [make_state(rng, with_int=True) for _ in range(4)]
        buf = PoolBuffer.from_states(
            states, backend="sharded", backend_options={"shards": 2}
        )
        fresh = make_state(rng, with_int=True)
        buf.set_state(3, fresh)
        layout = StateLayout.from_state(fresh)
        expected = layout.flatten(fresh, dtype=np.float32)
        np.testing.assert_array_equal(buf.storage.shards[1].array[1], expected)
        buf.set_row(0, np.zeros(buf.num_scalars, dtype=np.float32))
        np.testing.assert_array_equal(
            buf.storage.shards[0].array[0], np.zeros(buf.num_scalars)
        )
