"""FedCross server: Algorithm 1 mechanics end to end."""

import numpy as np
import pytest

from repro.fl.simulation import FLSimulation, run_simulation


@pytest.fixture
def fc_config(tiny_config):
    return tiny_config.with_method("fedcross", alpha=0.8, selection="in_order")


class TestPoolMechanics:
    def test_pool_size_is_k(self, fc_config):
        sim = FLSimulation(fc_config)
        assert len(sim.server.middleware) == fc_config.clients_per_round

    def test_pool_starts_identical(self, fc_config):
        sim = FLSimulation(fc_config)
        first = sim.server.middleware[0]
        for state in sim.server.middleware[1:]:
            for k in first:
                np.testing.assert_array_equal(state[k], first[k])

    def test_pool_diverges_after_round(self, fc_config):
        sim = FLSimulation(fc_config)
        sim.server.run_round(sim.server.sample_clients())
        a, b = sim.server.middleware[0], sim.server.middleware[1]
        assert any(not np.allclose(a[k], b[k]) for k in a)

    def test_run_round_requires_k_clients(self, fc_config):
        sim = FLSimulation(fc_config)
        with pytest.raises(RuntimeError, match="exactly K"):
            sim.server.run_round(sim.clients[:1])

    def test_global_state_is_pool_mean(self, fc_config):
        sim = FLSimulation(fc_config)
        sim.server.run_round(sim.server.sample_clients())
        got = sim.server.global_state()
        pool = sim.server.middleware
        for k in got:
            expected = np.mean([s[k] for s in pool], axis=0)
            np.testing.assert_allclose(got[k], expected, rtol=1e-5, atol=1e-7)

    def test_round_extras_include_alpha_and_coindices(self, fc_config):
        sim = FLSimulation(fc_config)
        extras = sim.server.run_round(sim.server.sample_clients())
        assert extras["alpha"] == 0.8
        k = fc_config.clients_per_round
        assert sorted(extras["co_indices"]) == list(range(k))  # in-order permutation


class TestConfiguration:
    def test_invalid_alpha_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            FLSimulation(tiny_config.with_method("fedcross", alpha=1.0))

    def test_selection_strategies_all_run(self, tiny_config):
        for strategy in ("in_order", "highest", "lowest"):
            cfg = tiny_config.replace(rounds=2).with_method(
                "fedcross", alpha=0.8, selection=strategy
            )
            result = run_simulation(cfg)
            assert len(result.history) == 2

    def test_euclidean_measure_runs(self, tiny_config):
        cfg = tiny_config.replace(rounds=2).with_method(
            "fedcross", alpha=0.8, selection="lowest", measure="euclidean"
        )
        run_simulation(cfg)

    def test_k_equals_one_degenerates_gracefully(self, tiny_config):
        cfg = tiny_config.replace(num_clients=4, participation=0.25, rounds=3).with_method(
            "fedcross", alpha=0.8
        )
        assert cfg.clients_per_round == 1
        result = run_simulation(cfg)
        assert len(result.history) == 3


class TestShuffle:
    def test_shuffle_off_fixed_assignment(self, tiny_config):
        """Without shuffle the i-th middleware model trains on active[i]."""
        cfg = tiny_config.with_method("fedcross", alpha=0.8, shuffle=False)
        a = run_simulation(cfg)
        b = run_simulation(cfg)
        for k in a.final_state:
            np.testing.assert_array_equal(a.final_state[k], b.final_state[k])

    def test_shuffle_changes_trajectories(self, tiny_config):
        on = run_simulation(tiny_config.with_method("fedcross", alpha=0.8, shuffle=True))
        off = run_simulation(tiny_config.with_method("fedcross", alpha=0.8, shuffle=False))
        assert any(
            not np.allclose(on.final_state[k], off.final_state[k])
            for k in on.final_state
        )


class TestAcceleration:
    def test_propeller_rounds_used_early(self, tiny_config):
        cfg = tiny_config.with_method(
            "fedcross", alpha=0.9, propeller_rounds=2, num_propellers=2
        )
        sim = FLSimulation(cfg)
        assert sim.server._use_propellers(0)
        assert sim.server._use_propellers(1)
        assert not sim.server._use_propellers(2)

    def test_dynamic_alpha_ramps(self, tiny_config):
        cfg = tiny_config.with_method("fedcross", alpha=0.99, dynamic_alpha_rounds=10)
        sim = FLSimulation(cfg)
        early = sim.server.alpha_at(0)
        late = sim.server.alpha_at(10)
        assert early == pytest.approx(0.5)
        assert late == pytest.approx(0.99)

    def test_pm_da_staging(self, tiny_config):
        cfg = tiny_config.with_method(
            "fedcross", alpha=0.99, propeller_rounds=3, dynamic_alpha_rounds=3
        )
        sim = FLSimulation(cfg)
        # during propeller phase alpha stays at target
        assert sim.server.alpha_at(0) == 0.99
        # afterwards the ramp continues from where the staging leaves it
        assert sim.server.alpha_at(3) < 0.99
        assert sim.server.alpha_at(6) == pytest.approx(0.99)

    def test_acceleration_variants_run_end_to_end(self, tiny_config):
        for params in (
            {"propeller_rounds": 2},
            {"dynamic_alpha_rounds": 2},
            {"propeller_rounds": 1, "dynamic_alpha_rounds": 1},
        ):
            cfg = tiny_config.replace(rounds=3).with_method(
                "fedcross", alpha=0.9, **params
            )
            result = run_simulation(cfg)
            assert len(result.history) == 3


class TestSimilarityTrend:
    def test_middleware_similarity_diagnostic(self, tiny_config):
        cfg = tiny_config.replace(rounds=4).with_method("fedcross", alpha=0.8)
        sim = FLSimulation(cfg)
        sim.server.fit()
        sim_matrix = sim.server.middleware_similarity()
        k = cfg.clients_per_round
        assert sim_matrix.shape == (k, k)
        np.testing.assert_allclose(np.diag(sim_matrix), np.ones(k), rtol=1e-6)

    def test_cross_aggregation_contracts_pool(self, tiny_config):
        """Dispersion after CrossAggr must shrink vs the uploaded pool."""
        from repro.analysis.similarity import pool_dispersion

        cfg = tiny_config.with_method("fedcross", alpha=0.8, selection="in_order")
        sim = FLSimulation(cfg)
        server = sim.server
        active = server.sample_clients()
        # reproduce the uploads manually, then compare dispersions
        uploads = [c.train(sim.trainer, server.middleware[i]).state for i, c in enumerate(active)]
        import copy

        server2 = FLSimulation(cfg).server
        server2.middleware = [dict(s) for s in server.middleware]
        server2.run_round(active)
        disp_uploads = pool_dispersion(uploads)
        disp_pool = pool_dispersion(server2.middleware)
        # not exactly comparable (different client rng states), but the
        # aggregated pool must be far tighter than freshly trained uploads
        assert disp_pool < disp_uploads
