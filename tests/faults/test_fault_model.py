"""The seeded fault model: scenarios, determinism, cohort sampling."""

import json

import numpy as np
import pytest

from repro.faults import ClientPopulation, FaultScenario
from repro.faults.model import LegFault


class TestFaultScenario:
    def test_defaults_are_benign(self):
        scenario = FaultScenario()
        assert scenario.benign
        assert scenario.availability == 1.0
        assert scenario.dropout == 0.0

    def test_from_spec_mapping(self):
        s = FaultScenario.from_spec({"availability": 0.9, "dropout": 0.1})
        assert s.availability == 0.9
        assert s.dropout == 0.1
        assert not s.benign

    def test_from_spec_inline_json(self):
        s = FaultScenario.from_spec('{"slow_prob": 0.5, "slow_factor": 3.0}')
        assert s.slow_prob == 0.5
        assert s.slow_factor == 3.0

    def test_from_spec_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps({"dropout": 0.25}))
        assert FaultScenario.from_spec(str(path)).dropout == 0.25

    def test_from_spec_passthrough(self):
        s = FaultScenario(dropout=0.5)
        assert FaultScenario.from_spec(s) is s

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-scenario keys"):
            FaultScenario.from_spec({"droput": 0.1})

    def test_garbage_string_rejected(self):
        with pytest.raises(ValueError, match="neither an existing scenario"):
            FaultScenario.from_spec("no/such/file.json")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"availability": 1.5},
            {"dropout": -0.1},
            {"slow_prob": 2.0},
            {"slow_factor": 0.5},
            {"straggler_timeout": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultScenario(**kwargs)

    def test_to_dict_roundtrip(self):
        s = FaultScenario(availability=0.8, slow_prob=0.2, slow_factor=2.0)
        assert FaultScenario.from_spec(s.to_dict()) == s


class TestDeterminism:
    def test_availability_mask_is_pure(self):
        a = ClientPopulation({"availability": 0.7}, seed=3, num_clients=50)
        b = ClientPopulation({"availability": 0.7}, seed=3, num_clients=50)
        for r in (0, 1, 17):
            np.testing.assert_array_equal(
                a.availability_mask(r), b.availability_mask(r)
            )

    def test_seed_moves_the_pattern(self):
        a = ClientPopulation({"availability": 0.7}, seed=3, num_clients=200)
        b = ClientPopulation({"availability": 0.7}, seed=4, num_clients=200)
        assert not np.array_equal(a.availability_mask(0), b.availability_mask(0))

    def test_leg_fault_pure_per_client_round(self):
        a = ClientPopulation(
            {"dropout": 0.3, "slow_prob": 0.3, "slow_factor": 2.0},
            seed=9, num_clients=30,
        )
        b = ClientPopulation(
            {"dropout": 0.3, "slow_prob": 0.3, "slow_factor": 2.0},
            seed=9, num_clients=30,
        )
        for r in (0, 5):
            assert a.leg_faults(r, range(30)) == b.leg_faults(r, range(30))

    def test_full_availability_never_fails_anyone(self):
        pop = ClientPopulation({"availability": 1.0}, seed=0, num_clients=64)
        assert pop.availability_mask(0).all()
        assert all(f.kind is None for f in pop.leg_faults(0, range(64)))

    def test_dropout_one_drops_everyone(self):
        pop = ClientPopulation({"dropout": 1.0}, seed=0, num_clients=16)
        assert all(f.kind == "dropout" for f in pop.leg_faults(2, range(16)))

    def test_dropout_knob_does_not_move_straggler_stream(self):
        # Fixed draw order: the slow draw happens whether or not the
        # dropout draw already failed the leg.
        base = {"slow_prob": 0.4, "slow_factor": 3.0}
        a = ClientPopulation(base, seed=11, num_clients=100)
        b = ClientPopulation({**base, "dropout": 1.0}, seed=11, num_clients=100)
        for cid in range(100):
            assert a.leg_fault(0, cid).speed == b.leg_fault(0, cid).speed

    def test_straggler_cutoff(self):
        pop = ClientPopulation(
            {"slow_prob": 1.0, "slow_factor": 4.0, "straggler_timeout": 2.0},
            seed=0, num_clients=4,
        )
        faults = pop.leg_faults(0, range(4))
        assert all(f.kind == "straggler" and f.speed == 4.0 for f in faults)

    def test_kind_precedence_unavailable_wins(self):
        pop = ClientPopulation(
            {"availability": 0.0, "dropout": 1.0}, seed=0, num_clients=4
        )
        assert all(f.kind == "unavailable" for f in pop.leg_faults(0, range(4)))

    def test_failure_for_simulated_kinds(self):
        pop = ClientPopulation({"dropout": 1.0}, seed=0, num_clients=4)
        failure = pop.failure_for(LegFault(kind="dropout"), 1, 3, 2)
        assert failure.kind == "dropout"
        assert failure.simulated and not failure.retryable
        assert failure.summary() == {
            "client": 3, "row": 2, "kind": "dropout", "attempts": 0,
        }


class TestByzantineKnobs:
    def test_from_spec_accepts_byzantine_keys(self):
        s = FaultScenario.from_spec(
            {"byzantine_frac": 0.2, "attack": "gauss_noise", "attack_scale": 2.0}
        )
        assert s.byzantine_frac == 0.2
        assert s.attack == "gauss_noise"
        assert s.resolved_attack_scale == 2.0
        assert not s.benign

    def test_typoed_byzantine_key_lists_valid_knobs(self):
        with pytest.raises(ValueError, match="byzantine_frac"):
            FaultScenario.from_spec({"byzantine_fraction": 0.2})

    def test_committed_scenario_file_loads(self):
        from pathlib import Path

        path = Path(__file__).parent / "scenarios" / "byzantine_signflip.json"
        s = FaultScenario.from_spec(str(path))
        assert s.byzantine_frac == 0.2 and s.attack == "sign_flip"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"byzantine_frac": 1.5},
            {"byzantine_frac": -0.1},
            {"attack": "krum"},
            {"attack_scale": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultScenario(**kwargs)

    def test_unknown_attack_kind_lists_kinds(self):
        with pytest.raises(ValueError, match="sign_flip"):
            FaultScenario(attack="nope")

    def test_default_scales_resolve_per_kind(self):
        from repro.robust.attacks import DEFAULT_ATTACK_SCALES

        for kind, scale in DEFAULT_ATTACK_SCALES.items():
            s = FaultScenario(byzantine_frac=0.1, attack=kind)
            assert s.resolved_attack_scale == scale

    def test_to_dict_roundtrips_byzantine_knobs(self):
        s = FaultScenario(byzantine_frac=0.3, attack="scale", attack_scale=5.0)
        assert FaultScenario.from_spec(s.to_dict()) == s

    def test_mask_is_static_deterministic_and_seeded(self):
        spec = {"byzantine_frac": 0.25, "attack": "sign_flip"}
        a = ClientPopulation(spec, seed=3, num_clients=200)
        b = ClientPopulation(spec, seed=3, num_clients=200)
        c = ClientPopulation(spec, seed=4, num_clients=200)
        np.testing.assert_array_equal(a.byzantine_mask(), b.byzantine_mask())
        assert not np.array_equal(a.byzantine_mask(), c.byzantine_mask())
        # Static: the mask is one draw per run, identical across rounds
        # (attack_for below is the per-round view of it).
        assert a.byzantine_mask() is a.byzantine_mask()

    def test_mask_fraction_tracks_the_knob(self):
        pop = ClientPopulation(
            {"byzantine_frac": 0.25, "attack": "sign_flip"},
            seed=0, num_clients=2000,
        )
        assert 0.2 < pop.byzantine_mask().mean() < 0.3

    def test_attack_for_is_pure_and_honest_clients_get_none(self):
        spec = {"byzantine_frac": 0.25, "attack": "gauss_noise"}
        a = ClientPopulation(spec, seed=7, num_clients=20)
        b = ClientPopulation(spec, seed=7, num_clients=20)
        mask = a.byzantine_mask()
        assert 0 < mask.sum() < 20
        for cid in range(20):
            for r in (0, 3):
                spec_a, spec_b = a.attack_for(r, cid), b.attack_for(r, cid)
                assert spec_a == spec_b
                if mask[cid]:
                    assert spec_a.kind == "gauss_noise"
                    assert spec_a.scale == 1.0  # per-kind default
                else:
                    assert spec_a is None

    def test_seed_key_distinguishes_rounds_and_clients(self):
        pop = ClientPopulation(
            {"byzantine_frac": 1.0, "attack": "sign_flip"},
            seed=5, num_clients=4,
        )
        keys = {
            pop.attack_for(r, c).seed_key for r in range(3) for c in range(4)
        }
        assert len(keys) == 12

    def test_zero_fraction_never_attacks(self):
        pop = ClientPopulation(
            {"byzantine_frac": 0.0, "attack": "sign_flip"},
            seed=0, num_clients=8,
        )
        assert not pop.byzantine_mask().any()
        assert all(pop.attack_for(0, c) is None for c in range(8))
        assert pop.scenario.benign


class TestSelectCohort:
    def test_all_available_is_the_reference_draw(self):
        # Identity: a benign scenario consumes the server RNG exactly
        # like the reference `rng.choice(n, k, replace=False)`.
        clients = list(range(20))
        pop = ClientPopulation({"availability": 1.0}, seed=5, num_clients=20)
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        chosen = pop.select_cohort(clients, 6, 0, rng_a)
        reference = [clients[i] for i in rng_b.choice(20, size=6, replace=False)]
        assert chosen == reference
        # And the generators end in the same state.
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_churn_prefers_available_clients(self):
        pop = ClientPopulation({"availability": 0.5}, seed=1, num_clients=40)
        mask = pop.availability_mask(0)
        assert 0 < mask.sum() < 40  # the seed gives a genuine mix
        k = min(4, int(mask.sum()))
        chosen = pop.select_cohort(list(range(40)), k, 0, np.random.default_rng(0))
        assert all(mask[c] for c in chosen)

    def test_pads_with_unavailable_when_short(self):
        pop = ClientPopulation({"availability": 0.0}, seed=1, num_clients=8)
        chosen = pop.select_cohort(list(range(8)), 5, 0, np.random.default_rng(0))
        assert len(chosen) == 5
        assert len(set(chosen)) == 5  # no duplicates
        faults = pop.leg_faults(0, chosen)
        assert all(f.kind == "unavailable" for f in faults)

    def test_roster_size_mismatch_raises(self):
        pop = ClientPopulation({}, seed=0, num_clients=10)
        with pytest.raises(ValueError, match="sized for 10"):
            pop.select_cohort(list(range(8)), 2, 0, np.random.default_rng(0))


class TestBenignStragglerConsistency:
    """`benign` must agree with `leg_fault`'s straggler judgement
    (ISSUE 10 satellite): the reachable-speed regression, the
    `slow_factor == straggler_timeout` boundary, and the property that
    a benign scenario never faults or slows any sampled leg."""

    def test_timeout_below_baseline_not_benign_without_slowdown(self):
        # Regression: slow_prob=0 leaves every leg at the 1.0 baseline
        # speed, which a sub-unit straggler_timeout still strands — the
        # scenario straggles *every* leg and must not report benign.
        scenario = FaultScenario(straggler_timeout=0.5)
        assert not scenario.benign
        pop = ClientPopulation(scenario, seed=0, num_clients=8)
        faults = pop.leg_faults(0, range(8))
        assert all(f.kind == "straggler" and f.speed == 1.0 for f in faults)

    def test_boundary_equal_timeout_slowed_not_straggling(self):
        # slow_factor == straggler_timeout: leg_fault's strict `>`
        # never fires (no stragglers), but legs still run slowed — the
        # scenario is not benign for the slowdown, not the timeout.
        scenario = FaultScenario(
            slow_prob=1.0, slow_factor=2.0, straggler_timeout=2.0
        )
        assert not scenario.benign
        pop = ClientPopulation(scenario, seed=0, num_clients=8)
        faults = pop.leg_faults(0, range(8))
        assert all(f.kind is None and f.speed == 2.0 for f in faults)

    def test_unit_slow_factor_is_benign(self):
        # A slowdown that multiplies by 1.0 slows nothing, whatever
        # slow_prob says — and can never exceed a >= 1.0 timeout.
        assert FaultScenario(slow_prob=0.3, slow_factor=1.0).benign
        assert FaultScenario(
            slow_prob=0.3, slow_factor=1.0, straggler_timeout=1.0
        ).benign

    def test_timeout_at_baseline_is_benign(self):
        scenario = FaultScenario(straggler_timeout=1.0)
        assert scenario.benign
        pop = ClientPopulation(scenario, seed=0, num_clients=8)
        assert all(f.kind is None for f in pop.leg_faults(0, range(8)))

    @pytest.mark.parametrize(
        "spec",
        [
            {},
            {"slow_prob": 0.3, "slow_factor": 1.0},
            {"straggler_timeout": 4.0},
            {"availability": 1.0, "dropout": 0.0},
        ],
    )
    def test_benign_scenarios_never_fault_a_leg(self, spec):
        # Property: benign ⇒ every sampled leg is (kind=None, speed 1.0
        # or a sub-timeout slowdown) on every round.
        scenario = FaultScenario.from_spec(spec)
        assert scenario.benign
        pop = ClientPopulation(scenario, seed=3, num_clients=16)
        for t in range(5):
            for f in pop.leg_faults(t, range(16)):
                assert f.kind is None
        assert not pop.byzantine_mask().any()

    @pytest.mark.parametrize(
        "spec",
        [
            {"availability": 0.5},
            {"dropout": 0.5},
            {"slow_prob": 1.0, "slow_factor": 3.0},
            {"straggler_timeout": 0.5},
            {"byzantine_frac": 0.5},
        ],
    )
    def test_non_benign_scenarios_observably_misbehave(self, spec):
        # Converse property: not benign ⇒ a modest sample shows a
        # fault, a slowdown, or an adversarial client.
        scenario = FaultScenario.from_spec(spec)
        assert not scenario.benign
        pop = ClientPopulation(scenario, seed=3, num_clients=16)
        misbehaved = any(
            f.kind is not None or f.speed != 1.0
            for t in range(5)
            for f in pop.leg_faults(t, range(16))
        )
        assert misbehaved or pop.byzantine_mask().any()
