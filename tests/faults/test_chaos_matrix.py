"""The chaos matrix: seeded faults and host kills across backends.

Three tiers of assertion, strongest first:

1. Engine engaged, faults disabled → the distributed fleet is bitwise
   identical to the plain serial reference, communication included.
2. Committed seeded scenarios → serial and distributed complete
   identically under quorum with carry/redispatch, communication
   included (simulated faults are decided server-side and never
   dispatched, so the measured ledger matches the analytic one).
3. A shard host SIGKILLed at a round boundary → the coordinator
   restores the shard from its replica before any leg dispatches, so
   even the kill run stays bitwise identical to serial.  The mid-leg
   kill (slow tier) can only promise semantic identity: the retrained
   legs land on the same numbers but the retransmissions show up in
   the communication bill.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.distributed.cluster import shutdown_clusters
from repro.faults.inject import KillHostAtRound, KillOwnHostOnce
from repro.fl.callbacks import ServerCallback
from repro.fl.config import FLConfig
from repro.fl.simulation import run_simulation

SCENARIOS = Path(__file__).parent / "scenarios"
HOSTS = 2

BASE = dict(
    method="fedcross",
    dataset="synth_cifar10",
    model="logreg",
    num_clients=8,
    participation=0.5,
    local_epochs=1,
    batch_size=16,
    rounds=3,
    seed=7,
    dataset_params={"samples_per_client": 20, "num_test": 40},
)

DISTRIBUTED = dict(backend="distributed", hosts=HOSTS, execution="distributed")

# (scenario file, quorum) — seed 7 injects failures every run under
# both scenarios while the paired quorum always survives them.
MATRIX = [
    ("dropouts.json", 0.25),
    ("mixed.json", 0.5),
]


def _run(callbacks=None, **overrides):
    return run_simulation(FLConfig(**{**BASE, **overrides}), callbacks=callbacks)


def _records(result, comm=True):
    return [
        (r.accuracy, r.loss, r.train_loss)
        + ((r.comm_up_params, r.comm_down_params) if comm else ())
        for r in result.history.records
    ]


def _assert_identical(a, b, comm=True):
    assert _records(a, comm=comm) == _records(b, comm=comm)
    assert sorted(a.final_state) == sorted(b.final_state)
    for key in a.final_state:
        np.testing.assert_array_equal(a.final_state[key], b.final_state[key])


def _failure_count(result):
    return sum(
        len(r.extras.get("leg_failures", ())) for r in result.history.records
    )


@pytest.fixture(scope="module", autouse=True)
def _fresh_fleet():
    # Kill tests leave respawned hosts in the pooled cluster; recycle
    # the pool after this module so later test files start clean.
    yield
    shutdown_clusters()


class TestScenarioFiles:
    @pytest.mark.parametrize("name,_quorum", MATRIX)
    def test_committed_scenarios_parse(self, name, _quorum):
        from repro.faults import FaultScenario

        spec = json.loads((SCENARIOS / name).read_text())
        scenario = FaultScenario.from_spec(str(SCENARIOS / name))
        assert scenario == FaultScenario.from_spec(spec)
        assert not scenario.benign


class TestDisabledFaults:
    def test_distributed_engaged_matches_serial_reference(self):
        reference = _run()
        engaged = _run(
            failure_policy="carry", leg_retries=1, **DISTRIBUTED
        )
        _assert_identical(reference, engaged)
        assert _failure_count(engaged) == 0


class TestSeededFaults:
    @pytest.mark.parametrize("name,quorum", MATRIX)
    def test_serial_and_distributed_complete_identically(self, name, quorum):
        faulty = dict(
            faults=str(SCENARIOS / name), failure_policy="carry", quorum=quorum
        )
        serial = _run(**faulty)
        distributed = _run(**faulty, **DISTRIBUTED)
        assert _failure_count(serial) > 0  # the seed genuinely injects
        _assert_identical(serial, distributed)

    def test_redispatch_matches_carry_across_backends(self):
        name, quorum = MATRIX[0]
        carry = _run(
            faults=str(SCENARIOS / name), failure_policy="carry", quorum=quorum
        )
        redispatch = _run(
            faults=str(SCENARIOS / name),
            failure_policy="redispatch",
            quorum=quorum,
            **DISTRIBUTED,
        )
        _assert_identical(carry, redispatch)


class TestHostKill:
    def test_round_boundary_kill_recovers_bitwise(self):
        # SIGKILL a shard host between rounds: the next storage access
        # respawns it and replays the replica before any leg dispatches,
        # so the run — faults, quorum, communication and all — is
        # bitwise identical to the serial reference.
        name, quorum = MATRIX[0]
        faulty = dict(
            faults=str(SCENARIOS / name),
            failure_policy="redispatch",
            quorum=quorum,
        )
        reference = _run(**faulty)
        killer = KillHostAtRound(host=1, at_round=1)
        killed = _run(callbacks=[killer], **faulty, **DISTRIBUTED)
        assert killer.killed
        _assert_identical(reference, killed)

    @pytest.mark.slow
    def test_mid_leg_kill_recovers_within_round(self, tmp_path):
        # A host SIGKILLs itself *inside* a training leg: the leg fails,
        # the fleet recovers, lost rows are retrained from their RNG
        # snapshots.  Accuracies and the final state match the serial
        # reference exactly; the communication bill is larger because
        # the measured ledger counts the failed dispatches.
        class InjectHook(ServerCallback):
            def __init__(self, spec):
                self.spec = spec
                self.wrapped = False

            def on_round_start(self, server, round_idx):
                if self.wrapped:
                    return
                self.wrapped = True
                original, spec = server.dispatch, self.spec

                def dispatch(active):
                    plans = original(active)
                    for plan in plans:
                        plan.loss_hook = spec
                    return plans

                server.dispatch = dispatch

        sentinel = tmp_path / "killed-once"
        reference = _run()
        killed = _run(
            callbacks=[InjectHook(KillOwnHostOnce(sentinel=str(sentinel)))],
            failure_policy="redispatch",
            leg_retries=1,
            **DISTRIBUTED,
        )
        assert sentinel.exists()  # a host really died mid-leg
        _assert_identical(reference, killed, comm=False)
        assert sum(r.comm_down_params for r in killed.history.records) > sum(
            r.comm_down_params for r in reference.history.records
        )
