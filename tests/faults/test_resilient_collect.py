"""The resilient collect engine: identity, policies, retries, drains."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from types import SimpleNamespace

import numpy as np
import pytest

from repro.faults import FaultError, QuorumError
from repro.faults.inject import UploadDropper
from repro.fl.callbacks import ServerCallback
from repro.fl.config import FLConfig
from repro.fl.execution import _leg_failure, _stream_captured
from repro.fl.simulation import run_simulation

BASE = dict(
    method="fedcross",
    dataset="synth_cifar10",
    model="logreg",
    num_clients=8,
    participation=0.5,
    local_epochs=1,
    batch_size=16,
    rounds=3,
    seed=7,
    dataset_params={"samples_per_client": 20, "num_test": 40},
)

# Seed 7 with this scenario injects failures in every round (validated
# by the chaos matrix), while quorum 0.25 always survives them.
DROPOUTS = {"availability": 0.9, "dropout": 0.2}


def _run(callbacks=None, **overrides):
    return run_simulation(FLConfig(**{**BASE, **overrides}), callbacks=callbacks)


def _records(result, comm=True):
    return [
        (r.accuracy, r.loss, r.train_loss)
        + ((r.comm_up_params, r.comm_down_params) if comm else ())
        for r in result.history.records
    ]


def _assert_identical(a, b, comm=True):
    assert _records(a, comm=comm) == _records(b, comm=comm)
    assert sorted(a.final_state) == sorted(b.final_state)
    for key in a.final_state:
        np.testing.assert_array_equal(a.final_state[key], b.final_state[key])


def _failure_count(result):
    return sum(
        len(r.extras.get("leg_failures", ())) for r in result.history.records
    )


class TestEngineIdentity:
    def test_engaged_without_faults_is_bit_identical(self):
        # Retries alone engage the engine; with nothing failing, the
        # resilient collect must reproduce the reference bit-for-bit,
        # including the analytic communication ledger.
        reference = _run()
        engaged = _run(leg_retries=2, failure_policy="carry")
        _assert_identical(reference, engaged)
        assert _failure_count(engaged) == 0

    def test_benign_scenario_is_bit_identical(self):
        reference = _run()
        benign = _run(faults={"availability": 1.0}, failure_policy="carry")
        _assert_identical(reference, benign)

    def test_carry_thread_matches_serial(self):
        faulty = dict(faults=DROPOUTS, failure_policy="carry", quorum=0.25)
        serial = _run(**faulty)
        thread = _run(execution="thread", workers=2, **faulty)
        assert _failure_count(serial) > 0
        _assert_identical(serial, thread)

    def test_redispatch_equals_carry_for_simulated_faults(self):
        # Simulated faults are not retryable, so redispatch has nothing
        # extra to do and must land exactly where carry does.
        carry = _run(faults=DROPOUTS, failure_policy="carry", quorum=0.25)
        redispatch = _run(
            faults=DROPOUTS, failure_policy="redispatch", quorum=0.25
        )
        _assert_identical(carry, redispatch)


class TestPolicies:
    def test_fail_policy_raises_fault_error(self):
        with pytest.raises(FaultError, match="dropout"):
            _run(faults={"dropout": 1.0}, rounds=1)

    def test_quorum_breach_raises(self):
        with pytest.raises(QuorumError):
            _run(
                faults={"dropout": 1.0},
                failure_policy="carry",
                quorum=1.0,
                rounds=1,
            )

    def test_failures_surface_in_round_extras(self):
        result = _run(faults=DROPOUTS, failure_policy="carry", quorum=0.25)
        summaries = [
            s
            for r in result.history.records
            for s in r.extras.get("leg_failures", ())
        ]
        assert summaries
        for summary in summaries:
            assert set(summary) == {"client", "row", "kind", "attempts"}
            assert summary["kind"] in {"unavailable", "dropout", "straggler"}

    def test_on_leg_failure_callback_fires_per_failure(self):
        seen = []

        class Recorder(ServerCallback):
            def on_leg_failure(self, server, failure):
                seen.append((failure.kind, failure.client_id))

        result = _run(
            callbacks=[Recorder()],
            faults=DROPOUTS,
            failure_policy="carry",
            quorum=0.25,
        )
        assert len(seen) == _failure_count(result) > 0


class _InstallDropper(ServerCallback):
    """Wrap the live execution backend in an UploadDropper at fit start."""

    def __init__(self, client_ids, times=1):
        self.client_ids = client_ids
        self.times = times
        self.dropper = None

    def on_round_start(self, server, round_idx):
        if self.dropper is None:
            self.dropper = UploadDropper(
                server.executor._backend, self.client_ids, self.times
            )
            server.executor._backend = self.dropper


class TestRetries:
    def test_retry_recovers_dropped_uploads_bitwise(self):
        # Every client's first upload is dropped after training; one
        # retry per round re-runs those legs from restored RNG
        # snapshots, so everything except the communication bill is
        # bitwise identical to the clean run.
        reference = _run()
        installer = _InstallDropper(range(BASE["num_clients"]), times=1)
        retried = _run(
            callbacks=[installer],
            failure_policy="carry",
            leg_retries=1,
            leg_backoff=0.001,
        )
        assert installer.dropper is not None and installer.dropper.dropped > 0
        _assert_identical(reference, retried, comm=False)
        # The retransmissions are visible in the ledger: extra downlink
        # legs, identical uplink (each leg still lands exactly once).
        ref_recs, new_recs = reference.history.records, retried.history.records
        assert sum(r.comm_down_params for r in new_recs) > sum(
            r.comm_down_params for r in ref_recs
        )
        assert [r.comm_up_params for r in new_recs] == [
            r.comm_up_params for r in ref_recs
        ]
        # Recovered legs are not failures: nothing surfaced.
        assert _failure_count(retried) == 0

    def test_exhausted_retries_fall_back_to_carry(self):
        # One leg keeps losing its upload past the retry budget; the
        # round must still complete (quorum holds on the other legs) and
        # the carried leg surfaces with the whole budget spent.
        class DropFirstLegForever(ServerCallback):
            victim = None
            dropped = 0

            def on_round_start(cb, server, round_idx):
                if getattr(server.executor._backend, "_chaos", False):
                    return
                inner = server.executor._backend
                outer = cb

                class Wrapper:
                    _chaos = True

                    def __getattr__(self, name):
                        return getattr(inner, name)

                    def run_streaming_captured(
                        self, trainer, active, plans, rows, uploads, timeout=None
                    ):
                        from repro.faults import LegFailure

                        for i, out in inner.run_streaming_captured(
                            trainer, active, plans, rows, uploads, timeout=timeout
                        ):
                            cid = int(active[i].client_id)
                            ok = not isinstance(out, LegFailure)
                            if ok and outer.victim is None:
                                outer.victim = cid
                            if ok and cid == outer.victim:
                                outer.dropped += 1
                                out = LegFailure(
                                    index=i, client_id=cid, row=int(rows[i]),
                                    kind="error", message="injected upload drop",
                                )
                            yield i, out

                server.executor._backend = Wrapper()

        dropper = DropFirstLegForever()
        result = _run(
            callbacks=[dropper],
            rounds=1,
            failure_policy="carry",
            quorum=0.5,
            leg_retries=1,
            leg_backoff=0.001,
        )
        failures = [
            s
            for r in result.history.records
            for s in r.extras.get("leg_failures", ())
        ]
        # Exactly the victim's leg was carried, after spending the whole
        # budget: the initial attempt plus the single allowed retry.
        assert [s["client"] for s in failures] == [dropper.victim]
        assert failures[0]["attempts"] == 2
        assert dropper.dropped == 2


class TestTimeouts:
    def test_stream_captured_drains_before_failing(self):
        # Drain-then-fail: at the deadline the in-flight leg is awaited
        # to completion (no zombie writes later) and only then reported
        # as a drained timeout failure.
        finished = threading.Event()

        def slow():
            time.sleep(0.5)
            finished.set()
            return "late"

        active = [SimpleNamespace(client_id=0)]
        rows = [0]
        with ThreadPoolExecutor(max_workers=1) as pool:
            future = pool.submit(slow)
            out = list(
                _stream_captured([future], {future: 0}, active, rows, 0.05)
            )
        assert finished.is_set()  # the drain waited for the worker
        assert len(out) == 1
        i, failure = out[0]
        assert i == 0
        assert failure.kind == "timeout" and failure.drained
        assert failure.retryable and not failure.simulated

    def test_unstarted_legs_are_cancelled_at_deadline(self):
        ran = []

        def slow():
            time.sleep(0.4)
            ran.append("first")
            return "a"

        def never():
            ran.append("second")  # pragma: no cover - must not run
            return "b"

        active = [SimpleNamespace(client_id=0), SimpleNamespace(client_id=1)]
        with ThreadPoolExecutor(max_workers=1) as pool:
            futures = [pool.submit(slow), pool.submit(never)]
            out = list(
                _stream_captured(
                    futures, {f: i for i, f in enumerate(futures)},
                    active, [0, 1], 0.05,
                )
            )
        assert ran == ["first"]
        assert sorted(i for i, _ in out) == [0, 1]
        assert all(f.kind == "timeout" for _, f in out)

    def test_serial_backend_ignores_leg_timeout(self):
        # Serial legs run inline; a wall-clock deadline cannot apply and
        # must not perturb the run.
        reference = _run(rounds=2)
        timed = _run(rounds=2, leg_timeout=1e-9, failure_policy="carry")
        _assert_identical(reference, timed)
        assert _failure_count(timed) == 0

    def test_leg_failure_messages(self):
        failure = _leg_failure(
            [SimpleNamespace(client_id=4)], [2], 0, "error",
            exc=ValueError("boom"),
        )
        assert failure.client_id == 4 and failure.row == 2
        assert "ValueError: boom" in failure.message
        timeout = _leg_failure([SimpleNamespace(client_id=4)], [2], 0, "timeout")
        assert "deadline" in timeout.message
