"""The resilient collect engine: identity, policies, retries, drains."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from types import SimpleNamespace

import numpy as np
import pytest

from repro.faults import FaultError, QuorumError
from repro.faults.inject import UploadDropper
from repro.fl.callbacks import ServerCallback
from repro.fl.config import FLConfig
from repro.fl.execution import _leg_failure, _stream_captured
from repro.fl.simulation import run_simulation

BASE = dict(
    method="fedcross",
    dataset="synth_cifar10",
    model="logreg",
    num_clients=8,
    participation=0.5,
    local_epochs=1,
    batch_size=16,
    rounds=3,
    seed=7,
    dataset_params={"samples_per_client": 20, "num_test": 40},
)

# Seed 7 with this scenario injects failures in every round (validated
# by the chaos matrix), while quorum 0.25 always survives them.
DROPOUTS = {"availability": 0.9, "dropout": 0.2}


def _run(callbacks=None, **overrides):
    return run_simulation(FLConfig(**{**BASE, **overrides}), callbacks=callbacks)


def _records(result, comm=True):
    return [
        (r.accuracy, r.loss, r.train_loss)
        + ((r.comm_up_params, r.comm_down_params) if comm else ())
        for r in result.history.records
    ]


def _assert_identical(a, b, comm=True):
    assert _records(a, comm=comm) == _records(b, comm=comm)
    assert sorted(a.final_state) == sorted(b.final_state)
    for key in a.final_state:
        np.testing.assert_array_equal(a.final_state[key], b.final_state[key])


def _failure_count(result):
    return sum(
        len(r.extras.get("leg_failures", ())) for r in result.history.records
    )


class TestEngineIdentity:
    def test_engaged_without_faults_is_bit_identical(self):
        # Retries alone engage the engine; with nothing failing, the
        # resilient collect must reproduce the reference bit-for-bit,
        # including the analytic communication ledger.
        reference = _run()
        engaged = _run(leg_retries=2, failure_policy="carry")
        _assert_identical(reference, engaged)
        assert _failure_count(engaged) == 0

    def test_benign_scenario_is_bit_identical(self):
        reference = _run()
        benign = _run(faults={"availability": 1.0}, failure_policy="carry")
        _assert_identical(reference, benign)

    def test_carry_thread_matches_serial(self):
        faulty = dict(faults=DROPOUTS, failure_policy="carry", quorum=0.25)
        serial = _run(**faulty)
        thread = _run(execution="thread", workers=2, **faulty)
        assert _failure_count(serial) > 0
        _assert_identical(serial, thread)

    def test_redispatch_equals_carry_for_simulated_faults(self):
        # Simulated faults are not retryable, so redispatch has nothing
        # extra to do and must land exactly where carry does.
        carry = _run(faults=DROPOUTS, failure_policy="carry", quorum=0.25)
        redispatch = _run(
            faults=DROPOUTS, failure_policy="redispatch", quorum=0.25
        )
        _assert_identical(carry, redispatch)


class TestPolicies:
    def test_fail_policy_raises_fault_error(self):
        with pytest.raises(FaultError, match="dropout"):
            _run(faults={"dropout": 1.0}, rounds=1)

    def test_quorum_breach_raises(self):
        with pytest.raises(QuorumError):
            _run(
                faults={"dropout": 1.0},
                failure_policy="carry",
                quorum=1.0,
                rounds=1,
            )

    def test_failures_surface_in_round_extras(self):
        result = _run(faults=DROPOUTS, failure_policy="carry", quorum=0.25)
        summaries = [
            s
            for r in result.history.records
            for s in r.extras.get("leg_failures", ())
        ]
        assert summaries
        for summary in summaries:
            assert set(summary) == {"client", "row", "kind", "attempts"}
            assert summary["kind"] in {"unavailable", "dropout", "straggler"}

    def test_on_leg_failure_callback_fires_per_failure(self):
        seen = []

        class Recorder(ServerCallback):
            def on_leg_failure(self, server, failure):
                seen.append((failure.kind, failure.client_id))

        result = _run(
            callbacks=[Recorder()],
            faults=DROPOUTS,
            failure_policy="carry",
            quorum=0.25,
        )
        assert len(seen) == _failure_count(result) > 0


class _InstallDropper(ServerCallback):
    """Wrap the live execution backend in an UploadDropper at fit start."""

    def __init__(self, client_ids, times=1):
        self.client_ids = client_ids
        self.times = times
        self.dropper = None

    def on_round_start(self, server, round_idx):
        if self.dropper is None:
            self.dropper = UploadDropper(
                server.executor._backend, self.client_ids, self.times
            )
            server.executor._backend = self.dropper


class TestRetries:
    def test_retry_recovers_dropped_uploads_bitwise(self):
        # Every client's first upload is dropped after training; one
        # retry per round re-runs those legs from restored RNG
        # snapshots, so everything except the communication bill is
        # bitwise identical to the clean run.
        reference = _run()
        installer = _InstallDropper(range(BASE["num_clients"]), times=1)
        retried = _run(
            callbacks=[installer],
            failure_policy="carry",
            leg_retries=1,
            leg_backoff=0.001,
        )
        assert installer.dropper is not None and installer.dropper.dropped > 0
        _assert_identical(reference, retried, comm=False)
        # The retransmissions are visible in the ledger: extra downlink
        # legs, identical uplink (each leg still lands exactly once).
        ref_recs, new_recs = reference.history.records, retried.history.records
        assert sum(r.comm_down_params for r in new_recs) > sum(
            r.comm_down_params for r in ref_recs
        )
        assert [r.comm_up_params for r in new_recs] == [
            r.comm_up_params for r in ref_recs
        ]
        # Recovered legs are not failures: nothing surfaced.
        assert _failure_count(retried) == 0

    def test_exhausted_retries_fall_back_to_carry(self):
        # One leg keeps losing its upload past the retry budget; the
        # round must still complete (quorum holds on the other legs) and
        # the carried leg surfaces with the whole budget spent.
        class DropFirstLegForever(ServerCallback):
            victim = None
            dropped = 0

            def on_round_start(cb, server, round_idx):
                if getattr(server.executor._backend, "_chaos", False):
                    return
                inner = server.executor._backend
                outer = cb

                class Wrapper:
                    _chaos = True

                    def __getattr__(self, name):
                        return getattr(inner, name)

                    def run_streaming_captured(
                        self, trainer, active, plans, rows, uploads, timeout=None
                    ):
                        from repro.faults import LegFailure

                        for i, out in inner.run_streaming_captured(
                            trainer, active, plans, rows, uploads, timeout=timeout
                        ):
                            cid = int(active[i].client_id)
                            ok = not isinstance(out, LegFailure)
                            if ok and outer.victim is None:
                                outer.victim = cid
                            if ok and cid == outer.victim:
                                outer.dropped += 1
                                out = LegFailure(
                                    index=i, client_id=cid, row=int(rows[i]),
                                    kind="error", message="injected upload drop",
                                )
                            yield i, out

                server.executor._backend = Wrapper()

        dropper = DropFirstLegForever()
        result = _run(
            callbacks=[dropper],
            rounds=1,
            failure_policy="carry",
            quorum=0.5,
            leg_retries=1,
            leg_backoff=0.001,
        )
        failures = [
            s
            for r in result.history.records
            for s in r.extras.get("leg_failures", ())
        ]
        # Exactly the victim's leg was carried, after spending the whole
        # budget: the initial attempt plus the single allowed retry.
        assert [s["client"] for s in failures] == [dropper.victim]
        assert failures[0]["attempts"] == 2
        assert dropper.dropped == 2


class TestTimeouts:
    def test_stream_captured_drains_before_failing(self):
        # Drain-then-fail: at the deadline the in-flight leg is awaited
        # to completion (no zombie writes later) and only then reported
        # as a drained timeout failure.
        finished = threading.Event()

        def slow():
            time.sleep(0.5)
            finished.set()
            return "late"

        active = [SimpleNamespace(client_id=0)]
        rows = [0]
        with ThreadPoolExecutor(max_workers=1) as pool:
            future = pool.submit(slow)
            out = list(
                _stream_captured([future], {future: 0}, active, rows, 0.05)
            )
        assert finished.is_set()  # the drain waited for the worker
        assert len(out) == 1
        i, failure = out[0]
        assert i == 0
        assert failure.kind == "timeout" and failure.drained
        assert failure.retryable and not failure.simulated

    def test_unstarted_legs_are_cancelled_at_deadline(self):
        ran = []

        def slow():
            time.sleep(0.4)
            ran.append("first")
            return "a"

        def never():
            ran.append("second")  # pragma: no cover - must not run
            return "b"

        active = [SimpleNamespace(client_id=0), SimpleNamespace(client_id=1)]
        with ThreadPoolExecutor(max_workers=1) as pool:
            futures = [pool.submit(slow), pool.submit(never)]
            out = list(
                _stream_captured(
                    futures, {f: i for i, f in enumerate(futures)},
                    active, [0, 1], 0.05,
                )
            )
        assert ran == ["first"]
        assert sorted(i for i, _ in out) == [0, 1]
        assert all(f.kind == "timeout" for _, f in out)

    def test_serial_backend_ignores_leg_timeout(self):
        # Serial legs run inline; a wall-clock deadline cannot apply and
        # must not perturb the run.
        reference = _run(rounds=2)
        timed = _run(rounds=2, leg_timeout=1e-9, failure_policy="carry")
        _assert_identical(reference, timed)
        assert _failure_count(timed) == 0

    def test_leg_failure_messages(self):
        failure = _leg_failure(
            [SimpleNamespace(client_id=4)], [2], 0, "error",
            exc=ValueError("boom"),
        )
        assert failure.client_id == 4 and failure.row == 2
        assert "ValueError: boom" in failure.message
        timeout = _leg_failure([SimpleNamespace(client_id=4)], [2], 0, "timeout")
        assert "deadline" in timeout.message


class TestEngineGuards:
    def test_cohort_plan_length_mismatch_raises(self):
        # Regression (ISSUE 10): the engine used to truncate to
        # min(len(active), len(plans)), silently dropping legs and
        # skewing quorum accounting.  A skew must fail loudly, naming
        # both lengths.
        from repro.faults.engine import resilient_collect
        from repro.faults.policy import RoundPolicy

        server = SimpleNamespace(
            fault_policy=RoundPolicy.from_config(
                FLConfig(**{**BASE, "leg_retries": 1})
            ),
            fault_model=None,
            round_idx=0,
        )
        active = [SimpleNamespace(client_id=0), SimpleNamespace(client_id=1)]
        plans = [SimpleNamespace(state={})]
        with pytest.raises(
            ValueError, match="2 active clients but 1 dispatch plans"
        ):
            resilient_collect(server, active, plans, [0, 1], None)


class TestInjectableSleep:
    def test_backoff_rides_injected_fault_sleep(self):
        # leg_backoff=7.5 would stall the suite for many real seconds;
        # through server.fault_sleep the delays become bookkeeping
        # entries and the retried run stays bitwise identical to the
        # clean one (modulo the retransmission downlink).
        sleeps = []

        class Install(ServerCallback):
            def __init__(self):
                self.dropper_install = _InstallDropper(
                    range(BASE["num_clients"]), times=1
                )

            def on_round_start(self, server, round_idx):
                server.fault_sleep = sleeps.append
                self.dropper_install.on_round_start(server, round_idx)

        installer = Install()
        started = time.monotonic()
        retried = _run(
            callbacks=[installer],
            failure_policy="carry",
            leg_retries=1,
            leg_backoff=7.5,
        )
        elapsed = time.monotonic() - started
        assert installer.dropper_install.dropper.dropped > 0
        assert sleeps and all(s == 7.5 for s in sleeps)
        assert elapsed < 5.0  # the 7.5 s delays never hit the wall clock
        _assert_identical(_run(), retried, comm=False)
        assert _failure_count(retried) == 0


class TestStragglerRngRestore:
    def test_straggler_carry_restores_client_rng(self):
        # A timed-out straggler is pre-dropped (never trained); its
        # carry must leave the client RNG exactly at its round-start
        # state, while landed clients' RNGs advance.
        import copy

        class RngWatch(ServerCallback):
            def __init__(self):
                self.checked_carried = 0
                self.checked_landed = 0

            def on_round_start(self, server, round_idx):
                self.before = {
                    c.client_id: copy.deepcopy(c.rng.bit_generator.state)
                    for c in server.clients
                }
                self.cohort = None

            def on_round_end(self, server, record):
                carried = {
                    s["client"]
                    for s in record.extras.get("leg_failures", ())
                }
                by_id = {c.client_id: c for c in server.clients}
                for cid in carried:
                    assert (
                        by_id[cid].rng.bit_generator.state == self.before[cid]
                    ), f"straggler client {cid} RNG advanced"
                    self.checked_carried += 1
                advanced = [
                    cid
                    for cid, c in by_id.items()
                    if c.rng.bit_generator.state != self.before[cid]
                ]
                # Somebody trained this round (quorum held), and no
                # carried straggler is among the advanced.
                assert advanced
                assert not (set(advanced) & carried)
                self.checked_landed += len(advanced)

        watch = RngWatch()
        result = _run(
            callbacks=[watch],
            faults={
                "slow_prob": 0.5,
                "slow_factor": 4.0,
                "straggler_timeout": 2.0,
            },
            failure_policy="carry",
            quorum=0.25,
        )
        kinds = {
            s["kind"]
            for r in result.history.records
            for s in r.extras.get("leg_failures", ())
        }
        assert kinds == {"straggler"}
        assert watch.checked_carried > 0
