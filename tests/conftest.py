"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.fl.config import FLConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_linear_dataset(rng) -> ArrayDataset:
    """A linearly separable 3-class dataset (models should ace it)."""
    n, d, k = 90, 6, 3
    centers = rng.standard_normal((k, d)) * 4.0
    labels = np.repeat(np.arange(k), n // k)
    features = centers[labels] + rng.standard_normal((n, d)) * 0.3
    return ArrayDataset(features.astype(np.float32), labels)


@pytest.fixture
def tiny_config() -> FLConfig:
    """Smallest sensible FL config for fast end-to-end tests."""
    return FLConfig(
        method="fedavg",
        dataset="synth_cifar10",
        model="mlp",
        heterogeneity=0.5,
        num_clients=6,
        participation=0.5,
        rounds=3,
        local_epochs=1,
        batch_size=16,
        eval_every=1,
        seed=7,
        dataset_params={"samples_per_client": 30, "num_test": 120},
    )
