"""End-to-end Byzantine robustness: identity, redraws, screening, accuracy."""

import numpy as np
import pytest

from repro.distributed.cluster import shutdown_clusters
from repro.faults.inject import UploadDropper
from repro.faults.model import ClientPopulation
from repro.fl.callbacks import ServerCallback
from repro.fl.config import FLConfig
from repro.fl.simulation import run_simulation

BASE = dict(
    method="fedcross",
    dataset="synth_cifar10",
    model="logreg",
    num_clients=8,
    participation=0.5,
    local_epochs=1,
    batch_size=16,
    rounds=3,
    seed=7,
    dataset_params={"samples_per_client": 20, "num_test": 40},
)

SIGNFLIP = {"byzantine_frac": 0.25, "attack": "sign_flip"}
# Seed 7 over 8 clients draws exactly these adversaries (static mask).
BYZANTINE_CLIENTS = [3, 4, 6]


@pytest.fixture(scope="module", autouse=True)
def _fresh_fleet():
    yield
    shutdown_clusters()


def _run(callbacks=None, **overrides):
    return run_simulation(FLConfig(**{**BASE, **overrides}), callbacks=callbacks)


def _records(result, comm=True):
    return [
        (r.accuracy, r.loss, r.train_loss)
        + ((r.comm_up_params, r.comm_down_params) if comm else ())
        for r in result.history.records
    ]


def _assert_identical(a, b, comm=True):
    assert _records(a, comm=comm) == _records(b, comm=comm)
    assert sorted(a.final_state) == sorted(b.final_state)
    for key in a.final_state:
        np.testing.assert_array_equal(a.final_state[key], b.final_state[key])


def _suspects(result):
    return [
        s
        for r in result.history.records
        for s in r.extras.get("suspect_uploads", ())
    ]


class _InstallDropper(ServerCallback):
    """Wrap the live execution backend in an UploadDropper at fit start."""

    def __init__(self, client_ids, times=1):
        self.client_ids = client_ids
        self.times = times
        self.dropper = None

    def on_round_start(self, server, round_idx):
        if self.dropper is None:
            self.dropper = UploadDropper(
                server.executor._backend, self.client_ids, self.times
            )
            server.executor._backend = self.dropper


class TestBenignIdentity:
    def test_operator_layer_engaged_is_bit_identical(self):
        # aggregator resolved through the registry, screening active,
        # fault engine engaged — with no adversaries the whole robust
        # layer must reproduce the reference bit for bit, analytic
        # communication ledger included.
        reference = _run()
        engaged = _run(
            aggregator="mean",
            screen="flag",
            faults={"byzantine_frac": 0.0},
            failure_policy="carry",
        )
        _assert_identical(reference, engaged)
        assert _suspects(engaged) == []

    def test_zero_byzantine_fraction_is_benign_for_every_operator(self):
        # Operator params reach the registry untouched; a benign run
        # through each robust operator completes and evaluates.
        for name in ("trimmed_mean", "coordinate_median", "norm_clip"):
            result = _run(aggregator=name, rounds=1)
            assert len(result.history.records) == 1


class TestSeededAttackDeterminism:
    def test_sign_flip_identical_across_backends(self):
        attacked = dict(faults=SIGNFLIP, failure_policy="carry")
        serial = _run(**attacked)
        reference = _run()
        # The attack engaged and changed the run.
        assert _records(serial) != _records(reference)
        thread = _run(execution="thread", workers=2, **attacked)
        _assert_identical(serial, thread)
        distributed = _run(
            backend="distributed", hosts=2, execution="distributed", **attacked
        )
        _assert_identical(serial, distributed)

    def test_gauss_noise_identical_serial_vs_thread(self):
        attacked = dict(
            faults={"byzantine_frac": 0.25, "attack": "gauss_noise"},
            failure_policy="carry",
        )
        serial = _run(**attacked)
        thread = _run(execution="thread", workers=2, **attacked)
        _assert_identical(serial, thread)

    def test_retried_byzantine_leg_lands_identical_bytes(self):
        # Every client's first upload is dropped after training; the
        # retry restores RNG snapshots AND re-derives each attack from
        # the seeded stream, so everything but the communication bill
        # matches the undropped attacked run.
        attacked = dict(faults=SIGNFLIP, failure_policy="carry")
        reference = _run(**attacked)
        installer = _InstallDropper(range(BASE["num_clients"]), times=1)
        retried = _run(
            callbacks=[installer],
            leg_retries=1,
            leg_backoff=0.001,
            **attacked,
        )
        assert installer.dropper is not None and installer.dropper.dropped > 0
        _assert_identical(reference, retried, comm=False)

    def test_redispatched_byzantine_leg_redraws_its_attack(self):
        # A Byzantine client's upload is dropped with no retry budget;
        # the redispatch reissues the leg, which must *redraw* its
        # attack from the seeded stream (not inherit or skip it) and
        # land bit-identical to the clean attacked run.
        attacked = dict(
            faults=SIGNFLIP,
            failure_policy="redispatch",
            participation=1.0,
            rounds=2,
        )
        reference = _run(**attacked)
        installer = _InstallDropper(BYZANTINE_CLIENTS, times=1)
        redispatched = _run(callbacks=[installer], **attacked)
        assert installer.dropper is not None
        assert installer.dropper.dropped == len(BYZANTINE_CLIENTS)
        _assert_identical(reference, redispatched, comm=False)
        # The reissues cost extra downlink, never extra uplink.
        ref, red = reference.history.records, redispatched.history.records
        assert sum(r.comm_down_params for r in red) > sum(
            r.comm_down_params for r in ref
        )
        assert [r.comm_up_params for r in red] == [
            r.comm_up_params for r in ref
        ]

    def test_mixed_churn_and_poison_scenario_file(self):
        # The committed scenario combines availability churn, dropouts
        # and gauss-noise adversaries; redispatch + quorum must survive
        # it identically on serial and thread backends, with both kinds
        # of adversity visible in the history.
        from pathlib import Path

        path = str(
            Path(__file__).parent.parent
            / "faults" / "scenarios" / "byzantine_mixed.json"
        )
        mixed = dict(faults=path, failure_policy="redispatch", quorum=0.25)
        serial = _run(**mixed)
        thread = _run(execution="thread", workers=2, **mixed)
        _assert_identical(serial, thread)
        failures = [
            s
            for r in serial.history.records
            for s in r.extras.get("leg_failures", ())
        ]
        assert failures  # seed 7 churns every run under this scenario
        assert _records(serial) != _records(_run())

    def test_byzantine_mask_is_static_and_seeded(self):
        pop = ClientPopulation(SIGNFLIP, seed=BASE["seed"], num_clients=8)
        np.testing.assert_array_equal(
            np.flatnonzero(pop.byzantine_mask()), BYZANTINE_CLIENTS
        )

    def test_quorum_counts_attacked_legs_as_fresh(self):
        # Attacked legs land uploads, so a full quorum holds even when
        # every Byzantine client participates.
        result = _run(faults=SIGNFLIP, failure_policy="carry", quorum=1.0)
        assert len(result.history.records) == BASE["rounds"]


class TestScreening:
    # Full participation keeps the cohort's Byzantine fraction at the
    # scenario's 3/8 — a half-sampled cohort can be 50% poisoned, which
    # no median-based screen can be expected to untangle.
    FULL = dict(faults=SIGNFLIP, failure_policy="carry", participation=1.0)

    def test_suspects_surface_in_extras_and_callback(self):
        seen = []

        class Recorder(ServerCallback):
            def on_suspect_upload(self, server, record):
                seen.append(record)

        result = _run(callbacks=[Recorder()], screen="flag", **self.FULL)
        suspects = _suspects(result)
        assert suspects  # sign-flipped uploads are far outside the cluster
        for summary in suspects:
            assert set(summary) == {
                "row", "client", "score", "threshold", "action",
            }
            assert summary["action"] == "flag"
            assert summary["score"] > summary["threshold"]
        assert len(seen) == len(suspects)
        # Every adversary is caught; the conservative threshold may add
        # the odd borderline honest row but never a majority of flags.
        flagged_clients = [s["client"] for s in suspects]
        assert set(BYZANTINE_CLIENTS) <= set(flagged_clients)
        honest = [c for c in flagged_clients if c not in BYZANTINE_CLIENTS]
        assert len(honest) < len(flagged_clients) - len(honest)

    def test_flag_mode_only_observes(self):
        # Flag-mode screening is a pure observer: the numbers match the
        # unscreened attacked run exactly.
        plain = _run(**self.FULL)
        flagged = _run(screen="flag", **self.FULL)
        _assert_identical(plain, flagged)

    def test_carry_mode_quarantines_suspect_rows(self):
        flagged = _run(screen="flag", **self.FULL)
        carried = _run(screen="carry", **self.FULL)
        suspects = _suspects(carried)
        assert suspects and all(s["action"] == "carry" for s in suspects)
        # Quarantine changes the aggregate: the poisoned rows were
        # replaced by their dispatched middleware states.
        assert _records(carried, comm=False) != _records(flagged, comm=False)


class TestRobustAccuracy:
    """The ISSUE acceptance bar, asserted on the seed CNN.

    Seeded 20% Byzantine sign-flip over K=10 (exactly two adversaries
    at seed 26), 5 rounds: the plain mean must collapse while the
    rank-based operators track the attack-free accuracy.
    """

    CNN = dict(
        method="fedcross",
        dataset="synth_cifar10",
        model="cnn_s",
        num_clients=10,
        participation=1.0,
        local_epochs=3,
        batch_size=16,
        rounds=5,
        lr=0.1,
        seed=26,
        dataset_params={
            "samples_per_client": 80,
            "num_test": 200,
            "noise": 0.3,
            "label_noise": 0.0,
        },
    )
    ATTACK = dict(
        faults={"byzantine_frac": 0.2, "attack": "sign_flip"},
        failure_policy="carry",
    )

    def _accuracy(self, **overrides):
        result = run_simulation(FLConfig(**{**self.CNN, **overrides}))
        return result.history.records[-1].accuracy

    def test_mean_degrades_while_robust_operators_hold(self):
        clean = self._accuracy()
        mean = self._accuracy(**self.ATTACK)
        trimmed = self._accuracy(aggregator="trimmed_mean", **self.ATTACK)
        median = self._accuracy(aggregator="coordinate_median", **self.ATTACK)
        assert clean - mean >= 0.10
        assert trimmed >= clean - 0.02
        assert median >= clean - 0.02
