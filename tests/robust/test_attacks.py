"""Seeded upload attacks: specs, transforms, determinism."""

import numpy as np
import pytest

from repro.core.pool import PoolBuffer
from repro.robust.attacks import (
    ATTACK_KINDS,
    DEFAULT_ATTACK_SCALES,
    AttackSpec,
    apply_upload_attack,
    attacked_row,
)
from repro.utils.layout import StateLayout


def head_state(rng):
    """A model-shaped state with an unambiguous classifier head."""
    return {
        "hidden.weight": rng.standard_normal((4, 3)).astype(np.float32),
        "hidden.bias": rng.standard_normal(4).astype(np.float32),
        "out.weight": rng.standard_normal((3, 4)).astype(np.float32),
        "out.bias": rng.standard_normal(3).astype(np.float32),
        "steps": np.array([11], dtype=np.int64),
    }


def spec(kind, scale=None, seed_key=(1, 2, 3, 4)):
    return AttackSpec(
        kind=kind,
        scale=DEFAULT_ATTACK_SCALES[kind] if scale is None else scale,
        seed_key=seed_key,
    )


class TestAttackSpec:
    def test_unknown_kind_lists_valid_kinds(self):
        with pytest.raises(ValueError, match="sign_flip"):
            AttackSpec(kind="krum", scale=1.0, seed_key=(0,))

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError, match="scale"):
            AttackSpec(kind="sign_flip", scale=0.0, seed_key=(0,))

    def test_wire_roundtrip(self):
        original = spec("gauss_noise", scale=2.5)
        wire = original.to_wire()
        assert wire == {
            "kind": "gauss_noise", "scale": 2.5, "seed_key": [1, 2, 3, 4],
        }
        assert AttackSpec.from_wire(wire) == original

    def test_every_kind_has_a_default_scale(self):
        assert set(DEFAULT_ATTACK_SCALES) == set(ATTACK_KINDS)
        assert all(s > 0 for s in DEFAULT_ATTACK_SCALES.values())


class TestAttackedRow:
    def _rows(self, rng):
        layout = StateLayout.from_state(head_state(rng))
        dispatched = layout.flatten(head_state(rng), dtype=np.float32)
        trained = layout.flatten(head_state(rng), dtype=np.float32)
        return layout, dispatched, trained

    def test_sign_flip_formula(self, rng):
        layout, d, t = self._rows(rng)
        out = attacked_row(spec("sign_flip", scale=4.0), layout, d, t)
        expected = (
            d.astype(np.float64) - 4.0 * (t.astype(np.float64) - d)
        ).astype(np.float32)
        cols = ~layout.integer_mask()
        np.testing.assert_array_equal(out[cols], expected[cols])

    def test_scale_formula(self, rng):
        layout, d, t = self._rows(rng)
        out = attacked_row(spec("scale", scale=10.0), layout, d, t)
        expected = (
            d.astype(np.float64) + 10.0 * (t.astype(np.float64) - d)
        ).astype(np.float32)
        cols = ~layout.integer_mask()
        np.testing.assert_array_equal(out[cols], expected[cols])

    def test_gauss_noise_is_a_pure_function_of_the_seed_key(self, rng):
        layout, d, t = self._rows(rng)
        a = attacked_row(spec("gauss_noise"), layout, d, t)
        b = attacked_row(spec("gauss_noise"), layout, d, t)
        np.testing.assert_array_equal(a, b)
        other = attacked_row(
            spec("gauss_noise", seed_key=(9, 9, 9, 9)), layout, d, t
        )
        assert not np.array_equal(a, other)

    def test_gauss_noise_matches_seeded_generator(self, rng):
        layout, d, t = self._rows(rng)
        out = attacked_row(spec("gauss_noise", scale=1.5), layout, d, t)
        noise = np.random.default_rng([1, 2, 3, 4]).standard_normal(t.shape[0])
        expected = (t.astype(np.float64) + 1.5 * noise).astype(np.float32)
        cols = ~layout.integer_mask()
        np.testing.assert_array_equal(out[cols], expected[cols])

    def test_label_flip_reverses_the_classifier_head(self, rng):
        layout, d, t = self._rows(rng)
        out = attacked_row(spec("label_flip"), layout, d, t)
        state = layout.unflatten(out)
        trained = layout.unflatten(t)
        np.testing.assert_array_equal(
            state["out.weight"], trained["out.weight"][::-1]
        )
        np.testing.assert_array_equal(
            state["out.bias"], trained["out.bias"][::-1]
        )
        # Hidden layers are the honest trained values, untouched.
        np.testing.assert_array_equal(
            state["hidden.weight"], trained["hidden.weight"]
        )
        np.testing.assert_array_equal(
            state["hidden.bias"], trained["hidden.bias"]
        )

    def test_label_flip_requires_a_head(self, rng):
        state = {"only.bias": rng.standard_normal(3).astype(np.float32)}
        layout = StateLayout.from_state(state)
        row = layout.flatten(state, dtype=np.float32)
        with pytest.raises(ValueError, match="classifier head"):
            attacked_row(spec("label_flip"), layout, row, row)

    @pytest.mark.parametrize("kind", ATTACK_KINDS)
    def test_integer_columns_restored_from_trained(self, rng, kind):
        layout, d, t = self._rows(rng)
        int_mask = layout.integer_mask()
        t[int_mask] = 23.0
        d[int_mask] = 7.0
        out = attacked_row(spec(kind), layout, d, t)
        np.testing.assert_array_equal(out[int_mask], t[int_mask])

    def test_inputs_never_mutated(self, rng):
        layout, d, t = self._rows(rng)
        d0, t0 = d.copy(), t.copy()
        for kind in ATTACK_KINDS:
            attacked_row(spec(kind), layout, d, t)
        np.testing.assert_array_equal(d, d0)
        np.testing.assert_array_equal(t, t0)


class TestApplyUploadAttack:
    def test_poisons_exactly_the_target_row(self, rng):
        states = [head_state(rng) for _ in range(3)]
        uploads = PoolBuffer.from_states(states)
        dispatched = head_state(rng)
        before = uploads.storage.row_block(0, 3).copy()
        apply_upload_attack(spec("sign_flip"), uploads, 1, dispatched)
        after = uploads.storage.row_block(0, 3)
        layout = uploads.layout
        expected = attacked_row(
            spec("sign_flip"),
            layout,
            layout.flatten(dispatched, dtype=np.float32),
            before[1],
        )
        np.testing.assert_array_equal(after[0], before[0])
        np.testing.assert_array_equal(after[2], before[2])
        np.testing.assert_array_equal(after[1], expected)
        assert not np.array_equal(after[1], before[1])
