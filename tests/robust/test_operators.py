"""Aggregation operators: registry, combines, trust-region blends."""

import numpy as np
import pytest

from repro.core.pool import PoolBuffer
from repro.robust.operators import (
    CoordinateMedianOperator,
    MeanOperator,
    NormClipOperator,
    TrimmedMeanOperator,
    available_operators,
    build_operator,
    resolve_operator,
)
from repro.utils.layout import StateLayout


def make_state(rng, with_int=False):
    state = {
        "b.weight": rng.standard_normal((3, 2)).astype(np.float32),
        "a.bias": rng.standard_normal(4).astype(np.float32),
        "c.scale": rng.standard_normal(()).astype(np.float32),
    }
    if with_int:
        state["c.steps"] = np.array([7], dtype=np.int64)
    return state


def make_pool(rng, k=4, with_int=False):
    return [make_state(rng, with_int=with_int) for _ in range(k)]


def crafted_buf(rng, k=6, outliers=(), magnitude=60.0, with_int=False,
                backend="dense"):
    """A tight honest cluster with optional far-out poisoned rows.

    Row ``i`` is the base state shifted by ``0.01 * (i + 1)`` (plus
    ``magnitude`` for outlier rows), so honest deviation norms sit well
    inside the trust region while outliers are unambiguously beyond it.
    """
    base = make_state(rng, with_int=with_int)
    states = []
    for i in range(k):
        shift = np.float32(0.01 * (i + 1) + (magnitude if i in outliers else 0.0))
        state = {
            key: val if val.dtype == np.int64 else val + shift
            for key, val in base.items()
        }
        if with_int:
            state["c.steps"] = np.array([i + 1], dtype=np.int64)
        states.append(state)
    return PoolBuffer.from_states(states, dtype=np.float32, backend=backend)


def rows64(buf):
    return buf.storage.row_block(0, len(buf)).astype(np.float64)


def reduce_for(op, vals):
    """The operator's column statistic, recomputed with plain numpy."""
    if isinstance(op, TrimmedMeanOperator):
        k = vals.shape[0]
        lo = min(int(op.trim * k), (k - 1) // 2)
        return np.sort(vals, axis=0)[lo : k - lo].mean(axis=0)
    return np.median(vals, axis=0)


def trust_region_for(op, buf):
    """``(center, flagged)`` recomputed from first principles."""
    vals = rows64(buf)
    center = reduce_for(op, vals)
    int_mask = buf.layout.integer_mask()
    cols = ~int_mask if int_mask.any() else slice(None)
    diff = vals[:, cols] - center[cols]
    norms = np.sqrt((diff * diff).sum(axis=1))
    med = np.median(norms)
    mad = np.median(np.abs(norms - med))
    tau = max(med + op.clip_factor * mad, 2.0 * med)
    return center, norms > tau


class TestRegistry:
    def test_builtin_operators_registered(self):
        assert available_operators() == [
            "coordinate_median", "mean", "norm_clip", "trimmed_mean",
        ]

    def test_resolve_unknown_lists_options(self):
        with pytest.raises(ValueError, match="trimmed_mean"):
            resolve_operator("krum")

    def test_build_operator_applies_params(self):
        op = build_operator("trimmed_mean", {"trim": 0.1, "clip_factor": 5.0})
        assert op.trim == 0.1 and op.clip_factor == 5.0

    def test_unknown_param_rejected_listing_valid(self):
        with pytest.raises(ValueError, match=r"bogus.*clip_factor"):
            build_operator("coordinate_median", {"bogus": 1})

    def test_trim_range_validated(self):
        with pytest.raises(ValueError, match="trim"):
            build_operator("trimmed_mean", {"trim": 0.5})

    def test_clip_factor_validated(self):
        with pytest.raises(ValueError, match="clip_factor"):
            build_operator("norm_clip", {"clip_factor": 0.0})

    def test_only_mean_is_linear(self):
        assert MeanOperator().linear
        for name in ("trimmed_mean", "coordinate_median", "norm_clip"):
            assert not build_operator(name).linear


class TestMeanOperator:
    @pytest.mark.parametrize("precise", [True, False])
    def test_combine_is_mean_state(self, rng, precise):
        buf = PoolBuffer.from_states(make_pool(rng, k=5, with_int=True))
        ours = MeanOperator().combine(buf, precise=precise)
        reference = buf.mean_state(precise=precise)
        assert sorted(ours) == sorted(reference)
        for key in ours:
            np.testing.assert_array_equal(ours[key], reference[key])

    def test_weighted_combine_matches(self, rng):
        buf = PoolBuffer.from_states(make_pool(rng, k=4))
        weights = [1.0, 2.0, 3.0, 4.0]
        ours = MeanOperator().combine(buf, weights)
        reference = buf.mean_state(weights)
        for key in ours:
            np.testing.assert_array_equal(ours[key], reference[key])

    @pytest.mark.parametrize(
        "co", [[1, 2, 3, 0], [[1, 2], [2, 3], [3, 0], [0, 1]]]
    )
    def test_cross_blend_is_cross_aggregate(self, rng, co):
        buf = PoolBuffer.from_states(make_pool(rng, k=4, with_int=True))
        ours = MeanOperator().cross_blend(buf, co, 0.9)
        reference = buf.cross_aggregate(co, 0.9)
        np.testing.assert_array_equal(
            ours.storage.row_block(0, 4), reference.storage.row_block(0, 4)
        )


class TestRobustCombine:
    @pytest.mark.parametrize(
        "op", [TrimmedMeanOperator(), CoordinateMedianOperator()]
    )
    def test_combine_matches_numpy_reference(self, rng, op):
        buf = crafted_buf(rng, k=6, outliers=(2,), with_int=True)
        expected = reduce_for(op, rows64(buf)).astype(np.float32)
        state = op.combine(buf)
        flat = buf.layout.flatten(state, dtype=np.float32)
        cols = ~buf.layout.integer_mask()
        np.testing.assert_array_equal(flat[cols], expected[cols])

    def test_combine_carries_ints_from_row_zero(self, rng):
        buf = crafted_buf(rng, k=5, with_int=True)
        for name in ("trimmed_mean", "coordinate_median", "norm_clip"):
            state = build_operator(name).combine(buf)
            np.testing.assert_array_equal(state["c.steps"], [1])

    def test_rank_combines_ignore_weights(self, rng):
        buf = crafted_buf(rng, k=5)
        op = CoordinateMedianOperator()
        unweighted = op.combine(buf)
        weighted = op.combine(buf, [5.0, 1.0, 1.0, 1.0, 1.0])
        for key in unweighted:
            np.testing.assert_array_equal(unweighted[key], weighted[key])

    def test_outlier_row_cannot_move_the_median(self, rng):
        seed = rng.integers(1 << 31)
        clean = crafted_buf(np.random.default_rng(seed), k=5)
        poisoned = crafted_buf(
            np.random.default_rng(seed), k=5, outliers=(4,), magnitude=1e4
        )
        op = CoordinateMedianOperator()
        a, b = op.combine(clean), op.combine(poisoned)
        for key in a:
            np.testing.assert_allclose(a[key], b[key], atol=0.05)

    def test_norm_clip_matches_reference_formula(self, rng):
        buf = crafted_buf(rng, k=6, outliers=(1,))
        op = NormClipOperator()
        weights = np.array([1.0, 1.0, 2.0, 2.0, 3.0, 3.0])
        vals = rows64(buf)
        center = np.median(vals, axis=0)
        diff = vals - center
        norms = np.sqrt((diff * diff).sum(axis=1))
        med = np.median(norms)
        tau = max(med + 3.0 * np.median(np.abs(norms - med)), 2.0 * med)
        scales = np.minimum(1.0, tau / norms)
        w = weights / weights.sum()
        expected = center + ((w * scales)[:, None] * diff).sum(axis=0)
        flat = buf.layout.flatten(op.combine(buf, weights), dtype=np.float32)
        np.testing.assert_allclose(flat, expected.astype(np.float32), rtol=1e-6)

    @pytest.mark.parametrize("backend", ["memmap", "sharded"])
    def test_backends_bitwise_identical(self, rng, backend):
        seed = rng.integers(1 << 31)
        dense = crafted_buf(
            np.random.default_rng(seed), k=6, outliers=(3,), with_int=True
        )
        other = crafted_buf(
            np.random.default_rng(seed), k=6, outliers=(3,), with_int=True,
            backend=backend,
        )
        for name in ("trimmed_mean", "coordinate_median", "norm_clip"):
            op = build_operator(name)
            a, b = op.combine(dense), op.combine(other)
            for key in a:
                np.testing.assert_array_equal(a[key], b[key])


class TestRobustCrossBlend:
    @pytest.mark.parametrize(
        "op", [TrimmedMeanOperator(), CoordinateMedianOperator()]
    )
    def test_benign_round_delegates_bitwise(self, rng, op):
        buf = crafted_buf(rng, k=6, with_int=True)
        co = [1, 2, 3, 4, 5, 0]
        _, flagged = trust_region_for(op, buf)
        assert not flagged.any()
        ours = op.cross_blend(buf, co, 0.99)
        reference = buf.cross_aggregate(co, 0.99)
        np.testing.assert_array_equal(
            ours.storage.row_block(0, 6), reference.storage.row_block(0, 6)
        )

    def test_flagged_rows_rejected_as_primary_and_collaborator(self, rng):
        op = TrimmedMeanOperator()
        buf = crafted_buf(rng, k=6, outliers=(2,), with_int=True)
        co = np.array([2, 2, 3, 4, 5, 0])  # rows 0 and 1 pick the outlier
        center, flagged = trust_region_for(op, buf)
        np.testing.assert_array_equal(flagged, [0, 0, 1, 0, 0, 0])
        alpha = 0.9
        vals = rows64(buf)
        # The stand-in is a pool row: the center rounded to pool dtype.
        stand_in = center.astype(np.float32).astype(np.float64)
        src = buf.storage.row_block(0, 6)
        int_mask = buf.layout.integer_mask()
        expected = np.empty_like(src)
        for i in range(6):
            m = stand_in if flagged[i] else vals[i]
            collab = stand_in if flagged[co[i]] else vals[co[i]]
            fused = (alpha * m + (1.0 - alpha) * collab).astype(np.float32)
            fused[int_mask] = src[i, int_mask]
            expected[i] = fused
        out = op.cross_blend(buf, co, alpha)
        np.testing.assert_array_equal(out.storage.row_block(0, 6), expected)

    def test_propeller_blend_rejects_flagged_collaborators(self, rng):
        op = CoordinateMedianOperator()
        buf = crafted_buf(rng, k=6, outliers=(5,))
        co = np.array([[1, 5], [2, 5], [3, 5], [4, 5], [0, 5], [0, 1]])
        center, flagged = trust_region_for(op, buf)
        assert flagged[5] and flagged.sum() == 1
        alpha = 0.8
        vals = rows64(buf)
        stand_in = center.astype(np.float32).astype(np.float64)
        expected = np.empty((6, buf.num_scalars), dtype=np.float32)
        for i in range(6):
            m = stand_in if flagged[i] else vals[i]
            collab = np.zeros(buf.num_scalars)
            for j in co[i]:
                collab += 0.5 * (stand_in if flagged[j] else vals[j])
            expected[i] = (alpha * m + (1.0 - alpha) * collab).astype(np.float32)
        out = op.cross_blend(buf, co, alpha)
        np.testing.assert_array_equal(out.storage.row_block(0, 6), expected)

    def test_fallback_pool_supplies_the_stand_ins(self, rng):
        # With the dispatched pool passed as fallback, a rejected row
        # degrades to its own dispatched state (the carry semantics)
        # rather than to the robust center.
        op = TrimmedMeanOperator()
        seed = rng.integers(1 << 31)
        buf = crafted_buf(np.random.default_rng(seed), k=6, outliers=(2,))
        fallback = crafted_buf(np.random.default_rng(seed + 1), k=6)
        co = np.array([2, 2, 3, 4, 5, 0])
        center, flagged = trust_region_for(op, buf)
        np.testing.assert_array_equal(np.flatnonzero(flagged), [2])
        alpha = 0.9
        vals = rows64(buf)
        stand_in = fallback.storage.row_block(0, 6).astype(np.float64)
        expected = np.empty((6, buf.num_scalars), dtype=np.float32)
        for i in range(6):
            m = stand_in[i] if flagged[i] else vals[i]
            collab = stand_in[co[i]] if flagged[co[i]] else vals[co[i]]
            expected[i] = (alpha * m + (1.0 - alpha) * collab).astype(np.float32)
        out = op.cross_blend(buf, co, alpha, fallback=fallback)
        np.testing.assert_array_equal(out.storage.row_block(0, 6), expected)

    def test_blend_carries_ints_from_source_row(self, rng):
        buf = crafted_buf(rng, k=5, outliers=(0,), with_int=True)
        out = TrimmedMeanOperator().cross_blend(buf, [1, 2, 3, 4, 0], 0.9)
        for i in range(5):
            np.testing.assert_array_equal(out.as_state(i)["c.steps"], [i + 1])

    @pytest.mark.parametrize("backend", ["memmap", "sharded"])
    def test_blend_backends_bitwise_identical(self, rng, backend):
        seed = rng.integers(1 << 31)
        co = [3, 4, 5, 0, 1, 2]
        dense = crafted_buf(np.random.default_rng(seed), k=6, outliers=(4,))
        other = crafted_buf(
            np.random.default_rng(seed), k=6, outliers=(4,), backend=backend
        )
        for name in ("trimmed_mean", "coordinate_median", "norm_clip"):
            op = build_operator(name)
            a = op.cross_blend(dense, co, 0.99).storage.row_block(0, 6)
            b = op.cross_blend(other, co, 0.99).storage.row_block(0, 6)
            np.testing.assert_array_equal(a, b)

    def test_identical_rows_flag_nothing(self, rng):
        state = make_state(rng)
        buf = PoolBuffer.broadcast(state, 5)
        for name in ("trimmed_mean", "coordinate_median", "norm_clip"):
            op = build_operator(name)
            out = op.cross_blend(buf, [1, 2, 3, 4, 0], 0.9)
            np.testing.assert_array_equal(
                out.storage.row_block(0, 5), buf.storage.row_block(0, 5)
            )
