"""Gram-based anomaly screening: scores, thresholds, records."""

import numpy as np
import pytest

from repro.robust.screen import SuspectRecord, screen_scores


def cluster_with_outlier(rng, k=8, p=12, magnitude=40.0):
    rows = 0.1 * rng.standard_normal((k, p))
    rows[2] += magnitude
    return rows


class TestScreenScores:
    def test_scores_are_distances_from_the_mean(self, rng):
        rows = cluster_with_outlier(rng)
        scores, _, _ = screen_scores(rows @ rows.T)
        expected = np.linalg.norm(rows - rows.mean(axis=0), axis=1)
        np.testing.assert_allclose(scores, expected, rtol=1e-8)

    def test_outlier_row_flagged_alone(self, rng):
        rows = cluster_with_outlier(rng)
        scores, threshold, flagged = screen_scores(rows @ rows.T)
        np.testing.assert_array_equal(flagged, [2])
        assert scores[2] > threshold

    def test_tight_cluster_flags_nothing(self, rng):
        rows = 0.1 * rng.standard_normal((6, 10))
        _, _, flagged = screen_scores(rows @ rows.T)
        assert flagged.size == 0

    def test_threshold_is_two_part(self, rng):
        rows = cluster_with_outlier(rng)
        scores, threshold, _ = screen_scores(
            rows @ rows.T, sigma=3.0, boost=2.0
        )
        med = np.median(scores)
        mad = np.median(np.abs(scores - med))
        assert threshold == pytest.approx(max(med + 3.0 * mad, 2.0 * med))

    def test_small_or_malformed_gram_rejected(self):
        with pytest.raises(ValueError, match="K >= 3"):
            screen_scores(np.eye(2))
        with pytest.raises(ValueError, match="K >= 3"):
            screen_scores(np.ones((3, 4)))

    def test_negative_cancellation_clamped_to_zero(self):
        # A rank-deficient Gram can push d² epsilon-negative; scores
        # must clamp instead of going NaN under the square root.
        gram = np.zeros((3, 3))
        scores, _, flagged = screen_scores(gram)
        np.testing.assert_array_equal(scores, np.zeros(3))
        assert flagged.size == 0


class TestSuspectRecord:
    def test_summary_is_json_friendly(self):
        record = SuspectRecord(
            row=np.int64(3), client_id=np.int64(9),
            score=np.float64(5.5), threshold=np.float64(2.0), action="flag",
        )
        summary = record.summary()
        assert summary == {
            "row": 3, "client": 9, "score": 5.5, "threshold": 2.0,
            "action": "flag",
        }
        assert type(summary["row"]) is int and type(summary["score"]) is float
