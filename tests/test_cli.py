"""CLI entry points (direct main() calls; no subprocess overhead)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "fedcross"
        assert args.beta == "iid"

    def test_bench_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "table99"])

    def test_unknown_backend_fails_at_parse_time(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "gpu"])
        err = capsys.readouterr().err
        assert "unknown pool backend" in err and "sharded" in err

    def test_shards_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--shards", "0"])

    def test_unknown_aggregator_fails_at_parse_time(self, capsys):
        # Same parse-time parity as --backend: the registry error (with
        # every valid operator) surfaces straight from argparse.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--aggregator", "krum"])
        err = capsys.readouterr().err
        assert "unknown aggregation operator" in err and "trimmed_mean" in err

    def test_aggregator_and_screen_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.aggregator == "mean"
        assert args.screen is None

    def test_screen_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--screen", "purge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fedcross" in out
        assert "resnet20" in out
        assert "synth_cifar10" in out
        assert "aggregators:" in out and "coordinate_median" in out

    def test_run_json(self, capsys):
        code = main(
            [
                "run",
                "--method", "fedavg",
                "--clients", "4",
                "--rounds", "2",
                "--local-epochs", "1",
                "--eval-every", "1",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "fedavg"
        assert len(payload["accuracies"]) == 2

    def test_run_human_readable(self, capsys):
        main(
            [
                "run",
                "--method", "fedcross",
                "--clients", "4",
                "--rounds", "2",
                "--local-epochs", "1",
                "--eval-every", "1",
                "--alpha", "0.8",
            ]
        )
        out = capsys.readouterr().out
        assert "final=" in out
        assert "round" in out

    def test_run_robust_aggregation_json(self, capsys):
        code = main(
            [
                "run",
                "--method", "fedcross",
                "--clients", "4",
                "--rounds", "2",
                "--local-epochs", "1",
                "--eval-every", "1",
                "--aggregator", "trimmed_mean",
                "--aggregator-params", '{"trim": 0.2}',
                "--screen", "flag",
                "--faults", '{"byzantine_frac": 0.25, "attack": "sign_flip"}',
                "--failure-policy", "carry",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["accuracies"]) == 2

    def test_compare_json(self, capsys):
        code = main(
            [
                "compare",
                "--methods", "fedavg,fedcross",
                "--clients", "4",
                "--rounds", "2",
                "--local-epochs", "1",
                "--eval-every", "1",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"fedavg", "fedcross"}

    @pytest.mark.parametrize("placement", [None, "memmap"])
    def test_run_sharded_backend_json(self, capsys, placement):
        argv = [
            "run",
            "--method", "fedcross",
            "--clients", "4",
            "--participation", "1.0",
            "--rounds", "2",
            "--local-epochs", "1",
            "--eval-every", "1",
            "--backend", "sharded",
            "--shards", "3",
            "--json",
        ]
        if placement is not None:
            argv += ["--shard-placement", placement]
        code = main(argv)
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "sharded"
        assert len(payload["accuracies"]) == 2

    def test_bench_table1(self, capsys):
        assert main(["bench", "table1"]) == 0
        assert "Comm. Overhead" in capsys.readouterr().out

    def test_bench_fig3(self, capsys):
        assert main(["bench", "fig3"]) == 0
        assert "Dir(0.1)" in capsys.readouterr().out

    def test_beta_parsing(self, capsys):
        code = main(
            [
                "run",
                "--method", "fedavg",
                "--beta", "0.5",
                "--clients", "4",
                "--rounds", "2",
                "--local-epochs", "1",
                "--eval-every", "1",
                "--json",
            ]
        )
        assert code == 0


class TestAsyncRoundMode:
    def test_round_mode_defaults_and_choices(self):
        args = build_parser().parse_args(["run"])
        assert args.round_mode == "sync"
        assert args.max_staleness == 0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--round-mode", "overlapped"])

    def test_run_async_json_smoke(self, capsys):
        code = main(
            [
                "run",
                "--method", "fedcross",
                "--clients", "4",
                "--rounds", "2",
                "--local-epochs", "1",
                "--eval-every", "1",
                "--round-mode", "async",
                "--max-staleness", "1",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "fedcross"
        assert len(payload["accuracies"]) == 2
