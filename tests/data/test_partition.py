"""Partitioning schemes: completeness, disjointness, heterogeneity."""

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    partition_class_counts,
    quantity_skew_partition,
    render_partition_grid,
)
from repro.experiments.fig3 import class_concentration


def make_ds(n=300, k=10, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(rng.standard_normal((n, 4)), rng.integers(0, k, n))


def assert_valid_partition(ds, shards):
    all_indices = np.concatenate([s.indices for s in shards])
    assert len(all_indices) == len(ds)
    assert len(np.unique(all_indices)) == len(ds)


class TestIID:
    def test_complete_and_disjoint(self, rng):
        ds = make_ds()
        shards = iid_partition(ds, 6, rng)
        assert_valid_partition(ds, shards)

    def test_near_equal_sizes(self, rng):
        shards = iid_partition(make_ds(100), 7, rng)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_label_distributions_similar(self, rng):
        ds = make_ds(2000, k=4)
        shards = iid_partition(ds, 4, rng)
        counts = partition_class_counts(shards, 4).astype(float)
        fracs = counts / counts.sum(axis=1, keepdims=True)
        assert np.abs(fracs - 0.25).max() < 0.08

    def test_invalid_client_count(self, rng):
        with pytest.raises(ValueError):
            iid_partition(make_ds(), 0, rng)


class TestDirichlet:
    def test_complete_and_disjoint(self, rng):
        ds = make_ds()
        shards = dirichlet_partition(ds, 8, beta=0.5, rng=rng)
        assert_valid_partition(ds, shards)

    def test_min_samples_respected(self, rng):
        shards = dirichlet_partition(make_ds(500), 10, beta=0.1, rng=rng, min_samples=3)
        assert min(len(s) for s in shards) >= 3

    def test_smaller_beta_more_concentrated(self):
        ds = make_ds(3000, k=10, seed=1)
        conc = {}
        for beta in (0.1, 1.0, 100.0):
            shards = dirichlet_partition(ds, 10, beta=beta, rng=np.random.default_rng(0))
            conc[beta] = class_concentration(partition_class_counts(shards, 10))
        assert conc[0.1] > conc[1.0] > conc[100.0]

    def test_invalid_beta(self, rng):
        with pytest.raises(ValueError):
            dirichlet_partition(make_ds(), 4, beta=0.0, rng=rng)

    def test_too_many_clients_raises(self, rng):
        with pytest.raises(ValueError):
            dirichlet_partition(make_ds(10), 20, beta=0.5, rng=rng, min_samples=2)

    def test_deterministic_given_rng(self):
        ds = make_ds()
        a = dirichlet_partition(ds, 5, 0.5, np.random.default_rng(3))
        b = dirichlet_partition(ds, 5, 0.5, np.random.default_rng(3))
        for sa, sb in zip(a, b):
            np.testing.assert_array_equal(sa.indices, sb.indices)


class TestQuantitySkew:
    def test_complete_partition(self, rng):
        ds = make_ds(200)
        shards = quantity_skew_partition(ds, 6, rng)
        total = sum(len(s) for s in shards)
        assert total <= 200
        assert total >= 200 - 6  # may trim a few for the floor

    def test_sizes_are_skewed(self, rng):
        shards = quantity_skew_partition(make_ds(1000), 10, rng, sigma=1.0)
        sizes = np.array([len(s) for s in shards])
        assert sizes.max() > 2 * sizes.min()


class TestHelpers:
    def test_partition_class_counts_shape(self, rng):
        shards = iid_partition(make_ds(100, k=5), 4, rng)
        counts = partition_class_counts(shards, 5)
        assert counts.shape == (4, 5)
        assert counts.sum() == 100

    def test_render_grid_contains_rows(self, rng):
        shards = iid_partition(make_ds(100, k=3), 4, rng)
        text = render_partition_grid(partition_class_counts(shards, 3))
        assert "cls  0:" in text
        assert "client:" in text

    def test_render_empty(self):
        assert "empty" in render_partition_grid(np.zeros((0, 0)))

    def test_class_concentration_bounds(self):
        uniform = np.full((4, 5), 10)
        assert class_concentration(uniform) == pytest.approx(0.25)
        point = np.zeros((4, 5))
        point[0] = 10
        assert class_concentration(point) == pytest.approx(1.0)
