"""ArrayDataset / Subset / DataLoader / splits."""

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset, DataLoader, train_test_split


def make_ds(n=20, d=4, k=3, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(rng.standard_normal((n, d)), rng.integers(0, k, n))


class TestArrayDataset:
    def test_length_and_indexing(self):
        ds = make_ds(10)
        assert len(ds) == 10
        x, y = ds[3]
        assert x.shape == (4,)
        assert np.isscalar(y) or y.shape == ()

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4))

    def test_num_classes(self):
        ds = ArrayDataset(np.zeros((4, 1)), np.array([0, 2, 2, 1]))
        assert ds.num_classes == 3

    def test_class_counts(self):
        ds = ArrayDataset(np.zeros((4, 1)), np.array([0, 2, 2, 0]))
        np.testing.assert_array_equal(ds.class_counts(4), [2, 0, 2, 0])

    def test_subset_view(self):
        ds = make_ds(10)
        sub = ds.subset([1, 3, 5])
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.features[0], ds.features[1])
        np.testing.assert_array_equal(sub.indices, [1, 3, 5])

    def test_empty_dataset_num_classes(self):
        ds = ArrayDataset(np.zeros((0, 2)), np.zeros(0))
        assert ds.num_classes == 0


class TestSubsetLaziness:
    def test_no_copy_at_construction(self):
        ds = make_ds(100)
        sub = ds.subset(range(50))
        assert sub._features is None and sub._labels is None
        x, y = sub[3]
        np.testing.assert_array_equal(x, ds.features[3])
        assert sub._features is None  # __getitem__ stays lazy

    def test_materialization_is_cached(self):
        ds = make_ds(20)
        sub = ds.subset([2, 4, 6])
        assert sub.features is sub.features
        assert sub.labels is sub.labels

    def test_nested_subsets_compose_indices(self):
        ds = make_ds(20)
        nested = ds.subset([5, 10, 15]).subset([2, 0])
        assert nested.parent is ds
        np.testing.assert_array_equal(nested.indices, [15, 5])
        np.testing.assert_array_equal(nested.labels, ds.labels[[15, 5]])

    def test_getitem_slice_maps_through_parent(self):
        ds = make_ds(10)
        sub = ds.subset([9, 8, 7, 6])
        x, y = sub[1:3]
        np.testing.assert_array_equal(x, ds.features[[8, 7]])
        np.testing.assert_array_equal(y, ds.labels[[8, 7]])


class TestDataLoader:
    def test_batch_count_with_and_without_drop_last(self):
        ds = make_ds(10)
        assert len(DataLoader(ds, batch_size=3, drop_last=False)) == 4
        assert len(DataLoader(ds, batch_size=3, drop_last=True)) == 3

    def test_covers_all_samples(self):
        ds = make_ds(11)
        loader = DataLoader(ds, batch_size=4, shuffle=False)
        total = sum(len(y) for _, y in loader)
        assert total == 11

    def test_no_shuffle_preserves_order(self):
        ds = make_ds(8)
        loader = DataLoader(ds, batch_size=8, shuffle=False)
        x, y = next(iter(loader))
        np.testing.assert_array_equal(x, ds.features)

    def test_shuffle_deterministic_given_rng(self):
        ds = make_ds(16)
        a = [y for _, y in DataLoader(ds, 4, rng=np.random.default_rng(5))]
        b = [y for _, y in DataLoader(ds, 4, rng=np.random.default_rng(5))]
        for ya, yb in zip(a, b):
            np.testing.assert_array_equal(ya, yb)

    def test_shuffle_changes_between_epochs(self):
        ds = make_ds(64)
        loader = DataLoader(ds, 64, rng=np.random.default_rng(5))
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_drop_last_drops_partial(self):
        ds = make_ds(10)
        loader = DataLoader(ds, batch_size=4, shuffle=False, drop_last=True)
        sizes = [len(y) for _, y in loader]
        assert sizes == [4, 4]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_ds(4), batch_size=0)


class TestSplit:
    def test_split_sizes(self):
        ds = make_ds(100)
        train, test = train_test_split(ds, 0.25, np.random.default_rng(0))
        assert len(train) == 75
        assert len(test) == 25

    def test_split_disjoint_and_complete(self):
        ds = make_ds(30)
        train, test = train_test_split(ds, 0.3, np.random.default_rng(0))
        all_idx = sorted(np.concatenate([train.indices, test.indices]).tolist())
        assert all_idx == list(range(30))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(make_ds(10), 1.5, np.random.default_rng(0))
