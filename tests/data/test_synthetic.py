"""Synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    make_synthetic_chars,
    make_synthetic_femnist,
    make_synthetic_image_data,
    make_synthetic_sentiment,
)


class TestImageData:
    def test_shapes_and_dtypes(self):
        train, test = make_synthetic_image_data(
            num_classes=5, num_train=50, num_test=20, image_shape=(3, 6, 6), seed=0
        )
        assert train.features.shape == (50, 3, 6, 6)
        assert train.features.dtype == np.float32
        assert test.features.shape == (20, 3, 6, 6)
        assert train.labels.max() < 5

    def test_deterministic_by_seed(self):
        a, _ = make_synthetic_image_data(num_train=30, seed=9)
        b, _ = make_synthetic_image_data(num_train=30, seed=9)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        a, _ = make_synthetic_image_data(num_train=30, seed=1)
        b, _ = make_synthetic_image_data(num_train=30, seed=2)
        assert not np.allclose(a.features, b.features)

    def test_class_signal_exists(self):
        """Same-class samples must be closer than cross-class on average."""
        train, _ = make_synthetic_image_data(
            num_classes=4, num_train=200, noise=0.5, seed=0
        )
        flat = train.features.reshape(len(train), -1)
        same, diff = [], []
        for k in range(4):
            mask = train.labels == k
            centroid = flat[mask].mean(axis=0)
            same.append(np.linalg.norm(flat[mask] - centroid, axis=1).mean())
            diff.append(np.linalg.norm(flat[~mask] - centroid, axis=1).mean())
        assert np.mean(same) < np.mean(diff)

    def test_label_noise_flips_training_labels(self):
        clean, _ = make_synthetic_image_data(num_train=400, label_noise=0.0, seed=4)
        noisy, _ = make_synthetic_image_data(num_train=400, label_noise=0.5, seed=4)
        frac_changed = (clean.labels != noisy.labels).mean()
        assert 0.3 < frac_changed < 0.6  # ~0.5 * 9/10

    def test_label_noise_validation(self):
        with pytest.raises(ValueError):
            make_synthetic_image_data(num_train=10, label_noise=1.0)

    def test_basis_rank_reduces_prototype_rank(self):
        train, _ = make_synthetic_image_data(
            num_classes=8, num_train=80, noise=0.0, max_shift=0, basis_rank=2, seed=0
        )
        # with zero noise/shift, per-class means live in a rank <= 2 span
        flat = train.features.reshape(len(train), -1).astype(np.float64)
        centroids = np.stack([flat[train.labels == k].mean(axis=0) for k in range(8)])
        s = np.linalg.svd(centroids - 0, compute_uv=False)
        assert s[2] < s[0] * 0.2  # effectively rank ~2 (gains allow slight spill)


class TestFemnist:
    def test_writer_count_and_test_set(self):
        clients, test = make_synthetic_femnist(num_writers=7, num_test=50, seed=0)
        assert len(clients) == 7
        assert len(test) == 50

    def test_writer_sizes_vary(self):
        clients, _ = make_synthetic_femnist(num_writers=20, seed=0)
        sizes = {len(c) for c in clients}
        assert len(sizes) > 5  # log-normal quantity skew

    def test_writer_styles_differ(self):
        clients, _ = make_synthetic_femnist(num_writers=2, noise=0.0, seed=3)
        # same class, different writers -> different mean images
        means = []
        for c in clients:
            mask = c.labels == c.labels[0]
            means.append(c.features[mask].mean(axis=0))
        assert not np.allclose(means[0], means[1], atol=1e-3)

    def test_all_classes_in_test(self):
        _, test = make_synthetic_femnist(num_writers=3, num_classes=5, num_test=300, seed=0)
        assert set(np.unique(test.labels)) == set(range(5))


class TestChars:
    def test_shapes_and_vocab(self):
        clients, test, vocab = make_synthetic_chars(
            num_clients=4, vocab_size=12, seq_len=6, samples_per_client=30, seed=0
        )
        assert vocab == 12
        assert len(clients) == 4
        assert clients[0].features.shape == (30, 6)
        assert clients[0].features.dtype == np.int64
        assert clients[0].features.max() < 12
        assert test.labels.max() < 12

    def test_chain_structure_learnable(self):
        """Next char must be predictable above chance from the last char."""
        clients, test, vocab = make_synthetic_chars(
            num_clients=1, vocab_size=8, samples_per_client=600, concentration=0.1, seed=1
        )
        ds = clients[0]
        # empirical P(y | last token) majority-vote classifier
        table = {}
        for x, y in zip(ds.features, ds.labels):
            table.setdefault(x[-1], []).append(y)
        preds = {k: np.bincount(v).argmax() for k, v in table.items()}
        acc = np.mean([preds.get(x[-1], 0) == y for x, y in zip(ds.features, ds.labels)])
        assert acc > 2.0 / vocab

    def test_clients_have_different_chains(self):
        clients, _, _ = make_synthetic_chars(
            num_clients=2, client_deviation=0.9, samples_per_client=400, seed=0
        )
        # bigram distributions should differ noticeably between clients
        def bigram(ds, vocab=30):
            counts = np.zeros((vocab, vocab))
            for x in ds.features:
                for a, b in zip(x[:-1], x[1:]):
                    counts[a, b] += 1
            return counts / max(counts.sum(), 1)

        d = np.abs(bigram(clients[0]) - bigram(clients[1])).sum()
        assert d > 0.3


class TestSentiment:
    def test_shapes(self):
        users, test, vocab = make_synthetic_sentiment(
            num_users=5, vocab_size=40, seq_len=7, num_test=60, seed=0
        )
        assert vocab == 40
        assert len(users) == 5
        assert users[0].features.shape[1] == 7
        assert set(np.unique(test.labels)) <= {0, 1}

    def test_class_token_distributions_differ(self):
        users, test, vocab = make_synthetic_sentiment(
            num_users=1, user_bias=0.0, num_test=2000, seed=0
        )
        pos = test.features[test.labels == 1].reshape(-1)
        neg = test.features[test.labels == 0].reshape(-1)
        hp = np.bincount(pos, minlength=vocab) / len(pos)
        hn = np.bincount(neg, minlength=vocab) / len(neg)
        assert np.abs(hp - hn).sum() > 0.3

    def test_user_priors_skewed(self):
        users, _, _ = make_synthetic_sentiment(num_users=12, seed=0)
        fracs = [c.labels.mean() for c in users]
        assert max(fracs) - min(fracs) > 0.2
