"""Federated dataset assembly."""

import numpy as np
import pytest

from repro.data.federated import DATASET_BUILDERS, build_federated_dataset


class TestBuilder:
    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            build_federated_dataset("cifar10")

    def test_all_builders_produce_valid_datasets(self):
        for name in DATASET_BUILDERS:
            fed = build_federated_dataset(
                name,
                num_clients=4,
                heterogeneity=0.5,
                seed=0,
                samples_per_client=20,
                num_test=30,
            )
            assert fed.num_clients == 4
            assert len(fed.test) > 0
            assert fed.num_classes >= 2
            assert all(len(c) > 0 for c in fed.clients)

    def test_iid_vs_dirichlet_heterogeneity_label(self):
        iid = build_federated_dataset("synth_cifar10", num_clients=4, heterogeneity="iid")
        dir_ = build_federated_dataset("synth_cifar10", num_clients=4, heterogeneity=0.5)
        assert iid.heterogeneity == "iid"
        assert dir_.heterogeneity == "dirichlet(0.5)"

    def test_natural_datasets_ignore_heterogeneity(self):
        fed = build_federated_dataset("synth_femnist", num_clients=5, heterogeneity=0.1)
        assert fed.heterogeneity == "natural"

    def test_deterministic_by_seed(self):
        a = build_federated_dataset("synth_cifar10", num_clients=4, heterogeneity=0.5, seed=11)
        b = build_federated_dataset("synth_cifar10", num_clients=4, heterogeneity=0.5, seed=11)
        np.testing.assert_array_equal(a.test.features, b.test.features)
        for ca, cb in zip(a.clients, b.clients):
            np.testing.assert_array_equal(ca.labels, cb.labels)

    def test_class_count_matrix(self):
        fed = build_federated_dataset("synth_cifar10", num_clients=5, heterogeneity="iid")
        counts = fed.class_count_matrix()
        assert counts.shape == (5, 10)
        assert counts.sum() == sum(len(c) for c in fed.clients)

    def test_client_sizes(self):
        fed = build_federated_dataset("synth_femnist", num_clients=6)
        sizes = fed.client_sizes()
        assert len(sizes) == 6
        assert (sizes > 0).all()

    def test_text_meta_has_vocab(self):
        fed = build_federated_dataset("synth_shakespeare", num_clients=3)
        assert fed.meta["vocab_size"] == fed.num_classes
        fed2 = build_federated_dataset("synth_sent140", num_clients=3)
        assert "vocab_size" in fed2.meta
        assert fed2.num_classes == 2

    def test_dataset_param_overrides(self):
        fed = build_federated_dataset(
            "synth_cifar10",
            num_clients=3,
            heterogeneity="iid",
            samples_per_client=15,
            num_test=77,
        )
        assert len(fed.test) == 77
        assert sum(len(c) for c in fed.clients) == 45
