"""RNG streams and state-dict utilities (direct unit tests)."""

import numpy as np
import pytest

from repro.utils.params import (
    flatten_state_dict,
    state_dict_like,
    tree_map,
    unflatten_state_dict,
    weighted_average,
)
from repro.utils.rng import default_rng, spawn_rng


class TestRng:
    def test_default_rng_deterministic(self):
        assert default_rng(5).random() == default_rng(5).random()

    def test_spawn_from_seed_independent_streams(self):
        streams = spawn_rng(7, 3)
        values = [s.random() for s in streams]
        assert len(set(values)) == 3

    def test_spawn_reproducible(self):
        a = [g.random() for g in spawn_rng(7, 3)]
        b = [g.random() for g in spawn_rng(7, 3)]
        assert a == b

    def test_spawn_from_generator(self):
        parent = default_rng(3)
        children = spawn_rng(parent, 2)
        assert len(children) == 2
        assert children[0].random() != children[1].random()


class TestParams:
    def test_flatten_sorted_key_order(self):
        state = {"b": np.array([3.0, 4.0]), "a": np.array([1.0, 2.0])}
        np.testing.assert_array_equal(flatten_state_dict(state), [1, 2, 3, 4])

    def test_flatten_empty(self):
        assert flatten_state_dict({}).size == 0

    def test_unflatten_preserves_dtype(self):
        ref = {"w": np.zeros((2, 2), dtype=np.float32)}
        out = unflatten_state_dict(np.arange(4.0), ref)
        assert out["w"].dtype == np.float32
        assert out["w"].shape == (2, 2)

    def test_unflatten_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            unflatten_state_dict(np.zeros(5), {"w": np.zeros(3)})

    def test_tree_map_key_mismatch_raises(self):
        with pytest.raises(KeyError):
            tree_map(lambda a, b: a + b, {"x": np.zeros(1)}, {"y": np.zeros(1)})

    def test_tree_map_requires_states(self):
        with pytest.raises(ValueError):
            tree_map(lambda: None)

    def test_weighted_average_weights(self):
        a = {"w": np.array([0.0])}
        b = {"w": np.array([10.0])}
        out = weighted_average([a, b], [3.0, 1.0])
        np.testing.assert_allclose(out["w"], [2.5])

    def test_weighted_average_integer_buffers_carried(self):
        """Regression: int buffers were averaged in float then truncated
        back to the int dtype, corrupting e.g. step counters."""
        a = {"w": np.array([0.0]), "steps": np.array([5], dtype=np.int32)}
        b = {"w": np.array([2.0]), "steps": np.array([9], dtype=np.int32)}
        out = weighted_average([a, b])
        np.testing.assert_allclose(out["w"], [1.0])
        np.testing.assert_array_equal(out["steps"], [5])
        assert out["steps"].dtype == np.int32

    def test_weighted_average_validation(self):
        with pytest.raises(ValueError):
            weighted_average([])
        with pytest.raises(ValueError):
            weighted_average([{"w": np.zeros(1)}], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_average([{"w": np.zeros(1)}], [0.0])

    def test_state_dict_like(self):
        ref = {"w": np.ones((2, 2))}
        out = state_dict_like(ref, lambda v: v * 3)
        np.testing.assert_allclose(out["w"], np.full((2, 2), 3.0))
