"""Weight-initialisation schemes."""

import numpy as np
import pytest

from repro.nn import init
from repro.utils.rng import default_rng


class TestFanComputation:
    def test_dense_fans(self):
        fan_in, fan_out = init._fan_in_out((8, 4))
        assert (fan_in, fan_out) == (4, 8)

    def test_conv_fans_include_receptive_field(self):
        fan_in, fan_out = init._fan_in_out((16, 3, 5, 5))
        assert fan_in == 3 * 25
        assert fan_out == 16 * 25

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            init._fan_in_out((10,))


class TestDistributions:
    def test_kaiming_uniform_bound(self):
        w = init.kaiming_uniform(default_rng(0), (64, 32))
        gain = np.sqrt(2.0 / (1 + 5.0))
        bound = gain * np.sqrt(3.0 / 32)
        assert np.abs(w).max() <= bound + 1e-7

    def test_kaiming_normal_std(self):
        w = init.kaiming_normal(default_rng(0), (2000, 50))
        expected = np.sqrt(2.0 / 50)
        assert w.std() == pytest.approx(expected, rel=0.05)

    def test_xavier_uniform_bound(self):
        w = init.xavier_uniform(default_rng(0), (30, 20))
        bound = np.sqrt(6.0 / 50)
        assert np.abs(w).max() <= bound + 1e-7

    def test_xavier_normal_std(self):
        w = init.xavier_normal(default_rng(0), (1000, 100))
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1100), rel=0.1)

    def test_uniform_bound_and_dtype(self):
        w = init.uniform(default_rng(0), (100,), 0.3)
        assert np.abs(w).max() <= 0.3
        assert w.dtype == np.float32

    def test_zeros_ones(self):
        assert init.zeros((3, 3)).sum() == 0
        assert init.ones((3, 3)).sum() == 9

    def test_determinism(self):
        a = init.kaiming_uniform(default_rng(7), (10, 10))
        b = init.kaiming_uniform(default_rng(7), (10, 10))
        np.testing.assert_array_equal(a, b)
