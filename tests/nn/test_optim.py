"""Optimisers and LR schedules."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, Adam, ConstantLR, CosineLR, InverseTimeLR, StepLR


def make_param(value=1.0):
    p = Parameter(np.array([value], dtype=np.float32))
    return p


class TestSGD:
    def test_vanilla_step(self):
        p = make_param(1.0)
        p.grad = np.array([0.5], dtype=np.float32)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_momentum_accumulates(self):
        p = make_param(0.0)
        opt = SGD([p], lr=1.0, momentum=0.5)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # buf = 1, p = -1
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # buf = 1.5, p = -2.5
        np.testing.assert_allclose(p.data, [-2.5])

    def test_nesterov_differs_from_plain_momentum(self):
        p1, p2 = make_param(0.0), make_param(0.0)
        o1 = SGD([p1], lr=1.0, momentum=0.5)
        o2 = SGD([p2], lr=1.0, momentum=0.5, nesterov=True)
        for opt, p in ((o1, p1), (o2, p2)):
            p.grad = np.array([1.0], dtype=np.float32)
            opt.step()
        assert p1.data[0] != p2.data[0]

    def test_weight_decay_shrinks_param(self):
        p = make_param(10.0)
        p.grad = np.zeros(1, dtype=np.float32)
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [10.0 - 0.1 * 0.5 * 10.0])

    def test_none_grad_skipped(self):
        p = make_param(3.0)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [3.0])

    def test_reset_state_clears_momentum(self):
        p = make_param(0.0)
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        opt.reset_state()
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        # second step behaves like a fresh first step from -1
        np.testing.assert_allclose(p.data, [-2.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.0)
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.1, nesterov=True)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_zero_grad(self):
        p = make_param()
        p.grad = np.ones(1, dtype=np.float32)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_converges_on_quadratic(self):
        # minimise (x - 3)^2 by hand-computed gradients
        p = make_param(0.0)
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(100):
            p.grad = 2 * (p.data - 3.0)
            opt.step()
        np.testing.assert_allclose(p.data, [3.0], atol=1e-3)


class TestAdam:
    def test_first_step_size_is_lr(self):
        p = make_param(0.0)
        opt = Adam([p], lr=0.1)
        p.grad = np.array([7.0], dtype=np.float32)
        opt.step()
        # bias-corrected first step is ~ -lr * sign(grad)
        np.testing.assert_allclose(p.data, [-0.1], rtol=1e-4)

    def test_converges_on_quadratic(self):
        p = make_param(0.0)
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            p.grad = 2 * (p.data - 3.0)
            opt.step()
        np.testing.assert_allclose(p.data, [3.0], atol=1e-2)

    def test_weight_decay(self):
        p = make_param(1.0)
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_reset_state(self):
        p = make_param(0.0)
        opt = Adam([p], lr=0.1)
        p.grad = np.ones(1, dtype=np.float32)
        opt.step()
        opt.reset_state()
        assert opt._t == 0
        assert opt._m[0] is None


class TestSchedulers:
    def test_constant(self):
        p = make_param()
        opt = SGD([p], lr=0.5)
        sched = ConstantLR(opt)
        for _ in range(3):
            assert sched.step() == 0.5

    def test_step_lr_decays(self):
        opt = SGD([make_param()], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_cosine_endpoints(self):
        opt = SGD([make_param()], lr=1.0)
        sched = CosineLR(opt, t_max=10, min_lr=0.0)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[-1] == pytest.approx(0.0, abs=1e-9)
        assert lrs[0] < 1.0
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_inverse_time_matches_formula(self):
        opt = SGD([make_param()], lr=1.0)
        sched = InverseTimeLR(opt, beta=2.0, lam=3.0)
        # installed at construction for t=0
        assert opt.lr == pytest.approx(2.0 / 4.0)
        sched.step()
        assert opt.lr == pytest.approx(2.0 / 5.0)

    def test_scheduler_updates_optimizer(self):
        opt = SGD([make_param()], lr=1.0)
        StepLR(opt, step_size=1, gamma=0.5).step()
        assert opt.lr == 0.5

    def test_validation(self):
        opt = SGD([make_param()], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineLR(opt, t_max=0)
        with pytest.raises(ValueError):
            InverseTimeLR(opt, beta=0.0, lam=1.0)
