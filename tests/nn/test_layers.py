"""Individual layer behaviour."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import gradcheck
from repro.tensor.tensor import Tensor
from repro.utils.rng import default_rng


class TestLinear:
    def test_forward_matches_manual(self, rng):
        layer = nn.Linear(3, 2, rng=default_rng(0))
        x = rng.standard_normal((4, 3)).astype(np.float32)
        out = layer(Tensor(x)).numpy()
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_no_bias(self):
        layer = nn.Linear(3, 2, bias=False)
        assert layer.bias is None
        assert {n for n, _ in layer.named_parameters()} == {"weight"}

    def test_deterministic_init_by_seed(self):
        a = nn.Linear(5, 5, rng=default_rng(42))
        b = nn.Linear(5, 5, rng=default_rng(42))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_different_seeds_differ(self):
        a = nn.Linear(5, 5, rng=default_rng(1))
        b = nn.Linear(5, 5, rng=default_rng(2))
        assert not np.allclose(a.weight.data, b.weight.data)

    def test_gradient_flow(self, rng):
        layer = nn.Linear(3, 2, rng=default_rng(0))
        x = Tensor(rng.standard_normal((2, 3)).astype(np.float32), requires_grad=True)
        layer(x).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        assert x.grad is not None


class TestConv2dLayer:
    def test_output_shape(self, rng):
        layer = nn.Conv2d(3, 8, 3, stride=1, padding=1, rng=default_rng(0))
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        assert layer(x).shape == (2, 8, 8, 8)

    def test_no_bias_option(self):
        layer = nn.Conv2d(1, 1, 3, bias=False)
        assert layer.bias is None

    def test_repr_mentions_config(self):
        assert "k=3" in repr(nn.Conv2d(1, 2, 3))


class TestEmbeddingLayer:
    def test_lookup_shape(self):
        layer = nn.Embedding(10, 4, rng=default_rng(0))
        out = layer(np.array([[1, 2, 3]]))
        assert out.shape == (1, 3, 4)

    def test_grad_reaches_table(self):
        layer = nn.Embedding(10, 4, rng=default_rng(0))
        layer(np.array([0, 0, 5])).sum().backward()
        assert layer.weight.grad is not None
        assert np.abs(layer.weight.grad[0]).sum() > 0
        assert np.abs(layer.weight.grad[1]).sum() == 0


class TestDropoutLayer:
    def test_train_drops_eval_does_not(self):
        layer = nn.Dropout(0.5, seed=3)
        x = Tensor(np.ones((100,), dtype=np.float32))
        layer.train()
        assert (layer(x).numpy() == 0).any()
        layer.eval()
        np.testing.assert_array_equal(layer(x).numpy(), x.numpy())

    def test_reseed_reproduces_mask(self):
        layer = nn.Dropout(0.5, seed=3)
        x = Tensor(np.ones((50,), dtype=np.float32))
        layer.reseed(9)
        a = layer(x).numpy().copy()
        layer.reseed(9)
        b = layer(x).numpy()
        np.testing.assert_array_equal(a, b)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestFlattenIdentity:
    def test_flatten(self):
        x = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        assert nn.Flatten()(x).shape == (2, 12)

    def test_identity_passthrough(self):
        x = Tensor(np.ones(3))
        assert nn.Identity()(x) is x


class TestActivationModules:
    def test_relu_module(self):
        out = nn.ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.numpy(), [0.0, 2.0])

    def test_tanh_sigmoid_ranges(self, rng):
        x = Tensor(rng.standard_normal(100) * 5)
        assert (np.abs(nn.Tanh()(x).numpy()) <= 1).all()
        s = nn.Sigmoid()(x).numpy()
        assert ((s >= 0) & (s <= 1)).all()

    def test_leaky_relu_module(self):
        out = nn.LeakyReLU(0.2)(Tensor(np.array([-5.0])))
        np.testing.assert_allclose(out.numpy(), [-1.0])


class TestPoolingModules:
    def test_maxpool_module(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 4, 4)).astype(np.float32))
        assert nn.MaxPool2d(2)(x).shape == (1, 1, 2, 2)

    def test_avgpool_module(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 4, 4)).astype(np.float32))
        assert nn.AvgPool2d(2)(x).shape == (1, 1, 2, 2)

    def test_global_avgpool_module(self, rng):
        x = Tensor(rng.standard_normal((2, 5, 3, 3)).astype(np.float32))
        assert nn.GlobalAvgPool2d()(x).shape == (2, 5)


class TestLossModules:
    def test_cross_entropy_module(self, rng):
        loss = nn.CrossEntropyLoss()(Tensor(np.zeros((2, 4))), np.array([0, 1]))
        assert loss.item() == pytest.approx(np.log(4), rel=1e-5)

    def test_mse_module(self):
        loss = nn.MSELoss()(Tensor(np.array([2.0])), np.array([0.0]))
        assert loss.item() == pytest.approx(4.0)

    def test_bce_module(self):
        loss = nn.BCEWithLogitsLoss()(Tensor(np.zeros(4)), np.array([1.0, 0, 1, 0]))
        assert loss.item() == pytest.approx(np.log(2), rel=1e-5)
