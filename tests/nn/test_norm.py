"""Normalisation layers: statistics, modes, gradients."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import gradcheck
from repro.tensor.tensor import Tensor


class TestBatchNorm2d:
    def test_train_output_normalised(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.standard_normal((8, 3, 4, 4)).astype(np.float32) * 5 + 2)
        out = bn(x).numpy()
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), np.ones(3), atol=1e-2)

    def test_running_stats_update(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.ones((4, 2, 3, 3), dtype=np.float32) * 10)
        bn(x)
        # running_mean moved halfway from 0 toward 10
        np.testing.assert_allclose(bn.running_mean, [5.0, 5.0], rtol=1e-5)

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(1)
        bn._set_buffer("running_mean", np.array([2.0], dtype=np.float32))
        bn._set_buffer("running_var", np.array([4.0], dtype=np.float32))
        bn.eval()
        x = Tensor(np.full((1, 1, 1, 1), 4.0, dtype=np.float32))
        out = bn(x).item()
        assert out == pytest.approx((4.0 - 2.0) / np.sqrt(4.0 + 1e-5), rel=1e-4)

    def test_eval_does_not_update_running_stats(self, rng):
        bn = nn.BatchNorm2d(1)
        bn.eval()
        before = bn.running_mean.copy()
        bn(Tensor(rng.standard_normal((2, 1, 2, 2)).astype(np.float32)))
        np.testing.assert_array_equal(bn.running_mean, before)

    def test_affine_params_in_state_dict(self):
        bn = nn.BatchNorm2d(2)
        state = bn.state_dict()
        assert set(state) == {"weight", "bias", "running_mean", "running_var"}

    def test_gradcheck_through_bn(self, rng):
        bn = nn.BatchNorm2d(2)
        x = Tensor(rng.standard_normal((3, 2, 2, 2)))

        def f(inp):
            bn._set_buffer("running_mean", np.zeros(2, dtype=np.float32))
            bn._set_buffer("running_var", np.ones(2, dtype=np.float32))
            return bn(inp)

        gradcheck(f, [x])

    def test_rejects_non_4d(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(2)(Tensor(np.zeros((2, 2))))


class TestGroupNorm:
    def test_batch_size_independence(self, rng):
        gn = nn.GroupNorm(2, 4)
        x1 = rng.standard_normal((1, 4, 3, 3)).astype(np.float32)
        x8 = np.concatenate([x1] * 8)
        out1 = gn(Tensor(x1)).numpy()
        out8 = gn(Tensor(x8)).numpy()
        np.testing.assert_allclose(out1, out8[:1], rtol=1e-4, atol=1e-5)

    def test_group_statistics_normalised(self, rng):
        gn = nn.GroupNorm(2, 4)
        x = Tensor(rng.standard_normal((2, 4, 5, 5)).astype(np.float32) * 3 + 1)
        out = gn(x).numpy().reshape(2, 2, 2, 5, 5)
        means = out.mean(axis=(2, 3, 4))
        np.testing.assert_allclose(means, np.zeros((2, 2)), atol=1e-4)

    def test_channel_divisibility_enforced(self):
        with pytest.raises(ValueError):
            nn.GroupNorm(3, 4)

    def test_gradcheck(self, rng):
        gn = nn.GroupNorm(2, 4)
        gradcheck(lambda a: gn(a), [Tensor(rng.standard_normal((2, 4, 2, 2)))])


class TestLayerNorm:
    def test_last_axis_normalised(self, rng):
        ln = nn.LayerNorm(8)
        x = Tensor(rng.standard_normal((4, 8)).astype(np.float32) * 7 + 3)
        out = ln(x).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-4)

    def test_works_on_3d(self, rng):
        ln = nn.LayerNorm(6)
        out = ln(Tensor(rng.standard_normal((2, 5, 6)).astype(np.float32)))
        assert out.shape == (2, 5, 6)

    def test_gradcheck(self, rng):
        ln = nn.LayerNorm(5)
        gradcheck(lambda a: ln(a), [Tensor(rng.standard_normal((3, 5)))])
