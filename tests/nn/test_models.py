"""Model zoo: registry, shapes, training sanity."""

import numpy as np
import pytest

from repro.models import available_models, build_model
from repro.models.resnet import resnet8, resnet20
from repro.models.vgg import VGG, vgg_mini
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class TestRegistry:
    def test_expected_models_registered(self):
        names = set(available_models())
        assert {
            "cnn",
            "cnn_s",
            "resnet20",
            "resnet8",
            "vgg16",
            "vgg_mini",
            "charlstm",
            "sentlstm",
            "mlp",
            "logreg",
        } <= names

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            build_model("nope")

    def test_deterministic_by_seed(self):
        a = build_model("mlp", seed=3, input_dim=10, num_classes=2)
        b = build_model("mlp", seed=3, input_dim=10, num_classes=2)
        for (n1, p1), (n2, p2) in zip(a.named_parameters(), b.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_different_seeds_differ(self):
        a = build_model("mlp", seed=1, input_dim=10, num_classes=2)
        b = build_model("mlp", seed=2, input_dim=10, num_classes=2)
        diffs = [
            not np.allclose(p1.data, p2.data)
            for (_, p1), (_, p2) in zip(a.named_parameters(), b.named_parameters())
        ]
        assert any(diffs)


class TestVisionModels:
    @pytest.mark.parametrize(
        "name,shape",
        [
            ("cnn_s", (3, 8, 8)),
            ("resnet8", (3, 8, 8)),
            ("vgg_mini", (3, 8, 8)),
        ],
    )
    def test_forward_shape(self, rng, name, shape):
        model = build_model(name, seed=0, num_classes=7, input_shape=shape)
        x = Tensor(rng.standard_normal((2, *shape)).astype(np.float32))
        assert model(x).shape == (2, 7)

    def test_cnn_full_preset_on_32px(self, rng):
        model = build_model("cnn", seed=0, input_shape=(3, 32, 32), num_classes=10, width=8)
        x = Tensor(rng.standard_normal((1, 3, 32, 32)).astype(np.float32))
        assert model(x).shape == (1, 10)

    def test_cnn_rejects_bad_spatial(self):
        with pytest.raises(ValueError):
            build_model("cnn", input_shape=(3, 10, 10))

    def test_resnet20_depth(self):
        model = resnet20(input_shape=(3, 8, 8), norm="group")
        # 6n+2 with n=3: 18 convs in blocks + stem + 3 downsample projections
        conv_params = [n for n, _ in model.named_parameters() if "conv" in n or "stem" in n]
        assert len(conv_params) >= 19

    def test_resnet8_smaller_than_resnet20(self):
        assert (
            resnet8(input_shape=(3, 8, 8)).num_parameters()
            < resnet20(input_shape=(3, 8, 8), norm="group").num_parameters()
        )

    def test_resnet_norm_choice(self):
        m = resnet8(norm="group")
        names = [n for n, _ in m.named_modules()]
        assert m.num_parameters() > 0
        with pytest.raises(ValueError):
            resnet8(norm="spectral")

    def test_vgg_downsampling_guard(self):
        with pytest.raises(ValueError, match="downsamples below"):
            VGG(config=(8, "M", 8, "M", 8, "M", 8, "M"), input_shape=(3, 8, 8))

    def test_vgg_mini_trains_one_step(self, rng):
        model = vgg_mini(input_shape=(3, 8, 8), num_classes=4)
        x = Tensor(rng.standard_normal((4, 3, 8, 8)).astype(np.float32))
        loss = F.cross_entropy(model(x), np.array([0, 1, 2, 3]))
        loss.backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)


class TestTextModels:
    def test_charlstm_forward(self, rng):
        model = build_model("charlstm", seed=0, vocab_size=20, hidden_size=8, embed_dim=4)
        tokens = rng.integers(0, 20, size=(3, 6))
        assert model(tokens).shape == (3, 20)

    def test_sentlstm_forward(self, rng):
        model = build_model("sentlstm", seed=0, vocab_size=30, num_classes=2, hidden_size=8)
        tokens = rng.integers(0, 30, size=(4, 5))
        assert model(tokens).shape == (4, 2)

    def test_forward_embedded_matches_forward(self, rng):
        model = build_model("charlstm", seed=0, vocab_size=15, hidden_size=8, embed_dim=4)
        tokens = rng.integers(0, 15, size=(2, 5))
        direct = model(tokens).numpy()
        embedded = model.embedding(tokens)
        via_embed = model.forward_embedded(embedded).numpy()
        np.testing.assert_allclose(direct, via_embed, rtol=1e-5)


class TestTrainability:
    @pytest.mark.parametrize("name", ["mlp", "logreg", "cnn_s"])
    def test_loss_decreases(self, rng, name):
        if name in ("mlp", "logreg"):
            model = build_model(name, seed=0, input_dim=48, num_classes=3)
            x_data = rng.standard_normal((30, 48)).astype(np.float32)
        else:
            model = build_model(name, seed=0, input_shape=(3, 4, 4), num_classes=3, width=4)
            x_data = rng.standard_normal((30, 3, 4, 4)).astype(np.float32)
        y = rng.integers(0, 3, 30)
        from repro.optim import SGD

        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        first = last = None
        for _ in range(25):
            opt.zero_grad()
            loss = F.cross_entropy(model(Tensor(x_data)), y)
            loss.backward()
            opt.step()
            last = loss.item()
            first = first if first is not None else last
        assert last < first * 0.7
