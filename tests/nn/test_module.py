"""Module system: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor
from repro.utils.rng import default_rng


class Net(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 8, rng=default_rng(0))
        self.fc2 = nn.Linear(8, 2, rng=default_rng(1))
        self.scale = Parameter(np.ones(1, dtype=np.float32))
        self.register_buffer("steps", np.zeros(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestRegistration:
    def test_parameters_discovered_recursively(self):
        net = Net()
        names = {name for name, _ in net.named_parameters()}
        assert names == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias", "scale"}

    def test_buffers_discovered(self):
        net = Net()
        names = {name for name, _ in net.named_buffers()}
        assert names == {"steps"}

    def test_reassignment_replaces_registration(self):
        net = Net()
        net.fc1 = nn.Linear(4, 4, rng=default_rng(2))
        assert dict(net.named_parameters())["fc1.weight"].shape == (4, 4)

    def test_plain_attribute_not_registered(self):
        net = Net()
        net.note = "hello"
        assert "note" not in dict(net.named_parameters())

    def test_num_parameters(self):
        net = Net()
        expected = 4 * 8 + 8 + 8 * 2 + 2 + 1
        assert net.num_parameters() == expected

    def test_named_modules_paths(self):
        net = Net()
        paths = {name for name, _ in net.named_modules()}
        assert paths == {"", "fc1", "fc2"}


class TestStateDict:
    def test_roundtrip_exact(self):
        net = Net()
        state = net.state_dict()
        other = Net()
        # perturb then restore
        for p in other.parameters():
            p.data = p.data + 1.0
        other.load_state_dict(state)
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        np.testing.assert_allclose(net(x).numpy(), other(x).numpy(), rtol=1e-6)

    def test_state_dict_copies_not_aliases(self):
        net = Net()
        state = net.state_dict()
        state["fc1.weight"][:] = 0.0
        assert not np.allclose(net.fc1.weight.data, 0.0)

    def test_load_copies_not_aliases(self):
        net = Net()
        state = net.state_dict()
        net.load_state_dict(state)
        state["fc1.weight"][:] = 7.0
        assert not np.allclose(net.fc1.weight.data, 7.0)

    def test_strict_load_missing_key_raises(self):
        net = Net()
        state = net.state_dict()
        del state["fc1.weight"]
        with pytest.raises(KeyError, match="missing"):
            net.load_state_dict(state)

    def test_strict_load_unexpected_key_raises(self):
        net = Net()
        state = net.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            net.load_state_dict(state)

    def test_non_strict_load_ignores_mismatch(self):
        net = Net()
        state = net.state_dict()
        del state["scale"]
        state["ghost"] = np.zeros(1)
        net.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        net = Net()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="shape mismatch"):
            net.load_state_dict(state)

    def test_buffers_roundtrip(self):
        net = Net()
        net._set_buffer("steps", np.array([42.0]))
        state = net.state_dict()
        other = Net()
        other.load_state_dict(state)
        np.testing.assert_allclose(other.steps, [42.0])


class TestModes:
    def test_train_eval_propagates(self):
        net = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5), nn.Linear(2, 2))
        net.eval()
        assert all(not m.training for _, m in net.named_modules())
        net.train()
        assert all(m.training for _, m in net.named_modules())

    def test_zero_grad_clears_all(self):
        net = Net()
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        net(x).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestContainers:
    def test_sequential_order_and_len(self):
        seq = nn.Sequential(nn.Linear(2, 3), nn.ReLU(), nn.Linear(3, 1))
        assert len(seq) == 3
        assert isinstance(seq[1], nn.ReLU)
        assert [type(m).__name__ for m in seq] == ["Linear", "ReLU", "Linear"]

    def test_sequential_forward_chains(self):
        seq = nn.Sequential(nn.Linear(2, 2, rng=default_rng(0)), nn.ReLU())
        out = seq(Tensor(np.ones((1, 2), dtype=np.float32)))
        assert out.shape == (1, 2)
        assert (out.numpy() >= 0).all()

    def test_module_list_append_and_index(self):
        ml = nn.ModuleList([nn.Linear(2, 2)])
        ml.append(nn.Linear(2, 3))
        assert len(ml) == 2
        assert ml[1].out_features == 3
        # parameters from both registered
        assert len(list(ml.parameters())) == 4
