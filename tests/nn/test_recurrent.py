"""LSTM cell and stacked LSTM."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import gradcheck
from repro.tensor.tensor import Tensor
from repro.utils.rng import default_rng


class TestLSTMCell:
    def test_output_shapes(self, rng):
        cell = nn.LSTMCell(4, 6, rng=default_rng(0))
        x = Tensor(rng.standard_normal((3, 4)).astype(np.float32))
        h, c = cell(x)
        assert h.shape == (3, 6)
        assert c.shape == (3, 6)

    def test_state_threading_changes_output(self, rng):
        cell = nn.LSTMCell(4, 6, rng=default_rng(0))
        x = Tensor(rng.standard_normal((2, 4)).astype(np.float32))
        h0, c0 = cell(x)
        h1, _ = cell(x, (h0, c0))
        assert not np.allclose(h0.numpy(), h1.numpy())

    def test_gate_layout_parameters(self):
        cell = nn.LSTMCell(3, 5)
        assert cell.weight_ih.shape == (20, 3)
        assert cell.weight_hh.shape == (20, 5)
        assert cell.bias_ih.shape == (20,)

    def test_cell_state_bounded_hidden(self, rng):
        cell = nn.LSTMCell(2, 4, rng=default_rng(0))
        x = Tensor(rng.standard_normal((2, 2)).astype(np.float32) * 100)
        h, _ = cell(x)
        assert (np.abs(h.numpy()) <= 1.0).all()  # o * tanh(c) is in [-1, 1]

    def test_gradcheck_through_cell(self, rng):
        cell = nn.LSTMCell(3, 4, rng=default_rng(1))
        x = Tensor(rng.standard_normal((2, 3)))
        gradcheck(lambda a: cell(a)[0], [x])


class TestLSTM:
    def test_output_shapes_stacked(self, rng):
        lstm = nn.LSTM(4, 6, num_layers=2, rng=default_rng(0))
        x = Tensor(rng.standard_normal((3, 5, 4)).astype(np.float32))
        out, (h, c) = lstm(x)
        assert out.shape == (3, 5, 6)
        assert h.shape == (3, 6)
        assert c.shape == (3, 6)

    def test_final_state_equals_last_output(self, rng):
        lstm = nn.LSTM(4, 6, rng=default_rng(0))
        x = Tensor(rng.standard_normal((2, 7, 4)).astype(np.float32))
        out, (h, _) = lstm(x)
        np.testing.assert_allclose(out.numpy()[:, -1], h.numpy(), rtol=1e-5)

    def test_gradient_flows_to_first_step(self, rng):
        lstm = nn.LSTM(3, 4, rng=default_rng(0))
        x = Tensor(rng.standard_normal((1, 6, 3)).astype(np.float32), requires_grad=True)
        _, (h, _) = lstm(x)
        h.sum().backward()
        # BPTT must reach the earliest timestep
        assert np.abs(x.grad[:, 0, :]).sum() > 0

    def test_sequence_order_matters(self, rng):
        lstm = nn.LSTM(3, 4, rng=default_rng(0))
        x = rng.standard_normal((1, 5, 3)).astype(np.float32)
        _, (h1, _) = lstm(Tensor(x))
        _, (h2, _) = lstm(Tensor(x[:, ::-1, :].copy()))
        assert not np.allclose(h1.numpy(), h2.numpy())

    def test_state_dict_keys(self):
        lstm = nn.LSTM(3, 4, num_layers=2)
        keys = set(lstm.state_dict())
        assert "cells.0.weight_ih" in keys
        assert "cells.1.weight_hh" in keys
        assert len(keys) == 8

    def test_deterministic_by_seed(self, rng):
        x = rng.standard_normal((2, 4, 3)).astype(np.float32)
        a = nn.LSTM(3, 4, rng=default_rng(5))(Tensor(x))[0].numpy()
        b = nn.LSTM(3, 4, rng=default_rng(5))(Tensor(x))[0].numpy()
        np.testing.assert_array_equal(a, b)
