"""Loss-landscape scanning."""

import numpy as np
import pytest

from repro.analysis.landscape import (
    loss_landscape_2d,
    random_plane_directions,
    render_landscape_ascii,
    sharpness_metrics,
)
from repro.data.dataset import ArrayDataset
from repro.models import build_model
from repro.utils.rng import default_rng


@pytest.fixture
def trained_setup(rng):
    """A logreg trained to the optimum of an easy separable problem."""
    model = build_model("logreg", seed=0, input_dim=4, num_classes=3)
    centers = np.eye(3, 4) * 6
    labels = np.repeat(np.arange(3), 30)
    feats = (centers[labels] + rng.standard_normal((90, 4)) * 0.2).astype(np.float32)
    ds = ArrayDataset(feats, labels)
    from repro.fl.trainer import LocalTrainer

    trainer = LocalTrainer(model, local_epochs=20, batch_size=30, lr=0.5, momentum=0.9)
    result = trainer.train(model.state_dict(), ds, np.random.default_rng(0))
    model.load_state_dict(result.state)
    return model, result.state, ds


class TestDirections:
    def test_filter_normalised_norms(self, rng):
        state = {"w": rng.standard_normal((4, 4)), "b": rng.standard_normal(4)}
        d1, d2 = random_plane_directions(state, rng)
        for key in state:
            np.testing.assert_allclose(
                np.linalg.norm(d1[key]), np.linalg.norm(state[key]), rtol=1e-6
            )

    def test_non_param_keys_zeroed(self, rng):
        state = {"w": rng.standard_normal(4), "running": rng.standard_normal(4)}
        d1, d2 = random_plane_directions(state, rng, param_keys={"w"})
        assert np.all(d1["running"] == 0)
        assert np.all(d2["running"] == 0)

    def test_directions_independent(self, rng):
        state = {"w": rng.standard_normal(100)}
        d1, d2 = random_plane_directions(state, rng)
        cos = d1["w"] @ d2["w"] / (np.linalg.norm(d1["w"]) * np.linalg.norm(d2["w"]))
        assert abs(cos) < 0.5

    def test_zero_weight_tensor_gets_zero_direction(self, rng):
        state = {"w": np.zeros(5)}
        d1, _ = random_plane_directions(state, rng)
        assert np.all(d1["w"] == 0)


class TestScan:
    def test_center_is_minimum_for_trained_model(self, trained_setup):
        model, state, ds = trained_setup
        scan = loss_landscape_2d(
            model, state, ds, default_rng(3), radius=1.0, grid=5
        )
        # trained optimum: centre loss must be the grid minimum (or close)
        assert scan.center_loss <= scan.losses.min() + 0.05
        assert scan.losses.shape == (5, 5)

    def test_loss_rises_with_radius(self, trained_setup):
        model, state, ds = trained_setup
        scan = loss_landscape_2d(model, state, ds, default_rng(3), radius=1.5, grid=7)
        metrics = sharpness_metrics(scan)
        assert metrics["rise_full"] > metrics["rise_half"] >= -1e-6

    def test_model_restored_after_scan(self, trained_setup):
        model, state, ds = trained_setup
        loss_landscape_2d(model, state, ds, default_rng(0), radius=0.5, grid=3)
        # scan loads perturbed states; caller must reload, but the scan
        # itself must not corrupt the passed-in state dict
        for k, v in state.items():
            assert np.isfinite(v).all()

    def test_grid_validation(self, trained_setup):
        model, state, ds = trained_setup
        with pytest.raises(ValueError):
            loss_landscape_2d(model, state, ds, default_rng(0), grid=4)

    def test_loss_at_radius(self, trained_setup):
        model, state, ds = trained_setup
        scan = loss_landscape_2d(model, state, ds, default_rng(3), radius=1.0, grid=5)
        assert scan.loss_at_radius(1.0) >= scan.center_loss - 1e-6
        with pytest.raises(ValueError):
            scan.loss_at_radius(50.0)


class TestRender:
    def test_ascii_dimensions(self, trained_setup):
        model, state, ds = trained_setup
        scan = loss_landscape_2d(model, state, ds, default_rng(3), radius=0.5, grid=5)
        text = render_landscape_ascii(scan)
        lines = text.splitlines()
        assert len(lines) == 5
        assert all(len(line) == 5 for line in lines)
