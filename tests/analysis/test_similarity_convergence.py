"""Similarity diagnostics and convergence probes."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    empirical_convergence_rate,
    inverse_t_envelope_fit,
    lemma34_contraction_gap,
)
from repro.analysis.similarity import (
    mean_pairwise_similarity,
    pairwise_cosine,
    pool_dispersion,
)


def pool_of(vectors):
    return [{"w": np.asarray(v, dtype=np.float64)} for v in vectors]


class TestSimilarityDiagnostics:
    def test_identical_pool(self):
        pool = pool_of([[1.0, 2.0]] * 3)
        assert mean_pairwise_similarity(pool) == pytest.approx(1.0)
        assert pool_dispersion(pool) == pytest.approx(0.0)

    def test_single_member_pool(self):
        assert mean_pairwise_similarity(pool_of([[1.0]])) == 1.0

    def test_dispersion_grows_with_spread(self, rng):
        base = rng.standard_normal(8)
        tight = pool_of([base + 0.01 * rng.standard_normal(8) for _ in range(4)])
        loose = pool_of([base + 1.0 * rng.standard_normal(8) for _ in range(4)])
        assert pool_dispersion(tight) < pool_dispersion(loose)

    def test_cross_aggregation_raises_similarity(self, rng):
        from repro.core.aggregation import cross_aggregate
        from repro.core.selection import select_in_order

        pool = pool_of(rng.standard_normal((5, 12)))
        before = mean_pairwise_similarity(pool)
        for r in range(6):
            pool = [
                cross_aggregate(pool[i], pool[select_in_order(i, r, 5)], 0.7)
                for i in range(5)
            ]
        after = mean_pairwise_similarity(pool)
        assert after > before

    def test_pairwise_matrix_shape(self, rng):
        sim = pairwise_cosine(pool_of(rng.standard_normal((3, 4))))
        assert sim.shape == (3, 3)


class TestEnvelopeFit:
    def test_recovers_exact_inverse_t(self):
        t = np.arange(1, 60)
        losses = 5.0 / (t + 3.0) + 0.2
        fit = inverse_t_envelope_fit(losses, f_star=0.2)
        assert fit["c"] == pytest.approx(5.0, rel=0.05)
        assert fit["lam"] == pytest.approx(3.0, rel=0.2)
        assert fit["r2"] > 0.999

    def test_slope_of_inverse_t_is_minus_one(self):
        t = np.arange(1, 100)
        losses = 2.0 / t
        assert empirical_convergence_rate(losses) == pytest.approx(-1.0, abs=0.01)

    def test_constant_curve_slope_zero(self):
        losses = np.full(50, 1.0)
        assert abs(empirical_convergence_rate(losses)) < 0.01

    def test_rejects_losses_below_fstar(self):
        with pytest.raises(ValueError):
            inverse_t_envelope_fit([1.0, 0.5], f_star=0.7)


class TestLemma34:
    def test_gap_nonnegative_for_inorder_permutation(self, rng):
        from repro.core.selection import select_in_order

        pool = pool_of(rng.standard_normal((6, 10)))
        reference = {"w": rng.standard_normal(10)}
        for r in range(5):
            co = [select_in_order(i, r, 6) for i in range(6)]
            gap = lemma34_contraction_gap(pool, co, alpha=0.8, reference=reference)
            assert gap >= -1e-10

    def test_gap_zero_for_identical_pool(self, rng):
        pool = pool_of([np.ones(4)] * 3)
        co = [1, 2, 0]
        gap = lemma34_contraction_gap(pool, co, 0.7, {"w": np.zeros(4)})
        assert gap == pytest.approx(0.0, abs=1e-12)

    def test_gap_can_fail_for_non_permutation(self):
        """All models aggregating toward the farthest member can move the
        pool *away* from a reference near the former consensus."""
        pool = pool_of([[0.0], [0.0], [10.0]])
        co = [2, 2, 2]  # not a permutation
        gap = lemma34_contraction_gap(pool, co, 0.5, {"w": np.array([0.0])})
        assert gap < 0
