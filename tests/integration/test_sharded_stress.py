"""Large-K sharded+memmap stress smoke (slow-marked, ISSUE 5).

Drives a K=200 pool of the seed CNN on the ``sharded`` backend with
``memmap`` shard placement through one full server-side round of pool
operations — Gram maintenance, Gram-driven selection, cross-
aggregation, global-model generation and the diagnostics — under a
small ``REPRO_POOL_BLOCK_BYTES`` budget, and asserts via tracemalloc
that **peak temporary allocation stays below one shard's footprint**.
The memmap pages themselves are file-backed and untracked, so what
tracemalloc sees is exactly the working-set claim: with S shards, the
server's resident cost per operation is bounded by a shard, not the
pool.

Excluded from tier-1 (``-m "not slow"`` in pytest.ini); CI runs it in
a separate non-blocking job.
"""

import os
import tracemalloc

import numpy as np
import pytest

from repro.core.gram import GramTracker
from repro.core.pool import PoolBuffer
from repro.models import build_model

K = 200
SHARDS = 8
BLOCK_BUDGET = 2 << 20  # 2 MiB of blocked-op temporaries


@pytest.mark.slow
def test_k200_sharded_memmap_peak_below_one_shard(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_MEMMAP_DIR", str(tmp_path))
    model = build_model("cnn", seed=0, input_shape=(3, 8, 8), num_classes=10)
    state = model.state_dict()
    param_keys = {name for name, _ in model.named_parameters()}

    pool = PoolBuffer.broadcast(
        state, K, dtype=np.float32,
        backend="sharded",
        backend_options={"shards": SHARDS, "placement": "memmap"},
    )
    storage = pool.storage
    assert storage.num_shards == SHARDS and storage.placement == "memmap"
    p = pool.num_scalars
    rng = np.random.default_rng(5)
    for i in range(K):  # perturb row by row — no (K, P) host copy
        pool.row(i)[:] += 0.01 * rng.standard_normal(p).astype(np.float32)

    shard_rows = max(b1 - b0 for b0, b1 in storage.shard_spans())
    shard_bytes = shard_rows * p * pool.dtype.itemsize
    full_f64 = K * p * 8

    monkeypatch.setenv("REPRO_POOL_BLOCK_BYTES", str(BLOCK_BUDGET))
    tracemalloc.start()
    try:
        # Incremental Gram: a round's worth of per-upload row updates
        # (shard-local contiguous dots), then Gram-driven selection,
        # the cross-aggregation blend, and the closed-form transform.
        tracker = GramTracker(pool, param_keys=param_keys)
        for i in range(K):
            tracker.update_row(i)
        co = pool.select_collaborators(
            "lowest", measure="cosine", param_keys=param_keys, gram=tracker.gram
        )
        fused = pool.cross_aggregate(co, 0.99)
        derived = tracker.cross_aggregated(co, 0.99, pool=fused)
        derived.similarity()
        derived.dispersion()
        # GlobalModelGen + out-of-core diagnostics on the fused pool.
        fused.mean_state(precise=True)
        fused.mean_state(precise=False)
        fused.similarity_to(0, param_keys=param_keys)
        fused.dispersion(param_keys=param_keys)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    assert fused.backend == "sharded"
    assert fused.storage.num_shards == SHARDS
    assert peak < shard_bytes, (
        f"peak traced allocation {peak / 1e6:.1f} MB exceeds one shard's "
        f"footprint {shard_bytes / 1e6:.1f} MB (whole-pool float64 would "
        f"be {full_f64 / 1e6:.1f} MB) — a whole-pool temporary is back "
        "on a sharded hot path"
    )
