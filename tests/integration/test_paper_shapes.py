"""Qualitative shape checks against the paper's headline claims.

These run small-but-real experiments on fixed seeds. They assert the
*direction* of effects (who wins, orderings), not magnitudes, matching
the reproduction contract in DESIGN.md. Marked slow-ish: ~60s total.
"""

import numpy as np
import pytest

from repro.api import compare_methods
from repro.experiments.fig3 import class_concentration, run_fig3
from repro.fl.config import FLConfig
from repro.fl.simulation import run_simulation


@pytest.fixture(scope="module")
def noniid_run():
    """Shared non-IID (beta=0.1) comparison, 40 rounds."""
    return compare_methods(
        ["fedavg", "fedcross"],
        dataset="synth_cifar10",
        model="mlp",
        heterogeneity=0.1,
        num_clients=10,
        participation=0.5,
        rounds=40,
        local_epochs=5,
        batch_size=20,
        eval_every=5,
        seed=3,
        method_params={"fedcross": {"alpha": 0.9, "selection": "lowest"}},
    )


class TestTable2Shape:
    def test_fedcross_beats_fedavg_noniid(self, noniid_run):
        """Paper Table II: FedCross achieves the highest accuracy."""
        fc = noniid_run["fedcross"].best_accuracy
        fa = noniid_run["fedavg"].best_accuracy
        assert fc > fa

    def test_fedcross_lags_early_leads_late(self, noniid_run):
        """Paper Fig. 5: FedCross starts slower, finishes higher."""
        fc = noniid_run["fedcross"].history.accuracies
        fa = noniid_run["fedavg"].history.accuracies
        assert fc[-1] > fa[-1]

    def test_iid_beats_noniid_for_fedavg(self, noniid_run):
        """Paper Section IV-D1: heterogeneity degrades accuracy. We
        assert it on FedAvg — FedCross is precisely the method that
        *erases* most of the non-IID penalty at this scale, so the
        cleanest visible degradation is the baseline's."""
        iid = compare_methods(
            ["fedavg"],
            dataset="synth_cifar10",
            model="mlp",
            heterogeneity="iid",
            num_clients=10,
            participation=0.5,
            rounds=40,
            local_epochs=5,
            batch_size=20,
            eval_every=5,
            seed=3,
        )["fedavg"]
        assert iid.best_accuracy > noniid_run["fedavg"].best_accuracy


class TestFig3Shape:
    def test_concentration_monotone_in_beta(self):
        result = run_fig3(betas=(0.1, 0.5, 1.0), num_clients=40, seed=0)
        c = result.concentrations
        assert c[0.1] > c[0.5] > c[1.0]


class TestAlphaCollapse:
    def test_alpha_0999_underperforms_moderate_alpha(self):
        """Paper Table III / Fig. 8: alpha=0.999 collapses."""
        base = FLConfig(
            dataset="synth_cifar10",
            model="mlp",
            heterogeneity=1.0,
            num_clients=10,
            participation=0.5,
            rounds=25,
            local_epochs=5,
            batch_size=20,
            eval_every=5,
            seed=4,
        )
        from repro.data.federated import build_federated_dataset

        fed = build_federated_dataset(
            base.dataset, num_clients=10, heterogeneity=1.0, seed=4
        )
        moderate = run_simulation(
            base.with_method("fedcross", alpha=0.9, selection="lowest"),
            fed_dataset=fed,
        )
        extreme = run_simulation(
            base.with_method("fedcross", alpha=0.999, selection="lowest"),
            fed_dataset=fed,
        )
        assert moderate.history.tail_accuracy(2) > extreme.history.tail_accuracy(2)


class TestMiddlewareUnification:
    def test_small_alpha_keeps_pool_tighter(self):
        """Paper Section III-B2/IV-E2: a smaller alpha mixes middleware
        models harder, so the pool stays tighter; at alpha -> 1 the
        models drift apart (the alpha=0.999 collapse). We compare final
        pool dispersion under alpha=0.8 vs alpha=0.999 on shared data."""
        from repro.analysis.similarity import pool_dispersion
        from repro.data.federated import build_federated_dataset
        from repro.fl.simulation import FLSimulation

        base = FLConfig(
            method="fedcross",
            dataset="synth_cifar10",
            model="mlp",
            heterogeneity=0.5,
            num_clients=8,
            participation=0.5,
            rounds=10,
            local_epochs=3,
            batch_size=20,
            eval_every=10,
            seed=2,
        )
        fed = build_federated_dataset(
            base.dataset, num_clients=8, heterogeneity=0.5, seed=2
        )
        dispersions = {}
        for alpha in (0.8, 0.999):
            cfg = base.with_method("fedcross", alpha=alpha, selection="lowest")
            sim = FLSimulation(cfg, fed_dataset=fed)
            sim.server.fit()
            dispersions[alpha] = pool_dispersion(
                sim.server.middleware, param_keys=sim.server.selector.param_keys
            )
        assert dispersions[0.8] < dispersions[0.999]
