"""Cross-method integration: fairness, determinism, learning, text tasks."""

import numpy as np
import pytest

from repro.api import compare_methods, quick_fedcross, run_method
from repro.fl.config import FLConfig

ALL_METHODS = ["fedavg", "fedprox", "scaffold", "fedgen", "clusamp", "fedcross"]


class TestQuickApi:
    def test_quick_fedcross_runs(self):
        result = quick_fedcross(seed=0, rounds=3, num_clients=6)
        assert len(result.history) == 3
        assert 0.0 <= result.final_accuracy <= 1.0

    def test_run_method_kwargs(self):
        result = run_method(
            "fedavg",
            dataset="synth_cifar10",
            model="mlp",
            num_clients=6,
            participation=0.5,
            rounds=2,
            local_epochs=1,
            seed=0,
            dataset_params={"samples_per_client": 20, "num_test": 50},
        )
        assert len(result.history) == 2


class TestCompareFairness:
    @pytest.fixture(scope="class")
    def results(self):
        return compare_methods(
            ALL_METHODS,
            dataset="synth_cifar10",
            model="mlp",
            heterogeneity=0.5,
            num_clients=8,
            participation=0.5,
            rounds=6,
            local_epochs=3,
            batch_size=20,
            seed=5,
            dataset_params={"samples_per_client": 30, "num_test": 100},
            method_params={"fedcross": {"alpha": 0.8}},
        )

    def test_all_methods_complete(self, results):
        assert set(results) == set(ALL_METHODS)
        for result in results.values():
            assert len(result.history) == 6

    def test_all_methods_above_chance(self, results):
        for name, result in results.items():
            assert result.best_accuracy > 0.12, f"{name} failed to learn"

    def test_state_keys_identical_across_methods(self, results):
        keys = {name: set(r.final_state) for name, r in results.items()}
        reference = keys["fedavg"]
        assert all(k == reference for k in keys.values())

    def test_comm_ordering_matches_table1(self, results):
        total = {m: r.history.total_comm_params() for m, r in results.items()}
        assert total["scaffold"] > total["fedgen"] > total["fedavg"]
        assert total["fedavg"] == total["fedprox"] == total["clusamp"] == total["fedcross"]


class TestDeterminism:
    def test_same_seed_bitwise_identical(self):
        kwargs = dict(
            dataset="synth_cifar10",
            model="mlp",
            num_clients=6,
            participation=0.5,
            rounds=3,
            local_epochs=1,
            seed=3,
            dataset_params={"samples_per_client": 20, "num_test": 50},
            method_params={"alpha": 0.9},
        )
        a = run_method("fedcross", **kwargs)
        b = run_method("fedcross", **kwargs)
        assert a.history.accuracies == b.history.accuracies
        for k in a.final_state:
            np.testing.assert_array_equal(a.final_state[k], b.final_state[k])


class TestTextTasks:
    def test_shakespeare_lstm_learns(self):
        result = run_method(
            "fedcross",
            dataset="synth_shakespeare",
            model="charlstm",
            num_clients=6,
            participation=0.5,
            rounds=8,
            local_epochs=3,
            batch_size=20,
            lr=0.1,
            momentum=0.9,
            seed=0,
            dataset_params={
                "samples_per_client": 100,
                "num_test": 150,
                "vocab_size": 12,
                "concentration": 0.1,
                "client_deviation": 0.2,
            },
            model_params={"hidden_size": 16, "embed_dim": 8, "num_layers": 1},
            method_params={"alpha": 0.8},
        )
        # clearly better than uniform guessing over 12 chars
        assert result.best_accuracy > 1.5 / 12

    def test_sent140_lstm_learns(self):
        result = run_method(
            "fedavg",
            dataset="synth_sent140",
            model="sentlstm",
            num_clients=8,
            participation=0.5,
            rounds=12,
            local_epochs=3,
            batch_size=20,
            lr=0.1,
            momentum=0.9,
            seed=0,
            dataset_params={"samples_per_user_mean": 150, "num_test": 200},
            model_params={"hidden_size": 16, "embed_dim": 8},
        )
        assert result.best_accuracy > 0.7


class TestVisionModels:
    @pytest.mark.parametrize("model", ["cnn_s", "resnet8", "vgg_mini"])
    def test_conv_models_run_federated(self, model):
        result = run_method(
            "fedcross",
            dataset="synth_cifar10",
            model=model,
            num_clients=4,
            participation=0.5,
            rounds=2,
            local_epochs=1,
            batch_size=20,
            seed=0,
            dataset_params={"samples_per_client": 20, "num_test": 40},
            method_params={"alpha": 0.8},
        )
        assert len(result.history) == 2
        assert np.isfinite(result.final_accuracy)
