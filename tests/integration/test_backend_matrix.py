"""Cross-backend equivalence matrix (ISSUE 5).

One parametrised suite replaces the ad-hoc pairwise checks that used to
live in ``tests/core/test_storage.py`` (dense-vs-memmap fits) and
``tests/fl/test_streaming.py`` (serial-vs-thread streaming): a short
FedCross fit must be **bit-identical** across the full grid

    {dense, memmap, sharded} × {serial, thread, process}
                             × {streaming, gathered}

plus the ``distributed`` leg (ISSUE 7): the same fit over two localhost
shard-host processes, with either coordinator-side ``serial`` execution
or the co-located ``distributed`` execution backend (legs train on the
host owning their upload row, and the communication ledger switches to
measured counters) must land in the same cell of the matrix

— same histories (accuracy/loss/train-loss/communication), same final
global state, same final pool matrix — against one reference leg
(dense / serial / gathered).  A smaller method-coverage class keeps the
storage grid honest for a FedAvg-family method (``fedavg``) and a
hook-heavy one (``scaffold``) too.

Why this is expected to hold exactly: selection runs on the incremental
GramTracker (per-pair contiguous float64 dots — bitwise independent of
backend, shard layout and upload order), cross-aggregation is
elementwise (bit-identical under any block partition), and both
``mean_state`` modes partition rows purely by the byte budget, never
the shard layout.
"""

import numpy as np
import pytest

from repro.fl.config import FLConfig
from repro.fl.simulation import FLSimulation

STORAGES = ("dense", "memmap", "sharded")
EXECUTIONS = ("serial", "thread", "process")
SCHEDULES = (True, False)  # streaming, gathered

# 3 shards over K=4 → uneven spans (1, 2, 1): exercises cross-shard
# blocks, not just the trivial even split.
SHARDS = 3

# 2 localhost shard hosts over K=4 → spans (2, 2); kept at the pooled
# default so every distributed test reuses one warm host cluster.
HOSTS = 2


def _config(method: str, backend: str, execution: str, streaming: bool) -> FLConfig:
    return FLConfig(
        method=method,
        dataset="synth_cifar10",
        model="mlp",
        heterogeneity=0.5,
        num_clients=4,
        participation=1.0,
        rounds=2,
        local_epochs=1,
        batch_size=16,
        eval_every=1,
        seed=13,
        backend=backend,
        shards=SHARDS if backend == "sharded" else None,
        hosts=HOSTS if backend == "distributed" else None,
        execution=execution,
        workers=2,
        streaming=streaming,
        dataset_params={"samples_per_client": 20, "num_test": 40},
    )


def _run(config: FLConfig):
    sim = FLSimulation(config)
    result = sim.run()
    pool = getattr(sim.server, "pool", None)
    matrix = np.array(pool.matrix, copy=True) if pool is not None else None
    return result, matrix


def _assert_identical(ref, got, label):
    ref_result, ref_pool = ref
    got_result, got_pool = got
    for a, b in zip(ref_result.history.records, got_result.history.records):
        assert a.accuracy == b.accuracy, label
        assert a.loss == b.loss, label
        assert a.train_loss == b.train_loss, label
        assert a.comm_up_params == b.comm_up_params, label
        assert a.comm_down_params == b.comm_down_params, label
    for key in ref_result.final_state:
        np.testing.assert_array_equal(
            ref_result.final_state[key], got_result.final_state[key], err_msg=label
        )
    if ref_pool is not None:
        np.testing.assert_array_equal(ref_pool, got_pool, err_msg=label)


@pytest.fixture(scope="module")
def fedcross_reference():
    """The dense / serial / gathered FedCross leg, run once."""
    return _run(_config("fedcross", "dense", "serial", streaming=False))


class TestFedCrossBackendMatrix:
    @pytest.mark.parametrize("backend", STORAGES)
    @pytest.mark.parametrize("execution", EXECUTIONS)
    @pytest.mark.parametrize(
        "streaming", SCHEDULES, ids=["streaming", "gathered"]
    )
    def test_fit_bit_identical_to_reference(
        self, fedcross_reference, backend, execution, streaming
    ):
        if (backend, execution, streaming) == ("dense", "serial", False):
            pytest.skip("this cell is the reference leg")
        got = _run(_config("fedcross", backend, execution, streaming))
        _assert_identical(
            fedcross_reference,
            got,
            f"fedcross/{backend}/{execution}/"
            f"{'streaming' if streaming else 'gathered'}",
        )

    def test_sharded_pool_actually_sharded(self):
        """The matrix must be exercising real shards, not a degenerate
        single-span layout."""
        sim = FLSimulation(_config("fedcross", "sharded", "serial", True))
        sim.run()
        storage = sim.server.pool.storage
        assert storage.name == "sharded"
        assert storage.num_shards == SHARDS
        assert storage.shard_boundaries() == (0, 1, 3, 4)

    def test_memmap_shard_placement_bit_identical_too(self, fedcross_reference):
        """`FLConfig.shard_placement="memmap"` (the pools-beyond-RAM
        layout) must reach the storage and stay bit-identical."""
        config = _config("fedcross", "sharded", "serial", True).replace(
            shard_placement="memmap"
        )
        sim = FLSimulation(config)
        result = sim.run()
        storage = sim.server.pool.storage
        assert storage.placement == "memmap"
        matrix = np.array(sim.server.pool.matrix, copy=True)
        _assert_identical(
            fedcross_reference, (result, matrix), "fedcross/sharded-memmap"
        )


class TestArrayBackendLeg:
    """The array-backend dimension of the matrix (ISSUE 6): a FedCross
    fit pinned to ``array_backend="numpy"`` must be bit-identical to
    the reference leg, whose tensor math predates explicit selection —
    i.e. dispatched numpy *is* the seed direct-numpy path.  The
    ``process`` cell additionally proves the backend name rides the
    TrainerSpec into worker processes."""

    @pytest.mark.parametrize("execution", ["serial", "process"])
    def test_numpy_dispatch_bit_identical(self, fedcross_reference, execution):
        config = _config("fedcross", "dense", execution, streaming=True).replace(
            array_backend="numpy"
        )
        got = _run(config)
        _assert_identical(
            fedcross_reference, got, f"fedcross/array-numpy/{execution}"
        )


class TestDistributedLeg:
    """The multi-node cell of the matrix (ISSUE 7): pool rows live in
    two localhost shard-host processes behind the socket-RPC transport.
    With ``execution="serial"`` every row crosses the wire through the
    coordinator; with ``execution="distributed"`` each leg trains on
    the host owning its upload row and only scalars come back.  Both
    must be bit-identical to the single-process reference — including
    the communication columns, which the distributed execution backend
    *measures* instead of charging analytically."""

    @pytest.mark.parametrize("execution", ["serial", "distributed"])
    @pytest.mark.parametrize(
        "streaming", SCHEDULES, ids=["streaming", "gathered"]
    )
    def test_fit_bit_identical_to_reference(
        self, fedcross_reference, execution, streaming
    ):
        got = _run(_config("fedcross", "distributed", execution, streaming))
        _assert_identical(
            fedcross_reference,
            got,
            f"fedcross/distributed/{execution}/"
            f"{'streaming' if streaming else 'gathered'}",
        )

    def test_pool_actually_spans_two_hosts(self):
        sim = FLSimulation(_config("fedcross", "distributed", "serial", True))
        sim.run()
        storage = sim.server.pool.storage
        assert storage.name == "distributed"
        assert storage.num_hosts == HOSTS
        assert storage.shard_boundaries() == (0, 2, 4)

    def test_scaffold_with_colocated_execution(self):
        """SCAFFOLD reads every upload state back on the coordinator
        (control-variate updates), driving the lazy remote-row fetch
        path — and its measured comm must match the analytic charge."""
        ref = _run(_config("scaffold", "dense", "serial", streaming=True))
        got = _run(_config("scaffold", "distributed", "distributed", streaming=True))
        _assert_identical(ref, got, "scaffold/distributed/distributed")


class TestMethodCoverageAcrossStorage:
    """FedAvg-family reduction path and SCAFFOLD's side-channel packing
    must stay bit-transparent on every storage backend too (the
    successor of the old dense-vs-memmap end-to-end checks)."""

    @pytest.mark.parametrize("method", ["fedavg", "scaffold"])
    @pytest.mark.parametrize("backend", ["memmap", "sharded", "distributed"])
    def test_history_and_state_bit_identical_to_dense(self, method, backend):
        ref = _run(_config(method, "dense", "serial", streaming=True))
        got = _run(_config(method, backend, "serial", streaming=True))
        _assert_identical(ref, got, f"{method}/{backend}")


class TestAsyncRoundLeg:
    """The round-schedule dimension of the matrix (ISSUE 10).

    ``round_mode="async"`` with ``max_staleness=0`` must be bit-identical
    to the sync reference on every backend — including the distributed
    cell, whose communication columns are *measured* at the sockets.
    With ``max_staleness=2`` the serial cell stays bitwise (groups
    complete eagerly, so rounds never truly overlap), while genuinely
    overlapped cells (process workers, co-located distributed
    execution) are held to the structural invariants: one record per
    round in order, the ``async`` speculation/reconcile counters, and a
    finite final pool."""

    CELLS = (
        ("dense", "serial"),
        ("dense", "process"),
        ("distributed", "distributed"),
    )

    @pytest.mark.parametrize("backend,execution", CELLS)
    def test_zero_staleness_bit_identical(
        self, fedcross_reference, backend, execution
    ):
        config = _config("fedcross", backend, execution, streaming=True).replace(
            round_mode="async", max_staleness=0
        )
        _assert_identical(
            fedcross_reference,
            _run(config),
            f"fedcross/{backend}/{execution}/async-s0",
        )

    def test_serial_overlap_window_bit_identical(self, fedcross_reference):
        config = _config("fedcross", "dense", "serial", streaming=True).replace(
            round_mode="async", max_staleness=2
        )
        _assert_identical(
            fedcross_reference, _run(config), "fedcross/dense/serial/async-s2"
        )

    @pytest.mark.parametrize(
        "backend,execution", (("dense", "process"), ("distributed", "distributed"))
    )
    def test_overlapped_invariants(self, backend, execution):
        config = _config("fedcross", backend, execution, streaming=True).replace(
            round_mode="async", max_staleness=2
        )
        result, matrix = _run(config)
        records = result.history.records
        assert [r.round_idx for r in records] == list(
            range(config.rounds)
        ), f"{backend}/{execution}"
        for r in records:
            info = r.extras["async"]
            assert info["speculative_blends"] >= 0
            assert info["max_dispatch_staleness"] <= 2
            assert r.comm_up_params > 0 and r.comm_down_params > 0
            assert r.accuracy is not None and 0.0 <= r.accuracy <= 1.0
        assert matrix is not None and np.isfinite(matrix).all()
