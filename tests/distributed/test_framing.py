"""Wire framing: roundtrips, payload-length arithmetic, EOF handling."""

import socket
import struct
import threading

import numpy as np
import pytest

from repro.distributed.framing import (
    ConnectionClosed,
    encode_message,
    recv_message,
    send_message,
)


def _roundtrip(header, arrays=None, blob=None):
    a, b = socket.socketpair()
    try:
        send_message(a, header, arrays, blob)
        return recv_message(b)
    finally:
        a.close()
        b.close()


class TestEncode:
    def test_payload_length_matches_chunks(self):
        """The declared payload length must equal the bytes that follow
        it — for *N-dimensional* arrays too (a raw ndarray memoryview's
        ``len()`` is ``shape[0]``, not ``nbytes``; regression for the
        truncated-frame bug)."""
        arrays = {
            "m": np.arange(20, dtype=np.float32).reshape(4, 5),
            "v": np.arange(3, dtype=np.int64),
            "t": np.zeros((2, 3, 4), dtype=np.float64),
        }
        chunks = encode_message({"op": "x"}, arrays, b"tail")
        (declared,) = struct.unpack(">Q", bytes(chunks[0]))
        assert sum(len(bytes(c)) for c in chunks[1:]) == declared

    def test_non_contiguous_arrays_are_packed_contiguously(self):
        base = np.arange(24, dtype=np.float32).reshape(4, 6)
        view = base[:, ::2]  # stride-2 columns: not C-contiguous
        header, arrays, _ = _roundtrip({"op": "x"}, {"v": view})
        np.testing.assert_array_equal(arrays["v"], view)


class TestRoundtrip:
    def test_header_arrays_blob(self):
        arrays = {
            "row": np.linspace(-1, 1, 7, dtype=np.float32),
            "m": np.arange(12, dtype=np.float64).reshape(3, 4),
            "idx": np.array([2, 0, 5], dtype=np.int64),
            "mask": np.array([True, False, True]),
        }
        header, got, blob = _roundtrip(
            {"op": "write", "lo": 3, "nested": {"a": [1, 2]}}, arrays, b"\x00pickled"
        )
        assert header == {"op": "write", "lo": 3, "nested": {"a": [1, 2]}}
        assert blob == b"\x00pickled"
        assert set(got) == set(arrays)
        for name, value in arrays.items():
            assert got[name].dtype == value.dtype
            np.testing.assert_array_equal(got[name], value)

    def test_decoded_arrays_are_writable_views(self):
        """A shard host adopts received rows without another copy."""
        _, got, _ = _roundtrip({}, {"v": np.ones(4, dtype=np.float32)})
        got["v"][0] = 7.0  # must not raise
        assert got["v"][0] == 7.0

    def test_empty_message(self):
        header, arrays, blob = _roundtrip({})
        assert header == {} and arrays == {} and blob == b""

    def test_numpy_scalars_in_header(self):
        header, _, _ = _roundtrip({"k": np.int64(4), "loss": np.float32(0.5)})
        assert header["k"] == 4
        assert header["loss"] == pytest.approx(0.5)

    def test_bitwise_float_roundtrip(self):
        value = np.array([np.pi, -0.0, np.finfo(np.float32).tiny], dtype=np.float32)
        _, got, _ = _roundtrip({}, {"v": value})
        assert got["v"].tobytes() == value.tobytes()

    def test_frames_are_delimited(self):
        a, b = socket.socketpair()
        try:
            for i in range(3):
                send_message(a, {"i": i}, {"v": np.full(5, i, dtype=np.float32)})
            for i in range(3):
                header, arrays, _ = recv_message(b)
                assert header["i"] == i
                np.testing.assert_array_equal(
                    arrays["v"], np.full(5, i, dtype=np.float32)
                )
        finally:
            a.close()
            b.close()


class TestFailure:
    def test_eof_mid_frame_raises_connection_closed(self):
        a, b = socket.socketpair()
        chunks = encode_message({"op": "x"}, {"v": np.zeros(100, dtype=np.float64)})
        frame = b"".join(bytes(c) for c in chunks)
        a.sendall(frame[: len(frame) // 2])
        a.close()
        with pytest.raises(ConnectionClosed):
            recv_message(b)
        b.close()

    def test_eof_before_any_byte_raises_connection_closed(self):
        a, b = socket.socketpair()
        a.close()
        with pytest.raises(ConnectionClosed):
            recv_message(b)
        b.close()

    def test_absurd_frame_length_rejected_before_allocation(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">Q", 1 << 41))
            with pytest.raises(OSError, match="transport limit"):
                recv_message(b)
        finally:
            a.close()
            b.close()


def test_concurrent_send_receive_thread():
    """A frame larger than the socketpair buffer still transfers when
    the peer reads concurrently (sendall + recv_into loop)."""
    a, b = socket.socketpair()
    big = np.random.default_rng(0).random((512, 512))  # 2 MiB
    result = {}

    def reader():
        result["frame"] = recv_message(b)

    t = threading.Thread(target=reader)
    t.start()
    send_message(a, {"op": "big"}, {"m": big})
    t.join(timeout=10)
    assert not t.is_alive()
    header, arrays, _ = result["frame"]
    assert header == {"op": "big"}
    np.testing.assert_array_equal(arrays["m"], big)
    a.close()
    b.close()
