"""DistributedStorage ops vs dense, over two real localhost hosts.

Every row-protocol op of the ``distributed`` backend must be bitwise
equivalent to the same op on a dense in-process matrix — rows cross
the socket as raw buffer-dtype bytes and the hosts run the exact
single-node kernels.  The cluster is the pooled 2-host fleet, so the
whole module shares two warm worker processes.
"""

import numpy as np
import pytest

from repro.core.pool import PoolBuffer
from repro.core.storage import POOL_BACKENDS
from repro.distributed.cluster import get_cluster
from repro.distributed.storage import DistributedStorage

K, P = 5, 7


@pytest.fixture(scope="module")
def cluster():
    return get_cluster(2)


@pytest.fixture()
def reference():
    return np.arange(K * P, dtype=np.float32).reshape(K, P) / 3.0


@pytest.fixture()
def storage(cluster, reference):
    return DistributedStorage.from_array(reference, cluster=cluster)


class TestRegistry:
    def test_registered_and_lazily_resolvable(self):
        assert "distributed" in POOL_BACKENDS.available()
        assert POOL_BACKENDS.resolve("distributed") is DistributedStorage
        assert DistributedStorage.name == "distributed"

    def test_pool_buffer_construction_with_hosts_option(self, reference):
        states = [{"w": reference[i]} for i in range(K)]
        pool = PoolBuffer.from_states(
            states, backend="distributed", backend_options={"hosts": 2}
        )
        assert pool.backend == "distributed"
        assert pool.storage.num_hosts == 2
        np.testing.assert_array_equal(np.asarray(pool.matrix), reference)

    def test_explicit_cluster_and_hosts_must_agree(self, cluster):
        with pytest.raises(ValueError, match="hosts=3"):
            DistributedStorage.allocate((K, P), hosts=3, cluster=cluster)

    def test_unknown_options_rejected(self, cluster):
        with pytest.raises(ValueError):
            DistributedStorage.allocate((K, P), cluster=cluster, shards=3)


class TestLayout:
    def test_spans_tile_the_pool(self, storage):
        assert storage.shard_boundaries() == (0, 2, 5)
        assert storage.host_spans() == [(0, 2), (2, 5)]
        assert storage.shape == (K, P)
        assert storage.dtype == np.float32

    def test_owner_of(self, storage):
        assert storage.owner_of(0) == (0, 0)
        assert storage.owner_of(1) == (0, 1)
        assert storage.owner_of(2) == (1, 0)
        assert storage.owner_of(4) == (1, 2)
        with pytest.raises(IndexError):
            storage.owner_of(K)

    def test_empty_spans_allowed(self, cluster):
        # K=1 over 2 hosts: host 1 owns an empty shard; ops still work.
        row = np.ones((1, P), dtype=np.float32)
        storage = DistributedStorage.from_array(row, cluster=cluster)
        np.testing.assert_array_equal(storage.row_block(0, 1), row)


class TestRowProtocol:
    def test_array_gathers_bitwise(self, storage, reference):
        gathered = storage.array
        np.testing.assert_array_equal(gathered, reference)
        assert not gathered.flags.writeable

    def test_row_is_readonly_fetched_copy(self, storage, reference):
        row = storage.row(3)
        np.testing.assert_array_equal(row, reference[3])
        assert not row.flags.writeable

    def test_row_block_within_and_across_hosts(self, storage, reference):
        for start, stop in [(0, 2), (3, 5), (1, 4), (0, K), (2, 2)]:
            np.testing.assert_array_equal(
                storage.row_block(start, stop), reference[start:stop]
            )

    def test_write_rows_across_host_boundary(self, storage, reference):
        update = -np.ones((3, P), dtype=np.float32)
        storage.write_rows(1, update)  # rows 1..3 span hosts 0 and 1
        expected = reference.copy()
        expected[1:4] = update
        np.testing.assert_array_equal(storage.array, expected)

    def test_gather_rows_preserves_request_order(self, storage, reference):
        indices = np.array([4, 0, 3, 0, 2])
        np.testing.assert_array_equal(
            storage.gather_rows(indices), reference[indices]
        )

    def test_fill_rows_broadcast(self, storage):
        fill = np.linspace(0, 1, P, dtype=np.float32)
        storage.fill_rows(fill)
        np.testing.assert_array_equal(
            storage.array, np.tile(fill, (K, 1))
        )

    def test_open_commit_row_stages_one_rpc_write(self, storage, reference):
        staged = storage.open_row(1)
        assert staged.shape == (P,) and staged.dtype == np.float32
        staged[:] = 9.0
        storage.commit_row(1, staged)
        expected = reference.copy()
        expected[1] = 9.0
        np.testing.assert_array_equal(storage.array, expected)

    def test_clone_is_independent(self, storage, reference):
        clone = storage.clone()
        assert clone.buffer_id != storage.buffer_id
        storage.write_rows(0, np.zeros((1, P), dtype=np.float32))
        np.testing.assert_array_equal(clone.array, reference)

    def test_allocate_like_reuses_cluster(self, storage):
        other = storage.allocate_like((2, 4), dtype=np.float64)
        assert other.cluster is storage.cluster
        assert other.shape == (2, 4)
        assert other.dtype == np.float64
        other.fill_rows(np.ones(4))
        np.testing.assert_array_equal(other.array, np.ones((2, 4)))


class TestMaskedDots:
    def _local_dots(self, reference, vector, mask):
        dots = np.empty(K)
        for j in range(K):
            row = reference[j][mask] if mask is not None else reference[j]
            dots[j] = np.dot(
                np.ascontiguousarray(row, dtype=np.float64), vector
            )
        return dots

    def test_unmasked_bitwise_equal_to_local_kernel(self, storage, reference):
        vector = np.ascontiguousarray(reference[1], dtype=np.float64)
        np.testing.assert_array_equal(
            storage.masked_dots(vector, None),
            self._local_dots(reference, vector, None),
        )

    def test_masked_bitwise_equal_to_local_kernel(self, storage, reference):
        mask = np.zeros(P, dtype=bool)
        mask[[0, 2, 5]] = True
        vector = np.ascontiguousarray(reference[4][mask], dtype=np.float64)
        np.testing.assert_array_equal(
            storage.masked_dots(vector, mask),
            self._local_dots(reference, vector, mask),
        )

    def test_mask_registered_once_per_content(self, storage):
        mask = np.ones(P, dtype=bool)
        first = storage.cluster.ensure_mask(mask)
        second = storage.cluster.ensure_mask(mask.copy())
        assert first == second


class TestMemmapPlacement:
    def test_hosts_keep_shards_on_disk(self, cluster, reference):
        storage = DistributedStorage.from_array(
            reference, cluster=cluster, placement="memmap"
        )
        assert storage.placement == "memmap"
        np.testing.assert_array_equal(storage.array, reference)
        like = storage.allocate_like((K, P))
        assert like.placement == "memmap"
