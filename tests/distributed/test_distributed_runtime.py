"""Runtime behaviour of the shard-actor fleet: failure surfacing,
measured communication accounting, and the co-location acceptance
property (trained upload rows never transit the coordinator).
"""

import socket

import pytest

from repro.distributed import DistributedError
from repro.distributed.cluster import get_cluster, shutdown_clusters
from repro.fl.callbacks import ServerCallback
from repro.fl.comm import analytic_round_cost
from repro.fl.config import FLConfig
from repro.fl.simulation import FLSimulation

HOSTS = 2


def _config(method="fedcross", execution="distributed", rounds=2, streaming=True):
    return FLConfig(
        method=method,
        dataset="synth_cifar10",
        model="mlp",
        heterogeneity=0.5,
        num_clients=4,
        participation=1.0,
        rounds=rounds,
        local_epochs=1,
        batch_size=16,
        eval_every=1,
        seed=13,
        backend="distributed",
        hosts=HOSTS,
        execution=execution,
        streaming=streaming,
        dataset_params={"samples_per_client": 20, "num_test": 40},
    )


class TestMeasuredLedger:
    """Satellite 1: the distributed execution backend *measures* the
    parameters crossing its dispatch/collect paths, and the measured
    per-round totals must equal :func:`analytic_round_cost` exactly —
    FedCross moves K models each way, SCAFFOLD doubles both directions
    with its control variates."""

    @pytest.mark.parametrize("method", ["fedcross", "scaffold"])
    def test_measured_matches_analytic(self, method):
        sim = FLSimulation(_config(method=method))
        result = sim.run()
        k = sim.config.clients_per_round
        cost = analytic_round_cost(method, k, sim.server.model_size)
        assert result.history.records, "no rounds recorded"
        for record in result.history.records:
            assert record.comm_up_params == int(cost["up"]), method
            assert record.comm_down_params == int(cost["down"]), method

    def test_serial_execution_keeps_analytic_charge(self):
        """Distributed *storage* under the serial execution backend
        still uses the server's analytic charge (nothing marks the
        ledger measured) — and lands on the same numbers."""
        sim = FLSimulation(_config(execution="serial"))
        result = sim.run()
        k = sim.config.clients_per_round
        cost = analytic_round_cost("fedcross", k, sim.server.model_size)
        for record in result.history.records:
            assert record.comm_up_params == int(cost["up"])
            assert record.comm_down_params == int(cost["down"])


class TestNoCoordinatorTransit:
    """The acceptance property of co-located execution: each leg's
    trained state is packed into the shard host that owns its upload
    row — the ``P`` trained floats never ride a socket back through
    the coordinator."""

    def test_upload_rows_written_host_side_only(self):
        cluster = get_cluster(HOSTS)

        def _counts(purpose):
            merged = {}
            for handle in cluster.handles:
                for key, n in handle.channel(purpose).op_counts.items():
                    merged[key] = merged.get(key, 0) + n
            return merged

        def _received(purpose):
            return sum(h.channel(purpose).scalars_received for h in cluster.handles)

        data_before = _counts("data")
        exec_before = _counts("exec")
        exec_received_before = _received("exec")

        config = _config()
        sim = FLSimulation(config)
        sim.run()
        uploads = sim.server.uploads.storage.buffer_id
        k, rounds = sim.config.clients_per_round, sim.config.rounds

        def _delta(after, before, key):
            return after.get(key, 0) - before.get(key, 0)

        data_after = _counts("data")
        exec_after = _counts("exec")
        # Every leg trained exactly once, on an exec channel...
        assert _delta(exec_after, exec_before, ("train_leg", uploads)) == k * rounds
        # ...no upload row was ever pushed through a coordinator write...
        assert _delta(data_after, data_before, ("write_rows", uploads)) == 0
        assert _delta(data_after, data_before, ("fill_rows", uploads)) == 0
        # ...and nothing array-shaped came back on the exec channels at
        # all: train_leg replies are scalars plus RNG state only.
        assert _received("exec") - exec_received_before == 0


class TestFaultSurfacing:
    """Satellite 2: a shard host dying mid-fit must surface as a clean
    :class:`DistributedError` naming the dead shard host — never a hang
    or a raw ``ConnectionResetError``."""

    @pytest.mark.parametrize("execution", ["serial", "distributed"])
    def test_host_killed_between_rounds(self, execution):
        cluster = get_cluster(HOSTS)

        class KillHostAfterFirstRound(ServerCallback):
            def __init__(self):
                self.rounds_seen = 0

            def on_round_end(self, server, record):
                self.rounds_seen += 1
                if self.rounds_seen == 1:
                    handle = cluster.handles[1]
                    handle.process.kill()
                    handle.process.join(timeout=5)

        try:
            sim = FLSimulation(
                _config(execution=execution, rounds=3),
                callbacks=[KillHostAfterFirstRound()],
            )
            with pytest.raises(DistributedError, match="shard host 1/2"):
                sim.run()
        finally:
            # Leave no half-dead fleet in the pool for later tests.
            shutdown_clusters()

    def test_remote_exception_carries_type_and_no_retry(self):
        cluster = get_cluster(HOSTS)
        with pytest.raises(DistributedError, match="unknown op"):
            cluster.call(0, "no_such_op")
        with pytest.raises(DistributedError, match="KeyError"):
            cluster.call(0, "row_block", {"buffer": "nope", "lo": 0, "hi": 1})

    def test_transport_error_recovers_with_one_reconnect(self):
        """A broken socket with a live host recovers transparently:
        the channel reconnects once and replays the idempotent op."""
        cluster = get_cluster(HOSTS)
        channel = cluster.handles[0].channel("data")
        reply, _, _ = channel.call("ping")
        assert reply["index"] == 0
        channel._sock.shutdown(socket.SHUT_RDWR)  # sever under the lock's nose
        reply, _, _ = channel.call("ping")
        assert reply["index"] == 0

    def test_dead_pooled_cluster_is_replaced(self):
        first = get_cluster(HOSTS)
        first.handles[0].process.kill()
        first.handles[0].process.join(timeout=5)
        assert not first.alive()
        second = get_cluster(HOSTS)
        assert second is not first
        assert second.alive()
        reply, _, _ = second.call(0, "ping")
        assert reply["index"] == 0
