"""Transport faults and failover at the RPC/cluster layer.

Three contracts under test, bottom-up:

* :class:`RPCChannel` reconnects and resends exactly once on a
  transport error — whether the request never left or the reply died
  halfway — and surfaces :class:`DistributedError` when the retry
  fails too.  Ops must therefore be idempotent, which the row
  protocol's absolute-offset writes are.
* Teardown is idempotent at every level: a handle, a cluster and the
  process-wide pool can each be closed twice without raising, and a
  closed handle refuses to mint new channels.
* A replicated storage survives a SIGKILLed shard host: the fleet is
  respawned, the mirror replayed, and rows whose latest write died
  with the host are *guarded*, not silently served stale.
"""

import numpy as np
import pytest

from repro.distributed import DistributedError
from repro.distributed.cluster import HostCluster, get_cluster, shutdown_clusters
from repro.distributed.storage import DistributedStorage
from repro.faults.inject import flaky_transport


@pytest.fixture(scope="module")
def cluster():
    return get_cluster(2)


@pytest.fixture()
def chan(cluster):
    return cluster.handles[0].channel("data")


class TestReconnect:
    def test_request_side_failure_reconnects_and_resends(self, chan):
        retries = chan.transport_retries
        pings = chan.op_counts.get(("ping", None), 0)
        with flaky_transport(chan, "request", failures=1) as state:
            reply, _, _ = chan.call("ping")
        assert reply["index"] == 0
        assert state["remaining"] == 0  # the injected failure really fired
        assert chan.transport_retries - retries == 1
        assert chan.op_counts.get(("ping", None), 0) - pings == 1

    def test_reply_side_failure_retries_idempotently(self, chan):
        # The host executed the op before the reply died, so the resend
        # runs it twice — absolute-offset writes make that harmless.
        meta = {"buffer": "rpcflaky", "rows": 4, "p": 3, "dtype": "<f8"}
        chan.call("alloc", meta)
        try:
            values = np.arange(12, dtype=np.float64).reshape(4, 3)
            with flaky_transport(chan, "reply", failures=1) as state:
                chan.call("write_rows", {"buffer": "rpcflaky", "lo": 0},
                          {"values": values})
            assert state["remaining"] == 0
            _, arrays, _ = chan.call(
                "row_block", {"buffer": "rpcflaky", "lo": 0, "hi": 4}
            )
            np.testing.assert_array_equal(arrays["block"], values)
        finally:
            chan.call("free", {"buffer": "rpcflaky"})

    def test_exhausted_budget_raises_distributed_error(self, chan):
        retries = chan.transport_retries
        with flaky_transport(chan, "request", failures=2):
            with pytest.raises(DistributedError, match="one\\s+reconnect attempt"):
                chan.call("ping")
        assert chan.transport_retries - retries == 2
        # The channel is healthy again once the chaos context exits.
        reply, _, _ = chan.call("ping")
        assert reply["index"] == 0


class TestFailover:
    def test_replicated_storage_survives_host_kill(self):
        cluster = HostCluster(2)
        try:
            data = np.arange(24, dtype=np.float64).reshape(6, 4)
            storage = DistributedStorage.from_array(
                data, cluster=cluster, replicate=True
            )
            assert storage.replicated
            victim = cluster.handles[0]
            victim.process.kill()
            victim.process.join(timeout=5.0)
            # The next read transparently respawns the host and replays
            # the mirror: the full matrix comes back bit-identical.
            np.testing.assert_array_equal(storage.row_block(0, 6), data)
            # The respawned host's inventory matches the coordinator's.
            reply, _, _ = cluster.call(0, "stats")
            assert storage.buffer_id in reply["buffers"]
        finally:
            cluster.shutdown()

    def test_unreplicated_storage_still_fails_loudly(self):
        cluster = HostCluster(2)
        try:
            data = np.arange(24, dtype=np.float64).reshape(6, 4)
            storage = DistributedStorage.from_array(data, cluster=cluster)
            assert storage.ensure_fleet() == []  # nothing to replay from
            cluster.handles[0].process.kill()
            cluster.handles[0].process.join(timeout=5.0)
            with pytest.raises(DistributedError):
                storage.row_block(0, 6)
        finally:
            cluster.shutdown()

    def test_rows_written_host_side_are_lost_not_stale(self):
        cluster = HostCluster(2)
        try:
            data = np.arange(24, dtype=np.float64).reshape(6, 4)
            storage = DistributedStorage.from_array(
                data, cluster=cluster, replicate=True
            )
            # A training leg landed host-side on row 0: the mirror is
            # now behind that host.
            storage.note_remote_write(0)
            cluster.handles[0].process.kill()
            cluster.handles[0].process.join(timeout=5.0)
            assert storage.ensure_fleet() == [0]
            assert storage.lost_rows() == [0]
            # Reading the lost row is refused — never a stale state.
            with pytest.raises(DistributedError, match="lost"):
                storage.row_block(0, 2)
            with pytest.raises(DistributedError, match="lost"):
                storage.gather_rows(np.array([0]))
            # Rows on the surviving span were never at risk.
            spans = storage.host_spans()
            lo = spans[1][0]
            np.testing.assert_array_equal(storage.row_block(lo, 6), data[lo:])
            # A fresh coordinator write rehabilitates the row.
            fresh = np.full((1, 4), 7.5)
            storage.write_rows(0, fresh)
            assert storage.lost_rows() == []
            np.testing.assert_array_equal(storage.row_block(0, 1), fresh)
        finally:
            cluster.shutdown()


class TestIdempotentTeardown:
    def test_handle_and_cluster_close_twice(self):
        cluster = HostCluster(1)
        handle = cluster.handles[0]
        assert handle.channel("data") is handle.channel("data")
        cluster.shutdown()
        cluster.shutdown()  # second shutdown is a no-op
        handle.close()  # already closed by shutdown — still a no-op
        assert not handle.process.is_alive()
        with pytest.raises(DistributedError, match="closed"):
            handle.channel("data")

    def test_shutdown_clusters_twice_and_pool_recreates(self):
        first = get_cluster(1)
        shutdown_clusters()
        shutdown_clusters()
        assert not first.alive()
        second = get_cluster(1)
        assert second is not first and second.alive()
