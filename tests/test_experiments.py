"""Experiment-harness plumbing: scale presets, printers, row specs."""

import numpy as np
import pytest

from repro.experiments.printers import format_series, format_table
from repro.experiments.scale import SCALES, resolve_scale
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import Table2Row, standard_rows
from repro.experiments.fig9 import _variant_params


class TestScale:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert resolve_scale().name == "quick"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert resolve_scale().name == "full"

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert resolve_scale("quick").name == "quick"

    def test_passthrough_instance(self):
        preset = SCALES["quick"]
        assert resolve_scale(preset) is preset

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            resolve_scale("galactic")

    def test_full_heavier_than_quick(self):
        q, f = SCALES["quick"], SCALES["full"]
        assert f.rounds > q.rounds
        assert f.num_clients > q.num_clients


class TestPrinters:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1.5], ["yy", 22.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "-+-" in lines[2]
        assert "22.25" in text

    def test_format_table_float_fmt(self):
        text = format_table(["v"], [[0.12345]], float_fmt="{:.4f}")
        assert "0.123" in text and len(text.splitlines()[-1].strip()) == 6

    def test_format_series_with_x(self):
        text = format_series({"m": [0.1, 0.2]}, x_values=[5, 10], title="S")
        assert "5" in text and "10" in text
        assert "0.100" in text

    def test_format_series_alignment(self):
        text = format_series({"a": [0.1], "longer": [0.2]})
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")


class TestTable1:
    def test_rows_cover_all_methods(self):
        rows = run_table1()
        assert [r.method for r in rows] == [
            "fedavg", "fedprox", "scaffold", "fedgen", "clusamp", "fedcross",
        ]

    def test_format_contains_categories(self):
        text = format_table1(run_table1())
        assert "Multi-Model Guided" in text
        assert "Knowledge Distillation" in text


class TestTable2Rows:
    def test_row_sets_sizes(self):
        assert len(standard_rows("smoke")) == 4
        assert len(standard_rows("standard")) == 13
        assert len(standard_rows("grid")) == 29  # 3*(2*4+1) + 2

    def test_unknown_row_set(self):
        with pytest.raises(KeyError):
            standard_rows("everything")

    def test_row_labels(self):
        row = Table2Row("mlp", "synth_cifar10", 0.1)
        assert row.label == ("mlp", "synth_cifar10", "b=0.1")
        assert Table2Row("mlp", "x", "iid").label[2] == "IID"
        assert Table2Row("mlp", "x", "natural").label[2] == "-"

    def test_grid_covers_all_heterogeneities(self):
        rows = standard_rows("grid")
        hets = {r.heterogeneity for r in rows}
        assert {0.1, 0.5, 1.0, "iid", "natural"} <= hets


class TestFig9Variants:
    def test_variant_params(self):
        assert _variant_params("vanilla", 0.9, 10) == {
            "alpha": 0.9, "selection": "lowest",
        }
        assert _variant_params("pm", 0.9, 10)["propeller_rounds"] == 10
        assert _variant_params("da", 0.9, 10)["dynamic_alpha_rounds"] == 10
        pm_da = _variant_params("pm_da", 0.9, 10)
        assert pm_da["propeller_rounds"] == 5
        assert pm_da["dynamic_alpha_rounds"] == 5

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            _variant_params("warp", 0.9, 10)
