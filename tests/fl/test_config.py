"""FLConfig validation and derived properties."""

import pytest

from repro.fl.config import FLConfig


class TestValidation:
    def test_defaults_valid(self):
        FLConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_clients": 0},
            {"participation": 0.0},
            {"participation": 1.5},
            {"rounds": 0},
            {"local_epochs": 0},
            {"k_active": 0},
            {"k_active": 100, "num_clients": 10},
            {"shards": 0},
            {"shard_placement": ""},
        ],
    )
    def test_invalid_configs_raise(self, kwargs):
        with pytest.raises(ValueError):
            FLConfig(**kwargs)


class TestDerived:
    def test_clients_per_round_from_participation(self):
        assert FLConfig(num_clients=100, participation=0.1).clients_per_round == 10

    def test_clients_per_round_minimum_one(self):
        assert FLConfig(num_clients=10, participation=0.01).clients_per_round == 1

    def test_k_active_overrides_participation(self):
        cfg = FLConfig(num_clients=100, participation=0.1, k_active=25)
        assert cfg.clients_per_round == 25

    def test_with_method_swaps_only_method(self):
        base = FLConfig(method="fedavg", seed=9, method_params={"x": 1})
        new = base.with_method("fedcross", alpha=0.9)
        assert new.method == "fedcross"
        assert new.method_params == {"alpha": 0.9}
        assert new.seed == 9
        assert base.method == "fedavg"  # frozen original untouched

    def test_replace(self):
        cfg = FLConfig(rounds=5).replace(rounds=9)
        assert cfg.rounds == 9

    def test_frozen(self):
        with pytest.raises(Exception):
            FLConfig().rounds = 3
