"""Round schedulers (ISSUE 10): the async bounded-staleness runtime.

Equivalence contract under test:

* ``round_mode="async"`` with ``max_staleness=0`` runs the *exact* sync
  per-round body — bit-identical to the sync reference on every
  backend, method and fault path (histories including the
  communication ledger, final global state, final pool matrix).
* The serial execution backend completes every submitted group eagerly,
  so even ``max_staleness>0`` degenerates to the strictly sequential
  schedule there — also bit-identical (speculative blends are written
  and then overwritten by the exact reconciled rows).
* Genuinely overlapped runs (thread backend, ``max_staleness>0``) keep
  the structural invariants: one record per round in order, the
  ``async`` extras block with speculation/reconcile/staleness counters,
  and per-upload hooks firing exactly once per (round, row).

Plus the satellite seams: injectable scheduler clock/sleep (retry
backoff without real waiting) and on_upload ordering invariants.
"""

import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.fl.config import FLConfig
from repro.fl.execution import LegGroup
from repro.fl.scheduler import (
    AsyncRoundScheduler,
    SyncRoundScheduler,
    build_round_scheduler,
)
from repro.fl.simulation import FLSimulation

BASE = dict(
    method="fedcross",
    dataset="synth_cifar10",
    model="mlp",
    heterogeneity=0.5,
    num_clients=4,
    participation=1.0,
    rounds=3,
    local_epochs=1,
    batch_size=16,
    eval_every=1,
    seed=13,
    dataset_params={"samples_per_client": 20, "num_test": 40},
)

# Async extras contract: every overlapped round reports these counters.
ASYNC_KEYS = {
    "speculative_blends",
    "speculative_reblends",
    "reconcile_fixes",
    "stale_uploads",
    "max_dispatch_staleness",
}


def _config(**overrides) -> FLConfig:
    return FLConfig(**{**BASE, **overrides})


def _run(config, mutate=None):
    """Run a simulation; ``mutate(sim)`` may inject seams pre-run."""
    sim = FLSimulation(config)
    if mutate is not None:
        mutate(sim)
    result = sim.run()
    pool = getattr(sim.server, "pool", None)
    matrix = np.array(pool.matrix, copy=True) if pool is not None else None
    return result, matrix


def _records(result, comm=True):
    return [
        (r.accuracy, r.loss, r.train_loss)
        + ((r.comm_up_params, r.comm_down_params) if comm else ())
        for r in result.history.records
    ]


def _assert_identical(ref, got, comm=True):
    ref_result, ref_pool = ref
    got_result, got_pool = got
    assert _records(ref_result, comm=comm) == _records(got_result, comm=comm)
    for key in ref_result.final_state:
        np.testing.assert_array_equal(
            ref_result.final_state[key], got_result.final_state[key]
        )
    if ref_pool is not None:
        np.testing.assert_array_equal(ref_pool, got_pool)


class TestRegistry:
    def test_default_is_sync(self):
        assert isinstance(build_round_scheduler(_config()), SyncRoundScheduler)

    def test_async_reads_staleness_from_config(self):
        sched = build_round_scheduler(_config(round_mode="async", max_staleness=2))
        assert isinstance(sched, AsyncRoundScheduler)
        assert sched.max_staleness == 2

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError, match="max_staleness"):
            AsyncRoundScheduler(max_staleness=-1)
        with pytest.raises(ValueError, match="max_staleness"):
            _config(round_mode="async", max_staleness=-1)

    def test_unknown_round_mode_rejected(self):
        with pytest.raises(ValueError, match="round_mode"):
            _config(round_mode="overlapped")


class TestAsyncEquivalence:
    @pytest.mark.parametrize("method", ["fedcross", "fedavg"])
    def test_zero_staleness_bitwise_sync(self, method):
        ref = _run(_config(method=method))
        got = _run(_config(method=method, round_mode="async", max_staleness=0))
        _assert_identical(ref, got)

    def test_serial_backend_any_staleness_bitwise_sync(self):
        # Serial submit_group completes eagerly, so rounds never truly
        # overlap: speculative blends are transient and the reconciled
        # eval pool restores the exact sync bytes.
        ref = _run(_config())
        got = _run(_config(round_mode="async", max_staleness=2))
        _assert_identical(ref, got)

    def test_method_without_adapter_rejected_when_overlapped(self):
        with pytest.raises(ValueError, match="async_adapter"):
            _run(_config(method="fedavg", round_mode="async", max_staleness=1))

    def test_thread_overlap_invariants(self):
        result, matrix = _run(
            _config(
                round_mode="async",
                max_staleness=2,
                execution="thread",
                workers=2,
            )
        )
        records = result.history.records
        assert [r.round_idx for r in records] == list(range(BASE["rounds"]))
        total_blends = 0
        for r in records:
            info = r.extras["async"]
            assert ASYNC_KEYS <= set(info)
            assert all(int(info[k]) >= 0 for k in ASYNC_KEYS)
            assert info["max_dispatch_staleness"] <= 2
            assert r.accuracy is not None and 0.0 <= r.accuracy <= 1.0
            total_blends += info["speculative_blends"]
        # Speculation must actually engage on an overlapped run.
        assert total_blends > 0
        assert matrix is not None and np.isfinite(matrix).all()

    FAULTY = dict(
        num_clients=8,
        participation=0.5,
        seed=7,
        faults={"availability": 0.9, "dropout": 0.2},
        failure_policy="carry",
        quorum=0.25,
    )

    def test_fault_composition_bitwise_sync_at_zero_staleness(self):
        # The S=0 window routes every round through the sync resilience
        # engine — same pre-drops, carries, quorum and analytic comm.
        ref = _run(_config(**self.FAULTY))
        got = _run(_config(round_mode="async", max_staleness=0, **self.FAULTY))
        failures = sum(
            len(r.extras.get("leg_failures", ()))
            for r in ref[0].history.records
        )
        assert failures > 0
        _assert_identical(ref, got)

    def test_fault_composition_overlapped(self):
        # S>0 cannot be bitwise sync even on the serial backend: a
        # pre-dropped client is released immediately, so its next-round
        # leg legally trains before the current round reconciles.  The
        # overlapped driver must still compose the same seeded fault
        # decisions: carries surface as leg_failures, every round
        # completes under quorum, and the async counters stay sane.
        result, matrix = _run(
            _config(round_mode="async", max_staleness=2, **self.FAULTY)
        )
        records = result.history.records
        assert [r.round_idx for r in records] == list(range(BASE["rounds"]))
        failures = sum(
            len(r.extras.get("leg_failures", ())) for r in records
        )
        assert failures > 0
        for r in records:
            assert len(r.extras.get("leg_failures", ())) <= 3  # quorum 0.25 of 4
            info = r.extras["async"]
            assert ASYNC_KEYS <= set(info)
        assert matrix is not None and np.isfinite(matrix).all()


class _VirtualTime:
    """Injectable monotonic clock + sleep that never waits for real."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class _FailFirstLeg:
    """Backend wrapper: the first submitted leg fails *before* training
    (transport-style), exactly once; every other leg passes through."""

    def __init__(self, inner):
        self._inner = inner
        self.tripped = False

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def submit_group(self, trainer, active, plans, rows, uploads, attacks=None):
        if self.tripped:
            return self._inner.submit_group(
                trainer, active, plans, rows, uploads, attacks=attacks
            )
        self.tripped = True
        failed = Future()
        failed.set_exception(RuntimeError("injected transport fault"))
        rest = self._inner.submit_group(
            trainer,
            active[1:],
            plans[1:],
            rows[1:],
            uploads,
            attacks={j - 1: a for j, a in (attacks or {}).items() if j >= 1}
            or None,
        )
        return LegGroup(
            [failed] + rest.futures, lambda j, raw: rest.finalize(j - 1, raw)
        )


class TestInjectableClock:
    def test_retry_backoff_rides_injected_clock(self):
        # leg_backoff=5.0 would stall a real run for seconds; through
        # the injected clock the backoff is a bookkeeping entry and the
        # retried leg (whose client RNG was never advanced — it failed
        # pre-training) reproduces the clean run bit-for-bit except for
        # the one extra dispatch in the communication ledger.
        config = _config(
            round_mode="async",
            max_staleness=2,
            leg_retries=1,
            leg_backoff=5.0,
            failure_policy="carry",
        )
        clean = _run(config)
        vt = _VirtualTime()

        def mutate(sim):
            sim.server.round_scheduler = AsyncRoundScheduler(
                max_staleness=2, clock=vt.clock, sleep=vt.sleep
            )
            sim.server.executor._backend = _FailFirstLeg(
                sim.server.executor._backend
            )

        started = time.monotonic()
        faulty = _run(config, mutate=mutate)
        elapsed = time.monotonic() - started
        # The 5 s backoff happened on the virtual clock only.
        assert vt.sleeps == [5.0]
        assert vt.now == 5.0
        assert elapsed < 4.0
        clean_recs = clean[0].history.records
        faulty_recs = faulty[0].history.records
        # Round 0 is deterministic: the retried leg failed *before*
        # training, so its retry trains the exact same state and RNG —
        # same uploads, same eval, one extra dispatch on the ledger.
        c0, f0 = clean_recs[0], faulty_recs[0]
        assert (c0.accuracy, c0.loss, c0.train_loss) == (
            f0.accuracy,
            f0.loss,
            f0.train_loss,
        )
        assert f0.comm_up_params == c0.comm_up_params
        model_size = c0.comm_down_params // BASE["num_clients"]
        assert f0.comm_down_params == c0.comm_down_params + model_size
        # Later rounds legally diverge (other clients ran ahead while
        # the retry pended — that *is* the overlap win); no failures
        # survive, and the run completes every round.
        assert len(faulty_recs) == BASE["rounds"]
        for r in faulty_recs:
            assert "leg_failures" not in r.extras
            assert r.accuracy is not None and 0.0 <= r.accuracy <= 1.0
        assert faulty_recs[1].extras["async"]["max_dispatch_staleness"] >= 1


def _spy_on_upload(sim):
    """Record every (round, row, fresh?) the server's on_upload sees."""
    fired = []
    orig = sim.server.on_upload

    def on_upload(row, result):
        fired.append((sim.server.round_idx, int(row), result.num_samples > 0))
        orig(row, result)

    sim.server.on_upload = on_upload
    return fired


class TestOnUploadOrdering:
    """Satellite: streaming, gathered and async schedules each fire
    on_upload exactly once per (round, row) — and the async S=0 firing
    set equals the sync one."""

    def _fired(self, **overrides):
        sim = FLSimulation(_config(**overrides))
        fired = _spy_on_upload(sim)
        sim.run()
        return fired

    def _assert_once_per_round_row(self, fired, rounds, rows_per_round):
        tags = [(t, row) for t, row, _fresh in fired]
        assert len(tags) == len(set(tags))
        assert len(tags) == rounds * rows_per_round
        for t in range(rounds):
            assert sorted(row for rt, row in tags if rt == t) == list(
                range(rows_per_round)
            )

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(streaming=True),
            dict(streaming=False),
            dict(round_mode="async", max_staleness=0),
            dict(round_mode="async", max_staleness=2),
            dict(
                round_mode="async",
                max_staleness=2,
                execution="thread",
                workers=2,
            ),
        ],
        ids=["streaming", "gathered", "async-s0", "async-s2", "async-s2-thread"],
    )
    def test_fires_exactly_once_per_round_row(self, overrides):
        fired = self._fired(**overrides)
        self._assert_once_per_round_row(
            fired, BASE["rounds"], BASE["num_clients"]
        )
        assert all(fresh for _t, _row, fresh in fired)

    def test_async_zero_staleness_fires_same_set_as_sync(self):
        sync = self._fired(streaming=True)
        zero = self._fired(round_mode="async", max_staleness=0)
        assert sorted(sync) == sorted(zero)

    def test_carried_rows_fire_once_too(self):
        fired = self._fired(
            round_mode="async",
            max_staleness=2,
            num_clients=8,
            participation=0.5,
            seed=7,
            faults={"availability": 0.9, "dropout": 0.2},
            failure_policy="carry",
            quorum=0.25,
        )
        tags = [(t, row) for t, row, _fresh in fired]
        assert len(tags) == len(set(tags))
        assert len(tags) == BASE["rounds"] * 4  # 4 legs per round at P=0.5
        assert any(not fresh for _t, _row, fresh in fired)
