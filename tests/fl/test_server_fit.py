"""Server fit() loop: resumed runs and guaranteed final evaluation."""

import pytest

from repro.fl.simulation import FLSimulation


@pytest.fixture
def sparse_eval_config(tiny_config):
    """eval_every larger than any fit() chunk, so only the final-round
    guarantee can produce evaluations."""
    return tiny_config.replace(rounds=4, eval_every=100).with_method(
        "fedavg"
    )


class TestFinalRoundEvaluation:
    def test_single_fit_evaluates_last_round(self, sparse_eval_config):
        sim = FLSimulation(sparse_eval_config)
        history = sim.server.fit(4)
        assert history.records[-1].accuracy is not None
        assert all(r.accuracy is None for r in history.records[:-1])

    def test_resumed_fit_still_evaluates_its_last_round(self, sparse_eval_config):
        """Regression: the final-eval guard compared the *global* round
        index against the *local* rounds argument, so any fit() call
        after the first never evaluated its final round."""
        sim = FLSimulation(sparse_eval_config)
        sim.server.fit(2)
        history = sim.server.fit(2)  # global rounds 2-3
        assert history.records[-1].round_idx == 3
        assert history.records[-1].accuracy is not None

    def test_round_idx_keeps_advancing_across_fits(self, sparse_eval_config):
        sim = FLSimulation(sparse_eval_config)
        sim.server.fit(2)
        sim.server.fit(2)
        assert sim.server.round_idx == 4
        assert [r.round_idx for r in sim.server.history.records] == [0, 1, 2, 3]


class TestResultExtras:
    def test_fedcross_result_extras_hold_similarity(self, tiny_config):
        """Regression: FedCrossServer.result_extras was assigned once
        and never written, so SimulationResult.extras was always empty
        for the headline method."""
        from repro.fl.simulation import run_simulation

        cfg = tiny_config.replace(rounds=2).with_method("fedcross", alpha=0.8)
        result = run_simulation(cfg)
        sim_matrix = result.extras["middleware_similarity"]
        k = cfg.clients_per_round
        assert sim_matrix.shape == (k, k)
