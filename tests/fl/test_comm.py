"""Communication ledger and the Table I analytic cost model."""

import pytest

from repro.fl.comm import COMM_OVERHEAD_CLASS, CommunicationLedger, analytic_round_cost


class TestLedger:
    def test_round_lifecycle(self):
        ledger = CommunicationLedger()
        ledger.record_down(100)
        ledger.record_up(50)
        up, down = ledger.end_round()
        assert (up, down) == (50, 100)
        assert ledger.up_params == 0  # reset

    def test_total_includes_open_round(self):
        ledger = CommunicationLedger()
        ledger.record_down(10)
        ledger.end_round()
        ledger.record_up(5)
        assert ledger.total() == 15

    def test_history_grows(self):
        ledger = CommunicationLedger()
        for _ in range(3):
            ledger.record_down(1)
            ledger.end_round()
        assert len(ledger.history) == 3


class TestAnalyticCosts:
    def test_fedavg_is_2k_models(self):
        cost = analytic_round_cost("fedavg", k_clients=10, model_params=1000)
        assert cost["total"] == 20_000
        assert cost["model_equivalents"] == pytest.approx(20.0)

    def test_scaffold_doubles_fedavg(self):
        fa = analytic_round_cost("fedavg", 10, 1000)["total"]
        sc = analytic_round_cost("scaffold", 10, 1000)["total"]
        assert sc == 2 * fa

    def test_fedgen_between_low_and_high(self):
        fa = analytic_round_cost("fedavg", 10, 1000)["total"]
        fg = analytic_round_cost("fedgen", 10, 1000, generator_params=200)["total"]
        sc = analytic_round_cost("scaffold", 10, 1000)["total"]
        assert fa < fg < sc

    def test_fedcross_matches_fedavg(self):
        """The paper's headline: multi-model training at FedAvg cost."""
        fa = analytic_round_cost("fedavg", 7, 12345)
        fc = analytic_round_cost("fedcross", 7, 12345)
        assert fa == fc

    def test_low_methods_all_equal(self):
        costs = {
            m: analytic_round_cost(m, 5, 100)["total"]
            for m, klass in COMM_OVERHEAD_CLASS.items()
            if klass == "Low"
        }
        assert len(set(costs.values())) == 1

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            analytic_round_cost("fedsgd", 1, 1)

    def test_overhead_classes_complete(self):
        assert set(COMM_OVERHEAD_CLASS) == {
            "fedavg",
            "fedprox",
            "scaffold",
            "fedgen",
            "clusamp",
            "fedcross",
        }
