"""ServerCallback lifecycle: ordering, throughput, checkpoint/early-stop."""

import numpy as np
import pytest

from repro.fl.callbacks import BestStateCheckpointer, ServerCallback, ThroughputLogger
from repro.fl.simulation import FLSimulation, run_simulation


class RecordingCallback(ServerCallback):
    """Appends (hook, round_idx) tuples in invocation order."""

    def __init__(self, name="cb"):
        self.name = name
        self.calls = []

    def on_round_start(self, server, round_idx):
        self.calls.append(("round_start", round_idx))

    def on_evaluate(self, server, record):
        self.calls.append(("evaluate", record.round_idx))

    def on_round_end(self, server, record):
        self.calls.append(("round_end", record.round_idx))

    def on_fit_end(self, server, history):
        self.calls.append(("fit_end", len(history)))


class TestCallbackOrdering:
    def test_hooks_fire_in_lifecycle_order(self, tiny_config):
        cb = RecordingCallback()
        run_simulation(tiny_config.replace(rounds=2, eval_every=1), callbacks=[cb])
        assert cb.calls == [
            ("round_start", 0),
            ("evaluate", 0),
            ("round_end", 0),
            ("round_start", 1),
            ("evaluate", 1),
            ("round_end", 1),
            ("fit_end", 2),
        ]

    def test_evaluate_skipped_between_eval_every(self, tiny_config):
        cb = RecordingCallback()
        run_simulation(tiny_config.replace(rounds=3, eval_every=2), callbacks=[cb])
        evaluated = [r for hook, r in cb.calls if hook == "evaluate"]
        # Round 1 hits eval_every, round 2 is the guaranteed final eval.
        assert evaluated == [1, 2]

    def test_multiple_callbacks_in_registration_order(self, tiny_config):
        order = []

        class Tagged(ServerCallback):
            def __init__(self, tag):
                self.tag = tag

            def on_round_start(self, server, round_idx):
                order.append(self.tag)

        run_simulation(
            tiny_config.replace(rounds=1), callbacks=[Tagged("a"), Tagged("b")]
        )
        assert order == ["a", "b"]

    def test_fit_extra_callbacks_compose_with_server_callbacks(self, tiny_config):
        owned, extra = RecordingCallback("owned"), RecordingCallback("extra")
        sim = FLSimulation(tiny_config.replace(rounds=1), callbacks=[owned])
        sim.server.fit(1, callbacks=[extra])
        assert owned.calls == extra.calls
        assert owned.calls[0] == ("round_start", 0)

    def test_all_methods_accept_callbacks(self, tiny_config):
        for method in ("fedavg", "fedprox", "scaffold", "fedcross", "fedcluster"):
            cb = RecordingCallback()
            run_simulation(
                tiny_config.replace(rounds=1).with_method(method), callbacks=[cb]
            )
            assert cb.calls[-1][0] == "fit_end"


class TestThroughputLogger:
    def test_records_one_time_per_round(self, tiny_config):
        lines = []
        logger = ThroughputLogger(log=lines.append)
        run_simulation(tiny_config.replace(rounds=3), callbacks=[logger])
        assert len(logger.round_times) == 3
        assert all(t > 0 for t in logger.round_times)
        summary = logger.summary()
        assert summary["rounds"] == 3
        assert summary["client_updates_per_s"] > 0
        # 3 per-round lines + 1 summary line
        assert len(lines) == 4
        assert "rounds/s" in lines[-1]

    def test_summary_only_mode(self, tiny_config):
        lines = []
        logger = ThroughputLogger(log=lines.append, every=0)
        run_simulation(tiny_config.replace(rounds=2), callbacks=[logger])
        assert len(lines) == 1


class TestBestStateCheckpointer:
    def test_tracks_best_and_restores_on_fit_end(self, tiny_config):
        ckpt = BestStateCheckpointer(restore=True)
        sim = FLSimulation(tiny_config.replace(rounds=3, eval_every=1))
        sim.server.callbacks.append(ckpt)
        history = sim.server.fit()
        assert ckpt.best_accuracy == max(history.accuracies)
        best_record = max(
            (r for r in history.records if r.accuracy is not None),
            key=lambda r: r.accuracy,
        )
        assert ckpt.best_round == best_record.round_idx
        # The restored deployable state is exactly the checkpointed one.
        restored = sim.server.global_state()
        for key, value in ckpt.best_state.items():
            np.testing.assert_array_equal(restored[key], value)

    def test_early_stop_after_patience_exhausted(self, tiny_config):
        class Flat(ServerCallback):
            """Force a non-improving accuracy signal."""

            def on_evaluate(self, server, record):
                record.accuracy = 0.5

        ckpt = BestStateCheckpointer(patience=2)
        sim = FLSimulation(tiny_config.replace(rounds=10, eval_every=1))
        # Flat runs first so the checkpointer sees the doctored value.
        sim.server.callbacks.extend([Flat(), ckpt])
        history = sim.server.fit()
        # Round 0 sets the best; rounds 1-2 are the two bad evals.
        assert ckpt.stopped_early
        assert len(history) == 3

    def test_restore_survives_later_worse_rounds(self, tiny_config):
        """The checkpointer must restore the *best* state even when
        training ends on a worse one (the whole point)."""

        class Doctored(ServerCallback):
            accs = iter([0.9, 0.2, 0.1])

            def on_evaluate(self, server, record):
                record.accuracy = next(self.accs)

        ckpt = BestStateCheckpointer(restore=True)
        sim = FLSimulation(tiny_config.replace(rounds=3, eval_every=1))
        sim.server.callbacks.extend([Doctored(), ckpt])
        sim.server.fit()
        assert ckpt.best_round == 0
        restored = sim.server.global_state()
        for key, value in ckpt.best_state.items():
            np.testing.assert_array_equal(restored[key], value)

    def test_fedcross_restore_broadcasts_pool(self, tiny_config):
        ckpt = BestStateCheckpointer(restore=True)
        cfg = tiny_config.replace(rounds=2, eval_every=1).with_method("fedcross")
        sim = FLSimulation(cfg, callbacks=[ckpt])
        result = sim.run()
        # Regression: the similarity diagnostic must snapshot the
        # *trained* pool, not the all-ones matrix left by the restore's
        # broadcast (finalize_fit runs before callback on_fit_end).
        sim_matrix = result.extras["middleware_similarity"]
        assert not np.array_equal(sim_matrix, np.ones_like(sim_matrix))
        # After restore all middleware rows equal the checkpointed state.
        pool = sim.server.pool
        np.testing.assert_array_equal(pool.matrix[0], pool.matrix[-1])
        restored = sim.server.global_state()
        for key, value in ckpt.best_state.items():
            np.testing.assert_allclose(restored[key], value, rtol=1e-6, atol=1e-7)

    def test_invalid_patience_rejected(self):
        with pytest.raises(ValueError):
            BestStateCheckpointer(patience=0)
