"""Per-client fairness metrics and result persistence."""

import numpy as np
import pytest

from repro.fl.fairness import ClientEvaluation, evaluate_per_client, fairness_summary
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.fl.simulation import FLSimulation
from repro.utils.serialization import (
    load_history,
    load_state_dict,
    save_history,
    save_state_dict,
)


class TestFairness:
    def test_evaluate_per_client_shapes(self, tiny_config):
        sim = FLSimulation(tiny_config)
        sim.server.fit()
        evaluation = evaluate_per_client(
            sim.model, sim.server.global_state(), sim.clients
        )
        assert len(evaluation.client_ids) == tiny_config.num_clients
        assert evaluation.accuracies.shape == (tiny_config.num_clients,)
        assert 0.0 <= evaluation.worst_accuracy <= evaluation.best_accuracy <= 1.0

    def test_summary_uniform_is_fair(self):
        evaluation = ClientEvaluation(
            client_ids=[0, 1, 2],
            accuracies=np.array([0.8, 0.8, 0.8]),
            losses=np.zeros(3),
        )
        summary = fairness_summary(evaluation)
        assert summary["jain_index"] == pytest.approx(1.0)
        assert summary["std"] == pytest.approx(0.0)

    def test_summary_unfair_low_jain(self):
        evaluation = ClientEvaluation(
            client_ids=[0, 1],
            accuracies=np.array([1.0, 0.0]),
            losses=np.zeros(2),
        )
        summary = fairness_summary(evaluation)
        assert summary["jain_index"] == pytest.approx(0.5)
        assert summary["worst"] == 0.0

    def test_summary_all_zero_safe(self):
        evaluation = ClientEvaluation(
            client_ids=[0], accuracies=np.zeros(1), losses=np.zeros(1)
        )
        assert fairness_summary(evaluation)["jain_index"] == 1.0


class TestStateDictSerialization:
    def test_roundtrip(self, tmp_path, rng):
        state = {"w": rng.standard_normal((3, 4)).astype(np.float32), "b": rng.standard_normal(4)}
        path = save_state_dict(tmp_path / "model", state)
        assert path.suffix == ".npz"
        loaded = load_state_dict(path)
        assert set(loaded) == {"w", "b"}
        for k in state:
            np.testing.assert_array_equal(loaded[k], state[k])
            assert loaded[k].dtype == state[k].dtype

    def test_roundtrip_through_model(self, tmp_path, tiny_config):
        sim = FLSimulation(tiny_config)
        state = sim.model.state_dict()
        path = save_state_dict(tmp_path / "ckpt.npz", state)
        sim.model.load_state_dict(load_state_dict(path))  # must not raise


class TestHistorySerialization:
    def test_roundtrip(self, tmp_path):
        history = TrainingHistory()
        history.append(
            RoundRecord(
                round_idx=0,
                accuracy=0.5,
                loss=1.2,
                train_loss=1.5,
                comm_up_params=100,
                comm_down_params=100,
                extras={"alpha": 0.9, "co_indices": [1, 0]},
            )
        )
        history.append(RoundRecord(round_idx=1))
        path = save_history(tmp_path / "history.json", history)
        loaded = load_history(path)
        assert len(loaded) == 2
        assert loaded.accuracies == [0.5]
        assert loaded.records[0].extras["alpha"] == 0.9
        assert loaded.records[1].accuracy is None

    def test_numpy_extras_coerced(self, tmp_path):
        history = TrainingHistory()
        history.append(
            RoundRecord(
                round_idx=0,
                accuracy=0.1,
                extras={"vec": np.arange(3), "scalar": np.float32(1.5)},
            )
        )
        path = save_history(tmp_path / "h.json", history)
        loaded = load_history(path)
        assert loaded.records[0].extras["vec"] == [0, 1, 2]
        assert loaded.records[0].extras["scalar"] == 1.5
