"""Client-execution backends: registry, mechanics, hook specs."""

import pickle

import numpy as np
import pytest

from repro.fl.config import FLConfig
from repro.fl.execution import (
    ClientExecutor,
    ExecutionBackend,
    TrainerSpec,
    available_executions,
    register_execution,
    resolve_execution,
)
from repro.fl.hooks import ControlVariateSpec, HookSpec, ProximalSpec, resolve_hook
from repro.fl.server import DispatchPlan
from repro.fl.simulation import FLSimulation


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"serial", "thread", "process", "distributed"} <= set(
            available_executions()
        )

    def test_resolve_is_case_insensitive(self):
        assert resolve_execution("SERIAL").name == "serial"

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown execution backend"):
            resolve_execution("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(KeyError, match="already registered"):

            @register_execution("serial")
            class Dup(ExecutionBackend):
                pass

    def test_third_party_backend_selectable(self, tiny_config):
        calls = []

        @register_execution("probe-serial")
        class Probe(resolve_execution("serial")):
            def run_streaming(self, trainer, active, plans, rows, uploads):
                calls.append(len(plans))
                return super().run_streaming(trainer, active, plans, rows, uploads)

        try:
            sim = FLSimulation(tiny_config.replace(execution="probe-serial"))
            sim.server.run_round(sim.server.select_cohort())
            assert calls == [tiny_config.clients_per_round]
        finally:
            from repro.fl.execution import EXECUTION_BACKENDS

            del EXECUTION_BACKENDS["probe-serial"]

    def test_run_only_backend_streams_via_fallback(self, tiny_config):
        """A third-party backend implementing only ``run`` still serves
        the streaming collect through the base-class fallback (gathered
        run, yielded in plan order)."""
        from repro.fl.execution import ExecutionBackend

        calls = []

        @register_execution("probe-run-only")
        class RunOnly(ExecutionBackend):
            def __init__(self, spec=None, clients=(), workers=None):
                super().__init__(spec, clients, workers)
                self._serial = resolve_execution("serial")(spec, clients, workers)

            def run(self, trainer, active, plans, rows, uploads):
                calls.append(len(plans))
                return self._serial.run(trainer, active, plans, rows, uploads)

        try:
            sim = FLSimulation(tiny_config.replace(execution="probe-run-only"))
            extras = sim.server.run_round(sim.server.select_cohort())
            assert calls == [tiny_config.clients_per_round]
            assert "train_loss" in extras
        finally:
            from repro.fl.execution import EXECUTION_BACKENDS

            del EXECUTION_BACKENDS["probe-run-only"]


class TestConfigWiring:
    def test_default_is_serial(self):
        assert FLConfig().execution == "serial"
        assert FLConfig().workers is None

    def test_invalid_execution_rejected(self):
        with pytest.raises(ValueError, match="execution"):
            FLConfig(execution="")

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            FLConfig(workers=0)

    def test_server_builds_executor_from_config(self, tiny_config):
        sim = FLSimulation(tiny_config.replace(execution="thread", workers=2))
        assert sim.server.executor.name == "thread"

    def test_workers_validated_at_backend_build(self, tiny_config):
        with pytest.raises(ValueError, match="workers"):
            ClientExecutor("thread", workers=-1)


class TestTrainerSpec:
    def test_from_trainer_mirrors_hyperparams(self, tiny_config):
        sim = FLSimulation(tiny_config)
        spec = TrainerSpec.from_trainer(sim.trainer, sim.model_factory)
        trainer = spec.build()
        assert trainer is not sim.trainer
        assert trainer.model is not sim.model
        assert trainer.local_epochs == sim.trainer.local_epochs
        assert trainer.batch_size == sim.trainer.batch_size
        assert trainer.lr == sim.trainer.lr

    def test_built_model_matches_template_weights(self, tiny_config):
        sim = FLSimulation(tiny_config)
        spec = TrainerSpec.from_trainer(sim.trainer, sim.model_factory)
        built = spec.build().model.state_dict()
        for key, value in sim.model.state_dict().items():
            np.testing.assert_array_equal(built[key], value)

    def test_spec_with_factory_is_picklable(self, tiny_config):
        sim = FLSimulation(tiny_config)
        spec = TrainerSpec.from_trainer(sim.trainer, sim.model_factory)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.build().model.num_parameters() == sim.model.num_parameters()

    def test_deepcopy_fallback_without_factory(self, tiny_config):
        sim = FLSimulation(tiny_config)
        spec = TrainerSpec.from_trainer(sim.trainer)
        built = spec.build()
        assert built.model is not sim.trainer.model
        for key, value in sim.model.state_dict().items():
            np.testing.assert_array_equal(built.model.state_dict()[key], value)


class TestHookSpecs:
    def test_raw_callables_pass_through_resolve(self):
        fn = lambda *a: None  # noqa: E731
        assert resolve_hook(fn, {}) is fn
        assert resolve_hook(None, {}) is None

    def test_proximal_spec_anchors_to_dispatched_state(self, tiny_config):
        from repro.tensor import functional as F  # noqa: F401 (import check)

        sim = FLSimulation(tiny_config.with_method("fedprox", mu=0.5))
        state = sim.server.global_state()
        hook = ProximalSpec(0.5).build(state)
        sim.model.load_state_dict(state)
        penalty = hook(sim.model, None, None)
        # Model equals the anchor, so the proximal penalty is exactly 0.
        assert float(penalty.item()) == 0.0

    def test_proximal_spec_mu_zero_is_inert(self, tiny_config):
        sim = FLSimulation(tiny_config)
        hook = ProximalSpec(0.0).build(sim.server.global_state())
        assert hook(sim.model, None, None) is None

    def test_specs_are_picklable(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("scaffold"))
        plans = sim.server.dispatch(sim.server.select_cohort())
        for plan in plans:
            clone = pickle.loads(pickle.dumps(plan.grad_hook))
            assert isinstance(clone, ControlVariateSpec)

    def test_fedgen_distillation_spec_survives_pickle(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("fedgen"))
        sim.server.round_idx = 1  # past warm-up
        plans = sim.server.dispatch(sim.server.select_cohort())
        spec = plans[0].loss_hook
        clone = pickle.loads(pickle.dumps(spec))
        hook = clone.build({})
        sim.model.eval()
        extra = hook(sim.model, None, None)
        assert np.isfinite(float(extra.item()))

    def test_process_backend_rejects_lossy_float64_states(self, tiny_config):
        """A float64 dispatch state that would be narrowed by the
        float32 shm row must fail loudly, not silently diverge."""
        import numpy as np

        sim = FLSimulation(tiny_config.replace(execution="process", workers=1))
        server = sim.server
        active = server.select_cohort()
        plans = server.dispatch(active)
        lossy = {
            k: np.asarray(v, dtype=np.float64) + 1e-12
            for k, v in plans[0].state.items()
        }
        for plan in plans:
            plan.state = lossy
        with pytest.raises(ValueError, match="shared-memory round trip"):
            server.collect(active, plans)
        server.executor.close()

    def test_process_backend_rejects_raw_callable_hooks(self, tiny_config):
        sim = FLSimulation(tiny_config.replace(execution="process", workers=1))
        server = sim.server
        active = server.select_cohort()
        plans = server.dispatch(active)
        plans[0].loss_hook = lambda model, logits, targets: None
        with pytest.raises(TypeError, match="HookSpec"):
            server.collect(active, plans)
        server.executor.close()


class TestSharedPayloadDedup:
    """Round-shared spec payloads ship through shm once, not per client."""

    def _scaffold_plans(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("scaffold"))
        server = sim.server
        active = server.select_cohort()
        return server, active, server.dispatch(active)

    def test_pack_round_dedups_shared_c_global(self, tiny_config):
        from repro.fl.execution import SharedStateRef, _PayloadPacker

        _, _, plans = self._scaffold_plans(tiny_config)
        packer = _PayloadPacker()
        try:
            pairs = packer.pack_round(plans)
            refs = [pair[1].c_global for pair in pairs]
            assert all(isinstance(ref, SharedStateRef) for ref in refs)
            # One shared payload -> every plan points at the same row of
            # the same segment.
            assert len({(ref.ref[0], ref.row) for ref in refs}) == 1
            # c_local is per-client and must still ride the spec.
            assert all(
                not isinstance(pair[1].c_local, SharedStateRef) for pair in pairs
            )
        finally:
            packer.close()

    def test_pack_round_leaves_originals_untouched(self, tiny_config):
        from repro.fl.execution import _PayloadPacker

        server, _, plans = self._scaffold_plans(tiny_config)
        packer = _PayloadPacker()
        try:
            packer.pack_round(plans)
            for plan in plans:
                assert plan.grad_hook.c_global is server._c_global
        finally:
            packer.close()

    def test_shared_payload_roundtrips_exactly(self, tiny_config):
        from repro.fl.execution import _PayloadPacker
        from repro.utils.layout import StateLayout

        _, _, plans = self._scaffold_plans(tiny_config)
        packer = _PayloadPacker()
        try:
            pairs = packer.pack_round(plans)
            ref = pairs[0][1].c_global
            layout = StateLayout.from_signature(ref.signature)
            block = packer._blocks[ref.signature]
            rebuilt = layout.unflatten(block.array[ref.row], copy=True)
            original = plans[0].grad_hook.c_global
            assert set(rebuilt) == set(original)
            for key in original:
                assert rebuilt[key].dtype == np.asarray(original[key]).dtype
                np.testing.assert_array_equal(rebuilt[key], original[key])
        finally:
            packer.close()

    def test_version_advances_per_round(self, tiny_config):
        from repro.fl.execution import _PayloadPacker

        _, _, plans = self._scaffold_plans(tiny_config)
        packer = _PayloadPacker()
        try:
            first = packer.pack_round(plans)[0][1].c_global
            second = packer.pack_round(plans)[0][1].c_global
            assert second.version == first.version + 1
        finally:
            packer.close()

    def test_hookless_plans_pack_nothing(self, tiny_config):
        from repro.fl.execution import _PayloadPacker

        sim = FLSimulation(tiny_config)  # fedavg: no hooks at all
        server = sim.server
        active = server.select_cohort()
        plans = server.dispatch(active)
        packer = _PayloadPacker()
        try:
            pairs = packer.pack_round(plans)
            assert packer.live_names() == set()
            assert [p[0] for p in pairs] == [plan.loss_hook for plan in plans]
        finally:
            packer.close()

    def test_scaffold_process_round_matches_serial(self, tiny_config):
        """End to end through the worker-side cache: the deduped payload
        transport must not change a single bit."""

        def run(cfg):
            sim = FLSimulation(cfg.with_method("scaffold"))
            sim.server.run_round(sim.server.select_cohort())
            state = sim.server.global_state()
            c_global = dict(sim.server._c_global)
            sim.server.executor.close()
            return state, c_global

        ref_state, ref_c = run(tiny_config)
        got_state, got_c = run(tiny_config.replace(execution="process", workers=2))
        for key in ref_state:
            np.testing.assert_array_equal(ref_state[key], got_state[key])
        for key in ref_c:
            np.testing.assert_array_equal(ref_c[key], got_c[key])


class ExplodingSpec(HookSpec):
    """Module-level (hence picklable) hook spec that always raises."""

    def build(self, state):
        def hook(model, logits, targets):
            raise RuntimeError("boom")

        return hook


class TestParallelMechanics:
    def test_duplicate_rows_rejected_on_parallel_backends(self, tiny_config):
        sim = FLSimulation(tiny_config.replace(execution="thread", workers=2))
        server = sim.server
        active = server.select_cohort()
        plans = server.dispatch(active)
        for plan in plans:
            plan.context["row"] = 0
        with pytest.raises(ValueError, match="unique upload-buffer rows"):
            server.collect(active, plans)
        server.executor.close()

    def test_duplicate_clients_rejected_on_parallel_backends(self, tiny_config):
        """A client appearing twice would train both legs from one RNG
        snapshot (serial advances the stream between legs) — an error,
        not a silent divergence."""
        sim = FLSimulation(tiny_config.replace(execution="process", workers=1))
        server = sim.server
        active = server.select_cohort()
        active[1] = active[0]
        plans = server.dispatch(active)
        with pytest.raises(ValueError, match="at most once"):
            server.collect(active, plans)
        server.executor.close()

    def test_thread_collect_packs_rows_like_serial(self, tiny_config):
        serial = FLSimulation(tiny_config)
        threaded = FLSimulation(tiny_config.replace(execution="thread", workers=2))
        for sim in (serial, threaded):
            server = sim.server
            active = server.select_cohort()
            server.collect(active, server.dispatch(active))
        np.testing.assert_array_equal(
            serial.server.uploads.matrix, threaded.server.uploads.matrix
        )
        threaded.server.executor.close()

    def test_executor_close_is_idempotent_and_reusable(self, tiny_config):
        sim = FLSimulation(tiny_config.replace(execution="thread", workers=2))
        server = sim.server
        server.run_round(server.select_cohort())
        server.executor.close()
        server.executor.close()
        # Backend re-creates its pool lazily on the next round.
        server.run_round(server.select_cohort())
        server.executor.close()

    def test_results_returned_in_plan_order(self, tiny_config):
        sim = FLSimulation(tiny_config.replace(execution="thread", workers=3))
        server = sim.server
        active = server.select_cohort()
        plans = server.dispatch(active)
        results = server.collect(active, plans)
        assert [r.num_samples for r in results] == [len(c.dataset) for c in active]
        server.executor.close()

    @pytest.mark.parametrize("execution", ["thread", "process"])
    def test_live_trainer_mutations_honoured(self, tiny_config, execution):
        """The experiments' per-round LR-decay idiom (mutating
        ``sim.trainer.lr`` between rounds) must reach parallel workers,
        not be frozen at TrainerSpec construction."""
        import numpy as np

        def run(cfg):
            sim = FLSimulation(cfg)
            for lr in (0.05, 0.002):
                sim.trainer.lr = lr
                sim.server.run_round(sim.server.sample_clients())
                sim.server.round_idx += 1
            sim.server.executor.close()
            return sim.server.global_state()

        ref = run(tiny_config)
        got = run(tiny_config.replace(execution=execution, workers=2))
        for key in ref:
            np.testing.assert_array_equal(ref[key], got[key])

    @pytest.mark.parametrize("execution", ["thread", "process"])
    def test_failing_leg_drains_cleanly(self, tiny_config, execution):
        """A raising hook fails the round without stray legs corrupting
        the reused upload buffer; the next round runs normally."""
        sim = FLSimulation(tiny_config.replace(execution=execution, workers=2))
        server = sim.server
        active = server.select_cohort()
        plans = server.dispatch(active)
        plans[0].loss_hook = ExplodingSpec()
        with pytest.raises(RuntimeError, match="boom"):
            server.collect(active, plans)
        # Backend stays usable and deterministic afterwards.
        extras = server.run_round(server.select_cohort())
        assert "train_loss" in extras
        server.executor.close()

    def test_train_cohort_reuses_size_keyed_buffers(self, tiny_config):
        sim = FLSimulation(tiny_config)
        server = sim.server
        members = server.clients[:2]
        plans = [DispatchPlan(server.global_state()) for _ in members]
        _, buf1 = server.train_cohort(members, plans)
        _, buf2 = server.train_cohort(members, plans)
        assert buf1 is buf2
        assert len(buf1) == 2


class TestSharedMemoryCleanup:
    """Interrupt-safety of the process backend's /dev/shm segments
    (ISSUE 7 satellite): a KeyboardInterrupt unwinding through pool
    shutdown, or an interpreter exiting mid-round, must still unlink
    every live segment instead of leaking it until reboot."""

    @staticmethod
    def _segment_gone(name: str) -> bool:
        from multiprocessing import shared_memory

        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return True
        seg.close()
        return False

    def test_close_unlinks_segments_when_shutdown_is_interrupted(self):
        from repro.fl.execution import ProcessExecution

        backend = ProcessExecution()
        backend._ensure_shm(2, 3, np.float32)
        names = [backend._dispatch.shm.name, backend._uploads_shm.shm.name]

        class InterruptedPool:
            def shutdown(self, wait=True):
                raise KeyboardInterrupt

        backend._pool = InterruptedPool()
        with pytest.raises(KeyboardInterrupt):
            backend.close()
        assert backend._pool is None
        assert backend._dispatch is None and backend._uploads_shm is None
        for name in names:
            assert self._segment_gone(name), name
        backend.close()  # idempotent after the interrupted attempt

    def test_atexit_sweep_unlinks_live_blocks(self):
        from repro.fl.execution import (
            _LIVE_BLOCKS,
            _SharedBlock,
            _cleanup_shared_blocks,
        )

        block = _SharedBlock((2, 3), np.float32)
        assert block in _LIVE_BLOCKS
        name = block.shm.name
        _cleanup_shared_blocks()
        assert self._segment_gone(name)
        _cleanup_shared_blocks()  # sweep is idempotent

    def test_normal_close_remains_primary_release_path(self):
        from repro.fl.execution import _SharedBlock

        block = _SharedBlock((1, 4), np.float64)
        name = block.shm.name
        block.close()
        assert self._segment_gone(name)


class TestStreamDrain:
    """The streaming iterators' cancel-and-drain contract: when a leg
    errors (or the deadline passes), control must not leave the stream
    while any in-flight leg could still write into the reused upload
    buffer."""

    def test_stream_as_completed_drains_in_flight_on_error(self):
        import threading
        import time
        from concurrent.futures import ThreadPoolExecutor

        from repro.fl.execution import _stream_as_completed

        finished = threading.Event()

        def failing():
            raise RuntimeError("leg exploded")

        def slow():
            time.sleep(0.3)
            finished.set()
            return "late"

        def never():  # pragma: no cover - must stay queued and cancel
            raise AssertionError("cancelled leg ran")

        with ThreadPoolExecutor(max_workers=2) as pool:
            slow_f = pool.submit(slow)
            fail_f = pool.submit(failing)
            never_f = pool.submit(never)  # queued behind the two above
            futures = [slow_f, fail_f, never_f]
            indexed = {f: i for i, f in enumerate(futures)}
            with pytest.raises(RuntimeError, match="leg exploded"):
                for _ in _stream_as_completed(futures, indexed):
                    pass
            # The error only propagated after the in-flight leg ran to
            # completion (drained) and the unstarted one was cancelled.
            assert finished.is_set()
            assert never_f.cancelled()
