"""LocalTrainer and Client behaviour."""

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.fl.client import Client
from repro.fl.trainer import LocalTrainer
from repro.models import build_model
from repro.tensor.tensor import Tensor


@pytest.fixture
def setup(tiny_linear_dataset):
    model = build_model("mlp", seed=0, input_dim=6, num_classes=3, hidden_sizes=(16,))
    trainer = LocalTrainer(model, local_epochs=3, batch_size=16, lr=0.1, momentum=0.5)
    return model, trainer, tiny_linear_dataset


class TestLocalTrainer:
    def test_training_reduces_loss(self, setup, rng):
        model, trainer, ds = setup
        state0 = model.state_dict()
        result = trainer.train(state0, ds, rng)
        assert result.mean_loss < np.log(3)  # better than uniform guessing
        assert result.num_samples == len(ds)
        assert result.num_steps == 3 * int(np.ceil(len(ds) / 16))

    def test_returns_new_state_without_mutating_input(self, setup, rng):
        model, trainer, ds = setup
        state0 = model.state_dict()
        frozen = {k: v.copy() for k, v in state0.items()}
        trainer.train(state0, ds, rng)
        for k in state0:
            np.testing.assert_array_equal(state0[k], frozen[k])

    def test_training_is_deterministic_given_rng(self, setup):
        model, trainer, ds = setup
        state0 = model.state_dict()
        r1 = trainer.train(state0, ds, np.random.default_rng(3))
        r2 = trainer.train(state0, ds, np.random.default_rng(3))
        for k in r1.state:
            np.testing.assert_array_equal(r1.state[k], r2.state[k])

    def test_loss_hook_affects_update(self, setup, rng):
        model, trainer, ds = setup
        state0 = model.state_dict()
        plain = trainer.train(state0, ds, np.random.default_rng(0))

        def hook(m, logits, y):
            # heavy L2 pull toward zero changes the trajectory
            penalty = None
            for p in m.parameters():
                term = (p * p).sum()
                penalty = term if penalty is None else penalty + term
            return penalty * 10.0

        hooked = trainer.train(state0, ds, np.random.default_rng(0), loss_hook=hook)
        diffs = [
            np.abs(plain.state[k] - hooked.state[k]).max() for k in plain.state
        ]
        assert max(diffs) > 1e-4

    def test_grad_hook_applied(self, setup, rng):
        model, trainer, ds = setup
        state0 = model.state_dict()

        def zero_grads(named):
            for p in named.values():
                if p.grad is not None:
                    p.grad = np.zeros_like(p.grad)

        result = trainer.train(state0, ds, rng, grad_hook=zero_grads)
        # all gradients zeroed -> no movement at all
        for k in state0:
            np.testing.assert_allclose(result.state[k], state0[k], atol=1e-7)

    def test_lr_override(self, setup):
        model, trainer, ds = setup
        state0 = model.state_dict()
        moved = trainer.train(state0, ds, np.random.default_rng(0))
        frozen = trainer.train(state0, ds, np.random.default_rng(0), lr_override=1e-12)
        move_dist = sum(np.abs(moved.state[k] - state0[k]).sum() for k in state0)
        frozen_dist = sum(np.abs(frozen.state[k] - state0[k]).sum() for k in state0)
        assert frozen_dist < move_dist * 1e-3


class TestClient:
    def test_client_holds_shard(self, tiny_linear_dataset, rng):
        client = Client(3, tiny_linear_dataset, rng)
        assert client.client_id == 3
        assert client.num_samples == len(tiny_linear_dataset)
        assert len(client) == len(tiny_linear_dataset)

    def test_class_counts(self, tiny_linear_dataset, rng):
        client = Client(0, tiny_linear_dataset, rng)
        counts = client.class_counts(3)
        assert counts.sum() == len(tiny_linear_dataset)

    def test_client_train_delegates(self, setup, rng):
        model, trainer, ds = setup
        client = Client(0, ds, np.random.default_rng(1))
        result = client.train(trainer, model.state_dict())
        assert result.num_samples == len(ds)

    def test_repr(self, tiny_linear_dataset, rng):
        assert "Client(id=2" in repr(Client(2, tiny_linear_dataset, rng))
