"""Method registry error paths and registration contract."""

import pytest

from repro.fl.registry import _REGISTRY, available_methods, build_server, register_method
from repro.fl.server import FederatedServer


class TestBuildServerErrors:
    def test_unknown_method_raises_with_available_list(self):
        with pytest.raises(KeyError, match="unknown method"):
            build_server("no_such_method")
        try:
            build_server("no_such_method")
        except KeyError as exc:
            # The error must name what *is* available.
            assert "fedavg" in str(exc)
            assert "fedcross" in str(exc)

    def test_lookup_is_case_insensitive(self):
        assert "fedavg" in available_methods()
        # FEDAVG resolves to the same class; constructing needs full
        # args, so just check the key normalisation path doesn't raise
        # the unknown-method error.
        with pytest.raises(TypeError):
            build_server("FEDAVG")  # wrong arity, but the name resolved


class TestRegisterMethod:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(KeyError, match="already registered"):

            @register_method("fedavg")
            class Dup(FederatedServer):
                pass

        # The original registration is untouched.
        assert _REGISTRY["fedavg"].__name__ == "FedAvgServer"

    def test_registration_normalises_and_sets_method_name(self):
        @register_method("TestOnlyMethod")
        class TestOnly(FederatedServer):
            pass

        try:
            assert TestOnly.method_name == "testonlymethod"
            assert "testonlymethod" in available_methods()
        finally:
            del _REGISTRY["testonlymethod"]
