"""Phase protocol: select_cohort → dispatch → collect → aggregate."""

import numpy as np
import pytest

from repro.fl.server import DispatchPlan
from repro.fl.simulation import FLSimulation


class TestPhaseDriver:
    def test_run_round_calls_phases_in_order(self, tiny_config):
        sim = FLSimulation(tiny_config)
        server = sim.server
        seen = []

        original = {
            "dispatch": server.dispatch,
            "collect": server.collect,
            "aggregate": server.aggregate,
        }

        def spy(name):
            def wrapper(*args, **kwargs):
                seen.append(name)
                return original[name](*args, **kwargs)

            return wrapper

        server.dispatch = spy("dispatch")
        server.collect = spy("collect")
        server.aggregate = spy("aggregate")
        server.run_round(server.select_cohort())
        assert seen == ["dispatch", "collect", "aggregate"]

    def test_default_dispatch_sends_global_state(self, tiny_config):
        sim = FLSimulation(tiny_config)
        active = sim.server.select_cohort()
        plans = sim.server.dispatch(active)
        assert len(plans) == len(active)
        for plan in plans:
            assert isinstance(plan, DispatchPlan)
            assert plan.loss_hook is None and plan.grad_hook is None
            for key, value in sim.server.global_state().items():
                np.testing.assert_array_equal(plan.state[key], value)

    def test_collect_packs_uploads_into_pool_rows(self, tiny_config):
        sim = FLSimulation(tiny_config)
        server = sim.server
        active = server.select_cohort()
        plans = server.dispatch(active)
        results = server.collect(active, plans)
        assert len(server.uploads) == len(active)
        for i, result in enumerate(results):
            packed = server.uploads.as_state(i)
            for key in result.state:
                np.testing.assert_allclose(
                    packed[key],
                    np.asarray(result.state[key], dtype=np.float32),
                    rtol=1e-6,
                    atol=1e-7,
                )

    def test_upload_buffer_reused_across_rounds(self, tiny_config):
        sim = FLSimulation(tiny_config.replace(rounds=2))
        server = sim.server
        server.run_round(server.select_cohort())
        first = server.uploads
        server.run_round(server.select_cohort())
        assert server.uploads is first

    def test_sample_clients_alias_delegates_to_select_cohort(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("clusamp"))
        server = sim.server
        # CluSamp overrides select_cohort only; the legacy alias must
        # route through the override, not bypass it.
        assert "sample_clients" not in type(server).__dict__
        seen = []
        original = server.select_cohort

        def spy():
            seen.append(True)
            return original()

        server.select_cohort = spy
        cohort = server.sample_clients()
        assert seen == [True]
        assert len(cohort) == tiny_config.clients_per_round

    def test_fedcross_dispatch_tags_model_rows(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("fedcross"))
        server = sim.server
        active = server.select_cohort()
        plans = server.dispatch(active)
        rows = sorted(plan.context["row"] for plan in plans)
        assert rows == list(range(len(active)))
        # Each plan's state is middleware model `row`.
        for plan in plans:
            expected = server.pool.as_state(plan.context["row"])
            for key in expected:
                np.testing.assert_array_equal(plan.state[key], expected[key])

    def test_fedcross_rejects_wrong_cohort_size(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("fedcross"))
        with pytest.raises(RuntimeError, match="needs exactly"):
            sim.server.dispatch(sim.server.clients[:1])


class TestPhaseOverride:
    def test_custom_dispatch_hook_reaches_clients(self, tiny_config):
        """A user subclass overriding one phase slots into the driver."""
        from repro.baselines.fedavg import FedAvgServer

        calls = []

        class Probed(FedAvgServer):
            def dispatch(self, active):
                plans = super().dispatch(active)
                for plan in plans:
                    plan.context["probed"] = True
                calls.append(len(plans))
                return plans

        sim = FLSimulation(tiny_config)
        server = Probed(
            sim.config,
            sim.fed_dataset,
            sim.model,
            sim.trainer,
            sim.clients,
            np.random.default_rng(0),
        )
        server.fit(1)
        assert calls == [tiny_config.clients_per_round]


class TestPoolBackedAggregation:
    def test_fedavg_aggregate_matches_weighted_average(self, tiny_config):
        from repro.utils.params import weighted_average

        sim = FLSimulation(tiny_config)
        server = sim.server
        active = server.select_cohort()
        plans = server.dispatch(active)
        results = server.collect(active, plans)
        got = server.aggregate_uploads(results)
        ref = weighted_average(
            [r.state for r in results], [r.num_samples for r in results]
        )
        for key in ref:
            np.testing.assert_allclose(got[key], ref[key], rtol=1e-5, atol=1e-6)

    def test_aggregate_uploads_requires_collect(self, tiny_config):
        sim = FLSimulation(tiny_config)
        with pytest.raises(RuntimeError, match="collect"):
            sim.server.aggregate_uploads([])
