"""FLSimulation assembly and the registry."""

import numpy as np
import pytest

from repro.fl.config import FLConfig
from repro.fl.registry import available_methods, build_server
from repro.fl.simulation import FLSimulation, default_model_params, run_simulation


class TestRegistry:
    def test_all_six_methods_registered(self):
        assert set(available_methods()) >= {
            "fedavg",
            "fedprox",
            "scaffold",
            "fedgen",
            "clusamp",
            "fedcross",
        }

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError, match="unknown method"):
            build_server("fedsgd")


class TestModelParamInference:
    def test_vision_model_gets_input_shape(self, tiny_config):
        from repro.data.federated import build_federated_dataset

        fed = build_federated_dataset(
            "synth_cifar10", num_clients=6, heterogeneity=0.5, seed=0,
            samples_per_client=20,
        )
        params = default_model_params(tiny_config.replace(model="cnn_s"), fed)
        assert params["input_shape"] == (3, 8, 8)
        assert params["num_classes"] == 10

    def test_mlp_gets_flat_dim(self, tiny_config):
        from repro.data.federated import build_federated_dataset

        fed = build_federated_dataset(
            "synth_cifar10", num_clients=6, heterogeneity=0.5, seed=0,
            samples_per_client=20,
        )
        params = default_model_params(tiny_config, fed)
        assert params["input_dim"] == 192

    def test_lstm_gets_vocab(self, tiny_config):
        from repro.data.federated import build_federated_dataset

        fed = build_federated_dataset("synth_shakespeare", num_clients=6, seed=0)
        params = default_model_params(tiny_config.replace(model="charlstm"), fed)
        assert params["vocab_size"] == fed.meta["vocab_size"]


class TestSimulation:
    def test_runs_and_reports(self, tiny_config):
        result = run_simulation(tiny_config)
        assert len(result.history) == tiny_config.rounds
        assert 0.0 <= result.final_accuracy <= 1.0
        assert set(result.final_state) == set(
            FLSimulation(tiny_config).model.state_dict()
        )

    def test_client_count_mismatch_raises(self, tiny_config):
        from repro.data.federated import build_federated_dataset

        fed = build_federated_dataset(
            "synth_cifar10", num_clients=3, heterogeneity=0.5, seed=0,
            samples_per_client=20,
        )
        with pytest.raises(ValueError, match="clients"):
            FLSimulation(tiny_config, fed_dataset=fed)

    def test_same_seed_identical_histories(self, tiny_config):
        a = run_simulation(tiny_config)
        b = run_simulation(tiny_config)
        assert a.history.accuracies == b.history.accuracies
        for k in a.final_state:
            np.testing.assert_array_equal(a.final_state[k], b.final_state[k])

    def test_different_seed_differs(self, tiny_config):
        a = run_simulation(tiny_config)
        b = run_simulation(tiny_config.replace(seed=8))
        assert not all(
            np.allclose(a.final_state[k], b.final_state[k]) for k in a.final_state
        )

    def test_eval_cadence(self, tiny_config):
        cfg = tiny_config.replace(rounds=6, eval_every=3)
        result = run_simulation(cfg)
        evaluated = [r.round_idx for r in result.history.records if r.accuracy is not None]
        assert evaluated == [2, 5]

    def test_comm_recorded_every_round(self, tiny_config):
        result = run_simulation(tiny_config)
        assert all(
            r.comm_up_params > 0 and r.comm_down_params > 0
            for r in result.history.records
        )


class TestServerBase:
    def test_sampling_returns_distinct_clients(self, tiny_config):
        sim = FLSimulation(tiny_config)
        active = sim.server.sample_clients()
        assert len(active) == tiny_config.clients_per_round
        assert len({c.client_id for c in active}) == len(active)

    def test_base_class_abstract_methods(self, tiny_config):
        from repro.fl.server import FederatedServer

        sim = FLSimulation(tiny_config)
        base = FederatedServer(
            tiny_config, sim.fed_dataset, sim.model, sim.trainer, sim.clients,
            np.random.default_rng(0),
        )
        with pytest.raises(NotImplementedError):
            base.run_round([])
        with pytest.raises(NotImplementedError):
            base.global_state()
