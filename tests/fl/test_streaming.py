"""Streaming collect: bit-identical to the gathered schedule (ISSUE 4).

The streaming collect phase consumes uploads as legs complete and runs
per-upload server work (``on_upload``) while slower legs still train.
The contract: for every method and every execution backend, a
streaming run is **bit-identical** to the gathered reference schedule
— same histories, same final state, same pool matrices, same RNG
advancement.  All seven registered methods are checked on the serial
backend; the parallel backends are checked on the methods that
exercise their hardest paths (FedCross's incremental Gram, SCAFFOLD's
and FedGen's shared-payload specs).
"""

import numpy as np
import pytest

from repro.fl.config import FLConfig
from repro.fl.registry import available_methods
from repro.fl.simulation import FLSimulation

ALL_METHODS = ("fedavg", "fedprox", "scaffold", "fedgen", "clusamp", "fedcluster", "fedcross")


def _config(method: str, execution: str, streaming: bool) -> FLConfig:
    return FLConfig(
        method=method,
        dataset="synth_cifar10",
        model="mlp",
        heterogeneity=0.5,
        num_clients=4,
        participation=0.5,
        rounds=2,
        local_epochs=1,
        batch_size=16,
        eval_every=1,
        seed=11,
        execution=execution,
        workers=2,
        streaming=streaming,
        dataset_params={"samples_per_client": 20, "num_test": 40},
        method_params={"mu": 0.1} if method == "fedprox" else {},
    )


def _run(config: FLConfig):
    sim = FLSimulation(config)
    result = sim.run()
    pool = getattr(sim.server, "pool", None)
    matrix = np.array(pool.matrix, copy=True) if pool is not None else None
    return result, matrix


def _assert_identical(ref, got, label):
    ref_result, ref_pool = ref
    got_result, got_pool = got
    for a, b in zip(ref_result.history.records, got_result.history.records):
        assert a.accuracy == b.accuracy, label
        assert a.loss == b.loss, label
        assert a.train_loss == b.train_loss, label
        assert a.comm_up_params == b.comm_up_params, label
    for key in ref_result.final_state:
        np.testing.assert_array_equal(
            ref_result.final_state[key], got_result.final_state[key], err_msg=label
        )
    if ref_pool is not None:
        np.testing.assert_array_equal(ref_pool, got_pool, err_msg=label)


class TestStreamingBitIdentity:
    def test_all_seven_methods_registered(self):
        assert set(ALL_METHODS) <= set(available_methods())

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_serial_streaming_matches_gathered(self, method):
        ref = _run(_config(method, "serial", streaming=False))
        got = _run(_config(method, "serial", streaming=True))
        _assert_identical(ref, got, f"{method}/serial")

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_thread_streaming_matches_gathered(self, method):
        ref = _run(_config(method, "thread", streaming=False))
        got = _run(_config(method, "thread", streaming=True))
        _assert_identical(ref, got, f"{method}/thread")

    @pytest.mark.parametrize("method", ["fedcross", "scaffold", "fedgen"])
    def test_process_streaming_matches_gathered(self, method):
        ref = _run(_config(method, "process", streaming=False))
        got = _run(_config(method, "process", streaming=True))
        _assert_identical(ref, got, f"{method}/process")

    # Cross-execution-backend streaming equality (the old ad-hoc
    # serial-vs-thread pairwise check) now lives in the full
    # storage × execution × schedule grid of
    # tests/integration/test_backend_matrix.py.


class TestOnUploadHook:
    def test_on_upload_fires_once_per_row(self, tiny_config):
        calls = []
        sim = FLSimulation(tiny_config.replace(streaming=True))
        server = sim.server
        original = server.on_upload
        server.on_upload = lambda row, result: (calls.append(row), original(row, result))
        active = server.select_cohort()
        results = server.collect(active, server.dispatch(active))
        assert sorted(calls) == list(range(len(active)))
        assert len(results) == len(active)

    def test_on_upload_fires_in_gathered_mode_too(self, tiny_config):
        """The hook contract is mode-independent — gathered collect
        fires it in plan order after the run."""
        calls = []
        sim = FLSimulation(tiny_config.replace(streaming=False))
        server = sim.server
        server.on_upload = lambda row, result: calls.append(row)
        active = server.select_cohort()
        server.collect(active, server.dispatch(active))
        assert calls == list(range(len(active)))

    def test_streaming_flag_wired_from_config(self, tiny_config):
        assert FLSimulation(tiny_config).server.streaming is True
        assert (
            FLSimulation(tiny_config.replace(streaming=False)).server.streaming is False
        )


class TestFedCrossGramUnderStreaming:
    def test_upload_gram_fresh_after_collect(self, tiny_config):
        cfg = tiny_config.with_method("fedcross", alpha=0.8, selection="lowest")
        sim = FLSimulation(cfg)
        server = sim.server
        active = server.select_cohort()
        server.collect(active, server.dispatch(active))
        tracker = server._upload_gram
        assert tracker is not None and tracker.pool is server.uploads
        fresh = server.uploads.gram_matrix(param_keys=server.selector.param_keys)
        np.testing.assert_allclose(tracker.gram, fresh, rtol=1e-9, atol=1e-9)

    def test_pool_gram_serves_middleware_similarity(self, tiny_config):
        cfg = tiny_config.replace(rounds=2).with_method(
            "fedcross", alpha=0.8, selection="lowest"
        )
        sim = FLSimulation(cfg)
        sim.server.fit()
        assert sim.server._pool_gram is not None
        assert sim.server._pool_gram.pool is sim.server.pool
        got = sim.server.middleware_similarity()
        fresh = sim.server.pool.similarity_matrix(
            "cosine", param_keys=sim.server.selector.param_keys
        )
        np.testing.assert_allclose(got, fresh, rtol=1e-5, atol=1e-6)
        disp = sim.server.pool_dispersion()
        ref = sim.server.pool.dispersion(param_keys=sim.server.selector.param_keys)
        # Converged-pool cancellation floor (see repro.core.gram).
        floor = float(
            np.sqrt(np.abs(sim.server._pool_gram.gram).max() * 1e-9)
        )
        assert abs(disp - ref) <= max(1e-6 * (1.0 + ref), floor)

    def test_in_order_runs_skip_gram_maintenance(self, tiny_config):
        cfg = tiny_config.with_method("fedcross", alpha=0.8, selection="in_order")
        sim = FLSimulation(cfg)
        server = sim.server
        assert server._track_gram is False
        server.run_round(server.select_cohort())
        assert server._upload_gram is None
        assert server._pool_gram is None
        # Diagnostics still work through the fresh-recompute fallback.
        assert server.middleware_similarity().shape == (
            cfg.clients_per_round,
            cfg.clients_per_round,
        )
        assert server.pool_dispersion() >= 0.0

    def test_checkpoint_restore_invalidates_pool_gram(self, tiny_config):
        cfg = tiny_config.with_method("fedcross", alpha=0.8, selection="lowest")
        sim = FLSimulation(cfg)
        server = sim.server
        server.run_round(server.select_cohort())
        assert server._pool_gram is not None
        server.set_global_state(server.global_state())
        assert server._pool_gram is None
        # middleware setter too
        server.run_round(server.select_cohort())
        server.round_idx += 1
        assert server._pool_gram is not None
        server.middleware = [dict(s) for s in server.middleware]
        assert server._pool_gram is None
