"""DP-SGD hooks: clipping, noise, calibration, end-to-end use."""

import numpy as np
import pytest

from repro.fl.privacy import DPConfig, gaussian_sigma_for, make_dp_grad_hook
from repro.nn.module import Parameter


def params_with_grads(grads):
    out = {}
    for i, g in enumerate(grads):
        p = Parameter(np.zeros_like(np.asarray(g, dtype=np.float32)))
        p.grad = np.asarray(g, dtype=np.float32)
        out[f"p{i}"] = p
    return out


class TestDPConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DPConfig(clip_norm=0.0)
        with pytest.raises(ValueError):
            DPConfig(noise_multiplier=-1.0)

    def test_repr(self):
        assert "clip=2.0" in repr(DPConfig(clip_norm=2.0))


class TestClipping:
    def test_large_gradients_clipped_to_bound(self):
        named = params_with_grads([[30.0, 40.0]])  # norm 50
        hook = make_dp_grad_hook(DPConfig(clip_norm=1.0, noise_multiplier=0.0))
        hook(named)
        total = np.sqrt(sum(float((p.grad**2).sum()) for p in named.values()))
        assert total == pytest.approx(1.0, rel=1e-5)

    def test_small_gradients_untouched(self):
        named = params_with_grads([[0.3, 0.4]])  # norm 0.5
        hook = make_dp_grad_hook(DPConfig(clip_norm=1.0, noise_multiplier=0.0))
        hook(named)
        np.testing.assert_allclose(named["p0"].grad, [0.3, 0.4], rtol=1e-6)

    def test_joint_norm_across_tensors(self):
        named = params_with_grads([[3.0], [4.0]])  # joint norm 5
        hook = make_dp_grad_hook(DPConfig(clip_norm=1.0, noise_multiplier=0.0))
        hook(named)
        total = np.sqrt(sum(float((p.grad**2).sum()) for p in named.values()))
        assert total == pytest.approx(1.0, rel=1e-5)

    def test_none_grads_skipped(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        hook = make_dp_grad_hook(DPConfig())
        hook({"p": p})  # must not raise
        assert p.grad is None


class TestNoise:
    def test_noise_perturbs_gradients(self):
        named = params_with_grads([np.zeros(1000)])
        hook = make_dp_grad_hook(DPConfig(clip_norm=1.0, noise_multiplier=0.5, seed=1))
        hook(named)
        g = named["p0"].grad
        assert np.abs(g).sum() > 0
        assert g.std() == pytest.approx(0.5, rel=0.15)

    def test_noise_deterministic_by_seed(self):
        a = params_with_grads([np.zeros(10)])
        b = params_with_grads([np.zeros(10)])
        make_dp_grad_hook(DPConfig(noise_multiplier=1.0, seed=9))(a)
        make_dp_grad_hook(DPConfig(noise_multiplier=1.0, seed=9))(b)
        np.testing.assert_array_equal(a["p0"].grad, b["p0"].grad)


class TestCalibration:
    def test_sigma_decreases_with_epsilon(self):
        assert gaussian_sigma_for(1.0, 1e-5) > gaussian_sigma_for(5.0, 1e-5)

    def test_sigma_scales_with_sensitivity(self):
        assert gaussian_sigma_for(1.0, 1e-5, 2.0) == pytest.approx(
            2 * gaussian_sigma_for(1.0, 1e-5, 1.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_sigma_for(0.0, 1e-5)
        with pytest.raises(ValueError):
            gaussian_sigma_for(1.0, 2.0)


class TestEndToEnd:
    def test_dp_training_still_learns(self, tiny_linear_dataset):
        """Clipping-only DP on an easy task barely hurts."""
        from repro.fl.trainer import LocalTrainer
        from repro.models import build_model

        model = build_model("mlp", seed=0, input_dim=6, num_classes=3, hidden_sizes=(16,))
        trainer = LocalTrainer(model, local_epochs=5, batch_size=16, lr=0.1, momentum=0.5)
        hook = make_dp_grad_hook(DPConfig(clip_norm=5.0, noise_multiplier=0.01, seed=0))
        result = trainer.train(
            model.state_dict(), tiny_linear_dataset, np.random.default_rng(0),
            grad_hook=hook,
        )
        assert result.mean_loss < np.log(3)

    def test_heavy_noise_degrades_training(self, tiny_linear_dataset):
        from repro.fl.trainer import LocalTrainer
        from repro.models import build_model

        model = build_model("mlp", seed=0, input_dim=6, num_classes=3, hidden_sizes=(16,))
        trainer = LocalTrainer(model, local_epochs=5, batch_size=16, lr=0.1, momentum=0.5)
        clean = trainer.train(
            model.state_dict(), tiny_linear_dataset, np.random.default_rng(0)
        )
        noisy_hook = make_dp_grad_hook(DPConfig(clip_norm=1.0, noise_multiplier=5.0, seed=0))
        noisy = trainer.train(
            model.state_dict(), tiny_linear_dataset, np.random.default_rng(0),
            grad_hook=noisy_hook,
        )
        assert noisy.mean_loss > clean.mean_loss
