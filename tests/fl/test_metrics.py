"""Evaluation and history recording."""

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.fl.metrics import RoundRecord, TrainingHistory, evaluate_model
from repro.models import build_model
from repro.nn.module import Module
from repro.tensor.tensor import Tensor


class Oracle(Module):
    """Classifier that always outputs the true label given crafted inputs."""

    def forward(self, x):
        # inputs are one-hot label encodings scaled by 10
        return x if isinstance(x, Tensor) else Tensor(x)


class TestEvaluateModel:
    def test_perfect_model_scores_one(self):
        labels = np.array([0, 1, 2, 1])
        feats = np.eye(3, dtype=np.float32)[labels] * 10
        ds = ArrayDataset(feats, labels)
        acc, loss = evaluate_model(Oracle(), ds)
        assert acc == 1.0
        assert loss < 0.01

    def test_worst_model_scores_zero(self):
        labels = np.array([0, 1])
        feats = np.eye(2, dtype=np.float32)[1 - labels] * 10  # always wrong
        ds = ArrayDataset(feats, labels)
        acc, _ = evaluate_model(Oracle(), ds)
        assert acc == 0.0

    def test_batched_equals_full(self):
        model = build_model("mlp", seed=0, input_dim=4, num_classes=3)
        rng = np.random.default_rng(0)
        ds = ArrayDataset(
            rng.standard_normal((50, 4)).astype(np.float32), rng.integers(0, 3, 50)
        )
        acc_full, loss_full = evaluate_model(model, ds, batch_size=50)
        acc_b, loss_b = evaluate_model(model, ds, batch_size=7)
        assert acc_full == acc_b
        assert loss_full == pytest.approx(loss_b, rel=1e-5)

    def test_empty_dataset_raises_value_error(self):
        ds = ArrayDataset(np.zeros((0, 3), dtype=np.float32), np.zeros(0))
        with pytest.raises(ValueError, match="empty dataset"):
            evaluate_model(Oracle(), ds)

    def test_restores_training_mode(self):
        model = build_model("mlp", seed=0, input_dim=4, num_classes=2)
        ds = ArrayDataset(np.zeros((4, 4), dtype=np.float32), np.zeros(4, dtype=int))
        model.train()
        evaluate_model(model, ds)
        assert model.training
        model.eval()
        evaluate_model(model, ds)
        assert not model.training

    def test_integer_features_passed_raw(self):
        model = build_model("charlstm", seed=0, vocab_size=9, hidden_size=4, embed_dim=3)
        ds = ArrayDataset(
            np.random.default_rng(0).integers(0, 9, (10, 5)), np.zeros(10, dtype=int)
        )
        acc, loss = evaluate_model(model, ds)
        assert 0.0 <= acc <= 1.0
        assert np.isfinite(loss)


def history_with(accs):
    h = TrainingHistory()
    for i, a in enumerate(accs):
        h.append(RoundRecord(round_idx=i, accuracy=a, comm_up_params=10, comm_down_params=10))
    return h


class TestTrainingHistory:
    def test_accuracy_series(self):
        h = history_with([0.1, 0.5, 0.4])
        assert h.accuracies == [0.1, 0.5, 0.4]
        assert h.final_accuracy == 0.4
        assert h.best_accuracy == 0.5

    def test_unevaluated_rounds_skipped(self):
        h = history_with([0.1])
        h.append(RoundRecord(round_idx=1))  # no eval
        assert h.accuracies == [0.1]
        assert h.rounds == [0]

    def test_tail_accuracy(self):
        h = history_with([0.0, 0.0, 0.4, 0.6])
        assert h.tail_accuracy(2) == pytest.approx(0.5)

    def test_rounds_to_accuracy(self):
        h = history_with([0.1, 0.3, 0.7, 0.8])
        assert h.rounds_to_accuracy(0.65) == 2
        assert h.rounds_to_accuracy(0.95) is None

    def test_total_comm(self):
        h = history_with([0.1, 0.2])
        assert h.total_comm_params() == 40

    def test_empty_history_raises(self):
        h = TrainingHistory()
        with pytest.raises(ValueError):
            _ = h.final_accuracy
        with pytest.raises(ValueError):
            h.tail_accuracy()
