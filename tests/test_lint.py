"""The numpy-import lint keeps nn/optim on the dispatch layer."""

import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_numpy_imports  # noqa: E402


def test_repo_is_clean():
    assert check_numpy_imports.check(REPO_ROOT / "src") == []


def test_allowlist_entries_exist():
    for rel in check_numpy_imports.ALLOWLIST:
        assert (REPO_ROOT / "src" / "repro" / rel).is_file(), rel


def _write_package(root: Path, body: str) -> Path:
    package = root / "repro" / "nn"
    package.mkdir(parents=True)
    (root / "repro" / "optim").mkdir()
    (package / "offender.py").write_text(textwrap.dedent(body))
    return root


def test_runtime_import_flagged(tmp_path):
    src = _write_package(
        tmp_path,
        """
        import numpy as np

        X = np.zeros(3)
        """,
    )
    violations = check_numpy_imports.check(src)
    assert len(violations) == 1
    assert violations[0].endswith("offender.py:2")


def test_type_checking_import_allowed(tmp_path):
    src = _write_package(
        tmp_path,
        """
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            import numpy as np

        def f(x: "np.ndarray") -> "np.ndarray":
            return x
        """,
    )
    assert check_numpy_imports.check(src) == []


def test_nested_and_from_imports_flagged(tmp_path):
    src = _write_package(
        tmp_path,
        """
        def lazy():
            from numpy import zeros

            return zeros(3)
        """,
    )
    violations = check_numpy_imports.check(src)
    assert len(violations) == 1
