"""FedCluster extension baseline."""

import numpy as np
import pytest

from repro.fl.simulation import FLSimulation, run_simulation


class TestFedCluster:
    def test_registered(self):
        from repro.fl.registry import available_methods

        assert "fedcluster" in available_methods()

    def test_clusters_partition_population(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("fedcluster", num_clusters=3))
        ids = sorted(sum(sim.server._clusters, []))
        assert ids == list(range(tiny_config.num_clients))
        assert len(sim.server._clusters) == 3

    def test_single_cluster_reduces_to_fedavg_style(self, tiny_config):
        result = run_simulation(
            tiny_config.with_method("fedcluster", num_clusters=1)
        )
        assert len(result.history) == tiny_config.rounds

    def test_invalid_cluster_count(self, tiny_config):
        with pytest.raises(ValueError):
            FLSimulation(tiny_config.with_method("fedcluster", num_clusters=0))

    def test_cyclic_visit_order_rotates(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("fedcluster", num_clusters=2))
        # round_idx changes the starting cluster
        assert sim.server.round_idx % 2 == 0
        sim.server.run_round(sim.server.sample_clients())
        # no assertion on internals beyond it running; rotation covered
        # by the deterministic schedule formula
        sim.server.round_idx += 1
        sim.server.run_round(sim.server.sample_clients())

    def test_learns(self, tiny_config):
        result = run_simulation(
            tiny_config.replace(rounds=6, local_epochs=3).with_method(
                "fedcluster", num_clusters=2
            )
        )
        assert result.best_accuracy > 0.15

    def test_communication_recorded(self, tiny_config):
        result = run_simulation(tiny_config.with_method("fedcluster", num_clusters=2))
        assert result.history.total_comm_params() > 0
