"""SCAFFOLD: control-variate mechanics and communication accounting."""

import numpy as np
import pytest

from repro.fl.simulation import FLSimulation, run_simulation


class TestScaffold:
    def test_control_variates_initialised_zero(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("scaffold"))
        assert all((v == 0).all() for v in sim.server._c_global.values())
        assert sim.server._c_clients == {}

    def test_variates_cover_params_not_buffers(self, tiny_config):
        sim = FLSimulation(tiny_config.replace(model="cnn_s").with_method("scaffold"))
        param_keys = {n for n, _ in sim.model.named_parameters()}
        assert set(sim.server._c_global) == param_keys

    def test_client_variates_created_after_participation(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("scaffold"))
        active = sim.server.sample_clients()
        sim.server.run_round(active)
        for client in active:
            assert client.client_id in sim.server._c_clients

    def test_global_variate_moves_after_round(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("scaffold"))
        sim.server.run_round(sim.server.sample_clients())
        total = sum(np.abs(v).sum() for v in sim.server._c_global.values())
        assert total > 0

    def test_variate_mean_zero_identity(self, tiny_config):
        """c_i+ = c_i - c + (x - y_i)/(steps*lr): check directly."""
        sim = FLSimulation(tiny_config.with_method("scaffold"))
        server = sim.server
        x = {k: v.copy() for k, v in server._global.items()}
        active = server.sample_clients()
        server.run_round(active)
        # For first-time participants c_i was 0 and c was 0, so
        # c_i+ = (x - y_i) / (steps * lr) must be nonzero after training.
        cid = active[0].client_id
        c_new = server._c_clients[cid]
        assert sum(np.abs(v).sum() for v in c_new.values()) > 0

    def test_communication_doubled_vs_fedavg(self, tiny_config):
        fa = run_simulation(tiny_config.with_method("fedavg"))
        sc = run_simulation(tiny_config.with_method("scaffold"))
        assert sc.history.total_comm_params() == 2 * fa.history.total_comm_params()

    def test_learns(self, tiny_config):
        result = run_simulation(
            tiny_config.replace(rounds=6, local_epochs=3).with_method("scaffold")
        )
        assert result.best_accuracy > 0.15

    def test_server_lr_configurable(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("scaffold", server_lr=0.5))
        assert sim.server.server_lr == 0.5
