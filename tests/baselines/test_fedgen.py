"""FedGen: generator, distillation hook, communication overhead."""

import numpy as np
import pytest

from repro.baselines.fedgen import Generator
from repro.fl.simulation import FLSimulation, run_simulation
from repro.tensor.tensor import Tensor
from repro.utils.rng import default_rng


class TestGenerator:
    def test_output_shape(self):
        gen = Generator(num_classes=5, output_dim=48, z_dim=8, rng=default_rng(0))
        z = Tensor(np.zeros((3, 8), dtype=np.float32))
        out = gen(z, np.array([0, 2, 4]))
        assert out.shape == (3, 48)

    def test_conditioning_changes_output(self):
        gen = Generator(num_classes=3, output_dim=10, z_dim=4, rng=default_rng(0))
        z = Tensor(np.zeros((1, 4), dtype=np.float32))
        a = gen(z, np.array([0])).numpy()
        b = gen(z, np.array([2])).numpy()
        assert not np.allclose(a, b)

    def test_trainable(self):
        gen = Generator(num_classes=2, output_dim=6, rng=default_rng(0))
        z = Tensor(np.ones((2, 16), dtype=np.float32))
        out = gen(z, np.array([0, 1]))
        out.sum().backward()
        assert all(p.grad is not None for p in gen.parameters())


class TestFedGenServer:
    def test_vision_mode_sample_shape(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("fedgen"))
        assert not sim.server._embedded_mode
        assert sim.server._sample_shape == (3, 8, 8)

    def test_embedded_mode_for_lstm(self):
        from repro.fl.config import FLConfig

        cfg = FLConfig(
            method="fedgen",
            dataset="synth_shakespeare",
            model="charlstm",
            num_clients=4,
            participation=0.5,
            rounds=2,
            local_epochs=1,
            batch_size=16,
            seed=0,
            dataset_params={"samples_per_client": 30, "num_test": 40},
            model_params={"hidden_size": 8, "embed_dim": 4},
        )
        sim = FLSimulation(cfg)
        assert sim.server._embedded_mode
        seq_len, embed_dim = sim.server._sample_shape
        assert embed_dim == 4
        result = sim.run()
        assert 0.0 <= result.final_accuracy <= 1.0

    def test_generator_training_runs_and_reports_loss(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("fedgen", gen_steps=3))
        extras = sim.server.run_round(sim.server.sample_clients())
        assert "gen_loss" in extras
        assert np.isfinite(extras["gen_loss"])

    def test_label_counts_updated_from_clients(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("fedgen"))
        before = sim.server._label_counts.copy()
        sim.server.run_round(sim.server.sample_clients())
        assert not np.array_equal(before, sim.server._label_counts)

    def test_comm_includes_generator_downlink(self, tiny_config):
        fa = run_simulation(tiny_config.with_method("fedavg"))
        fg = run_simulation(tiny_config.with_method("fedgen", gen_steps=1))
        sim = FLSimulation(tiny_config.with_method("fedgen"))
        k = tiny_config.clients_per_round
        expected_extra = (
            tiny_config.rounds * k * sim.server.generator_size
        )
        assert (
            fg.history.total_comm_params() - fa.history.total_comm_params()
            == expected_extra
        )

    def test_learns(self, tiny_config):
        result = run_simulation(
            tiny_config.replace(rounds=6, local_epochs=3).with_method("fedgen", gen_steps=2)
        )
        assert result.best_accuracy > 0.15
