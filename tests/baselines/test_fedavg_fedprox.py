"""FedAvg and FedProx: aggregation math and proximal behaviour."""

import numpy as np
import pytest

from repro.fl.config import FLConfig
from repro.fl.simulation import FLSimulation, run_simulation
from repro.utils.params import flatten_state_dict, weighted_average


@pytest.fixture
def cfg(tiny_config):
    return tiny_config


class TestFedAvg:
    def test_global_state_is_weighted_average_of_uploads(self, cfg):
        sim = FLSimulation(cfg)
        server = sim.server
        active = server.sample_clients()
        # capture uploads by re-running the exact local training
        import copy

        global_before = {k: v.copy() for k, v in server._global.items()}
        rng_states = [copy.deepcopy(c.rng.bit_generator.state) for c in active]
        server.run_round(active)
        after = server._global

        uploads = []
        for client, state in zip(active, rng_states):
            client.rng.bit_generator.state = state
            uploads.append(client.train(sim.trainer, global_before))
        expected = weighted_average(
            [u.state for u in uploads], [u.num_samples for u in uploads]
        )
        for k in expected:
            np.testing.assert_allclose(after[k], expected[k], rtol=1e-5, atol=1e-6)

    def test_accuracy_improves_over_init(self, cfg):
        cfg = cfg.replace(rounds=6, local_epochs=3)
        result = run_simulation(cfg)
        assert result.best_accuracy > 0.15  # above 10-class chance

    def test_communication_is_2k_models_per_round(self, cfg):
        sim = FLSimulation(cfg)
        history = sim.server.fit()
        k = cfg.clients_per_round
        size = sim.model.num_parameters()
        for rec in history.records:
            assert rec.comm_up_params == k * size
            assert rec.comm_down_params == k * size


class TestFedProx:
    def test_mu_zero_matches_fedavg_exactly(self, cfg):
        fa = run_simulation(cfg.with_method("fedavg"))
        fp = run_simulation(cfg.with_method("fedprox", mu=0.0))
        for k in fa.final_state:
            np.testing.assert_allclose(
                fa.final_state[k], fp.final_state[k], rtol=1e-5, atol=1e-6
            )

    def test_large_mu_keeps_local_models_near_global(self, cfg):
        """The proximal term should shrink the update magnitude."""
        short = cfg.replace(rounds=2)
        free = run_simulation(short.with_method("fedprox", mu=0.0))
        tight = run_simulation(short.with_method("fedprox", mu=50.0))
        sim = FLSimulation(cfg)
        init = flatten_state_dict(sim.model.state_dict())
        move_free = np.linalg.norm(flatten_state_dict(free.final_state) - init)
        move_tight = np.linalg.norm(flatten_state_dict(tight.final_state) - init)
        assert move_tight < move_free

    def test_negative_mu_rejected(self, cfg):
        with pytest.raises(ValueError):
            FLSimulation(cfg.with_method("fedprox", mu=-1.0))

    def test_learns(self, cfg):
        result = run_simulation(cfg.replace(rounds=6).with_method("fedprox", mu=0.01))
        assert result.best_accuracy > 0.15
