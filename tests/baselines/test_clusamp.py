"""CluSamp: clustering, stratified sampling, FedAvg-compatible aggregation."""

import numpy as np
import pytest

from repro.fl.simulation import FLSimulation, run_simulation


class TestCluSamp:
    def test_cold_start_single_pool(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("clusamp"))
        groups = sim.server._cluster_assignments(tiny_config.clients_per_round)
        assert len(groups) == 1
        assert sorted(sum(groups, [])) == [c.client_id for c in sim.clients]

    def test_sampling_returns_k_distinct(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("clusamp"))
        chosen = sim.server.sample_clients()
        ids = [c.client_id for c in chosen]
        assert len(ids) == tiny_config.clients_per_round
        assert len(set(ids)) == len(ids)

    def test_updates_recorded_after_round(self, tiny_config):
        sim = FLSimulation(tiny_config.with_method("clusamp"))
        active = sim.server.sample_clients()
        sim.server.run_round(active)
        for client in active:
            assert client.client_id in sim.server._updates
            assert np.abs(sim.server._updates[client.client_id]).sum() > 0

    def test_clusters_form_with_history(self, tiny_config):
        cfg = tiny_config.replace(rounds=8, num_clients=8, participation=0.5)
        sim = FLSimulation(cfg.with_method("clusamp"))
        sim.server.fit()
        k = cfg.clients_per_round
        if len(sim.server._updates) >= 2 * k:
            groups = sim.server._cluster_assignments(k)
            assert len(groups) >= 2

    def test_comm_same_as_fedavg(self, tiny_config):
        fa = run_simulation(tiny_config.with_method("fedavg"))
        cs = run_simulation(tiny_config.with_method("clusamp"))
        assert cs.history.total_comm_params() == fa.history.total_comm_params()

    def test_learns(self, tiny_config):
        result = run_simulation(tiny_config.replace(rounds=6, local_epochs=3).with_method("clusamp"))
        assert result.best_accuracy > 0.15
