"""Softmax family, losses, dropout, embedding."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F, gradcheck


class TestSoftmax:
    def test_softmax_sums_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 7)))
        out = F.softmax(x).numpy()
        np.testing.assert_allclose(out.sum(axis=1), np.ones(4), rtol=1e-6)
        assert (out > 0).all()

    def test_log_softmax_consistent_with_softmax(self, rng):
        x = Tensor(rng.standard_normal((3, 5)))
        np.testing.assert_allclose(
            np.exp(F.log_softmax(x).numpy()), F.softmax(x).numpy(), rtol=1e-6
        )

    def test_shift_invariance(self, rng):
        logits = rng.standard_normal((2, 4))
        a = F.softmax(Tensor(logits)).numpy()
        b = F.softmax(Tensor(logits + 100.0)).numpy()
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_extreme_logits_no_overflow(self):
        x = Tensor(np.array([[1000.0, -1000.0]]))
        out = F.softmax(x).numpy()
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [[1.0, 0.0]], atol=1e-12)

    def test_gradchecks(self, rng):
        gradcheck(lambda a: F.softmax(a, axis=0), [Tensor(rng.standard_normal((4, 3)))])
        gradcheck(lambda a: F.log_softmax(a, axis=1), [Tensor(rng.standard_normal((4, 3)))])


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.standard_normal((5, 3))
        targets = np.array([0, 1, 2, 1, 0])
        loss = F.cross_entropy(Tensor(logits), targets).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(5), targets].mean()
        assert loss == pytest.approx(expected, rel=1e-5)

    def test_perfect_prediction_loss_near_zero(self):
        logits = np.full((2, 3), -50.0)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2])).item()
        assert loss < 1e-6

    def test_uniform_prediction_loss_is_log_k(self):
        logits = np.zeros((4, 10))
        loss = F.cross_entropy(Tensor(logits), np.zeros(4, dtype=int)).item()
        assert loss == pytest.approx(np.log(10), rel=1e-5)

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        targets = np.array([1, 0, 3])
        F.cross_entropy(logits, targets).backward()
        probs = F.softmax(Tensor(logits.data)).numpy()
        onehot = F.one_hot(targets, 4)
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 3.0, rtol=1e-4, atol=1e-6)

    def test_sum_reduction(self, rng):
        logits = rng.standard_normal((4, 3))
        targets = np.array([0, 1, 2, 0])
        mean = F.cross_entropy(Tensor(logits), targets, reduction="mean").item()
        total = F.cross_entropy(Tensor(logits), targets, reduction="sum").item()
        assert total == pytest.approx(4 * mean, rel=1e-5)

    def test_unknown_reduction_raises(self, rng):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(rng.standard_normal((2, 2))), np.array([0, 1]), reduction="x")

    def test_gradcheck(self, rng):
        logits = Tensor(rng.standard_normal((4, 5)))
        targets = np.array([0, 4, 2, 1])
        gradcheck(lambda a: F.cross_entropy(a, targets), [logits])


class TestOtherLosses:
    def test_mse_value_and_grad(self, rng):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        target = np.array([0.0, 0.0])
        loss = F.mse_loss(pred, target)
        loss.backward()
        assert loss.item() == pytest.approx(2.5)
        np.testing.assert_allclose(pred.grad, [1.0, 2.0])

    def test_bce_with_logits_matches_manual(self, rng):
        logits = rng.standard_normal(6)
        y = (rng.random(6) > 0.5).astype(np.float64)
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), y).item()
        p = 1 / (1 + np.exp(-logits))
        expected = -(y * np.log(p) + (1 - y) * np.log(1 - p)).mean()
        assert loss == pytest.approx(expected, rel=1e-5)

    def test_bce_extreme_logits_stable(self):
        loss = F.binary_cross_entropy_with_logits(
            Tensor(np.array([1000.0, -1000.0])), np.array([1.0, 0.0])
        ).item()
        assert np.isfinite(loss) and loss < 1e-6

    def test_bce_gradcheck(self, rng):
        y = np.array([1.0, 0.0, 1.0])
        gradcheck(
            lambda a: F.binary_cross_entropy_with_logits(a, y),
            [Tensor(rng.standard_normal(3))],
        )

    def test_nll_loss_picks_target_rows(self):
        log_probs = Tensor(np.log(np.array([[0.7, 0.3], [0.2, 0.8]])))
        loss = F.nll_loss(log_probs, np.array([0, 1])).item()
        assert loss == pytest.approx(-(np.log(0.7) + np.log(0.8)) / 2, rel=1e-5)


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_preserves_leading_shape(self):
        out = F.one_hot(np.zeros((2, 3), dtype=int), 4)
        assert out.shape == (2, 3, 4)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.standard_normal((10, 10)))
        out = F.dropout(x, 0.5, rng, training=False)
        np.testing.assert_allclose(out.numpy(), x.numpy())

    def test_p_zero_is_identity(self, rng):
        x = Tensor(rng.standard_normal(5))
        out = F.dropout(x, 0.0, rng, training=True)
        np.testing.assert_allclose(out.numpy(), x.numpy())

    def test_scaling_preserves_expectation(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, rng, training=True).numpy()
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_p_raises(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, rng)

    def test_grad_masked_like_forward(self, rng):
        x = Tensor(np.ones(100), requires_grad=True)
        out = F.dropout(x, 0.5, rng, training=True)
        out.sum().backward()
        # gradient zero exactly where output was dropped
        dropped = out.numpy() == 0
        assert (x.grad[dropped] == 0).all()
        assert (x.grad[~dropped] > 0).all()


class TestEmbedding:
    def test_lookup_values(self, rng):
        w = rng.standard_normal((5, 3))
        idx = np.array([[0, 4], [2, 2]])
        out = F.embedding(idx, Tensor(w))
        np.testing.assert_allclose(out.numpy(), w[idx])

    def test_repeated_index_grad_accumulates(self, rng):
        w = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        F.embedding(np.array([1, 1, 1]), w).sum().backward()
        np.testing.assert_allclose(w.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(w.grad[0], [0.0, 0.0])
