"""Array-backend dispatch layer (ISSUE 6).

Three angles:

* registry semantics — the array-backend registry must behave exactly
  like the pool-storage/execution registries it shares the generic
  :class:`~repro.utils.registry.Registry` with;
* per-backend correctness — gradchecks and one seed-CNN client step
  must pass under every registered backend, with the numpy leg the
  bitwise reference;
* dispatch coverage — under the ``instrumented`` backend, the
  linear/conv2d/cross-entropy/SGD hot path must route all array math
  through the backend, with **zero** raw-``np.`` escapes in
  ``repro.tensor.tensor`` / ``repro.tensor.functional`` beyond the
  documented metadata allowlist.
"""

import numpy as np
import pytest

import repro.tensor.functional as F_mod
import repro.tensor.tensor as tensor_mod
from repro.models.registry import build_model
from repro.optim import SGD
from repro.tensor import (
    ARRAY_BACKENDS,
    Tensor,
    active_backend,
    available_array_backends,
    register_array_backend,
    resolve_array_backend,
    set_array_backend,
    to_host,
    use_array_backend,
)
from repro.tensor.backend import OP_SURFACE, ArrayBackend, InstrumentedBackend, NumpyBackend
from repro.tensor.functional import cross_entropy
from repro.tensor.gradcheck import gradcheck

BACKENDS = available_array_backends()


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_numpy_and_instrumented_registered(self):
        assert "numpy" in ARRAY_BACKENDS
        assert "instrumented" in ARRAY_BACKENDS

    def test_resolve_is_case_insensitive(self):
        assert resolve_array_backend("NumPy") is NumpyBackend

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            resolve_array_backend("jax")
        with pytest.raises(ValueError, match="numpy"):
            resolve_array_backend("jax")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(KeyError, match="already registered"):

            @register_array_backend("numpy")
            class Dup(ArrayBackend):  # pragma: no cover - never instantiated
                pass

    def test_third_party_backend_round_trip(self):
        @register_array_backend("test_only_array")
        class TestOnly(NumpyBackend):
            pass

        try:
            assert resolve_array_backend("test_only_array") is TestOnly
            assert TestOnly.name == "test_only_array"
            assert "test_only_array" in available_array_backends()
        finally:
            del ARRAY_BACKENDS["test_only_array"]
        assert "test_only_array" not in available_array_backends()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_op_surface_complete(self, backend):
        instance = resolve_array_backend(backend)()
        for op in OP_SURFACE:
            assert callable(getattr(instance, op)), f"{backend} lacks {op}"


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
class TestSelection:
    def test_default_is_numpy(self):
        assert active_backend().name == "numpy"

    def test_use_array_backend_restores_previous(self):
        before = active_backend()
        with use_array_backend("instrumented") as backend:
            assert active_backend() is backend
            assert isinstance(backend, InstrumentedBackend)
        assert active_backend() is before

    def test_set_none_resets_to_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARRAY_BACKEND", raising=False)
        previous = active_backend()
        try:
            assert set_array_backend(None).name == "numpy"
        finally:
            set_array_backend(previous)

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "instrumented")
        previous = active_backend()
        try:
            selected = set_array_backend(None)
            assert isinstance(selected, InstrumentedBackend)
        finally:
            set_array_backend(previous)

    def test_to_host_identity_for_numpy(self):
        arr = np.arange(3.0)
        assert to_host(arr) is arr


# ----------------------------------------------------------------------
# Per-backend correctness
# ----------------------------------------------------------------------
def _client_step(backend_name: str):
    """One seed-CNN client step: forward, loss, backward, SGD update."""
    with use_array_backend(backend_name):
        model = build_model("cnn_s", seed=7, input_shape=(3, 8, 8), num_classes=4)
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.5)
        rng = np.random.default_rng(11)
        x = Tensor(rng.standard_normal((6, 3, 8, 8)).astype(np.float32))
        y = rng.integers(0, 4, size=6)
        model.train()
        optimizer.zero_grad()
        loss = cross_entropy(model(x), y)
        loss.backward()
        optimizer.step()
        state = {k: to_host(v).copy() for k, v in model.state_dict().items()}
        return float(to_host(loss.data)), state


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def numpy_step(self):
        return _client_step("numpy")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_client_step_matches_numpy_leg(self, numpy_step, backend):
        ref_loss, ref_state = numpy_step
        loss, state = _client_step(backend)
        exact = resolve_array_backend(backend)().device == "cpu"
        if exact:
            assert loss == ref_loss, backend
        else:  # device backends (cupy) match numerically, not bitwise
            assert np.isclose(loss, ref_loss, rtol=1e-5), backend
        assert state.keys() == ref_state.keys()
        for key in ref_state:
            if exact:
                np.testing.assert_array_equal(state[key], ref_state[key], err_msg=key)
            else:
                np.testing.assert_allclose(
                    state[key], ref_state[key], rtol=1e-4, atol=1e-6, err_msg=key
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_gradchecks_pass(self, backend):
        with use_array_backend(backend):
            rng = np.random.default_rng(3)
            a = Tensor(rng.standard_normal((3, 4)))
            b = Tensor(rng.standard_normal((4, 2)))
            gradcheck(lambda p, q: (p.matmul(q)).relu().sum(), [a, b])

            x = Tensor(rng.standard_normal((2, 2, 5, 5)))
            w = Tensor(rng.standard_normal((3, 2, 3, 3)) * 0.5)
            gradcheck(lambda p, q: F_mod.conv2d(p, q, stride=1, padding=1), [x, w])

            logits = Tensor(rng.standard_normal((4, 3)))
            targets = rng.integers(0, 3, size=4)
            gradcheck(lambda p: cross_entropy(p, targets), [logits])


# ----------------------------------------------------------------------
# Dispatch coverage: no raw-numpy escapes on the hot path
# ----------------------------------------------------------------------
#: Attributes the tensor modules may legitimately read off ``np`` at
#: runtime: types/dtypes (isinstance checks, dtype tags) plus the
#: documented im2col index-metadata helpers.  Everything else counts as
#: an escape — math that should have gone through the dispatch layer.
_NP_ALLOWLIST = frozenset(
    {
        "ndarray",          # isinstance checks in Tensor coercion
        "float32",          # default dtype tag
        "float64",
        "int64",            # index dtype tag
        "dtype",
        "random",           # np.random.Generator in runtime-evaluated spots
        "repeat",           # im2col_indices host index metadata
        "tile",
        "arange",
    }
)


class _NumpyGuard:
    """``np`` stand-in recording any non-allowlisted attribute access."""

    def __init__(self):
        self.escapes: list[str] = []

    def __getattr__(self, name: str):
        if name.startswith("__"):
            raise AttributeError(name)
        if name not in _NP_ALLOWLIST:
            self.escapes.append(name)
        return getattr(np, name)


class TestDispatchCoverage:
    def test_hot_path_fully_dispatched(self, monkeypatch):
        guard = _NumpyGuard()
        monkeypatch.setattr(tensor_mod, "np", guard)
        monkeypatch.setattr(F_mod, "np", guard)

        backend = InstrumentedBackend()
        with use_array_backend(backend):
            _client_step(backend)

        assert guard.escapes == [], (
            "raw numpy calls escaped the dispatch layer on the "
            f"linear/conv2d/cross-entropy/SGD hot path: {sorted(set(guard.escapes))}"
        )
        counts = backend.counts
        # The hot path must actually exercise the dispatch surface.
        for op in ("asarray", "exp", "einsum", "zeros_like", "pad", "where"):
            assert counts[op] > 0, f"expected dispatched {op} calls, got none"
        assert sum(counts.values()) > 50

    def test_instrumented_counts_reset(self):
        backend = InstrumentedBackend()
        backend.asarray([1.0, 2.0])
        assert backend.counts["asarray"] == 1
        backend.reset()
        assert not backend.counts

    def test_instrumented_wraps_numpy_by_default(self):
        backend = InstrumentedBackend()
        assert isinstance(backend.base, NumpyBackend)
        assert backend.array_type is np.ndarray
        assert backend.base_device == "cpu"
