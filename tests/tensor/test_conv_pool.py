"""Convolution and pooling: reference values, shapes, gradients."""

import numpy as np
import pytest
from scipy import signal

from repro.tensor import Tensor, functional as F, gradcheck


def reference_conv2d(x, w, b=None, stride=1, padding=0):
    """Direct cross-correlation reference using scipy.signal."""
    n, c_in, h, wd = x.shape
    c_out = w.shape[0]
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - w.shape[2]) // stride + 1
    out_w = (x.shape[3] - w.shape[3]) // stride + 1
    out = np.zeros((n, c_out, out_h, out_w))
    for i in range(n):
        for o in range(c_out):
            acc = np.zeros((x.shape[2] - w.shape[2] + 1, x.shape[3] - w.shape[3] + 1))
            for ci in range(c_in):
                acc += signal.correlate2d(x[i, ci], w[o, ci], mode="valid")
            out[i, o] = acc[::stride, ::stride]
            if b is not None:
                out[i, o] += b[o]
    return out


class TestConv2dValues:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_matches_scipy_reference(self, rng, stride, padding):
        x = rng.standard_normal((2, 3, 6, 6))
        w = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        ref = reference_conv2d(x, w, b, stride=stride, padding=padding)
        np.testing.assert_allclose(out.numpy(), ref, rtol=1e-5, atol=1e-8)

    def test_identity_kernel(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        w = np.zeros((1, 1, 1, 1))
        w[0, 0, 0, 0] = 1.0
        out = F.conv2d(Tensor(x), Tensor(w))
        np.testing.assert_allclose(out.numpy(), x)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 4, 4)))
        w = Tensor(rng.standard_normal((2, 4, 3, 3)))
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv2d(x, w)

    def test_output_shape_formula(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 9, 9)))
        w = Tensor(rng.standard_normal((5, 2, 3, 3)))
        out = F.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (1, 5, 5, 5)


class TestConv2dGradients:
    def test_gradcheck_no_bias(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 5, 5)))
        w = Tensor(rng.standard_normal((3, 2, 3, 3)) * 0.5)
        gradcheck(lambda a, b: F.conv2d(a, b, stride=1, padding=1), [x, w])

    def test_gradcheck_strided_with_bias(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 6, 6)))
        w = Tensor(rng.standard_normal((2, 2, 3, 3)) * 0.5)
        b = Tensor(rng.standard_normal(2) * 0.5)
        gradcheck(lambda a, c, d: F.conv2d(a, c, d, stride=2), [x, w, b])

    def test_input_grad_only(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 4, 4)), requires_grad=True)
        w = Tensor(np.ones((1, 1, 2, 2)))  # constant weights
        out = F.conv2d(x, w)
        out.sum().backward()
        # each interior input pixel participates in several windows
        assert x.grad is not None
        assert x.grad[0, 0, 1, 1] == pytest.approx(4.0)
        assert x.grad[0, 0, 0, 0] == pytest.approx(1.0)


class TestMaxPool:
    def test_exact_tiling_values(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.numpy(), [[[[4.0]]]])

    def test_exact_tiling_grad_routes_to_max(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, [[[[0.0, 0.0], [0.0, 1.0]]]])

    def test_tie_gradient_split(self):
        x = Tensor(np.full((1, 1, 2, 2), 5.0), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 2, 2), 0.25))

    def test_strided_path_matches_reference(self, rng):
        x = rng.standard_normal((2, 3, 7, 7))
        out = F.max_pool2d(Tensor(x), 3, stride=2).numpy()
        # naive reference
        ref = np.zeros((2, 3, 3, 3))
        for i in range(3):
            for j in range(3):
                ref[:, :, i, j] = x[:, :, 2 * i : 2 * i + 3, 2 * j : 2 * j + 3].max(axis=(2, 3))
        np.testing.assert_allclose(out, ref, rtol=1e-6)

    def test_strided_gradcheck(self, rng):
        # Use well-separated values so the argmax is stable under eps.
        x = Tensor(rng.permutation(np.arange(98.0)).reshape(2, 1, 7, 7))
        gradcheck(lambda a: F.max_pool2d(a, 3, stride=2), [x])


class TestAvgPool:
    def test_values(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = F.avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.numpy(), [[[[2.5]]]])

    def test_gradcheck(self, rng):
        gradcheck(lambda a: F.avg_pool2d(a, 2), [Tensor(rng.standard_normal((2, 2, 4, 4)))])

    def test_non_tiling_raises(self, rng):
        with pytest.raises(NotImplementedError):
            F.avg_pool2d(Tensor(rng.standard_normal((1, 1, 5, 5))), 2)

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.numpy(), x.mean(axis=(2, 3)), rtol=1e-6)
