"""Autograd graph mechanics: accumulation, reuse, modes, errors."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad
from repro.tensor.autograd import is_grad_enabled, set_grad_enabled


class TestGraphMechanics:
    def test_diamond_graph_accumulates_once(self):
        # x feeds two branches that re-join; each backward must run once.
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        out = a + b
        out.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_tensor_reused_in_same_op(self):
        x = Tensor([3.0], requires_grad=True)
        (x * x).backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_deep_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.1
        y.backward()
        np.testing.assert_allclose(x.grad, [1.1**50], rtol=1e-5)

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        (x * 3.0).backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_zero_grad_clears(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_non_scalar_backward_requires_gradient(self):
        x = Tensor([[1.0, 2.0]], requires_grad=True)
        with pytest.raises(RuntimeError, match="scalar"):
            (x * 2.0).backward()

    def test_non_scalar_backward_with_explicit_grad(self):
        x = Tensor([[1.0, 2.0]], requires_grad=True)
        (x * 2.0).backward(np.array([[1.0, 10.0]]))
        np.testing.assert_allclose(x.grad, [[2.0, 20.0]])

    def test_backward_on_no_grad_tensor_raises(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_graph_only_tracks_required(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])  # constant
        out = a * b
        out.backward()
        np.testing.assert_allclose(a.grad, [2.0])
        assert b.grad is None


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._backward is None

    def test_no_grad_restores_on_exception(self):
        assert is_grad_enabled()
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_set_grad_enabled_global(self):
        set_grad_enabled(False)
        try:
            x = Tensor([1.0], requires_grad=True)
            assert not (x * 2.0).requires_grad
        finally:
            set_grad_enabled(True)


class TestTensorBasics:
    def test_detach_shares_data(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        assert d.data is x.data

    def test_copy_is_independent(self):
        x = Tensor([1.0])
        c = x.copy()
        c.data[0] = 99.0
        assert x.data[0] == 1.0

    def test_item_rejects_multi_element(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_int_input_coerced_to_float(self):
        x = Tensor([1, 2, 3])
        assert x.dtype.kind == "f"

    def test_len_and_repr(self):
        x = Tensor(np.zeros((4, 2)), requires_grad=True)
        assert len(x) == 4
        assert "requires_grad=True" in repr(x)

    def test_properties(self):
        x = Tensor(np.zeros((2, 3)))
        assert x.shape == (2, 3)
        assert x.ndim == 2
        assert x.size == 6
        assert x.T.shape == (3, 2)


class TestGradcheckMeta:
    def test_gradcheck_catches_wrong_gradient(self):
        """gradcheck itself must fail when an op's backward is wrong."""
        from repro.tensor.tensor import Tensor as T

        def buggy(x):
            out_data = x.data * 2.0

            def backward(g):
                x._accumulate(g * 3.0)  # wrong: should be 2.0

            return T._make(out_data, (x,), backward, "buggy")

        from repro.tensor import gradcheck

        with pytest.raises(AssertionError, match="gradcheck failed"):
            gradcheck(buggy, [T(np.ones((2, 2)))])

    def test_gradcheck_requires_tensor_inputs(self):
        from repro.tensor import gradcheck

        with pytest.raises(TypeError):
            gradcheck(lambda x: x, [np.ones(3)])
