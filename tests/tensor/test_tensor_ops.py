"""Elementwise / reduction / shape op correctness and gradients."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck
from repro.tensor.tensor import concatenate, stack, where


def t(data, requires_grad=True):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=requires_grad)


class TestArithmetic:
    def test_add_values(self):
        out = t([1.0, 2.0]) + t([3.0, 4.0])
        np.testing.assert_allclose(out.numpy(), [4.0, 6.0])

    def test_add_scalar_right_and_left(self):
        x = t([1.0, 2.0])
        np.testing.assert_allclose((x + 1.5).numpy(), [2.5, 3.5])
        np.testing.assert_allclose((1.5 + x).numpy(), [2.5, 3.5])

    def test_sub_and_rsub(self):
        x = t([3.0])
        np.testing.assert_allclose((x - 1.0).numpy(), [2.0])
        np.testing.assert_allclose((1.0 - x).numpy(), [-2.0])

    def test_mul_grad(self):
        x, y = t([2.0, 3.0]), t([5.0, 7.0])
        (x * y).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0, 7.0])
        np.testing.assert_allclose(y.grad, [2.0, 3.0])

    def test_div_grad(self):
        x, y = t([6.0]), t([3.0])
        (x / y).backward()
        np.testing.assert_allclose(x.grad, [1 / 3])
        np.testing.assert_allclose(y.grad, [-6.0 / 9.0])

    def test_rtruediv(self):
        y = t([4.0])
        out = 8.0 / y
        out.backward()
        np.testing.assert_allclose(out.numpy(), [2.0])
        np.testing.assert_allclose(y.grad, [-8.0 / 16.0])

    def test_neg(self):
        x = t([1.0, -2.0])
        (-x).sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, -1.0])

    def test_pow_grad(self):
        x = t([2.0, 3.0])
        (x**3).sum().backward()
        np.testing.assert_allclose(x.grad, [12.0, 27.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            t([1.0]) ** t([2.0])

    def test_chained_expression_gradcheck(self, rng):
        a = Tensor(rng.standard_normal((3, 4)))
        b = Tensor(rng.standard_normal((3, 4)))
        gradcheck(lambda x, y: (x * y + x / (y * y + 2.0)).tanh(), [a, b])


class TestBroadcasting:
    def test_broadcast_add_row_vector(self):
        x = t(np.ones((3, 4)))
        b = t(np.arange(4.0))
        (x + b).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, [3.0, 3.0, 3.0, 3.0])

    def test_broadcast_scalar_tensor(self):
        x = t(np.ones((2, 2)))
        s = t(2.0)
        (x * s).sum().backward()
        np.testing.assert_allclose(s.grad, 4.0)

    def test_broadcast_middle_axis(self, rng):
        a = Tensor(rng.standard_normal((2, 1, 3)))
        b = Tensor(rng.standard_normal((2, 4, 3)))
        gradcheck(lambda x, y: x * y, [a, b])

    def test_broadcast_leading_axis_gradcheck(self, rng):
        a = Tensor(rng.standard_normal((4,)))
        b = Tensor(rng.standard_normal((2, 3, 4)))
        gradcheck(lambda x, y: x + y * 2.0, [a, b])


class TestUnaryOps:
    @pytest.mark.parametrize(
        "op",
        ["exp", "tanh", "sigmoid", "relu", "abs", "sqrt", "log"],
    )
    def test_unary_gradcheck(self, rng, op):
        raw = rng.standard_normal((3, 5))
        if op in ("sqrt", "log"):
            raw = np.abs(raw) + 0.5
        if op in ("relu", "abs"):
            # keep away from the kink where finite differences lie
            raw = raw + np.sign(raw) * 0.2
        x = Tensor(raw)
        gradcheck(lambda a: getattr(a, op)(), [x])

    def test_sigmoid_extreme_values_stable(self):
        x = t([-500.0, 0.0, 500.0])
        out = x.sigmoid().numpy()
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)

    def test_relu_zeroes_negatives(self):
        x = t([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(x.relu().numpy(), [0.0, 0.0, 2.0])

    def test_leaky_relu_slope(self):
        x = t([-10.0, 10.0])
        out = x.leaky_relu(0.1)
        out.sum().backward()
        np.testing.assert_allclose(out.numpy(), [-1.0, 10.0])
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_clip_gradient_mask(self):
        x = t([-2.0, 0.5, 2.0])
        out = x.clip(-1.0, 1.0)
        out.sum().backward()
        np.testing.assert_allclose(out.numpy(), [-1.0, 0.5, 1.0])
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all(self):
        x = t(np.arange(6.0).reshape(2, 3))
        out = x.sum()
        out.backward()
        assert out.item() == 15.0
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_sum_axis_keepdims(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4)))
        gradcheck(lambda a: a.sum(axis=1, keepdims=True), [x])
        gradcheck(lambda a: a.sum(axis=(0, 2)), [x])

    def test_mean_matches_numpy(self, rng):
        data = rng.standard_normal((4, 5))
        x = Tensor(data)
        np.testing.assert_allclose(x.mean(axis=0).numpy(), data.mean(axis=0), rtol=1e-6)
        gradcheck(lambda a: a.mean(axis=1), [Tensor(data)])

    def test_var_matches_numpy(self, rng):
        data = rng.standard_normal((6, 3))
        x = Tensor(data)
        np.testing.assert_allclose(x.var(axis=0).numpy(), data.var(axis=0), rtol=1e-5)
        gradcheck(lambda a: a.var(axis=0), [Tensor(data)])

    def test_max_axis_and_grad_single_max(self):
        x = t([[1.0, 5.0, 3.0], [7.0, 2.0, 4.0]])
        out = x.max(axis=1)
        out.sum().backward()
        np.testing.assert_allclose(out.numpy(), [5.0, 7.0])
        expected = np.array([[0, 1, 0], [1, 0, 0]], dtype=float)
        np.testing.assert_allclose(x.grad, expected)

    def test_max_tie_splits_gradient(self):
        x = t([[2.0, 2.0]])
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5]])

    def test_min_is_neg_max(self):
        x = t([[3.0, 1.0, 2.0]])
        np.testing.assert_allclose(x.min(axis=1).numpy(), [1.0])


class TestShapeOps:
    def test_reshape_roundtrip_grad(self, rng):
        x = Tensor(rng.standard_normal((2, 6)))
        gradcheck(lambda a: a.reshape(3, 4) * 2.0, [x])

    def test_flatten_start_dim(self):
        x = t(np.zeros((2, 3, 4)))
        assert x.flatten(start_dim=1).shape == (2, 12)
        assert x.flatten().shape == (24,)

    def test_transpose_default_reverses(self, rng):
        data = rng.standard_normal((2, 3, 4))
        assert Tensor(data).transpose().shape == (4, 3, 2)

    def test_transpose_permutation_grad(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4)))
        gradcheck(lambda a: a.transpose(1, 0, 2) * 3.0, [x])

    def test_getitem_slice_grad(self):
        x = t(np.arange(12.0).reshape(3, 4))
        out = x[1:, :2]
        out.sum().backward()
        expected = np.zeros((3, 4))
        expected[1:, :2] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_getitem_integer_array(self, rng):
        x = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        idx = np.array([0, 2, 2])
        out = x[idx]
        out.sum().backward()
        # row 2 picked twice -> gradient 2
        np.testing.assert_allclose(x.grad[2], np.full(3, 2.0))
        np.testing.assert_allclose(x.grad[1], np.zeros(3))

    def test_pad2d_roundtrip(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 3, 3)))
        out = x.pad2d(2)
        assert out.shape == (1, 2, 7, 7)
        gradcheck(lambda a: a.pad2d(1), [Tensor(rng.standard_normal((1, 1, 2, 2)))])

    def test_pad2d_zero_is_identity(self):
        x = t(np.ones((1, 1, 2, 2)))
        assert x.pad2d(0) is x


class TestMatmul:
    def test_2d_matmul_value(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((4, 5))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.numpy(), a @ b, rtol=1e-6)

    def test_2d_matmul_gradcheck(self, rng):
        gradcheck(
            lambda x, y: x @ y,
            [Tensor(rng.standard_normal((3, 4))), Tensor(rng.standard_normal((4, 2)))],
        )

    def test_batched_matmul_gradcheck(self, rng):
        gradcheck(
            lambda x, y: x @ y,
            [Tensor(rng.standard_normal((2, 3, 4))), Tensor(rng.standard_normal((2, 4, 2)))],
        )

    def test_broadcast_batched_matmul(self, rng):
        a = Tensor(rng.standard_normal((3, 4)))
        b = Tensor(rng.standard_normal((5, 4, 2)))
        out = a @ b
        assert out.shape == (5, 3, 2)
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_vector_dot(self, rng):
        a, b = rng.standard_normal(4), rng.standard_normal(4)
        out = Tensor(a).dot(Tensor(b))
        np.testing.assert_allclose(out.item(), a @ b, rtol=1e-6)
        gradcheck(lambda x, y: x.dot(y), [Tensor(a), Tensor(b)])

    def test_matrix_vector(self, rng):
        gradcheck(
            lambda x, y: x @ y,
            [Tensor(rng.standard_normal((3, 4))), Tensor(rng.standard_normal(4))],
        )


class TestCombinators:
    def test_concatenate_values_and_grad(self, rng):
        a = Tensor(rng.standard_normal((2, 3)))
        b = Tensor(rng.standard_normal((2, 2)))
        gradcheck(lambda x, y: concatenate([x, y], axis=1), [a, b])

    def test_stack_new_axis(self, rng):
        a = Tensor(rng.standard_normal((2, 3)))
        b = Tensor(rng.standard_normal((2, 3)))
        out = stack([a, b], axis=1)
        assert out.shape == (2, 2, 3)
        gradcheck(lambda x, y: stack([x, y], axis=0), [a, b])

    def test_where_selects_and_routes_grads(self):
        cond = np.array([True, False, True])
        a, b = t([1.0, 2.0, 3.0]), t([10.0, 20.0, 30.0])
        out = where(cond, a, b)
        out.sum().backward()
        np.testing.assert_allclose(out.numpy(), [1.0, 20.0, 3.0])
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestComparisons:
    def test_comparison_returns_mask_without_graph(self):
        x = t([1.0, 3.0])
        mask = x > 2.0
        assert not mask.requires_grad
        np.testing.assert_allclose(mask.numpy(), [0.0, 1.0])

    def test_all_comparison_ops(self):
        x, y = t([1.0, 2.0, 3.0]), t([2.0, 2.0, 2.0])
        np.testing.assert_allclose((x < y).numpy(), [1, 0, 0])
        np.testing.assert_allclose((x <= y).numpy(), [1, 1, 0])
        np.testing.assert_allclose((x >= y).numpy(), [0, 1, 1])
