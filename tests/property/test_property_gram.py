"""Hypothesis tests: the incremental Gram engine (ISSUE 4).

Three guarantees, matching the tolerances documented in
:mod:`repro.core.gram`:

(a) a tracker refreshed row by row — in *any* update order — matches a
    fresh ``similarity_matrix`` recompute within ulp tolerance, and the
    fully refreshed Gram itself is **bitwise** independent of update
    order (the property that keeps streamed and gathered collect
    schedules bit-identical);
(b) the closed-form post-CrossAggr transform matches a direct Gram
    recompute on the new pool within the blend-rounding tolerance
    (both 1-D collaborator vectors and 2-D propeller matrices);
(c) Gram-driven diagnostics (dispersion) agree with the streamed
    cancellation-safe recompute away from the degenerate converged
    regime.

Streamed-vs-gathered collect equivalence for full FL rounds lives in
``tests/fl/test_streaming.py`` (all seven methods, per backend).
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.gram import GramTracker
from repro.core.pool import PoolBuffer

finite = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False, width=32
)
alphas = st.floats(min_value=0.01, max_value=0.99)
masks = st.sampled_from([None, {"w"}, {"w", "buf"}])

KEYS = {"w": (5,), "buf": (2,)}


def pools(min_k=2, max_k=6):
    @st.composite
    def build(draw):
        k = draw(st.integers(min_k, max_k))
        return [
            {
                key: draw(hnp.arrays(np.float64, shape, elements=finite))
                for key, shape in KEYS.items()
            }
            for _ in range(k)
        ]

    return build()


def _tol(reference: np.ndarray) -> dict:
    """rtol plus a norm-scaled atol — near-orthogonal rows make raw
    Gram entries cancel, so pure rtol would demand the impossible."""
    scale = float(np.abs(reference).max()) or 1.0
    return {"rtol": 1e-9, "atol": 1e-9 * scale}


class TestIncrementalMatchesFresh:
    @given(pool=pools(), keys=masks, order_seed=st.integers(0, 1_000))
    @settings(max_examples=60, deadline=None)
    def test_any_update_order_matches_fresh_similarity(self, pool, keys, order_seed):
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        tracker = GramTracker(buf, param_keys=keys)
        order = np.random.default_rng(order_seed).permutation(len(buf))
        for i in order:
            tracker.update_row(int(i))
        fresh_gram = buf.gram_matrix(param_keys=keys)
        np.testing.assert_allclose(tracker.gram, fresh_gram, **_tol(fresh_gram))
        np.testing.assert_allclose(
            tracker.similarity(),
            buf.similarity_matrix("cosine", param_keys=keys),
            rtol=1e-9,
            atol=1e-9,
        )

    @given(pool=pools(), keys=masks, seed_a=st.integers(0, 500), seed_b=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_update_order_bitwise_irrelevant(self, pool, keys, seed_a, seed_b):
        buf = PoolBuffer.from_states(pool, dtype=np.float64)

        def refreshed(seed):
            tracker = GramTracker(buf, param_keys=keys)
            for i in np.random.default_rng(seed).permutation(len(buf)):
                tracker.update_row(int(i))
            return tracker.gram

        np.testing.assert_array_equal(refreshed(seed_a), refreshed(seed_b))

    @given(pool=pools(), keys=masks)
    @settings(max_examples=30, deadline=None)
    def test_float32_pool_tracks_within_roundtrip(self, pool, keys):
        """The server's storage dtype: tracker and fresh recompute read
        the same float32 rows, so they still agree to float64 ulps."""
        pool32 = [
            {k: v.astype(np.float32) for k, v in state.items()} for state in pool
        ]
        buf = PoolBuffer.from_states(pool32, dtype=np.float32)
        tracker = GramTracker.from_pool(buf, param_keys=keys)
        fresh_gram = buf.gram_matrix(param_keys=keys)
        np.testing.assert_allclose(tracker.gram, fresh_gram, **_tol(fresh_gram))


class TestClosedFormCrossAggregate:
    @given(pool=pools(), keys=masks, alpha=alphas, r=st.integers(0, 10))
    @settings(max_examples=60, deadline=None)
    def test_closed_form_matches_recompute(self, pool, keys, alpha, r):
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        k = len(buf)
        co = np.array([(i + (r % (k - 1) + 1)) % k for i in range(k)])
        tracker = GramTracker.from_pool(buf, param_keys=keys)
        new_pool = buf.cross_aggregate(co, alpha)
        got = tracker.cross_aggregated(co, alpha, pool=new_pool)
        ref = GramTracker.from_pool(new_pool, param_keys=keys)
        np.testing.assert_allclose(got.gram, ref.gram, **_tol(ref.gram))

    @given(pool=pools(min_k=3), keys=masks, alpha=alphas)
    @settings(max_examples=40, deadline=None)
    def test_propeller_closed_form_matches_recompute(self, pool, keys, alpha):
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        k = len(buf)
        props = np.array([[(i + 1) % k, (i + 2) % k] for i in range(k)])
        tracker = GramTracker.from_pool(buf, param_keys=keys)
        new_pool = buf.cross_aggregate(props, alpha)
        got = tracker.cross_aggregated(props, alpha, pool=new_pool)
        ref = GramTracker.from_pool(new_pool, param_keys=keys)
        np.testing.assert_allclose(got.gram, ref.gram, **_tol(ref.gram))

    @given(pool=pools(), keys=masks, alpha=alphas, rounds=st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_chained_transforms_stay_consistent(self, pool, keys, alpha, rounds):
        """Several closed-form rounds in sequence (no re-reads at all)
        still track a per-round recompute — the accumulated error stays
        within the same documented tolerance class."""
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        k = len(buf)
        tracker = GramTracker.from_pool(buf, param_keys=keys)
        for r in range(rounds):
            co = np.array([(i + (r % (k - 1) + 1)) % k for i in range(k)])
            buf = buf.cross_aggregate(co, alpha)
            tracker = tracker.cross_aggregated(co, alpha, pool=buf)
        ref = GramTracker.from_pool(buf, param_keys=keys)
        scale = float(np.abs(ref.gram).max()) or 1.0
        np.testing.assert_allclose(
            tracker.gram, ref.gram, rtol=1e-8, atol=1e-8 * scale
        )


class TestDiagnostics:
    @given(pool=pools(), keys=masks)
    @settings(max_examples=40, deadline=None)
    def test_dispersion_matches_streamed_recompute(self, pool, keys):
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        tracker = GramTracker.from_pool(buf, param_keys=keys)
        ref = buf.dispersion(param_keys=keys)
        # Gram-sum recovery cancels when dispersion² << ‖v‖²·ε; below
        # that absolute floor the comparison is vacuous by design (see
        # the module docstring) — assert the documented floor instead.
        floor = np.sqrt(np.abs(tracker.gram).max() * 1e-12) if tracker.gram.size else 0.0
        assert abs(tracker.dispersion() - ref) <= max(1e-9 * (1.0 + ref), floor)
