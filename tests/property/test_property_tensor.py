"""Hypothesis property tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor
from repro.tensor.tensor import _unbroadcast

moderate = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False, width=64
)

small_shapes = st.lists(st.integers(1, 4), min_size=1, max_size=3).map(tuple)


class TestUnbroadcast:
    @given(
        shape=small_shapes,
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_unbroadcast_inverts_broadcast_sum(self, shape, data):
        """For x broadcast to a bigger shape B, summing the all-ones
        gradient back must count how many B-cells each x-cell fed."""
        extra = data.draw(st.lists(st.integers(1, 3), min_size=0, max_size=2))
        big_shape = tuple(extra) + shape
        grad = np.ones(big_shape)
        out = _unbroadcast(grad, shape)
        assert out.shape == shape
        expected_count = np.prod(big_shape) / np.prod(shape)
        np.testing.assert_allclose(out, np.full(shape, expected_count))

    @given(arr=hnp.arrays(np.float64, (3, 4), elements=moderate))
    @settings(max_examples=30, deadline=None)
    def test_identity_when_shapes_match(self, arr):
        np.testing.assert_array_equal(_unbroadcast(arr, (3, 4)), arr)


class TestAlgebraicGradientIdentities:
    @given(
        a=hnp.arrays(np.float64, (2, 3), elements=moderate),
        b=hnp.arrays(np.float64, (2, 3), elements=moderate),
    )
    @settings(max_examples=50, deadline=None)
    def test_sum_rule(self, a, b):
        """d/dx sum(x + y) = 1 elementwise."""
        x, y = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        (x + y).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(a))
        np.testing.assert_allclose(y.grad, np.ones_like(b))

    @given(
        a=hnp.arrays(np.float64, (2, 3), elements=moderate),
        b=hnp.arrays(np.float64, (2, 3), elements=moderate),
    )
    @settings(max_examples=50, deadline=None)
    def test_product_rule(self, a, b):
        x, y = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        (x * y).sum().backward()
        np.testing.assert_allclose(x.grad, b)
        np.testing.assert_allclose(y.grad, a)

    @given(a=hnp.arrays(np.float64, (3,), elements=moderate))
    @settings(max_examples=50, deadline=None)
    def test_linearity_of_backward(self, a):
        """grad of (2x + 3x) equals grad of 5x."""
        x1 = Tensor(a, requires_grad=True)
        (x1 * 2.0 + x1 * 3.0).sum().backward()
        x2 = Tensor(a, requires_grad=True)
        (x2 * 5.0).sum().backward()
        np.testing.assert_allclose(x1.grad, x2.grad, rtol=1e-12)

    @given(
        a=hnp.arrays(
            np.float64,
            (2, 2),
            elements=st.floats(0.1, 50.0, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_log_exp_inverse_grads(self, a):
        """d/dx log(exp(x)) = 1."""
        x = Tensor(a, requires_grad=True)
        x.exp().log().sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(a), rtol=1e-6)

    @given(a=hnp.arrays(np.float64, (4,), elements=moderate))
    @settings(max_examples=50, deadline=None)
    def test_tanh_bounded_gradient(self, a):
        x = Tensor(a, requires_grad=True)
        x.tanh().sum().backward()
        assert (x.grad <= 1.0 + 1e-12).all()
        assert (x.grad >= 0.0 - 1e-12).all()


class TestSoftmaxProperties:
    @given(logits=hnp.arrays(np.float64, (3, 5), elements=moderate))
    @settings(max_examples=50, deadline=None)
    def test_softmax_is_distribution(self, logits):
        from repro.tensor import functional as F

        out = F.softmax(Tensor(logits)).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(3), rtol=1e-6)
        assert (out >= 0).all()

    @given(
        logits=hnp.arrays(np.float64, (4, 3), elements=moderate),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_cross_entropy_nonnegative(self, logits, data):
        from repro.tensor import functional as F

        targets = np.array(
            data.draw(st.lists(st.integers(0, 2), min_size=4, max_size=4))
        )
        loss = F.cross_entropy(Tensor(logits), targets).item()
        assert loss >= -1e-9

    @given(logits=hnp.arrays(np.float64, (2, 4), elements=moderate))
    @settings(max_examples=50, deadline=None)
    def test_cross_entropy_grad_rows_sum_zero(self, logits):
        """Softmax-CE gradient rows sum to zero (prob simplex tangent)."""
        from repro.tensor import functional as F

        x = Tensor(logits, requires_grad=True)
        F.cross_entropy(x, np.array([0, 1])).backward()
        np.testing.assert_allclose(x.grad.sum(axis=1), np.zeros(2), atol=1e-10)
