"""Hypothesis property tests for the FedCross core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.convergence import lemma34_contraction_gap
from repro.core.acceleration import DynamicAlphaSchedule, propeller_indices
from repro.core.aggregation import cross_aggregate, global_model_generation
from repro.core.selection import select_in_order

finite = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False, width=64
)
alphas = st.floats(min_value=0.01, max_value=0.99)


def pools(min_k=2, max_k=6, dim=5):
    @st.composite
    def build(draw):
        k = draw(st.integers(min_k, max_k))
        return [
            {"w": draw(hnp.arrays(np.float64, (dim,), elements=finite))}
            for _ in range(k)
        ]

    return build()


class TestInOrderPermutation:
    @given(k=st.integers(2, 12), r=st.integers(0, 50))
    @settings(max_examples=100, deadline=None)
    def test_always_a_derangement(self, k, r):
        """Every round's assignment is a permutation with no fixed point."""
        chosen = [select_in_order(i, r, k) for i in range(k)]
        assert sorted(chosen) == list(range(k))
        assert all(chosen[i] != i for i in range(k))


class TestCrossAggregationProperties:
    @given(pool=pools(), alpha=alphas, r=st.integers(0, 20))
    @settings(max_examples=50, deadline=None)
    def test_in_order_preserves_pool_mean(self, pool, alpha, r):
        """Eq. 2: sum of cross-aggregated models equals sum of uploads."""
        k = len(pool)
        new_pool = [
            cross_aggregate(pool[i], pool[select_in_order(i, r, k)], alpha)
            for i in range(k)
        ]
        before = np.mean([s["w"] for s in pool], axis=0)
        after = np.mean([s["w"] for s in new_pool], axis=0)
        np.testing.assert_allclose(after, before, rtol=1e-7, atol=1e-7)

    @given(pool=pools(), alpha=alphas, r=st.integers(0, 20))
    @settings(max_examples=50, deadline=None)
    def test_lemma34_contraction_under_permutation(self, pool, alpha, r):
        """||w - w*||^2 never grows under permutation cross-aggregation,
        for any reference point."""
        k = len(pool)
        co = [select_in_order(i, r, k) for i in range(k)]
        reference = {"w": np.zeros(5)}
        gap = lemma34_contraction_gap(pool, co, alpha, reference)
        assert gap >= -1e-6 * max(1.0, abs(gap))

    @given(pool=pools(), alpha=alphas)
    @settings(max_examples=50, deadline=None)
    def test_convex_combination_bounds(self, pool, alpha):
        """Each aggregated weight lies between its two parents."""
        out = cross_aggregate(pool[0], pool[1], alpha)
        lo = np.minimum(pool[0]["w"], pool[1]["w"]) - 1e-9
        hi = np.maximum(pool[0]["w"], pool[1]["w"]) + 1e-9
        assert (out["w"] >= lo).all() and (out["w"] <= hi).all()

    @given(pool=pools())
    @settings(max_examples=30, deadline=None)
    def test_global_model_within_pool_hull(self, pool):
        out = global_model_generation(pool)
        stacked = np.stack([s["w"] for s in pool])
        assert (out["w"] >= stacked.min(axis=0) - 1e-9).all()
        assert (out["w"] <= stacked.max(axis=0) + 1e-9).all()


class TestPropellerProperties:
    @given(
        k=st.integers(2, 10),
        r=st.integers(0, 30),
        i=st.integers(0, 9),
        num=st.integers(1, 12),
    )
    @settings(max_examples=100, deadline=None)
    def test_distinct_valid_never_self(self, k, r, i, num):
        i = i % k
        out = propeller_indices(i, r, k, num)
        assert len(out) == min(max(num, 1), k - 1) if k > 1 else 1
        assert len(set(out)) == len(out)
        if k > 1:
            assert i not in out
        assert all(0 <= j < k for j in out)


class TestDynamicAlphaProperties:
    @given(
        target=st.floats(0.51, 0.99),
        ramp=st.integers(1, 50),
        r1=st.integers(0, 60),
        r2=st.integers(0, 60),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_and_bounded(self, target, ramp, r1, r2):
        sched = DynamicAlphaSchedule(target=target, ramp_rounds=ramp)
        a1, a2 = sched.alpha_at(r1), sched.alpha_at(r2)
        assert 0.5 - 1e-9 <= a1 <= target + 1e-9
        if r1 <= r2:
            assert a1 <= a2 + 1e-12
