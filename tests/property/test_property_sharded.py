"""Hypothesis properties: sharded storage vs dense, under random
shard layouts and block budgets.

The sharded backend's contract (ISSUE 5): for *any* shard count
(including the degenerate 1 and the maximal K) and *any*
``REPRO_POOL_BLOCK_BYTES`` budget,

* ``cross_aggregate`` (single-collaborator and propeller forms) and
  both ``mean_state`` modes are **bit-identical** to dense under the
  same budget (elementwise blends are partition-invariant; the
  reductions partition rows purely by the budget, never the shard
  layout);
* the blocked ``gram_matrix`` and the incrementally maintained
  :class:`~repro.core.gram.GramTracker` Gram are ulp-tight against
  dense (the per-pair contiguous float64 dots of the tracker are in
  fact bitwise backend-independent — asserted exactly);
* round-tripping rows through shards (``set_state`` → ``as_state``,
  ``row_block`` gathers) loses nothing.
"""

import contextlib
import os

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.gram import GramTracker
from repro.core.pool import PoolBuffer

finite = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False, width=32
)
alphas = st.floats(min_value=0.01, max_value=0.99)

KEYS = {"w": (4, 3), "b": (5,)}
P = 17  # total scalars of KEYS


@contextlib.contextmanager
def _budget(budget: int):
    """Pin ``REPRO_POOL_BLOCK_BYTES`` for one op pair (save/restore)."""
    previous = os.environ.get("REPRO_POOL_BLOCK_BYTES")
    os.environ["REPRO_POOL_BLOCK_BYTES"] = str(budget)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_POOL_BLOCK_BYTES", None)
        else:
            os.environ["REPRO_POOL_BLOCK_BYTES"] = previous

@st.composite
def pools_with_layout(draw, min_k=2, max_k=8):
    """(states, shard count, placement, block budget in bytes)."""
    k = draw(st.integers(min_k, max_k))
    states = [
        {
            key: draw(hnp.arrays(np.float32, shape, elements=finite))
            for key, shape in KEYS.items()
        }
        for _ in range(k)
    ]
    shards = draw(st.integers(1, k))
    placement = draw(st.sampled_from(["dense", "memmap"]))
    # From "every op single-block" down to "one row (or less) per
    # block" — 8 bytes is below even one float64 scalar's row share.
    budget = draw(st.sampled_from([8, 64, 200, 1 << 10, 1 << 20]))
    return states, shards, placement, budget


def _pair(states, shards, placement):
    dense = PoolBuffer.from_states(states, backend="dense")
    sharded = PoolBuffer.from_states(
        states,
        backend="sharded",
        backend_options={"shards": shards, "placement": placement},
    )
    return dense, sharded


class TestShardedBitIdentity:
    @given(data=pools_with_layout(), alpha=alphas)
    @settings(max_examples=40, deadline=None)
    def test_cross_aggregate_bit_identical(self, data, alpha):
        states, shards, placement, budget = data
        dense, sharded = _pair(states, shards, placement)
        k = len(states)
        rng = np.random.default_rng(k * 31 + shards)
        co = rng.integers(0, k, size=k)
        with _budget(budget):
            ref = dense.cross_aggregate(co, alpha)
            got = sharded.cross_aggregate(co, alpha)
        assert got.backend == "sharded"
        assert got.storage.num_shards == sharded.storage.num_shards
        np.testing.assert_array_equal(np.asarray(got.matrix), ref.matrix)

    @given(data=pools_with_layout(min_k=3), alpha=alphas)
    @settings(max_examples=25, deadline=None)
    def test_propeller_cross_aggregate_bit_identical(
        self, data, alpha
    ):
        states, shards, placement, budget = data
        dense, sharded = _pair(states, shards, placement)
        k = len(states)
        groups = np.stack([(np.arange(k) + 1) % k, (np.arange(k) + 2) % k], axis=1)
        with _budget(budget):
            ref = dense.cross_aggregate(groups, alpha)
            got = sharded.cross_aggregate(groups, alpha)
        np.testing.assert_array_equal(np.asarray(got.matrix), ref.matrix)

    @given(data=pools_with_layout(), precise=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_mean_state_bit_identical(self, data, precise):
        states, shards, placement, budget = data
        dense, sharded = _pair(states, shards, placement)
        k = len(states)
        weights = [float(w) for w in range(1, k + 1)]
        with _budget(budget):
            ref = dense.mean_state(weights, precise=precise)
            got = sharded.mean_state(weights, precise=precise)
        for key in ref:
            np.testing.assert_array_equal(got[key], ref[key])

    @given(data=pools_with_layout(), keys=st.sampled_from([None, ("w",)]))
    @settings(max_examples=40, deadline=None)
    def test_gram_ulp_tight_vs_dense(self, data, keys):
        states, shards, placement, budget = data
        dense, sharded = _pair(states, shards, placement)
        param_keys = set(keys) if keys is not None else None
        with _budget(budget):
            ref = dense.gram_matrix(param_keys=param_keys)
            got = sharded.gram_matrix(param_keys=param_keys)
        scale = np.sqrt(np.outer(np.diag(ref), np.diag(ref))) + 1e-30
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=float(1e-12 * scale.max()))

    @given(data=pools_with_layout(), keys=st.sampled_from([None, ("w",)]))
    @settings(max_examples=25, deadline=None)
    def test_tracker_gram_bitwise_backend_independent(self, data, keys):
        """The incremental tracker's per-pair contiguous dots must not
        even move an ulp across shard layouts — this is what keeps
        whole fits bit-identical."""
        states, shards, placement, _ = data
        dense, sharded = _pair(states, shards, placement)
        param_keys = set(keys) if keys is not None else None
        ref = GramTracker.from_pool(dense, param_keys=param_keys)
        got = GramTracker.from_pool(sharded, param_keys=param_keys)
        np.testing.assert_array_equal(got.gram, ref.gram)
        # ... and per-shard assembled dots equal a whole-row update.
        k = len(states)
        bounds = sharded.storage.shard_boundaries()
        assembled = np.concatenate(
            [
                got.shard_dots(0, bounds[s], bounds[s + 1])
                for s in range(len(bounds) - 1)
            ]
        )
        np.testing.assert_array_equal(assembled, ref.gram[0])
        assert assembled.shape == (k,)

    @given(data=pools_with_layout())
    @settings(max_examples=25, deadline=None)
    def test_state_roundtrip_and_row_block_gather(self, data):
        states, shards, placement, _ = data
        _, sharded = _pair(states, shards, placement)
        k = len(states)
        for i, state in enumerate(states):
            back = sharded.as_state(i)
            for key in state:
                np.testing.assert_array_equal(back[key], state[key])
        whole = sharded.storage.row_block(0, k)
        np.testing.assert_array_equal(whole, np.asarray(sharded.matrix))
