"""Hypothesis equivalence tests: PoolBuffer engine vs dict references.

The vectorized engine must reproduce the original per-pair dict loops —
similarity values, selected collaborator indices, and aggregated states
— across all three ``CoModelSel`` strategies, both similarity measures,
and with/without ``param_keys`` masks.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.aggregation import cross_aggregate, global_model_generation
from repro.core.pool import PoolBuffer
from repro.core.selection import (
    CoModelSel,
    _reference_select_by_similarity,
    _reference_similarity_matrix,
    similarity_matrix,
)
from repro.utils.params import weighted_average

finite = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False, width=32
)
alphas = st.floats(min_value=0.01, max_value=0.99)
measures = st.sampled_from(["cosine", "euclidean"])
masks = st.sampled_from([None, {"w"}, {"w", "buf"}])

KEYS = {"w": (5,), "buf": (2,)}


def pools(min_k=2, max_k=6):
    @st.composite
    def build(draw):
        k = draw(st.integers(min_k, max_k))
        return [
            {
                key: draw(hnp.arrays(np.float64, shape, elements=finite))
                for key, shape in KEYS.items()
            }
            for _ in range(k)
        ]

    return build()


class TestSimilarityEquivalence:
    @given(pool=pools(), measure=measures, keys=masks)
    @settings(max_examples=60, deadline=None)
    def test_matrix_matches_reference(self, pool, measure, keys):
        ref = _reference_similarity_matrix(pool, measure, keys)
        got = similarity_matrix(pool, measure, keys)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-10)

    @given(pool=pools(), measure=measures, keys=masks)
    @settings(max_examples=60, deadline=None)
    def test_buffer_input_matches_dict_input(self, pool, measure, keys):
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        np.testing.assert_array_equal(
            similarity_matrix(buf, measure, keys),
            similarity_matrix(pool, measure, keys),
        )


class TestSelectionEquivalence:
    @given(
        pool=pools(),
        measure=measures,
        keys=masks,
        want_highest=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_similarity_selection_matches_reference(
        self, pool, measure, keys, want_highest
    ):
        strategy = "highest" if want_highest else "lowest"
        sel = CoModelSel(strategy, measure=measure, param_keys=keys)
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        vectorized = sel.select_all(buf, round_idx=0)
        # The engine and the per-pair reference may round differently at
        # the last ulp (e.g. cosine of exactly parallel vectors at
        # different scales: normalized Gram rows tie bitwise, the
        # pairwise dot/(nx*ny) does not), which flips argmin/argmax
        # tie-breaks. Selected *indices* may then differ legitimately —
        # what must match is the achieved reference similarity value.
        ref_sim = _reference_similarity_matrix(pool, measure, keys)
        for i in range(len(pool)):
            ref = _reference_select_by_similarity(
                i, pool, measure, keys, want_highest=want_highest
            )
            for picked in (int(vectorized[i]), sel(i, pool, 0)):
                assert picked != i
                np.testing.assert_allclose(
                    ref_sim[i, picked], ref_sim[i, ref], rtol=1e-9, atol=1e-9
                )

    @given(pool=pools(), r=st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_in_order_selection_matches_reference(self, pool, r):
        sel = CoModelSel("in_order")
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        vectorized = sel.select_all(buf, round_idx=r)
        for i in range(len(pool)):
            assert vectorized[i] == sel(i, pool, r)


class TestAggregationEquivalence:
    @given(pool=pools(), alpha=alphas, r=st.integers(0, 10))
    @settings(max_examples=60, deadline=None)
    def test_cross_aggregate_bitwise_matches_dict(self, pool, alpha, r):
        k = len(pool)
        co = np.array([(i + (r % (k - 1) + 1)) % k for i in range(k)])
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        out = buf.cross_aggregate(co, alpha)
        for i in range(k):
            ref = cross_aggregate(pool[i], pool[co[i]], alpha)
            got = out.as_state(i)
            for key in ref:
                np.testing.assert_array_equal(got[key], ref[key])

    @given(pool=pools(), alpha=alphas)
    @settings(max_examples=40, deadline=None)
    def test_propeller_fusion_bitwise_matches_dict(self, pool, alpha):
        k = len(pool)
        groups = np.array([[(i + 1) % k, (i + 2) % k] for i in range(k)])
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        out = buf.cross_aggregate(groups, alpha)
        for i in range(k):
            collab = weighted_average([pool[j] for j in groups[i]])
            ref = cross_aggregate(pool[i], collab, alpha)
            got = out.as_state(i)
            for key in ref:
                np.testing.assert_array_equal(got[key], ref[key])

    @given(pool=pools())
    @settings(max_examples=40, deadline=None)
    def test_global_model_generation_bitwise_matches_dict(self, pool):
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        ref = global_model_generation(pool)
        got = global_model_generation(buf)
        for key in ref:
            np.testing.assert_array_equal(got[key], ref[key])

    @given(pool=pools())
    @settings(max_examples=30, deadline=None)
    def test_float32_pool_stays_within_roundtrip(self, pool):
        """A float32 buffer (the server's storage) reproduces the dict
        result up to one float32 rounding of the inputs."""
        pool32 = [
            {k: v.astype(np.float32) for k, v in state.items()} for state in pool
        ]
        buf = PoolBuffer.from_states(pool32, dtype=np.float32)
        ref = global_model_generation(pool32)
        got = global_model_generation(buf)
        for key in ref:
            np.testing.assert_allclose(got[key], ref[key], rtol=1e-6, atol=1e-6)


class TestBlockwiseEquivalence:
    """Row-blocked operations are bit-identical for every block size."""

    @given(pool=pools(), alpha=alphas, block=st.integers(1, 8), r=st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_cross_aggregate_blocked_bitwise_matches_dict(self, pool, alpha, block, r):
        k = len(pool)
        co = np.array([(i + (r % (k - 1) + 1)) % k for i in range(k)])
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        out = buf.cross_aggregate(co, alpha, block_rows=block)
        for i in range(k):
            ref = cross_aggregate(pool[i], pool[co[i]], alpha)
            got = out.as_state(i)
            for key in ref:
                np.testing.assert_array_equal(got[key], ref[key])

    @given(pool=pools(), keys=masks, block=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_cosine_blocked_matches_reference(self, pool, keys, block):
        """The blocked Gram cosine path (no whole-pool float64 temp)
        agrees with the per-pair reference for every block size, and a
        fixed block size is exactly reproducible."""
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        got = buf.similarity_matrix("cosine", param_keys=keys, block_rows=block)
        ref = _reference_similarity_matrix(pool, "cosine", keys)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-10)
        unblocked = buf.similarity_matrix("cosine", param_keys=keys)
        np.testing.assert_allclose(got, unblocked, rtol=1e-12, atol=1e-13)
        again = buf.similarity_matrix("cosine", param_keys=keys, block_rows=block)
        np.testing.assert_array_equal(got, again)

    @given(pool=pools(), keys=masks, block=st.integers(1, 8), measure=measures)
    @settings(max_examples=40, deadline=None)
    def test_similarity_to_blocked_matches_matrix_row(self, pool, keys, block, measure):
        """Single-model queries run blocked too — they must agree with
        the corresponding full-matrix row to reduction round-off."""
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        full = buf.similarity_matrix(measure, param_keys=keys)
        for index in range(len(pool)):
            got = buf.similarity_to(index, measure, param_keys=keys, block_rows=block)
            np.testing.assert_allclose(got, full[index], rtol=1e-10, atol=1e-10)

    @given(pool=pools(), keys=masks, block=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_dispersion_blocked_matches_unblocked(self, pool, keys, block):
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        got = buf.dispersion(param_keys=keys, block_rows=block)
        ref = buf.dispersion(param_keys=keys)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)

    @given(pool=pools(), keys=masks, block=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_euclidean_blocked_matches_reference(self, pool, keys, block):
        buf = PoolBuffer.from_states(pool, dtype=np.float64)
        got = buf.similarity_matrix("euclidean", param_keys=keys, block_rows=block)
        ref = _reference_similarity_matrix(pool, "euclidean", keys)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-10)
        # Across block sizes the P-axis reduction may legitimately move
        # by the last ulp (SIMD summation order varies with operand
        # shape/alignment), so agreement is asserted ulp-tight, not
        # bitwise — unlike cross_aggregate's elementwise guarantee.
        unblocked = buf.similarity_matrix("euclidean", param_keys=keys)
        np.testing.assert_allclose(got, unblocked, rtol=1e-13, atol=0)
        # Same block size must be exactly reproducible.
        again = buf.similarity_matrix("euclidean", param_keys=keys, block_rows=block)
        np.testing.assert_array_equal(got, again)
