"""Hypothesis property tests for state-dict utilities."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils.params import (
    flatten_state_dict,
    tree_map,
    unflatten_state_dict,
    weighted_average,
    zeros_like_state,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)


def state_dicts(min_keys=1, max_keys=4, max_side=4):
    """Strategy producing a state dict of float64 arrays."""

    @st.composite
    def build(draw):
        n_keys = draw(st.integers(min_keys, max_keys))
        state = {}
        for i in range(n_keys):
            shape = tuple(
                draw(st.lists(st.integers(1, max_side), min_size=1, max_size=3))
            )
            state[f"k{i}"] = draw(
                hnp.arrays(np.float64, shape, elements=finite)
            )
        return state

    return build()


class TestFlattenRoundtrip:
    @given(state=state_dicts())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_identity(self, state):
        flat = flatten_state_dict(state)
        back = unflatten_state_dict(flat, state)
        for k in state:
            np.testing.assert_array_equal(back[k], state[k])

    @given(state=state_dicts())
    @settings(max_examples=40, deadline=None)
    def test_flat_length_is_total_size(self, state):
        flat = flatten_state_dict(state)
        assert flat.size == sum(v.size for v in state.values())

    @given(state=state_dicts())
    @settings(max_examples=20, deadline=None)
    def test_key_order_independent(self, state):
        reversed_state = dict(reversed(list(state.items())))
        np.testing.assert_array_equal(
            flatten_state_dict(state), flatten_state_dict(reversed_state)
        )


class TestWeightedAverage:
    @given(state=state_dicts(), n=st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_average_of_identical_is_identity(self, state, n):
        out = weighted_average([state] * n)
        for k in state:
            np.testing.assert_allclose(out[k], state[k], rtol=1e-9, atol=1e-9)

    @given(
        state=state_dicts(max_keys=2, max_side=3),
        weights=st.lists(st.floats(0.1, 10.0), min_size=2, max_size=2),
    )
    @settings(max_examples=30, deadline=None)
    def test_bounded_by_extremes(self, state, weights):
        other = {k: v + 1.0 for k, v in state.items()}
        out = weighted_average([state, other], weights)
        for k in state:
            lo = np.minimum(state[k], other[k]) - 1e-9
            hi = np.maximum(state[k], other[k]) + 1e-9
            assert (out[k] >= lo).all() and (out[k] <= hi).all()

    @given(state=state_dicts(max_keys=2, max_side=3))
    @settings(max_examples=20, deadline=None)
    def test_weight_normalisation(self, state):
        a = weighted_average([state, state], [1.0, 1.0])
        b = weighted_average([state, state], [10.0, 10.0])
        for k in state:
            np.testing.assert_allclose(a[k], b[k], rtol=1e-9)


class TestTreeMap:
    @given(state=state_dicts(max_keys=3, max_side=3))
    @settings(max_examples=30, deadline=None)
    def test_subtraction_of_self_is_zero(self, state):
        out = tree_map(lambda a, b: a - b, state, state)
        for k in state:
            np.testing.assert_array_equal(out[k], np.zeros_like(state[k]))

    @given(state=state_dicts(max_keys=2, max_side=3))
    @settings(max_examples=20, deadline=None)
    def test_zeros_like(self, state):
        zeros = zeros_like_state(state)
        for k in state:
            assert zeros[k].shape == state[k].shape
            assert (zeros[k] == 0).all()
