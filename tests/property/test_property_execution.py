"""Hypothesis determinism tests: execution backends are bit-identical.

The execution engine's core guarantee (ISSUE 3): ``serial``,
``thread`` and ``process`` produce bit-identical
:class:`~repro.fl.metrics.TrainingHistory` records and final pool
matrices, because each client owns an independent RNG stream and a
deterministic upload-buffer row.  Checked on the seed CNN for FedCross
(multi-model dispatch, pool cross-aggregation) and FedProx (hooked
local training via :class:`~repro.fl.hooks.ProximalSpec`).

Examples are deliberately few — every draw runs three full FL
simulations, one of them on a real worker-process pool.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fl.config import FLConfig
from repro.fl.simulation import FLSimulation


def _config(method: str, seed: int, heterogeneity) -> FLConfig:
    return FLConfig(
        method=method,
        dataset="synth_cifar10",
        model="cnn_s",
        heterogeneity=heterogeneity,
        num_clients=4,
        participation=0.5,
        rounds=2,
        local_epochs=1,
        batch_size=16,
        eval_every=1,
        seed=seed,
        dataset_params={"samples_per_client": 20, "num_test": 40},
        method_params={"mu": 0.1} if method == "fedprox" else {},
    )


def _run(config: FLConfig):
    sim = FLSimulation(config)
    result = sim.run()
    pool = getattr(sim.server, "pool", None)
    pool_matrix = np.array(pool.matrix, copy=True) if pool is not None else None
    return result, pool_matrix


def _assert_bit_identical(reference, other, label: str) -> None:
    ref_result, ref_pool = reference
    got_result, got_pool = other
    ref_records = ref_result.history.records
    got_records = got_result.history.records
    assert len(ref_records) == len(got_records), label
    for a, b in zip(ref_records, got_records):
        assert a.accuracy == b.accuracy, label
        assert a.loss == b.loss, label
        assert a.train_loss == b.train_loss, label
        assert a.comm_up_params == b.comm_up_params, label
    for key in ref_result.final_state:
        np.testing.assert_array_equal(
            ref_result.final_state[key], got_result.final_state[key], err_msg=label
        )
    if ref_pool is not None:
        np.testing.assert_array_equal(ref_pool, got_pool, err_msg=label)


@given(
    method=st.sampled_from(["fedcross", "fedprox"]),
    seed=st.integers(0, 1_000),
    heterogeneity=st.sampled_from(["iid", 0.5]),
)
@settings(max_examples=4, deadline=None)
def test_backends_bit_identical_on_seed_cnn(method, seed, heterogeneity):
    base = _config(method, seed, heterogeneity)
    reference = _run(base)
    for execution in ("thread", "process"):
        got = _run(base.replace(execution=execution, workers=2))
        _assert_bit_identical(reference, got, f"{method}/{execution}/seed={seed}")


@given(
    method=st.sampled_from(["fedcross", "scaffold"]),
    seed=st.integers(0, 1_000),
)
@settings(max_examples=3, deadline=None)
def test_streaming_bit_identical_to_gathered_per_backend(method, seed):
    """ISSUE 4: the as-completed streaming collect must reproduce the
    gathered schedule bit-for-bit on every backend — including
    FedCross's incrementally tracked Gram (update order varies with
    completion order) and SCAFFOLD's shm-deduped control variates."""
    base = _config(method, seed, 0.5)
    reference = _run(base.replace(streaming=False))
    for execution in ("serial", "thread", "process"):
        got = _run(base.replace(execution=execution, workers=2, streaming=True))
        _assert_bit_identical(
            reference, got, f"{method}/{execution}/streaming/seed={seed}"
        )
