"""Hypothesis property tests for data loading and partitioning."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data.dataset import ArrayDataset, DataLoader, train_test_split
from repro.data.partition import dirichlet_partition, iid_partition, quantity_skew_partition


def make_ds(n, num_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(
        rng.standard_normal((n, 3)).astype(np.float32), rng.integers(0, num_classes, n)
    )


class TestDataLoaderProperties:
    @given(
        n=st.integers(1, 60),
        batch=st.integers(1, 17),
        shuffle=st.booleans(),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_sample_delivered_exactly_once(self, n, batch, shuffle, seed):
        ds = make_ds(n)
        loader = DataLoader(ds, batch, shuffle=shuffle, rng=np.random.default_rng(seed))
        seen = np.concatenate([x[:, 0] for x, _ in loader])
        assert len(seen) == n
        np.testing.assert_allclose(
            np.sort(seen), np.sort(ds.features[:, 0]), rtol=1e-6
        )

    @given(n=st.integers(1, 40), batch=st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_len_matches_iteration_count(self, n, batch):
        ds = make_ds(n)
        loader = DataLoader(ds, batch, shuffle=False)
        assert len(list(loader)) == len(loader)

    @given(n=st.integers(2, 40), batch=st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_drop_last_batches_all_full(self, n, batch):
        ds = make_ds(n)
        loader = DataLoader(ds, batch, shuffle=False, drop_last=True)
        sizes = [len(y) for _, y in loader]
        assert all(s == batch for s in sizes)


class TestPartitionProperties:
    @given(
        n=st.integers(40, 200),
        clients=st.integers(2, 8),
        beta=st.floats(0.1, 5.0),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_dirichlet_complete_disjoint_nonempty(self, n, clients, beta, seed):
        ds = make_ds(n, seed=seed)
        shards = dirichlet_partition(
            ds, clients, beta, np.random.default_rng(seed), min_samples=2
        )
        all_idx = np.concatenate([s.indices for s in shards])
        assert len(all_idx) == n
        assert len(np.unique(all_idx)) == n
        assert all(len(s) >= 2 for s in shards)

    @given(n=st.integers(10, 100), clients=st.integers(1, 10), seed=st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_iid_complete_and_balanced(self, n, clients, seed):
        if clients > n:
            return
        ds = make_ds(n, seed=seed)
        shards = iid_partition(ds, clients, np.random.default_rng(seed))
        sizes = [len(s) for s in shards]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1

    @given(n=st.integers(50, 200), clients=st.integers(2, 8), seed=st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_quantity_skew_never_overallocates(self, n, clients, seed):
        ds = make_ds(n, seed=seed)
        shards = quantity_skew_partition(ds, clients, np.random.default_rng(seed))
        assert sum(len(s) for s in shards) <= n
        assert all(len(s) >= 2 for s in shards)


class TestSplitProperties:
    @given(
        n=st.integers(4, 100),
        frac=st.floats(0.1, 0.9),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_split_partitions_indices(self, n, frac, seed):
        ds = make_ds(n)
        train, test = train_test_split(ds, frac, np.random.default_rng(seed))
        joined = np.sort(np.concatenate([train.indices, test.indices]))
        np.testing.assert_array_equal(joined, np.arange(n))
        assert len(test) >= 1
        assert len(train) >= 1
