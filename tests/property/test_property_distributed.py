"""Hypothesis properties: distributed storage vs sharded, under random
host fleets and row counts.

The distributed backend's contract (ISSUE 7): for *any* host count
(including 1, and more hosts than rows) the coordinator-side proxy is
**bit-identical** to the in-process ``sharded`` backend — rows cross
the sockets as raw buffer-dtype bytes, every reduction runs the exact
single-node kernel shard-locally, and the engine's ops
(``cross_aggregate``, both ``mean_state`` modes, the incremental
:class:`~repro.core.gram.GramTracker`) never see the difference.

Host fleets are pooled per count, so the whole module reuses at most
three warm fleets (1–3 localhost worker processes).
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.gram import GramTracker
from repro.core.pool import PoolBuffer

finite = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False, width=32
)
alphas = st.floats(min_value=0.01, max_value=0.99)

KEYS = {"w": (4, 3), "b": (5,)}

MAX_HOSTS = 3


@st.composite
def pools_with_fleet(draw, min_k=2, max_k=6):
    """(states, host count, shard count for the reference layout)."""
    k = draw(st.integers(min_k, max_k))
    states = [
        {
            key: draw(hnp.arrays(np.float32, shape, elements=finite))
            for key, shape in KEYS.items()
        }
        for _ in range(k)
    ]
    hosts = draw(st.integers(1, MAX_HOSTS))
    shards = draw(st.integers(1, k))
    return states, hosts, shards


def _pair(states, hosts, shards):
    sharded = PoolBuffer.from_states(
        states, backend="sharded", backend_options={"shards": shards}
    )
    distributed = PoolBuffer.from_states(
        states, backend="distributed", backend_options={"hosts": hosts}
    )
    return sharded, distributed


class TestDistributedBitIdentity:
    @given(data=pools_with_fleet(), alpha=alphas)
    @settings(max_examples=15, deadline=None)
    def test_cross_aggregate_bit_identical(self, data, alpha):
        states, hosts, shards = data
        sharded, distributed = _pair(states, hosts, shards)
        k = len(states)
        rng = np.random.default_rng(k * 31 + hosts)
        co = rng.integers(0, k, size=k)
        ref = sharded.cross_aggregate(co, alpha)
        got = distributed.cross_aggregate(co, alpha)
        assert got.backend == "distributed"
        assert got.storage.num_hosts == hosts
        np.testing.assert_array_equal(np.asarray(got.matrix), np.asarray(ref.matrix))

    @given(data=pools_with_fleet(), precise=st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_mean_state_bit_identical(self, data, precise):
        states, hosts, shards = data
        sharded, distributed = _pair(states, hosts, shards)
        k = len(states)
        weights = [float(w) for w in range(1, k + 1)]
        ref = sharded.mean_state(weights, precise=precise)
        got = distributed.mean_state(weights, precise=precise)
        for key in ref:
            np.testing.assert_array_equal(got[key], ref[key])

    @given(data=pools_with_fleet(), keys=st.sampled_from([None, ("w",)]))
    @settings(max_examples=15, deadline=None)
    def test_tracker_gram_bitwise_identical(self, data, keys):
        """The tracker's masked-dot fan-out to the hosts must assemble
        the exact Gram row the in-process shard loop produces — this is
        what keeps whole distributed fits bit-identical."""
        states, hosts, shards = data
        sharded, distributed = _pair(states, hosts, shards)
        param_keys = set(keys) if keys is not None else None
        ref = GramTracker.from_pool(sharded, param_keys=param_keys)
        got = GramTracker.from_pool(distributed, param_keys=param_keys)
        np.testing.assert_array_equal(got.gram, ref.gram)

    @given(data=pools_with_fleet())
    @settings(max_examples=10, deadline=None)
    def test_state_roundtrip_and_row_block_gather(self, data):
        states, hosts, _ = data
        distributed = PoolBuffer.from_states(
            states, backend="distributed", backend_options={"hosts": hosts}
        )
        k = len(states)
        for i, state in enumerate(states):
            back = distributed.as_state(i)
            for key in state:
                np.testing.assert_array_equal(back[key], state[key])
        whole = distributed.storage.row_block(0, k)
        np.testing.assert_array_equal(whole, np.asarray(distributed.matrix))
