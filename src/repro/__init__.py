"""FedCross reproduction: multi-model cross-aggregation federated learning.

Reproduces *FedCross: Towards Accurate Federated Learning via Multi-Model
Cross-Aggregation* (Hu et al., ICDE 2024) end to end on a pure-NumPy
substrate: autograd engine, layer library, model zoo, synthetic federated
datasets, the five baselines the paper compares against, and the FedCross
algorithm itself with its selection strategies and acceleration methods.

Quickstart
----------
>>> from repro.api import quick_fedcross
>>> result = quick_fedcross(seed=0, rounds=3)
>>> 0.0 <= result.history.final_accuracy <= 1.0
True
"""

from repro._version import __version__

__all__ = ["__version__"]
