"""Optimisers and learning-rate schedules.

The paper's experiments use SGD with learning rate 0.01 and momentum
0.5 on every client; the convergence proof (Theorem 1) additionally
assumes the inverse-time decay ``eta_t = 2 / (mu (t + lambda))``, which
:class:`InverseTimeLR` implements for the convergence-rate bench.
"""

from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.lr_scheduler import ConstantLR, StepLR, CosineLR, InverseTimeLR

__all__ = ["SGD", "Adam", "ConstantLR", "StepLR", "CosineLR", "InverseTimeLR"]
