"""Stochastic gradient descent with momentum.

Matches ``torch.optim.SGD`` semantics (momentum buffer ``b <- m b + g``,
update ``p <- p - lr b``; Nesterov variant supported) so the paper's
"SGD, lr 0.01, momentum 0.5" client configuration transfers unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.nn.module import Parameter
from repro.tensor.backend import active_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

__all__ = ["SGD"]


class SGD:
    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._buffers: list[np.ndarray | None] = [None] * len(self.params)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients currently on the params.

        The update never changes a parameter's dtype: a wider-precision
        gradient (e.g. SCAFFOLD's float64 control-variate correction)
        is applied in its own precision and the result rounded back.
        Without this, one float64 gradient would silently promote the
        shared model template, leaking extra precision into *subsequent*
        training legs and evaluations — making results depend on which
        clients previously touched the template (and breaking
        bit-reproducibility across execution backends).
        """
        backend = active_backend()
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                buf = self._buffers[i]
                buf = grad.copy() if buf is None else self.momentum * buf + grad
                self._buffers[i] = buf
                grad = grad + self.momentum * buf if self.nesterov else buf
            p.data = backend.asarray(p.data - self.lr * grad, dtype=p.data.dtype)

    def reset_state(self) -> None:
        """Drop momentum buffers (used when a client receives new weights)."""
        self._buffers = [None] * len(self.params)
