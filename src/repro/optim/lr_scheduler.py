"""Learning-rate schedules.

Schedulers mutate ``optimizer.lr`` when stepped, keeping the optimiser
implementation schedule-agnostic. :class:`InverseTimeLR` realises the
``eta_t = beta / (t + lambda)`` decay assumed by the paper's Theorem 1,
enabling the empirical convergence-rate experiment.
"""

from __future__ import annotations

import math

__all__ = ["ConstantLR", "StepLR", "CosineLR", "InverseTimeLR"]


class _Scheduler:
    def __init__(self, optimizer, base_lr: float | None = None) -> None:
        self.optimizer = optimizer
        self.base_lr = base_lr if base_lr is not None else optimizer.lr
        self.t = 0

    def lr_at(self, t: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step and install the new LR on the optimiser."""
        self.t += 1
        lr = self.lr_at(self.t)
        self.optimizer.lr = lr
        return lr


class ConstantLR(_Scheduler):
    """No decay — the paper's default client configuration."""

    def lr_at(self, t: int) -> float:
        return self.base_lr


class StepLR(_Scheduler):
    """Multiply LR by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, t: int) -> float:
        return self.base_lr * self.gamma ** (t // self.step_size)


class CosineLR(_Scheduler):
    """Cosine annealing to ``min_lr`` over ``t_max`` steps."""

    def __init__(self, optimizer, t_max: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.min_lr = min_lr

    def lr_at(self, t: int) -> float:
        frac = min(t, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * frac))


class InverseTimeLR(_Scheduler):
    """``eta_t = beta / (t + lam)`` — Theorem 1's decaying step size."""

    def __init__(self, optimizer, beta: float, lam: float) -> None:
        super().__init__(optimizer)
        if beta <= 0 or lam < 0:
            raise ValueError("beta must be positive and lam non-negative")
        self.beta = beta
        self.lam = lam
        optimizer.lr = self.lr_at(0)

    def lr_at(self, t: int) -> float:
        return self.beta / (t + self.lam + 1.0)
