"""Adam optimiser (used by the FedGen server-side generator)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.nn.module import Parameter
from repro.tensor.backend import active_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

__all__ = ["Adam"]


class Adam:
    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: list[np.ndarray | None] = [None] * len(self.params)
        self._v: list[np.ndarray | None] = [None] * len(self.params)
        self._t = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        self._t += 1
        backend = active_backend()
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m[i]
            v = self._v[i]
            m = (1 - b1) * grad if m is None else b1 * m + (1 - b1) * grad
            v = (1 - b2) * grad * grad if v is None else b2 * v + (1 - b2) * grad * grad
            self._m[i], self._v[i] = m, v
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (backend.sqrt(v_hat) + self.eps)

    def reset_state(self) -> None:
        self._m = [None] * len(self.params)
        self._v = [None] * len(self.params)
        self._t = 0
