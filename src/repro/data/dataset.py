"""In-memory datasets and minibatch loading."""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["ArrayDataset", "Subset", "DataLoader", "train_test_split"]


class ArrayDataset:
    """A dataset backed by aligned feature/label ndarrays.

    Features may be images ``(N, C, H, W)``, flat vectors ``(N, D)`` or
    integer token sequences ``(N, T)``; labels are integer class ids.
    """

    def __init__(self, features: np.ndarray, labels: np.ndarray) -> None:
        features = np.asarray(features)
        labels = np.asarray(labels, dtype=np.int64)
        if len(features) != len(labels):
            raise ValueError(
                f"features ({len(features)}) and labels ({len(labels)}) length mismatch"
            )
        self.features = features
        self.labels = labels

    def __len__(self) -> int:
        return len(self.labels)

    def __getitem__(self, index) -> tuple[np.ndarray, np.ndarray]:
        return self.features[index], self.labels[index]

    @property
    def num_classes(self) -> int:
        """Number of distinct classes present (max label + 1)."""
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    def class_counts(self, num_classes: int | None = None) -> np.ndarray:
        """Histogram of labels (used for Figure 3 and FedGen label stats)."""
        k = num_classes if num_classes is not None else self.num_classes
        return np.bincount(self.labels, minlength=k)

    def subset(self, indices: Sequence[int]) -> "Subset":
        return Subset(self, np.asarray(indices, dtype=np.int64))


class Subset(ArrayDataset):
    """A lazy view of a parent dataset restricted to ``indices``.

    No data is copied at construction: ``__getitem__`` indexes through
    the parent, and ``features``/``labels`` materialize their fancy-
    indexed copy on first access only (then cache it, so repeated
    minibatch slicing costs one materialization, not one per batch).
    """

    def __init__(self, parent: ArrayDataset, indices: np.ndarray) -> None:
        # Deliberately skip ArrayDataset.__init__: features/labels are
        # provided lazily via the properties below.
        self.parent = parent
        self.indices = np.asarray(indices, dtype=np.int64)
        self._features: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index) -> tuple[np.ndarray, np.ndarray]:
        parent_index = self.indices[index]
        return self.parent.features[parent_index], self.parent.labels[parent_index]

    @property
    def features(self) -> np.ndarray:
        if self._features is None:
            self._features = self.parent.features[self.indices]
        return self._features

    @property
    def labels(self) -> np.ndarray:
        if self._labels is None:
            self._labels = self.parent.labels[self.indices]
        return self._labels

    def subset(self, indices: Sequence[int]) -> "Subset":
        # Compose index maps so nested subsets stay views of the root
        # dataset instead of materializing every intermediate level.
        indices = np.asarray(indices, dtype=np.int64)
        return Subset(self.parent, self.indices[indices])


class DataLoader:
    """Minibatch iterator with optional per-epoch reshuffling.

    The shuffling RNG is owned by the loader, so a client's data order
    is reproducible given its seed yet varies across local epochs.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            if len(idx) == 0:
                continue
            yield self.dataset.features[idx], self.dataset.labels[idx]


def train_test_split(
    dataset: ArrayDataset, test_fraction: float, rng: np.random.Generator
) -> tuple[Subset, Subset]:
    """Random split into train/test subsets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    n = len(dataset)
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    order = rng.permutation(n)
    # Clamp so both sides stay non-empty even at extreme fractions.
    n_test = min(max(1, int(round(n * test_fraction))), n - 1)
    return dataset.subset(order[n_test:]), dataset.subset(order[:n_test])
