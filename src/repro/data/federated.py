"""Federated dataset assembly.

``build_federated_dataset`` is the single entry point experiment configs
use: it constructs the requested synthetic dataset, partitions it across
clients under the requested heterogeneity, and returns a
:class:`FederatedDataset` bundling per-client train sets with the global
test set used for the paper's "test accuracy of the global model"
metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.partition import dirichlet_partition, iid_partition, partition_class_counts
from repro.data.synthetic import (
    make_synthetic_chars,
    make_synthetic_femnist,
    make_synthetic_image_data,
    make_synthetic_sentiment,
)

__all__ = ["FederatedDataset", "build_federated_dataset", "DATASET_BUILDERS"]


@dataclass
class FederatedDataset:
    """Per-client training data plus the global evaluation set."""

    name: str
    clients: list[ArrayDataset]
    test: ArrayDataset
    num_classes: int
    heterogeneity: str = "natural"
    meta: dict = field(default_factory=dict)

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    def client_sizes(self) -> np.ndarray:
        return np.array([len(c) for c in self.clients])

    def class_count_matrix(self) -> np.ndarray:
        """Per-client class histogram (Figure 3's underlying data)."""
        return partition_class_counts(self.clients, self.num_classes)


def _partition(
    train: ArrayDataset, num_clients: int, heterogeneity: str | float, rng: np.random.Generator
) -> tuple[list[ArrayDataset], str]:
    """Partition ``train`` as IID or Dirichlet(beta)."""
    if isinstance(heterogeneity, str) and heterogeneity.lower() == "iid":
        return iid_partition(train, num_clients, rng), "iid"
    beta = float(heterogeneity)
    return (
        dirichlet_partition(train, num_clients, beta, rng),
        f"dirichlet({beta})",
    )


def _build_image(
    name: str,
    num_classes: int,
    num_clients: int,
    heterogeneity: str | float,
    seed: int,
    samples_per_client: int,
    image_shape: tuple[int, int, int],
    noise: float,
    num_test: int,
    basis_rank: int | None,
    label_noise: float,
) -> FederatedDataset:
    rng = np.random.default_rng(seed + 1)
    train, test = make_synthetic_image_data(
        num_classes=num_classes,
        num_train=samples_per_client * num_clients,
        num_test=num_test,
        image_shape=image_shape,
        noise=noise,
        basis_rank=basis_rank,
        label_noise=label_noise,
        seed=seed,
    )
    clients, label = _partition(train, num_clients, heterogeneity, rng)
    return FederatedDataset(
        name=name,
        clients=clients,
        test=test,
        num_classes=num_classes,
        heterogeneity=label,
        meta={"image_shape": image_shape, "noise": noise},
    )


def _build_synth_cifar10(num_clients, heterogeneity, seed, **kw) -> FederatedDataset:
    return _build_image(
        "synth_cifar10",
        num_classes=10,
        num_clients=num_clients,
        heterogeneity=heterogeneity,
        seed=seed,
        samples_per_client=kw.get("samples_per_client", 40),
        image_shape=kw.get("image_shape", (3, 8, 8)),
        noise=kw.get("noise", 1.0),
        num_test=kw.get("num_test", 400),
        basis_rank=kw.get("basis_rank", None),
        label_noise=kw.get("label_noise", 0.35),
    )


def _build_synth_cifar100(num_clients, heterogeneity, seed, **kw) -> FederatedDataset:
    # CIFAR-100's difficulty: 10x the classes at the same sample budget.
    return _build_image(
        "synth_cifar100",
        num_classes=kw.get("num_classes", 100),
        num_clients=num_clients,
        heterogeneity=heterogeneity,
        seed=seed,
        samples_per_client=kw.get("samples_per_client", 60),
        image_shape=kw.get("image_shape", (3, 8, 8)),
        noise=kw.get("noise", 1.0),
        num_test=kw.get("num_test", 600),
        basis_rank=kw.get("basis_rank", None),
        label_noise=kw.get("label_noise", 0.45),
    )


def _build_synth_femnist(num_clients, heterogeneity, seed, **kw) -> FederatedDataset:
    clients, test = make_synthetic_femnist(
        num_writers=num_clients,
        num_classes=kw.get("num_classes", 10),
        samples_per_writer_mean=kw.get("samples_per_writer_mean", 60.0),
        image_shape=kw.get("image_shape", (1, 8, 8)),
        noise=kw.get("noise", 0.6),
        num_test=kw.get("num_test", 400),
        seed=seed,
    )
    return FederatedDataset(
        name="synth_femnist",
        clients=clients,
        test=test,
        num_classes=kw.get("num_classes", 10),
        heterogeneity="natural",
        meta={"image_shape": kw.get("image_shape", (1, 8, 8))},
    )


def _build_synth_shakespeare(num_clients, heterogeneity, seed, **kw) -> FederatedDataset:
    clients, test, vocab = make_synthetic_chars(
        num_clients=num_clients,
        vocab_size=kw.get("vocab_size", 30),
        seq_len=kw.get("seq_len", 10),
        samples_per_client=kw.get("samples_per_client", 120),
        num_test=kw.get("num_test", 400),
        seed=seed,
    )
    return FederatedDataset(
        name="synth_shakespeare",
        clients=clients,
        test=test,
        num_classes=vocab,
        heterogeneity="natural",
        meta={"vocab_size": vocab, "seq_len": kw.get("seq_len", 10)},
    )


def _build_synth_sent140(num_clients, heterogeneity, seed, **kw) -> FederatedDataset:
    users, test, vocab = make_synthetic_sentiment(
        num_users=num_clients,
        vocab_size=kw.get("vocab_size", 60),
        seq_len=kw.get("seq_len", 8),
        samples_per_user_mean=kw.get("samples_per_user_mean", 50.0),
        num_test=kw.get("num_test", 400),
        seed=seed,
    )
    return FederatedDataset(
        name="synth_sent140",
        clients=users,
        test=test,
        num_classes=2,
        heterogeneity="natural",
        meta={"vocab_size": vocab, "seq_len": kw.get("seq_len", 8)},
    )


DATASET_BUILDERS = {
    "synth_cifar10": _build_synth_cifar10,
    "synth_cifar100": _build_synth_cifar100,
    "synth_femnist": _build_synth_femnist,
    "synth_shakespeare": _build_synth_shakespeare,
    "synth_sent140": _build_synth_sent140,
}


def build_federated_dataset(
    name: str,
    num_clients: int = 20,
    heterogeneity: str | float = "iid",
    seed: int = 0,
    **kwargs,
) -> FederatedDataset:
    """Build a named federated dataset.

    Parameters
    ----------
    name:
        One of ``synth_cifar10``, ``synth_cifar100``, ``synth_femnist``,
        ``synth_shakespeare``, ``synth_sent140``.
    heterogeneity:
        ``"iid"`` or a Dirichlet β (float). Ignored by the naturally
        non-IID datasets (femnist / shakespeare / sent140), matching the
        paper's "−" heterogeneity entries for those rows.
    """
    key = name.lower()
    if key not in DATASET_BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_BUILDERS)}")
    return DATASET_BUILDERS[key](num_clients, heterogeneity, seed, **kwargs)
