"""Client partitioning schemes.

``dirichlet_partition`` implements the label-skew scheme of Hsu et al.
2019 that the paper uses for CIFAR-10/100: for each class, the vector
of per-client proportions is drawn from Dir(β); smaller β concentrates
each class on fewer clients. ``render_partition_grid`` reproduces the
paper's Figure 3 bubble plot as ASCII.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ArrayDataset, Subset

__all__ = [
    "dirichlet_partition",
    "iid_partition",
    "quantity_skew_partition",
    "partition_class_counts",
    "render_partition_grid",
]


def iid_partition(
    dataset: ArrayDataset, num_clients: int, rng: np.random.Generator
) -> list[Subset]:
    """Uniformly shuffle and split the dataset into equal client shards."""
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    order = rng.permutation(len(dataset))
    shards = np.array_split(order, num_clients)
    return [dataset.subset(shard) for shard in shards]


def dirichlet_partition(
    dataset: ArrayDataset,
    num_clients: int,
    beta: float,
    rng: np.random.Generator,
    min_samples: int = 2,
    max_retries: int = 25,
) -> list[Subset]:
    """Label-skew Dirichlet partition (Hsu et al. 2019).

    For each class ``k`` draw ``p_k ~ Dir(beta)`` over clients and send
    that class's samples to clients proportionally. Redraws a few times
    until every client holds at least ``min_samples`` samples; if the
    regime makes that unlikely (small beta, many clients, few samples —
    exactly the paper's 100-client Dir(0.1) CIFAR setting), the final
    draw is repaired by moving random samples from the largest clients
    to the deficient ones, keeping local training well-defined while
    barely perturbing the skew.

    Parameters
    ----------
    beta:
        Concentration; the paper uses 0.1 / 0.5 / 1.0 (smaller = more
        heterogeneous).
    """
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    labels = dataset.labels
    num_classes = int(labels.max()) + 1
    if len(dataset) < num_clients * min_samples:
        raise ValueError(
            f"dataset of {len(dataset)} samples cannot give {num_clients} clients "
            f">= {min_samples} samples each"
        )

    client_indices: list[list[int]] = []
    for _ in range(max_retries):
        client_indices = [[] for _ in range(num_clients)]
        for k in range(num_classes):
            class_idx = np.flatnonzero(labels == k)
            rng.shuffle(class_idx)
            proportions = rng.dirichlet(np.full(num_clients, beta))
            cuts = (np.cumsum(proportions)[:-1] * len(class_idx)).astype(int)
            for client, shard in enumerate(np.split(class_idx, cuts)):
                client_indices[client].extend(shard.tolist())
        if min(len(ci) for ci in client_indices) >= min_samples:
            break
    else:
        _repair_deficient_clients(client_indices, min_samples, rng)
    return [dataset.subset(np.array(sorted(ci))) for ci in client_indices]


def _repair_deficient_clients(
    client_indices: list[list[int]], min_samples: int, rng: np.random.Generator
) -> None:
    """Move random samples from the largest to deficient clients in place."""
    while True:
        sizes = [len(ci) for ci in client_indices]
        deficient = [i for i, s in enumerate(sizes) if s < min_samples]
        if not deficient:
            return
        target = deficient[0]
        donor = int(np.argmax(sizes))
        if sizes[donor] <= min_samples:
            raise RuntimeError("cannot repair partition: donors exhausted")
        take = int(rng.integers(0, len(client_indices[donor])))
        client_indices[target].append(client_indices[donor].pop(take))


def quantity_skew_partition(
    dataset: ArrayDataset,
    num_clients: int,
    rng: np.random.Generator,
    sigma: float = 0.8,
    min_samples: int = 2,
) -> list[Subset]:
    """IID labels but log-normal client sizes (pure quantity skew)."""
    weights = rng.lognormal(0.0, sigma, num_clients)
    weights = weights / weights.sum()
    n = len(dataset)
    sizes = np.maximum((weights * n).astype(int), min_samples)
    # Trim overshoot caused by the floor.
    while sizes.sum() > n:
        sizes[np.argmax(sizes)] -= 1
    order = rng.permutation(n)
    out, offset = [], 0
    for size in sizes:
        out.append(dataset.subset(order[offset : offset + size]))
        offset += size
    return out


def partition_class_counts(
    clients: list[ArrayDataset], num_classes: int | None = None
) -> np.ndarray:
    """``(num_clients, num_classes)`` matrix of per-client label counts.

    This is the data behind the paper's Figure 3.
    """
    if num_classes is None:
        num_classes = max(int(c.labels.max()) + 1 if len(c) else 0 for c in clients)
    return np.stack([c.class_counts(num_classes) for c in clients])


def render_partition_grid(
    counts: np.ndarray, max_clients: int = 10, charset: str = " .:oO@"
) -> str:
    """ASCII bubble plot of a partition (Figure 3 as text).

    Rows are classes (like the paper's y-axis), columns are clients;
    glyph size encodes the sample count, normalised by the global max.
    """
    counts = np.asarray(counts)[:max_clients]
    if counts.size == 0:
        return "(empty partition)"
    peak = counts.max()
    levels = len(charset) - 1
    lines = ["client:" + "".join(f"{i:>3d}" for i in range(counts.shape[0]))]
    for k in range(counts.shape[1]):
        row = []
        for i in range(counts.shape[0]):
            frac = counts[i, k] / peak if peak else 0.0
            glyph = charset[int(round(frac * levels))]
            row.append(f"  {glyph}")
        lines.append(f"cls {k:>2d}:" + "".join(row))
    return "\n".join(lines)
