"""Synthetic stand-ins for the paper's five datasets.

Offline reproduction rule: when the original data is unavailable, build
the closest synthetic equivalent that exercises the same code path (see
DESIGN.md). Each generator below reproduces the *federated structure*
of its counterpart:

``make_synthetic_image_data``
    CIFAR-10 / CIFAR-100 stand-in: K classes, each an anisotropic
    Gaussian "prototype" image smoothed spatially; samples are jittered
    (gain, spatial shift) and noised. Difficulty (the noise scale)
    controls achievable accuracy, mimicking CIFAR-100's harder regime
    via more classes at the same budget.
``make_synthetic_femnist``
    FEMNIST stand-in: grayscale characters with *per-writer* covariate
    shift (shear/shift/gain) and log-normal per-writer sample counts —
    the "naturally non-IID" structure the paper relies on.
``make_synthetic_chars``
    Shakespeare stand-in: per-client Markov-chain character sources
    sharing a global backbone transition matrix; task is next-character
    prediction.
``make_synthetic_sentiment``
    Sent140 stand-in: token sequences from class-conditional unigram
    ("topic") distributions with per-user vocabulary bias; task is
    binary sentiment classification.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.data.dataset import ArrayDataset

__all__ = [
    "make_synthetic_image_data",
    "make_synthetic_femnist",
    "make_synthetic_chars",
    "make_synthetic_sentiment",
]


# ----------------------------------------------------------------------
# CIFAR-like images
# ----------------------------------------------------------------------
def _class_prototypes(
    rng: np.random.Generator,
    num_classes: int,
    shape: tuple[int, int, int],
    smooth: float,
    basis_rank: int | None = None,
) -> np.ndarray:
    """Smoothed Gaussian prototype images, one per class, unit-normalised.

    ``basis_rank`` < num_classes builds prototypes as random mixtures of
    that many shared basis images, making some class pairs genuinely
    similar. Under pixel noise those pairs are confusable, giving the
    task a graded, sub-100% accuracy ceiling — the regime of real
    CIFAR, where the paper's methods separate.
    """
    c, h, w = shape
    if basis_rank is not None and basis_rank < num_classes:
        basis = rng.standard_normal((basis_rank, c, h, w))
        coeffs = rng.standard_normal((num_classes, basis_rank))
        protos = np.tensordot(coeffs, basis, axes=1)
    else:
        protos = rng.standard_normal((num_classes, c, h, w))
    if smooth > 0:
        protos = ndimage.gaussian_filter(protos, sigma=(0, 0, smooth, smooth))
    norms = np.sqrt((protos**2).sum(axis=(1, 2, 3), keepdims=True))
    return (protos / np.maximum(norms, 1e-8)) * np.sqrt(c * h * w)


def make_synthetic_image_data(
    num_classes: int = 10,
    num_train: int = 2000,
    num_test: int = 500,
    image_shape: tuple[int, int, int] = (3, 8, 8),
    noise: float = 0.9,
    max_shift: int = 1,
    basis_rank: int | None = None,
    label_noise: float = 0.0,
    seed: int = 0,
) -> tuple[ArrayDataset, ArrayDataset]:
    """CIFAR-like synthetic classification images.

    Parameters
    ----------
    noise:
        Std of additive Gaussian pixel noise; larger = harder task
        (accuracy well below 100% so FL methods can separate, exactly
        the regime of the paper's Table II).
    max_shift:
        Maximum circular spatial shift applied per sample (intra-class
        variation that rewards convolutional models).
    basis_rank:
        When set below ``num_classes``, prototypes share a low-rank
        basis, creating confusable class pairs and a graded accuracy
        ceiling (see :func:`_class_prototypes`).
    label_noise:
        Fraction of *training* labels replaced by uniform random
        classes. The test set stays clean, so reported accuracy remains
        comparable; training-signal corruption lowers the practically
        achievable accuracy into the paper's mid-range regime and
        amplifies gradient divergence between non-IID clients.

    Returns
    -------
    (train, test):
        ``ArrayDataset`` pairs with ``(N, C, H, W)`` float32 features.
    """
    rng = np.random.default_rng(seed)
    protos = _class_prototypes(rng, num_classes, image_shape, smooth=1.0, basis_rank=basis_rank)

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, n)
        gains = rng.uniform(0.8, 1.2, size=(n, 1, 1, 1))
        x = protos[labels] * gains
        if max_shift > 0:
            shifts = rng.integers(-max_shift, max_shift + 1, size=(n, 2))
            for i in range(n):
                x[i] = np.roll(x[i], shift=tuple(shifts[i]), axis=(1, 2))
        x = x + noise * rng.standard_normal(x.shape)
        return x.astype(np.float32), labels

    x_train, y_train = sample(num_train)
    x_test, y_test = sample(num_test)
    if label_noise > 0.0:
        if not 0.0 <= label_noise < 1.0:
            raise ValueError(f"label_noise must be in [0, 1), got {label_noise}")
        flip = rng.random(num_train) < label_noise
        y_train = np.where(flip, rng.integers(0, num_classes, num_train), y_train)
    return ArrayDataset(x_train, y_train), ArrayDataset(x_test, y_test)


# ----------------------------------------------------------------------
# FEMNIST-like handwriting with per-writer covariate shift
# ----------------------------------------------------------------------
def make_synthetic_femnist(
    num_writers: int = 30,
    num_classes: int = 10,
    samples_per_writer_mean: float = 60.0,
    image_shape: tuple[int, int, int] = (1, 8, 8),
    noise: float = 0.6,
    writer_shift_scale: float = 0.35,
    num_test: int = 500,
    seed: int = 0,
) -> tuple[list[ArrayDataset], ArrayDataset]:
    """FEMNIST-like: per-writer client datasets + a global test set.

    Each writer has its own affine style: a circular spatial shift, a
    gain, and a writer-specific additive "stroke-style" field blended
    into every sample. Sample counts per writer follow a log-normal, so
    clients differ in both quantity and style (the natural non-IID
    regime of LEAF).

    Returns
    -------
    (clients, test):
        A list of per-writer ``ArrayDataset`` and a style-neutral global
        test set.
    """
    rng = np.random.default_rng(seed)
    protos = _class_prototypes(rng, num_classes, image_shape, smooth=1.0)
    c, h, w = image_shape

    clients: list[ArrayDataset] = []
    for _ in range(num_writers):
        n = max(10, int(rng.lognormal(mean=np.log(samples_per_writer_mean), sigma=0.5)))
        style = writer_shift_scale * ndimage.gaussian_filter(
            rng.standard_normal((c, h, w)), sigma=(0, 1.0, 1.0)
        )
        shift = (int(rng.integers(-1, 2)), int(rng.integers(-1, 2)))
        gain = rng.uniform(0.7, 1.3)
        labels = rng.integers(0, num_classes, n)
        x = protos[labels] * gain
        x = np.roll(x, shift=shift, axis=(2, 3))
        x = x + style[None] + noise * rng.standard_normal(x.shape)
        clients.append(ArrayDataset(x.astype(np.float32), labels))

    test_labels = rng.integers(0, num_classes, num_test)
    x_test = protos[test_labels] + noise * rng.standard_normal(
        (num_test, c, h, w)
    )
    test = ArrayDataset(x_test.astype(np.float32), test_labels)
    return clients, test


# ----------------------------------------------------------------------
# Shakespeare-like character sequences
# ----------------------------------------------------------------------
def _row_normalise(matrix: np.ndarray) -> np.ndarray:
    matrix = np.clip(matrix, 1e-8, None)
    return matrix / matrix.sum(axis=1, keepdims=True)


def make_synthetic_chars(
    num_clients: int = 16,
    vocab_size: int = 30,
    seq_len: int = 10,
    samples_per_client: int = 120,
    client_deviation: float = 0.5,
    num_test: int = 400,
    concentration: float = 0.3,
    seed: int = 0,
) -> tuple[list[ArrayDataset], ArrayDataset, int]:
    """Shakespeare-like next-character prediction corpora.

    A global sparse Markov transition backbone is perturbed per client
    (``client_deviation`` scales the perturbation), mirroring how
    different Shakespeare roles share English structure but differ in
    phrasing. Inputs are integer windows of length ``seq_len``; the
    label is the following character.

    Returns
    -------
    (clients, test, vocab_size)
    """
    rng = np.random.default_rng(seed)
    backbone = rng.dirichlet(np.full(vocab_size, concentration), size=vocab_size)

    def generate(transition: np.ndarray, n: int, gen: np.random.Generator):
        x = np.zeros((n, seq_len), dtype=np.int64)
        y = np.zeros(n, dtype=np.int64)
        cdf = np.cumsum(transition, axis=1)
        state = int(gen.integers(0, vocab_size))
        for i in range(n):
            walk = np.empty(seq_len + 1, dtype=np.int64)
            for t in range(seq_len + 1):
                state = int(np.searchsorted(cdf[state], gen.random()))
                state = min(state, vocab_size - 1)
                walk[t] = state
            x[i] = walk[:-1]
            y[i] = walk[-1]
        return x, y

    clients: list[ArrayDataset] = []
    for _ in range(num_clients):
        noise = rng.dirichlet(np.full(vocab_size, concentration), size=vocab_size)
        local = _row_normalise((1 - client_deviation) * backbone + client_deviation * noise)
        x, y = generate(local, samples_per_client, rng)
        clients.append(ArrayDataset(x, y))

    x_test, y_test = generate(backbone, num_test, rng)
    return clients, ArrayDataset(x_test, y_test), vocab_size


# ----------------------------------------------------------------------
# Sent140-like sentiment sequences
# ----------------------------------------------------------------------
def make_synthetic_sentiment(
    num_users: int = 24,
    vocab_size: int = 60,
    seq_len: int = 8,
    samples_per_user_mean: float = 50.0,
    user_bias: float = 0.4,
    num_test: int = 400,
    num_classes: int = 2,
    seed: int = 0,
) -> tuple[list[ArrayDataset], ArrayDataset, int]:
    """Sent140-like per-user sentiment corpora.

    Class-conditional unigram distributions (positive/negative "topics",
    Zipf-weighted) generate token sequences; each user mixes in its own
    vocabulary-bias distribution with weight ``user_bias`` and has a
    skewed class prior, reproducing Sent140's user-level heterogeneity.

    Returns
    -------
    (users, test, vocab_size)
    """
    rng = np.random.default_rng(seed)
    zipf = 1.0 / np.arange(1, vocab_size + 1)
    topics = np.stack(
        [_row_normalise((zipf * rng.dirichlet(np.full(vocab_size, 0.2)))[None])[0]
         for _ in range(num_classes)]
    )

    def generate(class_dists: np.ndarray, prior: np.ndarray, n: int):
        labels = rng.choice(num_classes, size=n, p=prior)
        x = np.zeros((n, seq_len), dtype=np.int64)
        for i, label in enumerate(labels):
            x[i] = rng.choice(vocab_size, size=seq_len, p=class_dists[label])
        return x, labels

    users: list[ArrayDataset] = []
    for _ in range(num_users):
        bias = rng.dirichlet(np.full(vocab_size, 0.3))
        local = _row_normalise((1 - user_bias) * topics + user_bias * bias[None])
        prior = rng.dirichlet(np.full(num_classes, 2.0))
        n = max(8, int(rng.lognormal(np.log(samples_per_user_mean), 0.4)))
        x, y = generate(local, prior, n)
        users.append(ArrayDataset(x, y))

    uniform_prior = np.full(num_classes, 1.0 / num_classes)
    x_test, y_test = generate(topics, uniform_prior, num_test)
    return users, ArrayDataset(x_test, y_test), vocab_size
