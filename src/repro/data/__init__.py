"""Datasets, synthetic generators and federated partitioning.

The paper evaluates on CIFAR-10/100 (Dirichlet-partitioned) and three
naturally non-IID LEAF datasets (FEMNIST, Shakespeare, Sent140). None
are available offline, so :mod:`repro.data.synthetic` provides
generators reproducing each dataset's *federated structure* (class
count, task shape, per-client skew); see DESIGN.md for the substitution
argument. :mod:`repro.data.partition` implements the Dirichlet(β)
label-skew scheme of Hsu et al. 2019 used throughout the paper.
"""

from repro.data.dataset import ArrayDataset, Subset, DataLoader, train_test_split
from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    quantity_skew_partition,
    partition_class_counts,
    render_partition_grid,
)
from repro.data.federated import FederatedDataset, build_federated_dataset
from repro.data.synthetic import (
    make_synthetic_image_data,
    make_synthetic_femnist,
    make_synthetic_chars,
    make_synthetic_sentiment,
)

__all__ = [
    "ArrayDataset",
    "Subset",
    "DataLoader",
    "train_test_split",
    "dirichlet_partition",
    "iid_partition",
    "quantity_skew_partition",
    "partition_class_counts",
    "render_partition_grid",
    "FederatedDataset",
    "build_federated_dataset",
    "make_synthetic_image_data",
    "make_synthetic_femnist",
    "make_synthetic_chars",
    "make_synthetic_sentiment",
]
