"""ResNet family (He et al. 2016), CIFAR variant.

``resnet20`` is the paper's 3-stage (16/32/64 channels), 3-blocks-per-
stage network; ``resnet8`` is the one-block-per-stage preset the
CPU-scaled benchmarks use. Either batch or group normalisation can be
selected — group norm avoids the tiny-batch statistics problem that
batch norm has in federated settings (a standard substitution in FL
reproductions).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.registry import register_model
from repro.tensor.tensor import Tensor
from repro.utils.rng import default_rng

__all__ = ["BasicBlock", "ResNet", "resnet20", "resnet8"]


def _make_norm(norm: str, channels: int) -> nn.Module:
    if norm == "batch":
        return nn.BatchNorm2d(channels)
    if norm == "group":
        groups = min(8, channels)
        while channels % groups:
            groups -= 1
        return nn.GroupNorm(groups, channels)
    raise ValueError(f"unknown norm {norm!r}; expected 'batch' or 'group'")


class BasicBlock(nn.Module):
    """Two 3x3 convs with identity (or 1x1-projected) shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        norm: str = "batch",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else default_rng()
        self.conv1 = nn.Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng
        )
        self.norm1 = _make_norm(norm, out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.norm2 = _make_norm(norm, out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                _make_norm(norm, out_channels),
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.norm1(self.conv1(x)).relu()
        out = self.norm2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


class ResNet(nn.Module):
    """CIFAR-style ResNet: stem conv, three stages, global pool, linear head.

    Parameters
    ----------
    blocks_per_stage:
        ``n`` gives a ``6n+2``-layer network (n=3 → ResNet-20).
    widths:
        Channel counts of the three stages.
    norm:
        ``"batch"`` (paper) or ``"group"`` (small-batch-friendly).
    """

    def __init__(
        self,
        input_shape: tuple[int, int, int] = (3, 32, 32),
        num_classes: int = 10,
        blocks_per_stage: int = 3,
        widths: tuple[int, int, int] = (16, 32, 64),
        norm: str = "batch",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else default_rng()
        c, _, _ = input_shape
        self.input_shape = input_shape
        self.num_classes = num_classes
        self.stem = nn.Conv2d(c, widths[0], 3, padding=1, bias=False, rng=rng)
        self.stem_norm = _make_norm(norm, widths[0])
        stages = []
        in_ch = widths[0]
        for stage_idx, width in enumerate(widths):
            stride = 1 if stage_idx == 0 else 2
            blocks = [BasicBlock(in_ch, width, stride=stride, norm=norm, rng=rng)]
            for _ in range(blocks_per_stage - 1):
                blocks.append(BasicBlock(width, width, norm=norm, rng=rng))
            stages.append(nn.Sequential(*blocks))
            in_ch = width
        self.stages = nn.ModuleList(stages)
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(widths[-1], num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem_norm(self.stem(x)).relu()
        for stage in self.stages:
            x = stage(x)
        return self.fc(self.pool(x))


def resnet20(rng: np.random.Generator | None = None, **kwargs) -> ResNet:
    """The paper's ResNet-20 (3 blocks per stage, 16/32/64 channels)."""
    kwargs.setdefault("blocks_per_stage", 3)
    kwargs.setdefault("widths", (16, 32, 64))
    return ResNet(rng=rng, **kwargs)


def resnet8(rng: np.random.Generator | None = None, **kwargs) -> ResNet:
    """CPU-scaled preset: one block per stage, 8/16/32 channels."""
    kwargs.setdefault("blocks_per_stage", 1)
    kwargs.setdefault("widths", (8, 16, 32))
    kwargs.setdefault("input_shape", (3, 8, 8))
    kwargs.setdefault("norm", "group")
    return ResNet(rng=rng, **kwargs)


@register_model("resnet20")
def _build_resnet20(rng: np.random.Generator, **kwargs) -> ResNet:
    return resnet20(rng=rng, **kwargs)


@register_model("resnet8")
def _build_resnet8(rng: np.random.Generator, **kwargs) -> ResNet:
    return resnet8(rng=rng, **kwargs)
