"""Model zoo for the paper's evaluation.

The paper investigates three vision models — the FedAvg CNN, ResNet-20
and VGG-16 — plus an LSTM for the two text datasets. Each family is
implemented here at full fidelity together with width/depth-scaled
presets (``resnet8``, ``vgg_mini``, ...) that keep CPU experiments
tractable while preserving the family's architectural character
(plain-conv vs residual vs deep-VGG vs recurrent).

``build_model(name, ...)`` is the single entry point used by the FL
harness; it guarantees deterministic init from an explicit seed so every
FL method under comparison starts from identical weights.
"""

from repro.models.registry import build_model, register_model, available_models
from repro.models.cnn import FedAvgCNN
from repro.models.mlp import MLP, LogisticRegression
from repro.models.resnet import ResNet, resnet20, resnet8
from repro.models.vgg import VGG, vgg16, vgg_mini
from repro.models.lstm import CharLSTM, SentimentLSTM

__all__ = [
    "build_model",
    "register_model",
    "available_models",
    "FedAvgCNN",
    "MLP",
    "LogisticRegression",
    "ResNet",
    "resnet20",
    "resnet8",
    "VGG",
    "vgg16",
    "vgg_mini",
    "CharLSTM",
    "SentimentLSTM",
]
