"""VGG family (Simonyan & Zisserman 2014).

``vgg16`` follows the canonical 13-conv + 3-FC configuration (with
CIFAR-sized classifier head); ``vgg_mini`` is the CPU preset — three
conv/pool stages — preserving the family's signature (deep plain
stacks, heavy classifier) at benchmark-friendly size. The paper uses
VGG-16 as its "connection-intensive" large model whose early-round
convergence lag motivates the acceleration methods (Figure 9).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.registry import register_model
from repro.tensor.tensor import Tensor
from repro.utils.rng import default_rng

__all__ = ["VGG", "vgg16", "vgg_mini", "VGG16_CONFIG", "VGG_MINI_CONFIG"]

# 'M' denotes a 2x2 max-pool; integers are 3x3 conv output channels.
VGG16_CONFIG: tuple = (64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
                       512, 512, 512, "M", 512, 512, 512, "M")
VGG_MINI_CONFIG: tuple = (16, "M", 32, "M", 64, "M")


class VGG(nn.Module):
    """Plain conv stacks from a config tuple + 2-layer classifier head."""

    def __init__(
        self,
        config: tuple = VGG16_CONFIG,
        input_shape: tuple[int, int, int] = (3, 32, 32),
        num_classes: int = 10,
        classifier_width: int = 512,
        norm: str | None = "batch",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else default_rng()
        c, h, w = input_shape
        self.input_shape = input_shape
        self.num_classes = num_classes
        self.config = tuple(config)

        layers: list[nn.Module] = []
        in_ch = c
        spatial = h
        for item in config:
            if item == "M":
                layers.append(nn.MaxPool2d(2))
                spatial //= 2
                if spatial < 1:
                    raise ValueError(
                        f"VGG config {config} downsamples below 1x1 for input {input_shape}"
                    )
                continue
            out_ch = int(item)
            layers.append(nn.Conv2d(in_ch, out_ch, 3, padding=1, bias=norm is None, rng=rng))
            if norm == "batch":
                layers.append(nn.BatchNorm2d(out_ch))
            elif norm == "group":
                groups = min(8, out_ch)
                while out_ch % groups:
                    groups -= 1
                layers.append(nn.GroupNorm(groups, out_ch))
            layers.append(nn.ReLU())
            in_ch = out_ch
        self.features = nn.Sequential(*layers)
        flat = in_ch * spatial * spatial
        self.classifier = nn.Sequential(
            nn.Linear(flat, classifier_width, rng=rng),
            nn.ReLU(),
            nn.Linear(classifier_width, num_classes, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        x = self.features(x)
        x = x.flatten(start_dim=1)
        return self.classifier(x)


def vgg16(rng: np.random.Generator | None = None, **kwargs) -> VGG:
    """Canonical VGG-16 with batch norm (CIFAR classifier head)."""
    kwargs.setdefault("config", VGG16_CONFIG)
    return VGG(rng=rng, **kwargs)


def vgg_mini(rng: np.random.Generator | None = None, **kwargs) -> VGG:
    """CPU-scaled three-stage VGG used by the benchmark harness."""
    kwargs.setdefault("config", VGG_MINI_CONFIG)
    kwargs.setdefault("input_shape", (3, 8, 8))
    kwargs.setdefault("classifier_width", 64)
    kwargs.setdefault("norm", "group")
    return VGG(rng=rng, **kwargs)


@register_model("vgg16")
def _build_vgg16(rng: np.random.Generator, **kwargs) -> VGG:
    return vgg16(rng=rng, **kwargs)


@register_model("vgg_mini")
def _build_vgg_mini(rng: np.random.Generator, **kwargs) -> VGG:
    return vgg_mini(rng=rng, **kwargs)
