"""LSTM models for the paper's two text tasks.

``CharLSTM`` mirrors the LEAF Shakespeare model: embedding → stacked
LSTM → linear head predicting the next character from the final hidden
state. ``SentimentLSTM`` mirrors the Sent140 model: embedding → LSTM →
binary (or n-ary) sentiment head over mean-pooled hidden states.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.registry import register_model
from repro.tensor.tensor import Tensor
from repro.utils.rng import default_rng

__all__ = ["CharLSTM", "SentimentLSTM"]


class CharLSTM(nn.Module):
    """Next-character prediction model (Shakespeare task).

    Input is an integer ndarray ``(N, T)`` of character ids; output is
    ``(N, vocab_size)`` logits for the character following the sequence.
    """

    def __init__(
        self,
        vocab_size: int = 80,
        embed_dim: int = 8,
        hidden_size: int = 32,
        num_layers: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else default_rng()
        self.vocab_size = vocab_size
        self.embedding = nn.Embedding(vocab_size, embed_dim, rng=rng)
        self.lstm = nn.LSTM(embed_dim, hidden_size, num_layers=num_layers, rng=rng)
        self.head = nn.Linear(hidden_size, vocab_size, rng=rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        embedded = self.embedding(np.asarray(tokens, dtype=np.int64))
        return self.forward_embedded(embedded)

    def forward_embedded(self, embedded: Tensor) -> Tensor:
        """Classify from pre-embedded ``(N, T, embed_dim)`` sequences.

        Entry point for FedGen's embedding-space generator, which cannot
        produce discrete tokens.
        """
        _, (h, _) = self.lstm(embedded)
        return self.head(h)


class SentimentLSTM(nn.Module):
    """Sequence classification model (Sent140 task).

    Mean-pools the LSTM outputs over time before the classifier, which
    is markedly more stable than last-state classification on the short
    noisy sequences the synthetic Sent140 generator produces.
    """

    def __init__(
        self,
        vocab_size: int = 400,
        embed_dim: int = 16,
        hidden_size: int = 32,
        num_classes: int = 2,
        num_layers: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else default_rng()
        self.vocab_size = vocab_size
        self.num_classes = num_classes
        self.embedding = nn.Embedding(vocab_size, embed_dim, rng=rng)
        self.lstm = nn.LSTM(embed_dim, hidden_size, num_layers=num_layers, rng=rng)
        self.head = nn.Linear(hidden_size, num_classes, rng=rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        embedded = self.embedding(np.asarray(tokens, dtype=np.int64))
        return self.forward_embedded(embedded)

    def forward_embedded(self, embedded: Tensor) -> Tensor:
        """Classify from pre-embedded sequences (see :class:`CharLSTM`)."""
        outputs, _ = self.lstm(embedded)
        pooled = outputs.mean(axis=1)
        return self.head(pooled)


@register_model("charlstm")
def _build_charlstm(rng: np.random.Generator, **kwargs) -> CharLSTM:
    return CharLSTM(rng=rng, **kwargs)


@register_model("sentlstm")
def _build_sentlstm(rng: np.random.Generator, **kwargs) -> SentimentLSTM:
    return SentimentLSTM(rng=rng, **kwargs)
