"""MLP and logistic-regression heads.

These are not in the paper's Table II but are essential infrastructure:
the fastest models for the wide parameter sweeps (Figures 6-8 run
6 methods x 5 settings x many rounds), and the convex case
(LogisticRegression) is the setting in which the paper's Theorem 1
convergence analysis actually applies — the convergence-rate bench uses
it.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.registry import register_model
from repro.tensor.tensor import Tensor
from repro.utils.rng import default_rng

__all__ = ["MLP", "LogisticRegression"]


class MLP(nn.Module):
    """Fully-connected ReLU network over flattened inputs."""

    def __init__(
        self,
        input_dim: int = 192,
        num_classes: int = 10,
        hidden_sizes: tuple[int, ...] = (64, 32),
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else default_rng()
        self.input_dim = input_dim
        self.num_classes = num_classes
        dims = [input_dim, *hidden_sizes]
        layers: list[nn.Module] = []
        for d_in, d_out in zip(dims[:-1], dims[1:]):
            layers.append(nn.Linear(d_in, d_out, rng=rng))
            layers.append(nn.ReLU())
        layers.append(nn.Linear(dims[-1], num_classes, rng=rng))
        self.body = nn.Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.flatten(start_dim=1)
        return self.body(x)


class LogisticRegression(nn.Module):
    """Single affine layer — the mu-convex model of the convergence theory."""

    def __init__(
        self,
        input_dim: int = 192,
        num_classes: int = 10,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else default_rng()
        self.linear = nn.Linear(input_dim, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.flatten(start_dim=1)
        return self.linear(x)


@register_model("mlp")
def _build_mlp(rng: np.random.Generator, **kwargs) -> MLP:
    return MLP(rng=rng, **kwargs)


@register_model("logreg")
def _build_logreg(rng: np.random.Generator, **kwargs) -> LogisticRegression:
    return LogisticRegression(rng=rng, **kwargs)
