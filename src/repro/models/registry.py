"""Model registry: names → constructors.

Keeps experiment configs declarative (``model="resnet8"``) and gives a
single seam where determinism is enforced: every builder receives a
fresh generator derived from the caller's seed.
"""

from __future__ import annotations

from typing import Callable

from repro.nn.module import Module
from repro.utils.rng import default_rng

__all__ = ["register_model", "build_model", "available_models"]

_REGISTRY: dict[str, Callable[..., Module]] = {}


def register_model(name: str) -> Callable[[Callable[..., Module]], Callable[..., Module]]:
    """Class/function decorator adding a builder under ``name``."""

    def decorator(builder: Callable[..., Module]) -> Callable[..., Module]:
        key = name.lower()
        if key in _REGISTRY:
            raise KeyError(f"model {name!r} is already registered")
        _REGISTRY[key] = builder
        return builder

    return decorator


def available_models() -> list[str]:
    """Sorted list of registered model names."""
    return sorted(_REGISTRY)


def build_model(name: str, seed: int = 0, **kwargs) -> Module:
    """Instantiate a registered model deterministically.

    Parameters
    ----------
    name:
        Registered model name (case-insensitive), e.g. ``"cnn"``,
        ``"resnet20"``, ``"vgg_mini"``, ``"charlstm"``.
    seed:
        Root seed for weight initialisation.
    kwargs:
        Forwarded to the model constructor (``num_classes``,
        ``input_shape``, ...).
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return _REGISTRY[key](rng=default_rng(seed), **kwargs)
