"""The FedAvg CNN.

The paper's CNN baseline "was obtained from FedAvg, consisting of two
convolutional and fully-connected layers" (McMahan et al. 2017): two
5x5 conv + maxpool stages followed by a two-layer classifier head. We
parameterise input size and width so the same architecture runs on
CIFAR-shaped 32x32 inputs or the scaled synthetic images used by the
benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.registry import register_model
from repro.tensor.tensor import Tensor
from repro.utils.rng import default_rng

__all__ = ["FedAvgCNN"]


class FedAvgCNN(nn.Module):
    """Two conv + two fully-connected layers (McMahan et al. 2017).

    Parameters
    ----------
    input_shape:
        ``(C, H, W)`` of the input images. H and W must be divisible by
        4 (two 2x2 max-pools).
    num_classes:
        Output dimensionality.
    width:
        Channel multiplier; the canonical model uses ``width=32``
        (32/64 conv channels, 512 hidden units).
    """

    def __init__(
        self,
        input_shape: tuple[int, int, int] = (3, 32, 32),
        num_classes: int = 10,
        width: int = 32,
        hidden: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else default_rng()
        c, h, w = input_shape
        if h % 4 or w % 4:
            raise ValueError(f"FedAvgCNN needs H, W divisible by 4, got {input_shape}")
        hidden = hidden if hidden is not None else max(16 * width, 64)
        self.input_shape = input_shape
        self.num_classes = num_classes
        self.conv1 = nn.Conv2d(c, width, kernel_size=5, padding=2, rng=rng)
        self.conv2 = nn.Conv2d(width, 2 * width, kernel_size=5, padding=2, rng=rng)
        self.pool = nn.MaxPool2d(2)
        flat = 2 * width * (h // 4) * (w // 4)
        self.fc1 = nn.Linear(flat, hidden, rng=rng)
        self.fc2 = nn.Linear(hidden, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.pool(self.conv1(x).relu())
        x = self.pool(self.conv2(x).relu())
        x = x.flatten(start_dim=1)
        x = self.fc1(x).relu()
        return self.fc2(x)


@register_model("cnn")
def _build_cnn(rng: np.random.Generator, **kwargs) -> FedAvgCNN:
    return FedAvgCNN(rng=rng, **kwargs)


@register_model("cnn_s")
def _build_cnn_small(rng: np.random.Generator, **kwargs) -> FedAvgCNN:
    """CPU-scaled preset: 8/16 channels on 8x8 inputs."""
    kwargs.setdefault("input_shape", (3, 8, 8))
    kwargs.setdefault("width", 8)
    kwargs.setdefault("hidden", 32)
    return FedAvgCNN(rng=rng, **kwargs)
