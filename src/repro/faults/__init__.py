"""Fault-tolerant round runtime.

FedCross's round protocol assumes every one of the K legs returns every
round; at population scale, dropouts, stragglers and host deaths are
the common case.  This package is the resilience layer that lets a
round complete *correctly* when legs fail:

:mod:`repro.faults.model`
    The seeded client-fault model: a :class:`~repro.faults.model
    .FaultScenario` (availability churn, dropout probability, device
    speed multipliers) drives a :class:`~repro.faults.model
    .ClientPopulation` whose per-round decisions are deterministic
    under ``FLConfig.seed`` — and, crucially, decided *server-side
    before any leg is dispatched*, so the same faults hit the same
    clients on every execution backend.
:mod:`repro.faults.policy`
    The structured failure surface: :class:`~repro.faults.policy
    .LegFailure` records what happened to a leg that did not land, and
    :class:`~repro.faults.policy.RoundPolicy` carries the config knobs
    (``quorum``, ``failure_policy``, ``leg_timeout``, ``leg_retries``,
    ``leg_backoff``) the engine enforces.
:mod:`repro.faults.engine`
    :func:`~repro.faults.engine.resilient_collect` — the fault-aware
    twin of the server's streaming collect: pre-drops simulated
    faults, retries infra errors with exponential backoff, recovers
    dead shard hosts mid-round, and degrades gracefully (``carry`` /
    ``redispatch``) behind the quorum fraction.
:mod:`repro.faults.inject`
    The chaos harness (not imported here — test/bench only):
    kill-host-at-round-N, kill-own-host mid-leg, delay-leg and
    drop-upload injectors plus the flaky-socket shim for
    :class:`~repro.distributed.rpc.RPCChannel`.

With no fault scenario and the default ``fail`` policy the engine is
never engaged and the collect path is byte-for-byte the reference
implementation — the zero-fault legs of the chaos matrix assert this.
"""

from repro.faults.model import ClientPopulation, FaultScenario, LegFault
from repro.faults.policy import FaultError, LegFailure, QuorumError, RoundPolicy

__all__ = [
    "ClientPopulation",
    "FaultScenario",
    "LegFault",
    "FaultError",
    "QuorumError",
    "LegFailure",
    "RoundPolicy",
]
