"""Seeded client-fault model: who is up, who drops, who is slow.

A :class:`FaultScenario` declares a population's failure statistics; a
:class:`ClientPopulation` turns them into concrete per-round decisions.
Two properties make the model usable as a correctness fixture rather
than just noise:

**Deterministic under the run seed.**  Every decision is drawn from a
counter-keyed generator — ``default_rng([salt, seed, round_idx])`` for
the round's availability mask, ``default_rng([salt, seed, round_idx,
client_id])`` for a client's per-leg draws — so the fault pattern is a
pure function of ``(scenario, seed, round, client)``.  No generator
state is shared with the server's sampling RNG, and the per-leg draw
order is fixed (dropout first, then speed), so adding a knob later
cannot silently reshuffle existing scenarios.

**Backend-independent by construction.**  Simulated faults are decided
server-side *before* a leg is submitted to any execution backend: an
unavailable/dropped/straggling client's leg is never dispatched at all
(zero communication charged, on every backend), so the serial
reference and the distributed fleet see byte-identical fault patterns
and byte-identical surviving cohorts.

The cohort sampler keeps one important identity: when the scenario
leaves every client available (availability = 1.0), selection reduces
to the server's exact reference draw ``rng.choice(n, k,
replace=False)`` — a fault model with benign knobs does not move the
sampling stream.  Under churn, available clients are preferred and the
cohort is padded with unavailable ones when fewer than K are up —
fixed-cohort methods (FedCross needs exactly K legs for its K
middleware models) still dispatch, and the padded legs pre-fail as
``kind="unavailable"`` for the policy layer to carry or count.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.faults.policy import LegFailure
from repro.robust.attacks import ATTACK_KINDS, DEFAULT_ATTACK_SCALES, AttackSpec

__all__ = ["FaultScenario", "LegFault", "ClientPopulation"]

# Salts keying the fault streams away from every other seeded stream in
# the codebase (server RNG, client RNGs, data partitioning).  The
# Byzantine streams get their own salts so a crash-fault scenario's
# draws are untouched by adversarial knobs and vice versa.
_AVAILABILITY_SALT = 0x5EEDFA17
_LEG_SALT = 0x5EEDFA18
_BYZANTINE_SALT = 0x5EEDFA19
_ATTACK_SALT = 0x5EEDFA1A

_SCENARIO_KEYS = (
    "availability",
    "dropout",
    "slow_prob",
    "slow_factor",
    "straggler_timeout",
    "byzantine_frac",
    "attack",
    "attack_scale",
)


@dataclass(frozen=True)
class FaultScenario:
    """Declarative failure statistics of a client population.

    Attributes
    ----------
    availability:
        Probability a client is reachable at all this round (drawn per
        round per client).  An unavailable client can still be drafted
        to pad a fixed-size cohort; its leg pre-fails.
    dropout:
        Probability an available client accepts the leg but never
        uploads (mid-round churn).
    slow_prob / slow_factor:
        With probability ``slow_prob`` a leg runs ``slow_factor``×
        slower than the device baseline (heterogeneous hardware).
    straggler_timeout:
        Speed-multiplier cutoff: a leg whose drawn multiplier exceeds
        it is declared a straggler and pre-dropped — the deterministic,
        backend-independent analogue of a wall-clock deadline (the
        wall-clock knob is ``FLConfig.leg_timeout``).  ``None``
        disables the cutoff.
    byzantine_frac:
        Fraction of the population that is *adversarial*: membership is
        a single static draw per run (``default_rng([salt, seed])``), so
        the same clients attack every round regardless of backend,
        retries or redispatch.
    attack / attack_scale:
        Which upload attack Byzantine clients mount (one of
        :data:`repro.robust.attacks.ATTACK_KINDS`) and its magnitude;
        ``attack_scale=None`` uses the per-kind default.
    """

    availability: float = 1.0
    dropout: float = 0.0
    slow_prob: float = 0.0
    slow_factor: float = 1.0
    straggler_timeout: float | None = None
    byzantine_frac: float = 0.0
    attack: str = "sign_flip"
    attack_scale: float | None = None

    def __post_init__(self) -> None:
        for name in ("availability", "dropout", "slow_prob", "byzantine_frac"):
            value = getattr(self, name)
            if not 0.0 <= float(value) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.slow_factor < 1.0:
            raise ValueError(
                f"slow_factor must be >= 1 (a speed multiplier), got {self.slow_factor}"
            )
        if self.straggler_timeout is not None and self.straggler_timeout <= 0:
            raise ValueError("straggler_timeout must be None or positive")
        if self.attack not in ATTACK_KINDS:
            raise ValueError(
                f"unknown attack kind {self.attack!r}; valid kinds: "
                f"{list(ATTACK_KINDS)}"
            )
        if self.attack_scale is not None and not self.attack_scale > 0:
            raise ValueError("attack_scale must be None or positive")

    @classmethod
    def from_spec(cls, spec: "FaultScenario | Mapping | str") -> "FaultScenario":
        """Build from a scenario, a mapping, a JSON string or a file path.

        This is the single entry point config/CLI plumbing goes
        through: ``FLConfig.faults`` may hold a dict, inline JSON or a
        path to a committed scenario file (``tests/faults/scenarios``).
        Unknown keys are rejected loudly — a typoed knob must not
        silently run the fault-free scenario.
        """
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            if os.path.exists(spec):
                with open(spec, encoding="utf-8") as fh:
                    spec = json.load(fh)
            else:
                try:
                    spec = json.loads(spec)
                except json.JSONDecodeError:
                    raise ValueError(
                        f"faults spec {spec!r} is neither an existing scenario "
                        "file nor inline JSON"
                    ) from None
        if not isinstance(spec, Mapping):
            raise TypeError(
                f"fault scenario must be a mapping, got {type(spec).__name__}"
            )
        unknown = sorted(set(spec) - set(_SCENARIO_KEYS))
        if unknown:
            raise ValueError(
                f"unknown fault-scenario keys {unknown}; valid keys: "
                f"{list(_SCENARIO_KEYS)}"
            )
        return cls(**dict(spec))

    def to_dict(self) -> dict:
        return {key: getattr(self, key) for key in _SCENARIO_KEYS}

    @property
    def resolved_attack_scale(self) -> float:
        """``attack_scale`` with the per-kind default filled in."""
        if self.attack_scale is not None:
            return float(self.attack_scale)
        return float(DEFAULT_ATTACK_SCALES[self.attack])

    @property
    def benign(self) -> bool:
        """True when no knob can ever fail, slow or poison a leg.

        Straggling is judged against the *top drawable speed*: with
        ``slow_prob > 0`` that is ``slow_factor``, otherwise the 1.0
        baseline — which :meth:`ClientPopulation.leg_fault` still
        compares (strictly) against ``straggler_timeout``, so a
        scenario with ``slow_prob=0`` but ``straggler_timeout < 1.0``
        straggles every leg and must not report benign.  The boundary
        ``slow_factor == straggler_timeout`` is slowed-but-not-
        straggling (``leg_fault`` uses strict ``>``), matching the
        inclusive comparison here.
        """
        can_slow = self.slow_prob > 0.0 and self.slow_factor > 1.0
        top_speed = self.slow_factor if self.slow_prob > 0.0 else 1.0
        can_straggle = (
            self.straggler_timeout is not None
            and top_speed > self.straggler_timeout
        )
        return (
            self.availability >= 1.0
            and self.dropout <= 0.0
            and self.byzantine_frac <= 0.0
            and not can_slow
            and not can_straggle
        )


@dataclass(frozen=True)
class LegFault:
    """One leg's simulated-fault decision.

    ``kind`` is ``None`` (healthy), ``"unavailable"``, ``"dropout"``
    or ``"straggler"``; ``speed`` is the drawn device-speed multiplier
    (1.0 = baseline), kept even for failed legs so schedulers and
    benches can model the latency a straggler *would* have cost.
    """

    kind: str | None
    speed: float = 1.0


class ClientPopulation:
    """Per-round fault decisions for a population of ``num_clients``.

    The population wraps the server's cohort sampling and pre-decides
    every leg's simulated fate; the engine consumes those decisions
    before submitting anything to the execution backend.
    """

    def __init__(
        self,
        scenario: "FaultScenario | Mapping | str",
        seed: int,
        num_clients: int,
    ) -> None:
        self.scenario = FaultScenario.from_spec(scenario)
        self.seed = int(seed)
        self.num_clients = int(num_clients)
        if self.num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        self._avail_cache: tuple[int, np.ndarray] | None = None
        self._byzantine_cache: np.ndarray | None = None

    # -- per-round decisions -----------------------------------------------
    def availability_mask(self, round_idx: int) -> np.ndarray:
        """Boolean reachability mask over the population this round."""
        cached = self._avail_cache
        if cached is not None and cached[0] == round_idx:
            return cached[1]
        rng = np.random.default_rng(
            [_AVAILABILITY_SALT, self.seed, int(round_idx)]
        )
        # random() < 1.0 is identically True (draws live in [0, 1)), so
        # availability=1.0 scenarios never mark anyone down.
        mask = rng.random(self.num_clients) < self.scenario.availability
        self._avail_cache = (int(round_idx), mask)
        return mask

    def leg_fault(self, round_idx: int, client_id: int) -> LegFault:
        """This client's simulated fate for its leg of ``round_idx``.

        Draw order is part of the contract: dropout first, then the
        speed multiplier — always both, even when the first already
        failed the leg, so the straggler stream of a scenario is
        unchanged by its dropout knob.  Kind precedence: unavailable >
        dropout > straggler.
        """
        scenario = self.scenario
        if not self.availability_mask(round_idx)[int(client_id)]:
            return LegFault(kind="unavailable")
        rng = np.random.default_rng(
            [_LEG_SALT, self.seed, int(round_idx), int(client_id)]
        )
        dropped = rng.random() < scenario.dropout
        slow = rng.random() < scenario.slow_prob
        speed = float(scenario.slow_factor) if slow else 1.0
        if dropped:
            return LegFault(kind="dropout", speed=speed)
        if (
            scenario.straggler_timeout is not None
            and speed > scenario.straggler_timeout
        ):
            return LegFault(kind="straggler", speed=speed)
        return LegFault(kind=None, speed=speed)

    def leg_faults(
        self, round_idx: int, client_ids: Sequence[int]
    ) -> list[LegFault]:
        return [self.leg_fault(round_idx, cid) for cid in client_ids]

    # -- adversarial decisions ----------------------------------------------
    def byzantine_mask(self) -> np.ndarray:
        """Static boolean mask of adversarial clients (one draw per run).

        Membership is round-independent by design: a Byzantine client
        attacks every leg it lands, which is both the standard threat
        model and what makes the attacked/clean accuracy comparison in
        the robustness gates stable.
        """
        if self._byzantine_cache is None:
            rng = np.random.default_rng([_BYZANTINE_SALT, self.seed])
            draws = rng.random(self.num_clients)
            self._byzantine_cache = draws < self.scenario.byzantine_frac
        return self._byzantine_cache

    def attack_for(self, round_idx: int, client_id: int) -> AttackSpec | None:
        """This client's attack for its leg of ``round_idx`` (or None).

        A pure function of ``(scenario, seed, round, client)``: a
        retried leg or a redispatched stand-in re-derives exactly the
        same decision from the seeded stream rather than inheriting
        state from the failed attempt.  The per-leg ``seed_key`` feeds
        attack-internal randomness (``gauss_noise``) so even noise is
        bit-identical across backends.
        """
        if self.scenario.byzantine_frac <= 0.0:
            return None
        if not self.byzantine_mask()[int(client_id)]:
            return None
        return AttackSpec(
            kind=self.scenario.attack,
            scale=self.scenario.resolved_attack_scale,
            seed_key=(_ATTACK_SALT, self.seed, int(round_idx), int(client_id)),
        )

    def failure_for(
        self, fault: LegFault, index: int, client_id: int, row: int
    ) -> LegFailure:
        """Structured :class:`LegFailure` for a pre-decided fault."""
        if fault.kind == "unavailable":
            message = "client unreachable this round (availability churn)"
        elif fault.kind == "dropout":
            message = "client accepted the leg but never uploaded"
        elif fault.kind == "straggler":
            message = (
                f"simulated speed {fault.speed:g}x exceeds the scenario's "
                f"straggler cutoff {self.scenario.straggler_timeout:g}x"
            )
        else:
            message = str(fault.kind)
        return LegFailure(
            index=int(index),
            client_id=int(client_id),
            row=int(row),
            kind=str(fault.kind),
            message=message,
            attempts=0,
        )

    # -- cohort sampling ----------------------------------------------------
    def select_cohort(self, clients, k: int, round_idx: int, rng) -> list:
        """Availability-aware cohort draw.

        All-available rounds reduce to the server's exact reference
        draw (same generator, same single call), so a benign scenario
        is bit-identical to no scenario.  Under churn, K clients are
        drawn from the available pool first; when fewer than K are up,
        the cohort is padded with unavailable clients so fixed-cohort
        methods still dispatch — the padded legs pre-fail as
        ``kind="unavailable"`` and never run.
        """
        n = len(clients)
        if n != self.num_clients:
            raise ValueError(
                f"population was sized for {self.num_clients} clients, "
                f"got a roster of {n}"
            )
        available = np.flatnonzero(self.availability_mask(round_idx))
        if available.size == n:
            idx = rng.choice(n, size=k, replace=False)
            return [clients[i] for i in idx]
        chosen: list = []
        if available.size:
            take = min(k, int(available.size))
            picks = rng.choice(available.size, size=take, replace=False)
            chosen = [clients[int(available[i])] for i in picks]
        if len(chosen) < k:
            down = np.setdiff1d(np.arange(n), available, assume_unique=True)
            pad = rng.choice(down.size, size=k - len(chosen), replace=False)
            chosen.extend(clients[int(down[i])] for i in pad)
        return chosen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClientPopulation(seed={self.seed}, n={self.num_clients}, "
            f"scenario={self.scenario.to_dict()})"
        )
