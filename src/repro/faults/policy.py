"""Failure structures and the round policy the engine enforces.

This module is deliberately dependency-light (stdlib + dataclasses
only): :mod:`repro.fl.execution` imports :class:`LegFailure` so its
captured streams can yield structured failures, and the config layer
builds a :class:`RoundPolicy` — neither may drag the whole faults
package (numpy, engine) into every import of the execution module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

__all__ = [
    "FaultError",
    "QuorumError",
    "LegFailure",
    "RoundPolicy",
    "FAILURE_POLICIES",
]

#: ``fail``: any leg failure aborts the round — today's behavior and the
#: bit-identical reference.  ``carry``: failed legs keep their stale
#: middleware row (CrossAggr/GramTracker stay consistent).
#: ``redispatch``: like carry, but infra failures get one extra reissue
#: to a healthy worker/host before being carried.
FAILURE_POLICIES = ("fail", "carry", "redispatch")

#: Leg-failure kinds, in the order of the fault pipeline: the three
#: simulated kinds are decided before dispatch; ``timeout`` and
#: ``error`` are observed at the execution backend.
FAILURE_KINDS = ("unavailable", "dropout", "straggler", "timeout", "error")


class FaultError(RuntimeError):
    """A round could not complete under the configured failure policy."""


class QuorumError(FaultError):
    """Fewer legs survived than ``FLConfig.quorum`` requires."""


@dataclass
class LegFailure:
    """One leg that did not deliver a fresh upload.

    ``kind`` names *why* (see :data:`FAILURE_KINDS`); ``attempts``
    counts the training attempts actually spent on the leg (0 for
    simulated faults — those are never dispatched); ``drained`` flags a
    wall-clock timeout whose in-flight work was awaited and discarded
    before control returned (the no-zombie-writes guarantee).
    """

    index: int
    client_id: int
    row: int
    kind: str
    message: str = ""
    attempts: int = 0
    drained: bool = False

    @property
    def simulated(self) -> bool:
        """Decided by the fault model before dispatch (never ran)."""
        return self.kind in ("unavailable", "dropout", "straggler")

    @property
    def retryable(self) -> bool:
        """Infrastructure failures may be retried; simulated ones are
        facts about the scenario and must not be."""
        return self.kind in ("timeout", "error")

    def replace(self, **changes) -> "LegFailure":
        return replace(self, **changes)

    def summary(self) -> dict:
        """Round-record extras entry (JSON-friendly scalars only)."""
        return {
            "client": int(self.client_id),
            "row": int(self.row),
            "kind": self.kind,
            "attempts": int(self.attempts),
        }


@dataclass(frozen=True)
class RoundPolicy:
    """The resilience knobs of one run, lifted off the config.

    ``engaged`` is the master switch: when nothing can fail
    (no scenario, ``fail`` policy, no retries, no timeout) the server
    bypasses the engine entirely and collect is byte-for-byte the
    reference path.
    """

    quorum: float = 1.0
    failure_policy: str = "fail"
    leg_timeout: float | None = None
    leg_retries: int = 0
    leg_backoff: float = 0.05
    has_fault_model: bool = False
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.quorum <= 1.0:
            raise ValueError(f"quorum must be in (0, 1], got {self.quorum}")
        if self.failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {self.failure_policy!r}"
            )
        if self.leg_timeout is not None and self.leg_timeout <= 0:
            raise ValueError("leg_timeout must be None or positive seconds")
        if self.leg_retries < 0:
            raise ValueError("leg_retries must be >= 0")
        if self.leg_backoff < 0:
            raise ValueError("leg_backoff must be >= 0 seconds")

    @classmethod
    def from_config(cls, config: Any) -> "RoundPolicy":
        return cls(
            quorum=float(getattr(config, "quorum", 1.0)),
            failure_policy=str(getattr(config, "failure_policy", "fail")),
            leg_timeout=getattr(config, "leg_timeout", None),
            leg_retries=int(getattr(config, "leg_retries", 0)),
            leg_backoff=float(getattr(config, "leg_backoff", 0.05)),
            has_fault_model=bool(getattr(config, "faults", None)),
        )

    @property
    def engaged(self) -> bool:
        return (
            self.has_fault_model
            or self.failure_policy != "fail"
            or self.leg_retries > 0
            or self.leg_timeout is not None
        )

    def required_legs(self, cohort_size: int) -> int:
        """Fresh uploads needed for the round to count (quorum·K, up)."""
        # The epsilon keeps exact fractions exact: quorum=0.5 of 4 legs
        # must require 2, not ceil(2.0000000001).
        return min(
            int(cohort_size), math.ceil(self.quorum * cohort_size - 1e-9)
        )

    def backoff_delay(self, attempt: int) -> float:
        """Exponential backoff before retry ``attempt`` (1-based)."""
        return self.leg_backoff * (2.0 ** max(0, attempt - 1))
