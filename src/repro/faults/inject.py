"""Chaos-injection harness for the fault-tolerance test matrix.

Everything here *causes* failures; nothing here handles them — the
handling lives in :mod:`repro.faults.engine`, the cluster failover and
the RPC retry contract, which these injectors exist to exercise.  The
module is test/bench-facing and deliberately not imported by
``repro.faults.__init__``: production runs never pull it in.

Injectors
---------
:class:`KillHostAtRound`
    Server callback that SIGKILLs one shard-host process at a round
    boundary.  The next storage access recovers the host (replicated
    buffers) before any leg dispatches, so a seeded run stays bitwise
    identical to the serial reference — the strongest chaos-matrix
    assertion.
:class:`KillOwnHostOnce`
    A :class:`~repro.fl.hooks.HookSpec` that kills the *host process it
    is running on*, mid-leg, exactly once (guarded by a sentinel file
    shared across processes).  Exercises the in-flight path: leg
    failure → fleet recovery → retrain.
:class:`DelaySpec`
    Sleeps inside the training loop — a wall-clock straggler for
    ``leg_timeout`` and drain tests.
:class:`UploadDropper`
    Execution-backend wrapper converting chosen clients' successful
    legs into ``error`` failures a bounded number of times — dropped
    uploads with retry-budget semantics, on any backend.
:func:`flaky_transport`
    Context manager wrapping an :class:`~repro.distributed.rpc
    .RPCChannel`'s sockets in :class:`FlakySocket`, which injects
    transport errors on the request or mid-reply — the
    reconnect-and-resend tests' probe.
"""

from __future__ import annotations

import contextlib
import os
import signal
import socket as _socket
import time
from dataclasses import dataclass, field

from repro.faults.policy import LegFailure
from repro.fl.callbacks import ServerCallback
from repro.fl.hooks import HookSpec

__all__ = [
    "KillHostAtRound",
    "KillOwnHostOnce",
    "DelaySpec",
    "UploadDropper",
    "FlakySocket",
    "flaky_transport",
]


def _server_cluster(server):
    """The :class:`HostCluster` behind a server's pool storage."""
    for attr in ("pool", "uploads"):
        holder = getattr(server, attr, None)
        storage = getattr(holder, "storage", None)
        cluster = getattr(storage, "cluster", None)
        if cluster is not None:
            return cluster
    raise RuntimeError(
        "server has no distributed pool storage to find a cluster on"
    )


class KillHostAtRound(ServerCallback):
    """SIGKILL shard host ``host`` when round ``at_round`` starts."""

    def __init__(self, host: int, at_round: int) -> None:
        self.host = int(host)
        self.at_round = int(at_round)
        self.killed = False

    def on_round_start(self, server, round_idx: int) -> None:
        if self.killed or round_idx != self.at_round:
            return
        self.killed = True
        handle = _server_cluster(server).handles[self.host]
        handle.process.kill()
        handle.process.join(timeout=5.0)


@dataclass
class KillOwnHostOnce(HookSpec):
    """Kill the shard-host process running this leg, once, mid-training.

    The sentinel file is the cross-process "already fired" latch:
    whichever host trains a leg carrying this spec first claims it
    (``O_CREAT | O_EXCL`` is atomic) and SIGKILLs itself from inside
    the training loop — after some batches have run, so the replica
    mirror is genuinely behind the dying shard.  Only meaningful on
    the ``distributed`` execution backend.
    """

    sentinel: str = ""

    def build(self, state):
        sentinel = self.sentinel

        def hook(model, logits, targets):
            try:
                fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return None
            os.close(fd)
            os.kill(os.getpid(), signal.SIGKILL)
            return None  # pragma: no cover - unreachable

        return hook


@dataclass
class DelaySpec(HookSpec):
    """Sleep ``seconds`` on every batch — a wall-clock straggler."""

    seconds: float = 0.0
    once: bool = True
    _slept: dict = field(default_factory=dict)

    def build(self, state):
        seconds, once, slept = self.seconds, self.once, self._slept

        def hook(model, logits, targets):
            if not once or not slept:
                slept["done"] = True
                time.sleep(seconds)
            return None

        return hook


class UploadDropper:
    """Execution-backend wrapper dropping chosen clients' uploads.

    Wrap a server's live backend (``server.executor._backend``) and the
    first ``times`` successful legs of each client in ``client_ids``
    come back as ``kind="error"`` :class:`LegFailure` instead — as if
    the upload was lost after training.  Keyed by client id, not plan
    index, so the drop budget survives the engine's re-submissions
    (where indices shift).  Delegates everything else to the wrapped
    backend.
    """

    def __init__(self, backend, client_ids, times: int = 1) -> None:
        self._backend = backend
        self._budget = {int(c): int(times) for c in client_ids}
        self.dropped = 0

    def __getattr__(self, name):
        return getattr(self._backend, name)

    def run_streaming_captured(
        self, trainer, active, plans, rows, uploads, timeout=None, attacks=None
    ):
        for i, out in self._backend.run_streaming_captured(
            trainer, active, plans, rows, uploads, timeout=timeout, attacks=attacks
        ):
            cid = int(active[i].client_id)
            if not isinstance(out, LegFailure) and self._budget.get(cid, 0) > 0:
                self._budget[cid] -= 1
                self.dropped += 1
                out = LegFailure(
                    index=i,
                    client_id=cid,
                    row=int(rows[i]),
                    kind="error",
                    message="injected upload drop",
                )
            yield i, out


class FlakySocket:
    """Socket proxy injecting transport errors on request or reply.

    ``mode="request"`` fails the next ``sendall`` (the op never reaches
    the host); ``mode="reply"`` lets the request through and fails the
    first ``recv_into`` of the reply (the host *did* execute the op) —
    the two halves of the idempotent-retry contract.  ``state`` is a
    shared ``{"remaining": n}`` budget so reconnected sockets keep
    counting down.
    """

    def __init__(self, sock, mode: str, state: dict) -> None:
        self._sock = sock
        self._mode = mode
        self._state = state

    def _fire(self) -> bool:
        if self._state.get("remaining", 0) > 0:
            self._state["remaining"] -= 1
            return True
        return False

    def sendall(self, data) -> None:
        if self._mode == "request" and self._fire():
            raise ConnectionResetError("injected request-side transport error")
        self._sock.sendall(data)

    def recv_into(self, buffer, nbytes=0):
        if self._mode == "reply" and self._fire():
            # Sever the real connection too: the framing layer must not
            # be able to resynchronise mid-reply on this socket.
            try:
                self._sock.shutdown(_socket.SHUT_RDWR)
            except OSError:
                pass
            raise ConnectionResetError("injected reply-side transport error")
        return self._sock.recv_into(buffer, nbytes)

    def settimeout(self, value) -> None:
        self._sock.settimeout(value)

    def setsockopt(self, *args) -> None:
        self._sock.setsockopt(*args)

    def close(self) -> None:
        self._sock.close()

    def __getattr__(self, name):
        return getattr(self._sock, name)


@contextlib.contextmanager
def flaky_transport(channel, mode: str = "request", failures: int = 1):
    """Wrap ``channel``'s connections in :class:`FlakySocket`.

    Forces a reconnect so the very next call goes through a flaky
    socket; every socket the channel creates while the context is
    active shares one failure budget.  Restores the channel's pristine
    ``_connect`` on exit (the flaky socket itself is dropped by the
    channel's normal reconnect machinery).
    """
    state = {"remaining": int(failures)}
    original_connect = channel._connect

    def connect():
        return FlakySocket(original_connect(), mode, state)

    channel._connect = connect
    channel.close()  # drop any live socket; next call reconnects flaky
    try:
        yield state
    finally:
        channel._connect = original_connect
        channel.close()
