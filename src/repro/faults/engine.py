"""The fault-aware collect loop: retry, recover, degrade, account.

:func:`resilient_collect` is the engine the server swaps in for its
streaming collect whenever the round policy is *engaged* (a fault
scenario, a non-``fail`` failure policy, retries or a wall-clock
timeout).  It drives the execution backend through its captured stream
(:meth:`~repro.fl.execution.ClientExecutor.run_streaming_captured`) and
enforces the policy:

1. **Pre-drop simulated faults.**  The seeded fault model decided every
   leg's fate before dispatch; unavailable / dropped / straggling legs
   are never submitted (zero communication, on every backend).
2. **Retry infrastructure failures.**  Legs that error or time out are
   resubmitted up to ``leg_retries`` times with exponential backoff —
   each retry first restores the client's RNG snapshot so a successful
   retry is bit-identical to a leg that never failed.
3. **Recover dead shard hosts.**  When the upload buffer lives on
   replicated distributed storage, a host death surfaces as a burst of
   leg errors; the engine respawns the host (``ensure_fleet``), replays
   its rows from the coordinator mirror, and retrains the legs whose
   *completed* uploads died with the host — outside the retry budget,
   because those legs did nothing wrong.
4. **Degrade gracefully.**  Exhausted legs are carried (``carry``: the
   stale dispatched row is kept so CrossAggr / GramTracker stay
   consistent) or reissued once more (``redispatch``), and the round
   counts as long as the fresh-upload quorum holds; below quorum the
   round aborts with :class:`~repro.faults.policy.QuorumError`.

Communication is accounted in *leg counts* (``downs`` per submission,
``ups`` per landing) and handed to the server, whose analytic charge
multiplies by model size — matching what the distributed backend's
measured ledger records per socket transfer.  With zero faults the
engine submits every leg exactly once and lands every leg exactly once,
so the accounting (and every byte of training) is identical to the
reference collect.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.faults.policy import FaultError, LegFailure, QuorumError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fl.trainer import LocalResult

__all__ = ["resilient_collect"]


def _restore_rng(client, snapshot) -> None:
    client.rng.bit_generator.state = snapshot


def _describe(failures: "dict[int, LegFailure]") -> str:
    parts = [
        f"client {f.client_id} (row {f.row}): {f.kind}"
        + (f" after {f.attempts} attempt(s)" if f.attempts else "")
        for _, f in sorted(failures.items())
    ]
    return "; ".join(parts)


def resilient_collect(server, active, plans, rows, uploads, *, sleep=None):
    """Fault-aware twin of ``FLServer.collect`` (streaming semantics).

    Returns results in plan order — every index filled, with carried
    legs holding their stale dispatched state at ``num_samples=0`` so
    loss averaging and sample weighting ignore them naturally.  Raises
    :class:`FaultError` under the ``fail`` policy and
    :class:`QuorumError` when fewer fresh uploads landed than
    ``quorum`` requires.

    All engine and backend clocks are monotonic: the per-leg wall-clock
    timeout rides ``time.monotonic()`` inside the captured stream and
    the backoff delay below never consults wall time, so an NTP step
    mid-round can neither spuriously expire nor immortalise a leg.
    ``sleep`` is injectable — explicitly, or via ``server.fault_sleep``
    — so scheduler tests and the chaos soak never wait for real.
    """
    from repro.fl.trainer import LocalResult  # lazy: avoids import cycle

    policy = server.fault_policy
    population = server.fault_model
    if sleep is None:
        sleep = getattr(server, "fault_sleep", None) or time.sleep
    if len(active) != len(plans):
        # A cohort/plan skew would silently drop legs (and skew quorum
        # accounting) if truncated to the shorter list — fail loudly.
        raise ValueError(
            f"resilient_collect got {len(active)} active clients but "
            f"{len(plans)} dispatch plans; cohort and plans must align"
        )
    n = len(active)
    results: "list[LocalResult | None]" = [None] * n
    failures: dict[int, LegFailure] = {}
    # RNG snapshots taken before anything runs: a retried / carried leg
    # must look exactly like a leg that trained once / never trained.
    snapshots = [active[i].rng.bit_generator.state for i in range(n)]
    tries = [0] * n

    # -- 1. pre-decided simulated faults (never dispatched) ---------------
    if population is not None:
        faults = population.leg_faults(
            server.round_idx, [active[i].client_id for i in range(n)]
        )
        for i, fault in enumerate(faults):
            if fault.kind is not None:
                failures[i] = population.failure_for(
                    fault, i, active[i].client_id, int(rows[i])
                )
        if failures and policy.failure_policy == "fail":
            raise FaultError(
                f"round {server.round_idx} aborted under failure_policy="
                f"'fail': {_describe(failures)}"
            )

    # -- Byzantine decisions (seeded, per client-round) --------------------
    # Pure functions of (scenario, seed, round, client): a retried leg
    # or a redispatched stand-in re-derives the same attack from the
    # stream instead of inheriting the failed attempt's.  Carried legs
    # keep the dispatched state and are never attacked.
    attacks = {}
    if population is not None:
        for i in range(n):
            spec = population.attack_for(server.round_idx, active[i].client_id)
            if spec is not None:
                attacks[i] = spec

    pending = [i for i in range(n) if i not in failures]
    storage = getattr(uploads, "storage", None)
    can_recover = (
        policy.failure_policy != "fail"
        and callable(getattr(storage, "ensure_fleet", None))
    )
    downs = 0
    ups = 0
    attempt = 0
    reissued = False
    # Spin guard: every spin either lands legs or burns retry budget /
    # the one redispatch / a host recovery, all of which are bounded.
    hosts = len(getattr(storage, "host_spans", lambda: ())()) if storage else 0
    max_spins = policy.leg_retries + (hosts if can_recover else 0) + 3
    spins = 0

    while pending and spins < max_spins:
        spins += 1
        sub = pending
        pending = []
        sub_active = [active[i] for i in sub]
        sub_plans = [plans[i] for i in sub]
        sub_rows = [rows[i] for i in sub]
        for i in sub:
            tries[i] += 1
        downs += len(sub)
        fresh: list[int] = []
        sub_attacks = {j: attacks[i] for j, i in enumerate(sub) if i in attacks}
        for j, out in server.executor.run_streaming_captured(
            server.trainer, sub_active, sub_plans, sub_rows, uploads,
            timeout=policy.leg_timeout, attacks=sub_attacks or None,
        ):
            i = sub[j]
            if isinstance(out, LegFailure):
                failures[i] = out.replace(
                    index=i,
                    client_id=active[i].client_id,
                    row=int(rows[i]),
                    attempts=tries[i],
                )
                server.ledger.note_leg_failure()
                fresh.append(i)
            else:
                results[i] = out
                ups += 1
                failures.pop(i, None)
                server.on_upload(rows[i], out)

        # -- 3. shard-host failover ------------------------------------
        if can_recover and fresh:
            recovered = storage.ensure_fleet()
            if recovered:
                # Rows written by legs that already *completed* on the
                # dead host are gone; their mirror copy predates the
                # upload.  Retrain them as recovery legs — outside the
                # retry budget, these legs did not fail.
                lost = set(storage.lost_rows())
                for i in range(n):
                    if results[i] is not None and int(rows[i]) in lost:
                        results[i] = None
                        ups -= 1
                        _restore_rng(active[i], snapshots[i])
                        pending.append(i)

        # -- 2. bounded retry with backoff ------------------------------
        retry = [i for i in fresh if failures[i].retryable]
        if retry:
            if attempt < policy.leg_retries:
                attempt += 1
                delay = policy.backoff_delay(attempt)
                if delay > 0:
                    sleep(delay)
            elif policy.failure_policy == "redispatch" and not reissued:
                reissued = True
            else:
                retry = []
            for i in retry:
                _restore_rng(active[i], snapshots[i])
                failures.pop(i, None)
                pending.append(i)

    # Guard tripped with work left: abandon, don't loop forever.
    for i in pending:
        failures[i] = LegFailure(
            index=i,
            client_id=active[i].client_id,
            row=int(rows[i]),
            kind="error",
            message="leg abandoned after repeated shard-host recovery",
            attempts=tries[i],
        )

    # -- 4. policy finalisation -------------------------------------------
    if failures and policy.failure_policy == "fail":
        raise FaultError(
            f"round {server.round_idx} aborted under failure_policy="
            f"'fail': {_describe(failures)}"
        )
    survivors = n - len(failures)
    required = policy.required_legs(n)
    if survivors < required:
        raise QuorumError(
            f"round {server.round_idx}: {survivors}/{n} fresh uploads, "
            f"quorum {policy.quorum:g} requires {required} — "
            f"{_describe(failures)}"
        )
    # Carry what's left: the stale dispatched row stays in the buffer
    # (CrossAggr / GramTracker keep a consistent K-row view) and the
    # client's RNG rewinds to its pre-round snapshot, as if the leg had
    # never been scheduled.
    for i, failure in sorted(failures.items()):
        uploads.set_state(rows[i], plans[i].state)
        _restore_rng(active[i], snapshots[i])
        results[i] = LocalResult(
            state=plans[i].state, num_samples=0, num_steps=0, mean_loss=0.0
        )
        server.on_upload(rows[i], results[i])

    ordered = [failures[i] for i in sorted(failures)]
    server.last_leg_failures = ordered
    server._round_leg_comm = (downs, ups)
    for failure in ordered:
        for cb in server.callbacks:
            cb.on_leg_failure(server, failure)
    return results
