"""CluSamp (Fraboni et al. 2021) — clustered client sampling.

Clients are grouped by the similarity of their last model update (the
paper selects "model gradient similarity as the criteria for client
grouping rather than the sample size", since sharing data distributions
would leak privacy), and each round one representative is sampled per
cluster. This reduces the variance of the aggregation compared with
uniform sampling while keeping FedAvg's aggregation rule and Low
communication class.

Clients that have never participated yet have no update vector; they
form a common "cold" pool sampled uniformly, so early rounds behave
like FedAvg and clustering sharpens as coverage grows.

Only ``select_cohort`` and ``aggregate`` are custom: local training
rides the default hook-free collect, so CluSamp runs unchanged on
every execution backend (the ``result.state`` views its aggregate
reads for update vectors come from the same upload buffer the
backends pack into).
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.vq import kmeans2

from repro.fl.client import Client
from repro.fl.registry import register_method
from repro.fl.server import DispatchPlan, FederatedServer
from repro.fl.trainer import LocalResult
from repro.utils.params import flatten_state_dict

__all__ = ["CluSampServer"]


@register_method("clusamp")
class CluSampServer(FederatedServer):
    """FedAvg aggregation with cluster-stratified client sampling."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._global = self.model.state_dict()
        self._param_keys = {name for name, _ in self.model.named_parameters()}
        # Last parameter-update direction per client id (flattened).
        self._updates: dict[int, np.ndarray] = {}

    # -- clustering --------------------------------------------------------
    def _cluster_assignments(self, k: int) -> list[list[int]]:
        """Partition client ids into up to ``k`` groups by update similarity."""
        known = sorted(self._updates)
        unknown = [c.client_id for c in self.clients if c.client_id not in self._updates]
        if len(known) < 2 * k:
            # Not enough participation history: single cold pool.
            return [[c.client_id for c in self.clients]]

        vectors = np.stack([self._updates[i] for i in known])
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        vectors = vectors / np.maximum(norms, 1e-12)
        _, labels = kmeans2(vectors.astype(np.float64), k, minit="++", seed=1234)
        groups: list[list[int]] = [[] for _ in range(k)]
        for cid, lab in zip(known, labels):
            groups[int(lab)].append(cid)
        groups = [g for g in groups if g]
        if unknown:
            groups.append(unknown)
        return groups

    def select_cohort(self) -> list[Client]:
        """One representative per cluster, size-weighted within cluster."""
        k = self.config.clients_per_round
        groups = self._cluster_assignments(k)
        by_id = {c.client_id: c for c in self.clients}
        chosen: list[Client] = []
        group_cycle = list(groups)
        self.rng.shuffle(group_cycle)
        gi = 0
        while len(chosen) < k:
            group = group_cycle[gi % len(group_cycle)]
            candidates = [cid for cid in group if by_id[cid] not in chosen]
            gi += 1
            if not candidates:
                continue
            sizes = np.array([by_id[cid].num_samples for cid in candidates], dtype=np.float64)
            pick = self.rng.choice(candidates, p=sizes / sizes.sum())
            chosen.append(by_id[int(pick)])
        return chosen

    # -- round ---------------------------------------------------------------
    def aggregate(
        self,
        active: list[Client],
        results: list[LocalResult],
        plans: list[DispatchPlan],
    ) -> dict:
        before = flatten_state_dict(
            {k: v for k, v in self._global.items() if k in self._param_keys}
        )
        for client, result in zip(active, results):
            after = flatten_state_dict(
                {k: v for k, v in result.state.items() if k in self._param_keys}
            )
            self._updates[client.client_id] = after - before
        self._global = self.aggregate_uploads(results)
        self.charge_round_communication(active)
        return {"train_loss": self.mean_local_loss(results)}

    def global_state(self) -> dict:
        return self._global
