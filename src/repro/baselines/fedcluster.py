"""FedCluster (Chen et al. 2020) — extension baseline.

From the paper's related work (client-grouping category): "FedCluster
groups the clients into multiple clusters that perform federated
learning cyclically in each learning round." Each meta-round the global
model is passed through the clusters in sequence; every cluster runs a
FedAvg step on its members, and the model emerging from the last
cluster becomes the next round's global model. The cyclic schedule
boosts convergence per communication round at the cost of sequential
latency.

Not in the paper's Table II (the authors compare against CluSamp from
the same category); provided as an extension so the grouping category
is represented by both of its canonical members.
"""

from __future__ import annotations

import numpy as np

from repro.fl.client import Client
from repro.fl.registry import register_method
from repro.fl.server import DispatchPlan, FederatedServer

__all__ = ["FedClusterServer"]


@register_method("fedcluster")
class FedClusterServer(FederatedServer):
    """Cyclic cluster-sequential FedAvg."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._global = self.model.state_dict()
        self.num_clusters = int(self.config.method_params.get("num_clusters", 2))
        if self.num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        # Static random clustering of the population (the reference
        # algorithm clusters once; data-driven grouping is CluSamp's
        # refinement).
        ids = np.arange(len(self.clients))
        self.rng.shuffle(ids)
        self._clusters = [list(chunk) for chunk in np.array_split(ids, self.num_clusters)]

    def run_round(self, active: list[Client]) -> dict:
        """One meta-round: visit every cluster once, in cyclic order.

        ``active`` determines how many clients participate per cluster
        visit (K split across clusters).  The *cluster* schedule is
        inherently sequential — each cluster trains from the previous
        cluster's FedAvg result — so this overrides the
        dispatch→collect→aggregate driver wholesale; but members
        *within* a visit are independent, so each visit runs through
        the execution backend (:meth:`~FederatedServer.train_cohort`)
        and its average is a :class:`~repro.core.pool.PoolBuffer` row
        reduction over the packed uploads.
        """
        per_cluster = max(1, len(active) // self.num_clusters)
        state = self._global
        losses = []
        total_clients = 0
        start = self.round_idx % self.num_clusters
        for offset in range(self.num_clusters):
            cluster = self._clusters[(start + offset) % self.num_clusters]
            pick = self.rng.choice(
                cluster, size=min(per_cluster, len(cluster)), replace=False
            )
            members = [self.clients[i] for i in pick]
            results, buf = self.train_cohort(
                members, [DispatchPlan(state) for _ in members]
            )
            state = buf.mean_state(
                [r.num_samples for r in results], precise=False
            )
            losses.extend(r.mean_loss for r in results)
            total_clients += len(members)
        self._global = state
        self.ledger.record_down(total_clients * self.model_size)
        self.ledger.record_up(total_clients * self.model_size)
        return {
            "train_loss": float(np.mean(losses)) if losses else None,
            # The cyclic schedule trains per_cluster clients per visit,
            # which need not equal clients_per_round; report the truth
            # for throughput accounting.
            "clients_trained": total_clients,
        }

    def global_state(self) -> dict:
        return self._global
