"""FedAvg (McMahan et al. 2017) — the classic one-to-multi scheme.

Each round the server dispatches the single global model to K sampled
clients, receives their locally trained copies, and replaces the global
model with the sample-size-weighted average. This is the aggregation
scheme whose "coarse-grained averaging" the paper argues eclipses
client knowledge under gradient divergence.
"""

from __future__ import annotations

from repro.fl.client import Client
from repro.fl.registry import register_method
from repro.fl.server import FederatedServer
from repro.utils.params import weighted_average

__all__ = ["FedAvgServer"]


@register_method("fedavg")
class FedAvgServer(FederatedServer):
    """One-to-multi training with weighted-average aggregation."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._global = self.model.state_dict()

    def run_round(self, active: list[Client]) -> dict:
        results = [client.train(self.trainer, self._global) for client in active]
        self._global = weighted_average(
            [r.state for r in results], [r.num_samples for r in results]
        )
        self.charge_round_communication(active)
        return {"train_loss": self.mean_local_loss(results)}

    def global_state(self) -> dict:
        return self._global
