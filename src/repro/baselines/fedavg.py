"""FedAvg (McMahan et al. 2017) — the classic one-to-multi scheme.

Each round the server dispatches the single global model to K sampled
clients, receives their locally trained copies, and replaces the global
model with the sample-size-weighted average. This is the aggregation
scheme whose "coarse-grained averaging" the paper argues eclipses
client knowledge under gradient divergence.

Expressed against the phase protocol, FedAvg is the identity method:
default cohort selection, default dispatch (global model, no hooks),
default collect (uploads packed into :class:`~repro.core.pool.PoolBuffer`
rows), and an aggregate that is one weighted row reduction.  Because it
rides the default collect, FedAvg parallelises for free across the
execution backends (:mod:`repro.fl.execution`): with
``execution="process"`` the single dispatched global state crosses to
the workers through one shared-memory row and the K uploads come back
the same way — bit-identical to the sequential schedule.
"""

from __future__ import annotations

from repro.fl.client import Client
from repro.fl.registry import register_method
from repro.fl.server import DispatchPlan, FederatedServer
from repro.fl.trainer import LocalResult

__all__ = ["FedAvgServer"]


@register_method("fedavg")
class FedAvgServer(FederatedServer):
    """One-to-multi training with weighted-average aggregation."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._global = self.model.state_dict()

    def aggregate(
        self,
        active: list[Client],
        results: list[LocalResult],
        plans: list[DispatchPlan],
    ) -> dict:
        self._global = self.aggregate_uploads(results)
        self.charge_round_communication(active)
        return {"train_loss": self.mean_local_loss(results)}

    def global_state(self) -> dict:
        return self._global
