"""Baseline FL methods the paper compares against (Table I).

| Method   | Category                | Comm. overhead |
|----------|-------------------------|----------------|
| FedAvg   | Classic                 | Low            |
| FedProx  | Global control variable | Low            |
| SCAFFOLD | Global control variable | High           |
| FedGen   | Knowledge distillation  | Medium         |
| CluSamp  | Client grouping         | Low            |

Importing this package registers every baseline with the method
registry, so ``build_server("scaffold", ...)`` just works.
"""

from repro.baselines.fedavg import FedAvgServer
from repro.baselines.fedprox import FedProxServer
from repro.baselines.scaffold import ScaffoldServer
from repro.baselines.fedgen import FedGenServer, Generator
from repro.baselines.clusamp import CluSampServer
from repro.baselines.fedcluster import FedClusterServer

METHOD_CATEGORY = {
    "fedavg": "Classic",
    "fedprox": "Global Control Variable",
    "scaffold": "Global Control Variable",
    "fedgen": "Knowledge Distillation",
    "clusamp": "Client Grouping",
    "fedcluster": "Client Grouping",
    "fedcross": "Multi-Model Guided",
}

__all__ = [
    "FedAvgServer",
    "FedProxServer",
    "ScaffoldServer",
    "FedGenServer",
    "Generator",
    "CluSampServer",
    "FedClusterServer",
    "METHOD_CATEGORY",
]
