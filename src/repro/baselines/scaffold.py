"""SCAFFOLD (Karimireddy et al. 2020) — stochastic controlled averaging.

Corrects client drift with control variates: the server keeps a global
control variate ``c`` and each client a local ``c_i``; every local SGD
step uses the corrected gradient ``g - c_i + c``. After local training
the client refreshes its variate with option-II of the paper,
``c_i+ = c_i - c + (x - y_i) / (steps * lr)``, and uploads both the
model and the variate delta — which is why Table I classes SCAFFOLD's
communication overhead as High (2K models + 2K control variables per
round).
"""

from __future__ import annotations

import numpy as np

from repro.fl.client import Client
from repro.fl.hooks import ControlVariateSpec
from repro.fl.registry import register_method
from repro.fl.server import DispatchPlan, FederatedServer
from repro.fl.trainer import LocalResult
from repro.utils.params import tree_map, zeros_like_state

__all__ = ["ScaffoldServer"]


@register_method("scaffold")
class ScaffoldServer(FederatedServer):
    """Control-variate-corrected FedAvg."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._global = self.model.state_dict()
        self._param_keys = {name for name, _ in self.model.named_parameters()}
        param_only = {k: v for k, v in self._global.items() if k in self._param_keys}
        self._c_global = zeros_like_state(param_only)
        self._c_clients: dict[int, dict] = {}
        self.server_lr = float(self.config.method_params.get("server_lr", 1.0))

    def dispatch(self, active: list[Client]) -> list[DispatchPlan]:
        """Global model plus each client's control-variate grad spec.

        The correction ``g <- g - c_i + c`` rides as a picklable
        :class:`~repro.fl.hooks.ControlVariateSpec`; ``context`` keeps
        the server-side handle on ``c_i`` for the variate refresh.
        """
        plans = []
        for client in active:
            c_local = self._c_clients.get(client.client_id)
            if c_local is None:
                c_local = zeros_like_state(self._c_global)
            plans.append(
                DispatchPlan(
                    self._global,
                    grad_hook=ControlVariateSpec(self._c_global, c_local),
                    context={"c_local": c_local},
                )
            )
        return plans

    def aggregate(
        self,
        active: list[Client],
        results: list[LocalResult],
        plans: list[DispatchPlan],
    ) -> dict:
        x = self._global
        deltas_c = []
        for client, result, plan in zip(active, results, plans):
            c_local = plan.context["c_local"]
            # Option II variate refresh: c_i+ = c_i - c + (x - y_i)/(steps*lr)
            steps = max(result.num_steps, 1)
            scale = 1.0 / (steps * self.trainer.lr)
            c_new = {
                k: c_local[k]
                - self._c_global[k]
                + scale * (np.asarray(x[k], dtype=np.float64) - result.state[k])
                for k in self._c_global
            }
            deltas_c.append(tree_map(lambda a, b: a - b, c_new, c_local))
            self._c_clients[client.client_id] = c_new

        # Model update: x <- x + server_lr * mean(y_i - x) over active clients.
        mean_y = self.aggregate_uploads(results)
        self._global = {
            k: np.asarray(x[k], dtype=np.float64) * (1 - self.server_lr)
            + self.server_lr * np.asarray(mean_y[k], dtype=np.float64)
            for k in x
        }
        self._global = {k: v.astype(np.asarray(x[k]).dtype) for k, v in self._global.items()}

        # Variate update: c <- c + (|S|/N) * mean(delta_c), as one uniform
        # row reduction over the packed variate deltas (float64 rows —
        # the variates are float64 and must not be narrowed).
        frac = len(active) / len(self.clients)
        mean_delta = self.pack_states(deltas_c, dtype=np.float64).mean_state(
            precise=False
        )
        self._c_global = tree_map(lambda c, d: c + frac * d, self._c_global, mean_delta)

        # Control variates ride alongside the models in both directions.
        variate_size = sum(int(np.asarray(v).size) for v in self._c_global.values())
        self.charge_round_communication(
            active,
            extra_down=len(active) * variate_size,
            extra_up=len(active) * variate_size,
        )
        return {"train_loss": self.mean_local_loss(results)}

    def global_state(self) -> dict:
        return self._global
