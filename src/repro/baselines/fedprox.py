"""FedProx (Li et al. 2020) — proximal-term regularised local training.

Identical to FedAvg except that every client minimises
``f_i(w) + (mu/2) ||w - w_global||^2``, penalising drift from the
dispatched global model. The paper tunes ``mu`` per dataset from
{0.001, 0.01, 0.1, 1.0} (best: 0.01 CIFAR-10, 0.001 CIFAR-100,
0.1 FEMNIST).
"""

from __future__ import annotations

import numpy as np

from repro.fl.client import Client
from repro.fl.registry import register_method
from repro.fl.server import DispatchPlan, FederatedServer
from repro.fl.trainer import LocalResult
from repro.nn.module import Module
from repro.tensor.tensor import Tensor

__all__ = ["FedProxServer"]


@register_method("fedprox")
class FedProxServer(FederatedServer):
    """FedAvg + client-side proximal term with weight ``mu``."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._global = self.model.state_dict()
        self.mu = float(self.config.method_params.get("mu", 0.01))
        if self.mu < 0:
            raise ValueError(f"FedProx mu must be non-negative, got {self.mu}")

    def _proximal_hook(self, anchor: dict):
        """Build a loss hook adding (mu/2)||w - w_anchor||^2."""
        anchors = {
            name: Tensor(np.asarray(value))
            for name, value in anchor.items()
        }

        def hook(model: Module, logits, targets):
            if self.mu == 0.0:
                return None
            penalty = None
            for name, param in model.named_parameters():
                diff = param - anchors[name]
                term = (diff * diff).sum()
                penalty = term if penalty is None else penalty + term
            return penalty * (self.mu / 2.0)

        return hook

    def dispatch(self, active: list[Client]) -> list[DispatchPlan]:
        """Global model plus the proximal loss hook anchored to it."""
        hook = self._proximal_hook(self._global)
        return [DispatchPlan(self._global, loss_hook=hook) for _ in active]

    def aggregate(
        self,
        active: list[Client],
        results: list[LocalResult],
        plans: list[DispatchPlan],
    ) -> dict:
        self._global = self.aggregate_uploads(results)
        self.charge_round_communication(active)
        return {"train_loss": self.mean_local_loss(results)}

    def global_state(self) -> dict:
        return self._global
