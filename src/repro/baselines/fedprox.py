"""FedProx (Li et al. 2020) — proximal-term regularised local training.

Identical to FedAvg except that every client minimises
``f_i(w) + (mu/2) ||w - w_global||^2``, penalising drift from the
dispatched global model. The paper tunes ``mu`` per dataset from
{0.001, 0.01, 0.1, 1.0} (best: 0.01 CIFAR-10, 0.001 CIFAR-100,
0.1 FEMNIST).

The proximal term travels as a picklable
:class:`~repro.fl.hooks.ProximalSpec` (anchored to the dispatched
state), so FedProx runs unchanged on every execution backend —
including ``process`` workers.
"""

from __future__ import annotations

from repro.fl.client import Client
from repro.fl.hooks import ProximalSpec
from repro.fl.registry import register_method
from repro.fl.server import DispatchPlan, FederatedServer
from repro.fl.trainer import LocalResult

__all__ = ["FedProxServer"]


@register_method("fedprox")
class FedProxServer(FederatedServer):
    """FedAvg + client-side proximal term with weight ``mu``."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._global = self.model.state_dict()
        self.mu = float(self.config.method_params.get("mu", 0.01))
        if self.mu < 0:
            raise ValueError(f"FedProx mu must be non-negative, got {self.mu}")

    def dispatch(self, active: list[Client]) -> list[DispatchPlan]:
        """Global model plus the proximal loss spec anchored to it.

        ``ProximalSpec(mu)`` anchors to the dispatched state itself, so
        the anchor never ships twice.
        """
        spec = ProximalSpec(self.mu)
        return [DispatchPlan(self._global, loss_hook=spec) for _ in active]

    def aggregate(
        self,
        active: list[Client],
        results: list[LocalResult],
        plans: list[DispatchPlan],
    ) -> dict:
        self._global = self.aggregate_uploads(results)
        self.charge_round_communication(active)
        return {"train_loss": self.mean_local_loss(results)}

    def global_state(self) -> dict:
        return self._global
