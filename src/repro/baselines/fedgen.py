"""FedGen (Zhu et al. 2021) — data-free knowledge distillation.

The server trains a conditional generator ``G(z, y)`` so that the
*ensemble of uploaded client models* — with per-label weights given by
the clients' label counts — classifies generated samples as their
conditioning label. Each round the (frozen) generator is dispatched
alongside the global model, and clients add a distillation term
``lambda * CE(model(G(z, y)), y)`` to their local loss, injecting
global knowledge about labels the client lacks.

Substitution note (see DESIGN.md): the original FedGen generates
*latent-layer* features; here the generator emits input-space images
for vision models and embedding-space sequences for the LSTM models
(via ``forward_embedded``), which exercises the identical mechanism —
server-learned proxy data + client-side distillation + generator
communication overhead (Table I: Medium).

The distillation term ships as a picklable
:class:`~repro.fl.hooks.DistillationSpec` carrying the frozen
generator and a per-client RNG stream spawned at dispatch time — the
draws no longer come from one shared server stream consumed in client
order, which is what makes FedGen safe on parallel execution backends
(and reproducible across all of them).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.fl.client import Client
from repro.fl.hooks import DistillationSpec
from repro.fl.registry import register_method
from repro.fl.server import DispatchPlan, FederatedServer
from repro.fl.trainer import LocalResult
from repro.optim.adam import Adam
from repro.tensor import functional as F
from repro.tensor.autograd import no_grad
from repro.tensor.tensor import Tensor, concatenate
from repro.utils.rng import default_rng

__all__ = ["Generator", "FedGenServer"]


class Generator(nn.Module):
    """Conditional MLP generator: ``(z, one-hot y) -> flat sample``."""

    def __init__(
        self,
        num_classes: int,
        output_dim: int,
        z_dim: int = 16,
        hidden: int = 64,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else default_rng()
        self.num_classes = num_classes
        self.output_dim = output_dim
        self.z_dim = z_dim
        self.fc1 = nn.Linear(z_dim + num_classes, hidden, rng=rng)
        self.fc2 = nn.Linear(hidden, output_dim, rng=rng)

    def forward(self, z: Tensor, labels: np.ndarray) -> Tensor:
        onehot = Tensor(F.one_hot(labels, self.num_classes))
        h = self.fc1(concatenate([z, onehot], axis=1)).relu()
        return self.fc2(h)


@register_method("fedgen")
class FedGenServer(FederatedServer):
    """FedAvg + server-side generator + client-side distillation."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._global = self.model.state_dict()
        params = self.config.method_params
        self.gen_weight = float(params.get("gen_weight", 0.2))
        self.gen_steps = int(params.get("gen_steps", 10))
        self.gen_batch = int(params.get("gen_batch", 32))
        self.distill_batch = int(params.get("distill_batch", 16))
        self._gen_rng = default_rng(self.config.seed + 7919)
        # Root of the per-(round, client) distillation RNG streams;
        # spawned in dispatch order, so stream assignment is
        # deterministic regardless of execution backend.
        self._hook_seq = np.random.SeedSequence(self.config.seed + 60013)
        self.gen_hidden = int(params.get("gen_hidden", 64))

        num_classes = self.fed_dataset.num_classes
        self._embedded_mode = hasattr(self.model, "forward_embedded")
        if self._embedded_mode:
            seq_len = int(self.fed_dataset.meta.get("seq_len", 8))
            embed_dim = int(self.model.embedding.embedding_dim)
            self._sample_shape: tuple[int, ...] = (seq_len, embed_dim)
        else:
            self._sample_shape = tuple(
                int(s) for s in self.fed_dataset.clients[0].features.shape[1:]
            )
        output_dim = int(np.prod(self._sample_shape))
        self.generator = Generator(
            num_classes,
            output_dim,
            z_dim=int(params.get("z_dim", 16)),
            hidden=self.gen_hidden,
            rng=default_rng(self.config.seed + 104729),
        )
        self._gen_opt = Adam(self.generator.parameters(), lr=float(params.get("gen_lr", 5e-3)))
        self.generator_size = self.generator.num_parameters()
        # Aggregate label distribution for conditioning (uniform prior).
        self._label_counts = np.ones(num_classes, dtype=np.float64)

    # -- generation helpers ------------------------------------------------
    def _sample_labels(self, n: int) -> np.ndarray:
        p = self._label_counts / self._label_counts.sum()
        return self._gen_rng.choice(len(p), size=n, p=p)

    def _generate(self, labels: np.ndarray, with_grad: bool) -> Tensor:
        z = Tensor(
            self._gen_rng.standard_normal((len(labels), self.generator.z_dim)).astype(np.float32)
        )
        if with_grad:
            flat = self.generator(z, labels)
        else:
            with no_grad():
                flat = self.generator(z, labels)
        return flat.reshape(len(labels), *self._sample_shape)

    def _teacher_logits(self, samples: Tensor, states: list[dict], weights: np.ndarray) -> Tensor:
        """Label-count-weighted ensemble logits of the uploaded models."""
        total = None
        for state, weight in zip(states, weights):
            self.model.load_state_dict(state)
            self.model.eval()
            logits = (
                self.model.forward_embedded(samples)
                if self._embedded_mode
                else self.model(samples)
            )
            term = logits * float(weight)
            total = term if total is None else total + term
        self.model.train()
        return total

    def _train_generator(self, states: list[dict], sizes: np.ndarray) -> float:
        """Fit G so the client ensemble classifies G(z, y) as y."""
        weights = sizes / sizes.sum()
        last = 0.0
        for _ in range(self.gen_steps):
            labels = self._sample_labels(self.gen_batch)
            self._gen_opt.zero_grad()
            samples = self._generate(labels, with_grad=True)
            logits = self._teacher_logits(samples, states, weights)
            loss = F.cross_entropy(logits, labels)
            loss.backward()
            self._gen_opt.step()
            last = float(loss.item())
        return last

    # -- FL round ------------------------------------------------------------
    def dispatch(self, active: list[Client]) -> list[DispatchPlan]:
        """Global model plus per-client distillation specs (after warm-up).

        Each spec snapshots the frozen generator and label distribution
        and owns an independent RNG stream, so the distillation draws
        are identical whether clients train in sequence or in parallel.
        """
        if self.round_idx == 0 or self.gen_weight <= 0:
            return [DispatchPlan(self._global) for _ in active]
        generator_state = self.generator.state_dict()
        label_probs = self._label_counts / self._label_counts.sum()
        seeds = self._hook_seq.spawn(len(active))
        specs = [
            DistillationSpec(
                num_classes=self.generator.num_classes,
                sample_shape=self._sample_shape,
                z_dim=self.generator.z_dim,
                hidden=self.gen_hidden,
                generator_state=generator_state,
                label_probs=label_probs,
                batch=self.distill_batch,
                weight=self.gen_weight,
                seed=seed,
                embedded=self._embedded_mode,
            )
            for seed in seeds
        ]
        # In-process backends resolve specs here, where one frozen
        # generator serves the whole round (forward-only, so sharing is
        # safe even across threads); the shared instance is dropped at
        # pickle time, so process workers still rebuild their own.
        shared_generator = specs[0]._build_generator()
        for spec in specs[1:]:
            spec._generator = shared_generator
        return [DispatchPlan(self._global, loss_hook=spec) for spec in specs]

    def aggregate(
        self,
        active: list[Client],
        results: list[LocalResult],
        plans: list[DispatchPlan],
    ) -> dict:
        counts = np.zeros_like(self._label_counts)
        for client in active:
            counts += client.class_counts(self.fed_dataset.num_classes)
        if counts.sum() > 0:
            self._label_counts = counts + 1.0

        states = [r.state for r in results]
        sizes = np.array([r.num_samples for r in results], dtype=np.float64)
        gen_loss = self._train_generator(states, sizes)
        self._global = self.aggregate_uploads(results)

        # Table I: model both ways + one generator down per client.
        self.charge_round_communication(
            active, extra_down=len(active) * self.generator_size
        )
        return {"train_loss": self.mean_local_loss(results), "gen_loss": gen_loss}

    def global_state(self) -> dict:
        return self._global
