"""Figure 8 — learning curves of FedCross across α settings.

The paper plots CNN/CIFAR-10 (β=1.0) curves for
α ∈ {0.5, 0.8, 0.9, 0.95, 0.99, 0.999} under the in-order and
lowest-similarity strategies (FedAvg as reference), showing a collapse
at α=0.999 and best late-stage accuracy at α=0.99.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.federated import build_federated_dataset
from repro.experiments.printers import format_series
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.fl.config import FLConfig
from repro.fl.metrics import TrainingHistory
from repro.fl.simulation import run_simulation

__all__ = ["Fig8Result", "run_fig8", "format_fig8"]


@dataclass
class Fig8Result:
    strategy: str
    alphas: tuple[float, ...]
    histories: dict[str, TrainingHistory]  # label -> history ("fedavg" + alphas)

    def curves(self) -> dict[str, list[float]]:
        return {label: h.accuracies for label, h in self.histories.items()}

    def final_by_alpha(self) -> dict[float, float]:
        return {a: self.histories[f"a={a}"].tail_accuracy(2) for a in self.alphas}


def run_fig8(
    strategy: str = "lowest",
    alphas: tuple[float, ...] = (0.5, 0.9, 0.99, 0.999),
    scale: str | ExperimentScale | None = None,
    seed: int = 0,
    model: str = "mlp",
) -> Fig8Result:
    """α sweep of FedCross (+ FedAvg reference) on a shared dataset."""
    preset = resolve_scale(scale)
    rounds = preset.rounds_long
    eval_every = max(1, rounds // preset.curve_points)
    base = FLConfig(
        dataset="synth_cifar10",
        model=model,
        heterogeneity=1.0,
        num_clients=preset.num_clients,
        participation=preset.participation,
        rounds=rounds,
        local_epochs=preset.local_epochs,
        batch_size=preset.batch_size,
        eval_every=eval_every,
        seed=seed,
    )
    fed = build_federated_dataset(
        base.dataset,
        num_clients=base.num_clients,
        heterogeneity=base.heterogeneity,
        seed=base.seed,
    )
    histories: dict[str, TrainingHistory] = {}
    histories["fedavg"] = run_simulation(base.with_method("fedavg"), fed_dataset=fed).history
    for alpha in alphas:
        config = base.with_method("fedcross", alpha=alpha, selection=strategy)
        histories[f"a={alpha}"] = run_simulation(config, fed_dataset=fed).history
    return Fig8Result(strategy=strategy, alphas=tuple(alphas), histories=histories)


def format_fig8(result: Fig8Result) -> str:
    sample = next(iter(result.histories.values()))
    rounds = [r + 1 for r in sample.rounds]
    return format_series(
        result.curves(),
        x_values=rounds,
        title=f"Figure 8 (scaled): FedCross accuracy vs alpha — {result.strategy} strategy",
    )
