"""Figure 9 — training-acceleration variants of FedCross.

The paper compares vanilla FedCross against "w/ PM" (propeller models,
first 100 rounds), "w/ DA" (dynamic α ramp, first 100 rounds) and
"w/ PM-DA" (propellers for 50, ramp for 50) on VGG-16/CIFAR-10, finding
all variants accelerate early training with a slight final-accuracy
cost. Warm-up lengths scale with the round budget here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.federated import build_federated_dataset
from repro.experiments.printers import format_series
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.fl.config import FLConfig
from repro.fl.metrics import TrainingHistory
from repro.fl.simulation import run_simulation

__all__ = ["Fig9Result", "run_fig9", "format_fig9", "VARIANTS"]

VARIANTS = ("vanilla", "pm", "da", "pm_da")


@dataclass
class Fig9Result:
    heterogeneity: str | float
    histories: dict[str, TrainingHistory]

    def curves(self) -> dict[str, list[float]]:
        return {label: h.accuracies for label, h in self.histories.items()}

    def early_auc(self, label: str, points: int = 3) -> float:
        """Mean accuracy over the first evaluations (acceleration metric)."""
        accs = self.histories[label].accuracies[:points]
        return sum(accs) / len(accs)


def _variant_params(variant: str, alpha: float, warmup: int) -> dict:
    if variant == "vanilla":
        return {"alpha": alpha, "selection": "lowest"}
    if variant == "pm":
        return {"alpha": alpha, "selection": "lowest", "propeller_rounds": warmup}
    if variant == "da":
        return {"alpha": alpha, "selection": "lowest", "dynamic_alpha_rounds": warmup}
    if variant == "pm_da":
        half = max(1, warmup // 2)
        return {
            "alpha": alpha,
            "selection": "lowest",
            "propeller_rounds": half,
            "dynamic_alpha_rounds": half,
        }
    raise KeyError(f"unknown variant {variant!r}; expected one of {VARIANTS}")


def run_fig9(
    heterogeneity: str | float = 0.1,
    scale: str | ExperimentScale | None = None,
    seed: int = 0,
    model: str = "mlp",
    alpha: float = 0.97,
    variants: tuple[str, ...] = VARIANTS,
) -> Fig9Result:
    """Run the acceleration variants under a shared dataset.

    ``alpha`` is deliberately high so vanilla FedCross converges slowly
    and the warm-up heuristics have something to accelerate (the paper
    uses 0.99 over 1000 rounds).
    """
    preset = resolve_scale(scale)
    rounds = preset.rounds_long
    warmup = max(2, rounds // 4)  # paper: 100 of 1000 rounds
    eval_every = max(1, rounds // preset.curve_points)
    base = FLConfig(
        dataset="synth_cifar10",
        model=model,
        heterogeneity=heterogeneity,
        num_clients=preset.num_clients,
        participation=preset.participation,
        rounds=rounds,
        local_epochs=preset.local_epochs,
        batch_size=preset.batch_size,
        eval_every=eval_every,
        seed=seed,
    )
    fed = build_federated_dataset(
        base.dataset,
        num_clients=base.num_clients,
        heterogeneity=base.heterogeneity,
        seed=base.seed,
    )
    histories: dict[str, TrainingHistory] = {}
    for variant in variants:
        config = base.with_method("fedcross", **_variant_params(variant, alpha, warmup))
        histories[variant] = run_simulation(config, fed_dataset=fed).history
    return Fig9Result(heterogeneity=heterogeneity, histories=histories)


def format_fig9(result: Fig9Result) -> str:
    sample = next(iter(result.histories.values()))
    rounds = [r + 1 for r in sample.rounds]
    return format_series(
        result.curves(),
        x_values=rounds,
        title=(
            "Figure 9 (scaled): FedCross acceleration variants — "
            f"heterogeneity={result.heterogeneity}"
        ),
    )
