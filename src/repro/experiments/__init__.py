"""Experiment harnesses: one module per paper table/figure.

Every harness is a pure function ``(scale, seed, overrides) -> result
dataclass`` plus a printer that reproduces the paper's rows/series as
ASCII. The ``benchmarks/`` suite is a thin pytest-benchmark wrapper
around these functions; the examples call them directly.

Scaling: the paper's experiments run 1000-3000 GPU rounds over up to
1000 clients. The ``scale`` argument selects CPU-feasible presets
("quick" for CI, "full" for overnight runs) without touching the
algorithms; see :mod:`repro.experiments.scale`.
"""

from repro.experiments.scale import resolve_scale, ExperimentScale
from repro.experiments.printers import format_table, format_series
from repro.experiments import (
    table1,
    table2,
    table3,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    convergence,
    ablations,
)

__all__ = [
    "resolve_scale",
    "ExperimentScale",
    "format_table",
    "format_series",
    "table1",
    "table2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "convergence",
    "ablations",
]
