"""Experiment scaling presets.

``quick``
    Minutes-scale presets for CI and pytest-benchmark (default).
``full``
    A heavier preset for overnight CPU runs — closer to the paper's
    round counts, still synthetic data.

Selected by the ``REPRO_SCALE`` environment variable or an explicit
``scale=`` argument; explicit always wins.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentScale", "resolve_scale", "SCALES"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by all experiment harnesses."""

    name: str
    rounds: int  # default FL rounds
    rounds_long: int  # rounds for slow-converging setups (FedCross curves)
    num_clients: int  # population N
    participation: float  # fraction active per round
    local_epochs: int
    batch_size: int
    samples_per_client: int
    eval_every: int
    curve_points: int  # target number of points on learning curves


SCALES: dict[str, ExperimentScale] = {
    "quick": ExperimentScale(
        name="quick",
        rounds=25,
        rounds_long=40,
        num_clients=10,
        participation=0.5,
        local_epochs=5,
        batch_size=20,
        samples_per_client=40,
        eval_every=5,
        curve_points=8,
    ),
    "full": ExperimentScale(
        name="full",
        rounds=120,
        rounds_long=200,
        num_clients=50,
        participation=0.2,
        local_epochs=5,
        batch_size=50,
        samples_per_client=60,
        eval_every=10,
        curve_points=20,
    ),
}


def resolve_scale(scale: "str | ExperimentScale | None" = None) -> ExperimentScale:
    """Resolve a scale preset from the argument or ``REPRO_SCALE``."""
    if isinstance(scale, ExperimentScale):
        return scale
    name = scale or os.environ.get("REPRO_SCALE", "quick")
    key = name.lower()
    if key not in SCALES:
        raise KeyError(f"unknown scale {name!r}; available: {sorted(SCALES)}")
    return SCALES[key]
