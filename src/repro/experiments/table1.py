"""Table I — method categories and per-round communication overhead.

Purely analytic: the categories come from Section II-B and the
communication costs from the Section IV-C3 accounting, evaluated with
the actual parameter counts of this repo's models so the "Low / Medium
/ High" classes are backed by numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import METHOD_CATEGORY
from repro.experiments.printers import format_table
from repro.fl.comm import COMM_OVERHEAD_CLASS, analytic_round_cost

__all__ = ["Table1Row", "run_table1", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    method: str
    category: str
    overhead_class: str
    round_cost_model_equivalents: float


def run_table1(
    k_clients: int = 10,
    model_params: int = 100_000,
    generator_params: int = 20_000,
) -> list[Table1Row]:
    """Build Table I rows with concrete per-round costs.

    Parameters mirror the deployment: K active clients, model size and
    (for FedGen) generator size in scalar parameters.
    """
    rows = []
    for method in ("fedavg", "fedprox", "scaffold", "fedgen", "clusamp", "fedcross"):
        cost = analytic_round_cost(
            method, k_clients, model_params, generator_params=generator_params
        )
        rows.append(
            Table1Row(
                method=method,
                category=METHOD_CATEGORY[method],
                overhead_class=COMM_OVERHEAD_CLASS[method],
                round_cost_model_equivalents=cost["model_equivalents"],
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    headers = ["Method", "Category", "Comm. Overhead", "Models moved / round"]
    body = [
        [r.method, r.category, r.overhead_class, f"{r.round_cost_model_equivalents:.2f}"]
        for r in rows
    ]
    return format_table(headers, body, title="Table I (reproduction): baselines vs FedCross")
