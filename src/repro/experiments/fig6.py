"""Figure 6 — impact of the number of activated clients K.

The paper fixes CIFAR-10 / ResNet-20 / β=0.1 with N=100 total clients
and sweeps K ∈ {5, 10, 20, 50, 100}; FedCross wins at every K, accuracy
saturating beyond K≈20. The scaled sweep keeps the population fixed and
varies K.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.printers import format_table
from repro.experiments.runner import MethodComparison, run_comparison
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.fl.config import FLConfig

__all__ = ["Fig6Result", "run_fig6", "format_fig6"]

DEFAULT_METHODS = ["fedavg", "scaffold", "fedcross"]


@dataclass
class Fig6Result:
    k_values: tuple[int, ...]
    comparisons: dict[int, MethodComparison]

    def accuracy_by_k(self) -> dict[str, list[float]]:
        methods = next(iter(self.comparisons.values())).results.keys()
        return {
            m: [self.comparisons[k].results[m].history.tail_accuracy(2) for k in self.k_values]
            for m in methods
        }


def run_fig6(
    k_values: tuple[int, ...] = (2, 5, 10),
    scale: str | ExperimentScale | None = None,
    seed: int = 0,
    model: str = "mlp",
    methods: list[str] | None = None,
    beta: float = 0.1,
) -> Fig6Result:
    """Sweep the number of activated clients at fixed population."""
    preset = resolve_scale(scale)
    num_clients = max(preset.num_clients, max(k_values))
    comparisons: dict[int, MethodComparison] = {}
    for k in k_values:
        config = FLConfig(
            dataset="synth_cifar10",
            model=model,
            heterogeneity=beta,
            num_clients=num_clients,
            participation=k / num_clients,
            k_active=k,
            rounds=preset.rounds,
            local_epochs=preset.local_epochs,
            batch_size=preset.batch_size,
            eval_every=preset.eval_every,
            seed=seed,
        )
        comparisons[k] = run_comparison(
            config,
            methods=methods or DEFAULT_METHODS,
            method_params={"fedcross": {"alpha": 0.9, "selection": "lowest"}},
        )
    return Fig6Result(k_values=tuple(k_values), comparisons=comparisons)


def format_fig6(result: Fig6Result) -> str:
    by_k = result.accuracy_by_k()
    headers = ["Method"] + [f"K={k}" for k in result.k_values]
    body = [[m] + [100.0 * a for a in accs] for m, accs in by_k.items()]
    return format_table(
        headers, body, title="Figure 6 (scaled): tail accuracy (%) vs activated clients K"
    )
