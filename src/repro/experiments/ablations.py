"""Design-choice ablations beyond the paper's tables (see DESIGN.md).

``run_shuffle_ablation``
    Algorithm 1 line 5 shuffles the model→client assignment each round.
    Without it each middleware model tends to revisit the same clients,
    sees less data diversity, and the pool unifies more slowly.
``run_similarity_measure_ablation``
    The paper uses cosine similarity in CoModelSel and defers other
    measures to future work; this ablation compares cosine vs negative
    Euclidean distance under the lowest-similarity strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.federated import build_federated_dataset
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.fl.config import FLConfig
from repro.fl.metrics import TrainingHistory
from repro.fl.simulation import run_simulation

__all__ = [
    "AblationResult",
    "run_shuffle_ablation",
    "run_similarity_measure_ablation",
]


@dataclass
class AblationResult:
    """Histories keyed by ablation arm."""

    histories: dict[str, TrainingHistory]

    def tail_accuracies(self, window: int = 2) -> dict[str, float]:
        return {k: h.tail_accuracy(window) for k, h in self.histories.items()}


def _base_config(preset: ExperimentScale, seed: int, beta: float) -> FLConfig:
    return FLConfig(
        dataset="synth_cifar10",
        model="mlp",
        heterogeneity=beta,
        num_clients=preset.num_clients,
        participation=preset.participation,
        rounds=preset.rounds_long,
        local_epochs=preset.local_epochs,
        batch_size=preset.batch_size,
        eval_every=preset.eval_every,
        seed=seed,
    )


def run_shuffle_ablation(
    scale: str | ExperimentScale | None = None,
    seed: int = 0,
    beta: float = 0.1,
    alpha: float = 0.9,
) -> AblationResult:
    """FedCross with vs without the Algorithm-1 dispatch shuffle."""
    preset = resolve_scale(scale)
    base = _base_config(preset, seed, beta)
    fed = build_federated_dataset(
        base.dataset, num_clients=base.num_clients, heterogeneity=beta, seed=seed
    )
    histories = {}
    for label, shuffle in (("shuffle_on", True), ("shuffle_off", False)):
        config = base.with_method(
            "fedcross", alpha=alpha, selection="lowest", shuffle=shuffle
        )
        histories[label] = run_simulation(config, fed_dataset=fed).history
    return AblationResult(histories=histories)


def run_similarity_measure_ablation(
    scale: str | ExperimentScale | None = None,
    seed: int = 0,
    beta: float = 1.0,
    alpha: float = 0.9,
) -> AblationResult:
    """Cosine vs negative-Euclidean similarity inside CoModelSel."""
    preset = resolve_scale(scale)
    base = _base_config(preset, seed, beta)
    fed = build_federated_dataset(
        base.dataset, num_clients=base.num_clients, heterogeneity=beta, seed=seed
    )
    histories = {}
    for measure in ("cosine", "euclidean"):
        config = base.with_method(
            "fedcross", alpha=alpha, selection="lowest", measure=measure
        )
        histories[measure] = run_simulation(config, fed_dataset=fed).history
    return AblationResult(histories=histories)
