"""Figure 3 — per-client class distributions under Dir(β).

The paper samples ten of the 100 CIFAR-10 clients and plots per-class
bubble sizes for β ∈ {0.1, 0.5, 1.0}. We regenerate the same statistic
(per-client class-count matrices) and render it as ASCII bubbles,
plus summary heterogeneity numbers the bench can assert on (smaller β ⇒
more concentrated classes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.federated import build_federated_dataset
from repro.data.partition import render_partition_grid

__all__ = ["Fig3Result", "run_fig3", "format_fig3", "class_concentration"]


def class_concentration(counts: np.ndarray) -> float:
    """Mean per-class Gini-style concentration across clients.

    For each class, the fraction of its samples held by the single
    largest client, averaged over classes: 1/num_clients for perfectly
    uniform, → 1.0 as β → 0.
    """
    counts = np.asarray(counts, dtype=np.float64)
    totals = counts.sum(axis=0)
    totals = np.where(totals == 0, 1.0, totals)
    return float((counts.max(axis=0) / totals).mean())


@dataclass
class Fig3Result:
    betas: tuple[float, ...]
    count_matrices: dict[float, np.ndarray]
    concentrations: dict[float, float]


def run_fig3(
    betas: tuple[float, ...] = (0.1, 0.5, 1.0),
    num_clients: int = 100,
    show_clients: int = 10,
    seed: int = 0,
) -> Fig3Result:
    """Build Dir(β) partitions and collect per-client class counts."""
    matrices: dict[float, np.ndarray] = {}
    concentrations: dict[float, float] = {}
    for beta in betas:
        fed = build_federated_dataset(
            "synth_cifar10",
            num_clients=num_clients,
            heterogeneity=beta,
            seed=seed,
            samples_per_client=20,
        )
        counts = fed.class_count_matrix()
        matrices[beta] = counts[:show_clients]
        concentrations[beta] = class_concentration(counts)
    return Fig3Result(
        betas=tuple(betas), count_matrices=matrices, concentrations=concentrations
    )


def format_fig3(result: Fig3Result) -> str:
    sections = []
    for beta in result.betas:
        grid = render_partition_grid(result.count_matrices[beta])
        sections.append(
            f"Dir({beta}) — class concentration {result.concentrations[beta]:.3f}\n{grid}"
        )
    return ("\n\n").join(sections)
