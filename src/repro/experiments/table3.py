"""Table III — α × collaborative-selection-strategy ablation.

The paper evaluates FedCross on CIFAR-10 (β = 1.0, CNN) with
α ∈ {0.5, 0.8, 0.9, 0.95, 0.99, 0.999} under the three selection
strategies and finds: lowest-similarity best in five of six α rows,
highest-similarity always worst, and a collapse at α = 0.999.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.federated import build_federated_dataset
from repro.experiments.printers import format_table
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.fl.config import FLConfig
from repro.fl.simulation import run_simulation

__all__ = ["Table3Result", "run_table3", "format_table3"]

PAPER_ALPHAS = (0.5, 0.8, 0.9, 0.95, 0.99, 0.999)
STRATEGIES = ("in_order", "highest", "lowest")


@dataclass
class Table3Result:
    alphas: tuple[float, ...]
    strategies: tuple[str, ...]
    accuracy: dict[tuple[float, str], float]

    def best_strategy_per_alpha(self) -> dict[float, str]:
        out = {}
        for alpha in self.alphas:
            out[alpha] = max(self.strategies, key=lambda s: self.accuracy[(alpha, s)])
        return out

    def strategy_mean(self, strategy: str) -> float:
        vals = [self.accuracy[(a, strategy)] for a in self.alphas]
        return sum(vals) / len(vals)


def run_table3(
    scale: str | ExperimentScale | None = None,
    seed: int = 0,
    alphas: tuple[float, ...] = (0.5, 0.9, 0.99, 0.999),
    strategies: tuple[str, ...] = STRATEGIES,
    model: str = "mlp",
) -> Table3Result:
    """Sweep α × strategy for FedCross on synth CIFAR-10, β = 1.0.

    Default α set is the paper's endpoints plus the recommended 0.99;
    pass ``alphas=PAPER_ALPHAS`` for the full six-row table.
    """
    preset = resolve_scale(scale)
    base = FLConfig(
        method="fedcross",
        dataset="synth_cifar10",
        model=model,
        heterogeneity=1.0,
        num_clients=preset.num_clients,
        participation=preset.participation,
        rounds=preset.rounds_long,
        local_epochs=preset.local_epochs,
        batch_size=preset.batch_size,
        eval_every=preset.eval_every,
        seed=seed,
    )
    fed_dataset = build_federated_dataset(
        base.dataset,
        num_clients=base.num_clients,
        heterogeneity=base.heterogeneity,
        seed=base.seed,
    )
    accuracy: dict[tuple[float, str], float] = {}
    for alpha in alphas:
        for strategy in strategies:
            config = base.with_method("fedcross", alpha=alpha, selection=strategy)
            result = run_simulation(config, fed_dataset=fed_dataset)
            accuracy[(alpha, strategy)] = result.history.tail_accuracy(2)
    return Table3Result(alphas=tuple(alphas), strategies=tuple(strategies), accuracy=accuracy)


def format_table3(result: Table3Result) -> str:
    headers = ["alpha"] + [s for s in result.strategies]
    body = []
    for alpha in result.alphas:
        body.append(
            [str(alpha)] + [100.0 * result.accuracy[(alpha, s)] for s in result.strategies]
        )
    return format_table(
        headers, body, title="Table III (scaled): FedCross accuracy (%) by alpha x strategy"
    )
