"""Figure 4 / RQ1 — loss landscapes of FedAvg vs FedCross.

Trains both methods on synthetic CIFAR-10 (non-IID β=0.1 and IID),
scans a filter-normalised random plane around each resulting global
model on the full test set, and reports sharpness metrics. The paper's
claim: FedCross global models sit in visibly flatter valleys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.landscape import (
    LandscapeScan,
    loss_landscape_2d,
    render_landscape_ascii,
    sharpness_metrics,
)
from repro.data.federated import build_federated_dataset
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.fl.config import FLConfig
from repro.fl.simulation import FLSimulation

__all__ = ["Fig4Result", "run_fig4", "format_fig4"]


@dataclass
class Fig4Result:
    """Scans and sharpness per (method, heterogeneity) cell."""

    scans: dict[tuple[str, str], LandscapeScan]
    sharpness: dict[tuple[str, str], dict[str, float]]
    accuracies: dict[tuple[str, str], float]


def run_fig4(
    scale: str | ExperimentScale | None = None,
    seed: int = 0,
    model: str = "mlp",
    heterogeneities: tuple = (0.1, "iid"),
    radius: float = 0.5,
    grid: int = 7,
) -> Fig4Result:
    """Train FedAvg + FedCross per heterogeneity and scan landscapes."""
    preset = resolve_scale(scale)
    scans: dict[tuple[str, str], LandscapeScan] = {}
    sharp: dict[tuple[str, str], dict[str, float]] = {}
    accs: dict[tuple[str, str], float] = {}
    for het in heterogeneities:
        het_label = "iid" if het == "iid" else f"b={het}"
        fed = build_federated_dataset(
            "synth_cifar10",
            num_clients=preset.num_clients,
            heterogeneity=het,
            seed=seed,
            samples_per_client=preset.samples_per_client,
        )
        for method in ("fedavg", "fedcross"):
            params = {"alpha": 0.9, "selection": "lowest"} if method == "fedcross" else {}
            config = FLConfig(
                method=method,
                dataset="synth_cifar10",
                model=model,
                heterogeneity=het,
                num_clients=preset.num_clients,
                participation=preset.participation,
                rounds=preset.rounds_long,
                local_epochs=preset.local_epochs,
                batch_size=preset.batch_size,
                eval_every=preset.rounds_long,
                seed=seed,
                method_params=params,
            )
            sim = FLSimulation(config, fed_dataset=fed)
            result = sim.run()
            key = (method, het_label)
            accs[key] = result.final_accuracy
            param_keys = {name for name, _ in sim.model.named_parameters()}
            scan = loss_landscape_2d(
                sim.model,
                result.final_state,
                fed.test,
                rng=np.random.default_rng(seed + 17),
                radius=radius,
                grid=grid,
                param_keys=param_keys,
            )
            scans[key] = scan
            sharp[key] = sharpness_metrics(scan)
    return Fig4Result(scans=scans, sharpness=sharp, accuracies=accs)


def format_fig4(result: Fig4Result) -> str:
    sections = []
    for key, scan in result.scans.items():
        method, het = key
        metrics = result.sharpness[key]
        sections.append(
            f"{method} ({het}): acc={result.accuracies[key]:.3f} "
            f"center_loss={metrics['center_loss']:.3f} "
            f"rise@r/2={metrics['rise_half']:.3f} rise@r={metrics['rise_full']:.3f}\n"
            + render_landscape_ascii(scan)
        )
    return "\n\n".join(sections)
