"""Table II — test accuracy of six methods across models × datasets ×
heterogeneity settings.

The paper's grid is {CNN, ResNet-20, VGG-16} × {CIFAR-10, CIFAR-100,
FEMNIST} × {β=0.1, 0.5, 1.0, IID} plus LSTM × {Shakespeare, Sent140}.
The scaled grid keeps every axis but swaps in the CPU presets
(cnn_s / resnet8 / vgg_mini, synthetic datasets) and trims the slowest
combinations at "quick" scale; ``row_set="grid"`` restores the full
cross-product.

The bench prints the same row layout as the paper and the result object
exposes the per-row winner so shape checks ("FedCross wins the row") are
one-liners.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.printers import format_table
from repro.experiments.runner import ALL_METHODS, MethodComparison, run_comparison
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.fl.config import FLConfig

__all__ = ["Table2Row", "Table2Result", "run_table2", "format_table2", "standard_rows"]

# FedProx mu tuned per dataset in the paper (Section IV-A2).
FEDPROX_MU = {
    "synth_cifar10": 0.01,
    "synth_cifar100": 0.001,
    "synth_femnist": 0.1,
    "synth_shakespeare": 0.01,
    "synth_sent140": 0.01,
}


@dataclass(frozen=True)
class Table2Row:
    """One row of Table II: a (model, dataset, heterogeneity) cell."""

    model: str
    dataset: str
    heterogeneity: str | float
    rounds_scale: float = 1.0  # multiplier on the preset round count
    lr: float = 0.01  # client learning rate (paper default)
    momentum: float = 0.5
    dataset_params: dict = field(default_factory=dict, hash=False)
    model_params: dict = field(default_factory=dict, hash=False)

    @property
    def label(self) -> tuple[str, str, str]:
        het = (
            "IID"
            if self.heterogeneity == "iid"
            else ("-" if self.heterogeneity == "natural" else f"b={self.heterogeneity}")
        )
        return (self.model, self.dataset, het)


def standard_rows(row_set: str = "standard") -> list[Table2Row]:
    """Row sets: ``smoke`` (4 rows), ``standard`` (13), ``grid`` (29)."""
    betas: list[str | float] = [0.1, 0.5, 1.0, "iid"]
    # Per-task tuning: the conv presets want a slightly hotter LR at the
    # short scaled horizon; the LSTM rows (as in the integration tests)
    # need lr 0.1 / momentum 0.9 plus easier generator settings to learn
    # within the scaled round budget.
    # Momentum stays at the paper's 0.5 for the LSTM rows: SCAFFOLD's
    # control-variate correction assumes near-raw gradients and diverges
    # on recurrent nets under heavy momentum.
    char_row = Table2Row(
        "charlstm",
        "synth_shakespeare",
        "natural",
        rounds_scale=0.8,
        lr=0.2,
        momentum=0.5,
        dataset_params={
            "samples_per_client": 100,
            "vocab_size": 12,
            "concentration": 0.1,
            "client_deviation": 0.2,
        },
        model_params={"hidden_size": 16, "embed_dim": 8, "num_layers": 1},
    )
    sent_row = Table2Row(
        "sentlstm",
        "synth_sent140",
        "natural",
        rounds_scale=0.6,
        lr=0.1,
        momentum=0.5,
        dataset_params={"samples_per_user_mean": 150},
        model_params={"hidden_size": 16, "embed_dim": 8},
    )
    if row_set == "smoke":
        return [
            Table2Row("mlp", "synth_cifar10", 0.1, rounds_scale=1.6),
            Table2Row("mlp", "synth_cifar10", "iid", rounds_scale=1.6),
            Table2Row("cnn_s", "synth_cifar10", 0.1, rounds_scale=0.8, lr=0.03),
            Table2Row("mlp", "synth_femnist", "natural"),
        ]
    if row_set == "standard":
        rows = [Table2Row("mlp", "synth_cifar10", h, rounds_scale=1.6) for h in betas]
        rows += [
            Table2Row("cnn_s", "synth_cifar10", 0.1, rounds_scale=0.8, lr=0.03),
            Table2Row("cnn_s", "synth_cifar10", "iid", rounds_scale=0.8, lr=0.03),
            Table2Row("resnet8", "synth_cifar10", 0.1, rounds_scale=0.6, lr=0.03),
            Table2Row("resnet8", "synth_cifar10", "iid", rounds_scale=0.6, lr=0.03),
            Table2Row("mlp", "synth_cifar100", 0.1, rounds_scale=1.6),
            Table2Row("mlp", "synth_cifar100", "iid", rounds_scale=1.6),
            Table2Row("mlp", "synth_femnist", "natural"),
            char_row,
            sent_row,
        ]
        return rows
    if row_set == "grid":
        rows = []
        for model, scale_mult in (("cnn_s", 0.8), ("resnet8", 0.6), ("vgg_mini", 0.5)):
            for dataset in ("synth_cifar10", "synth_cifar100"):
                for h in betas:
                    rows.append(
                        Table2Row(model, dataset, h, rounds_scale=scale_mult, lr=0.03)
                    )
            rows.append(
                Table2Row(
                    model, "synth_femnist", "natural", rounds_scale=scale_mult, lr=0.03
                )
            )
        rows.append(char_row)
        rows.append(sent_row)
        return rows
    raise KeyError(f"unknown row_set {row_set!r}; expected smoke|standard|grid")


@dataclass
class Table2Result:
    """All row comparisons plus convenient winners/accuracy views."""

    rows: list[Table2Row]
    comparisons: list[MethodComparison]
    methods: list[str]

    def accuracy_grid(self) -> list[dict[str, float]]:
        """Per-row dict of tail accuracy by method (the table cells)."""
        return [
            {m: comp.results[m].history.tail_accuracy(2) for m in self.methods}
            for comp in self.comparisons
        ]

    def winners(self) -> list[str]:
        """argmax method of every row."""
        return [max(cells, key=cells.get) for cells in self.accuracy_grid()]

    def fedcross_win_rate(self) -> float:
        winners = self.winners()
        return winners.count("fedcross") / len(winners) if winners else 0.0


def run_table2(
    scale: str | ExperimentScale | None = None,
    seed: int = 0,
    row_set: str = "standard",
    methods: list[str] | None = None,
    fedcross_alpha: float | None = None,
) -> Table2Result:
    """Run the Table II grid at the given scale.

    ``fedcross_alpha`` defaults to a scale-appropriate value: the
    paper's 0.99 assumes thousands of rounds; at "quick" scale the
    equivalent mixing budget needs a faster rate (0.9).
    """
    preset = resolve_scale(scale)
    methods = methods or ALL_METHODS
    alpha = fedcross_alpha if fedcross_alpha is not None else (
        0.9 if preset.name == "quick" else 0.99
    )
    rows = standard_rows(row_set)
    comparisons = []
    for row in rows:
        rounds = max(4, int(round(preset.rounds * row.rounds_scale)))
        config = FLConfig(
            dataset=row.dataset,
            model=row.model,
            heterogeneity=row.heterogeneity,
            num_clients=preset.num_clients,
            participation=preset.participation,
            rounds=rounds,
            local_epochs=preset.local_epochs,
            batch_size=preset.batch_size,
            lr=row.lr,
            momentum=row.momentum,
            eval_every=preset.eval_every,
            seed=seed,
            dataset_params=dict(row.dataset_params),
            model_params=dict(row.model_params),
        )
        # Scaled-equivalent FedCross: the paper runs alpha=0.99 vanilla
        # over thousands of rounds; at short horizons we enable the
        # paper's own dynamic-alpha warm-up for the first quarter so the
        # pool mixes at an equivalent budget (Section III-D).
        fedcross_params = {"alpha": alpha, "selection": "lowest"}
        if preset.name == "quick":
            fedcross_params["dynamic_alpha_rounds"] = max(2, rounds // 4)
        comparisons.append(
            run_comparison(
                config,
                methods=methods,
                method_params={
                    "fedprox": {"mu": FEDPROX_MU.get(row.dataset, 0.01)},
                    "fedcross": fedcross_params,
                },
            )
        )
    return Table2Result(rows=rows, comparisons=comparisons, methods=methods)


def format_table2(result: Table2Result) -> str:
    """Paper-style accuracy table (percentages)."""
    headers = ["Model", "Dataset", "Heterog."] + [m for m in result.methods]
    body = []
    for row, cells in zip(result.rows, result.accuracy_grid()):
        model, dataset, het = row.label
        body.append([model, dataset, het] + [100.0 * cells[m] for m in result.methods])
    return format_table(headers, body, title="Table II (scaled reproduction): test accuracy (%)")
