"""Figure 5 — learning curves of the six methods on CIFAR-10.

The paper plots per-round global-model accuracy for all six methods
over CNN / ResNet-20 / VGG-16 × {β=0.1, 0.5, 1.0, IID}. The scaled
harness runs one (model, heterogeneity) panel per call; the bench
iterates panels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.printers import format_series
from repro.experiments.runner import ALL_METHODS, MethodComparison, run_comparison
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.fl.config import FLConfig

__all__ = ["Fig5Result", "run_fig5_panel", "format_fig5"]


@dataclass
class Fig5Result:
    model: str
    heterogeneity: str | float
    comparison: MethodComparison

    def curves(self) -> dict[str, list[float]]:
        return self.comparison.curves()

    def final_ranking(self) -> list[str]:
        """Methods sorted by final accuracy, best first."""
        finals = self.comparison.final_accuracies()
        return sorted(finals, key=finals.get, reverse=True)


def run_fig5_panel(
    model: str = "mlp",
    heterogeneity: str | float = 0.1,
    scale: str | ExperimentScale | None = None,
    seed: int = 0,
    methods: list[str] | None = None,
) -> Fig5Result:
    """One Figure 5 panel: six learning curves under a shared dataset."""
    preset = resolve_scale(scale)
    rounds = preset.rounds_long
    eval_every = max(1, rounds // preset.curve_points)
    config = FLConfig(
        dataset="synth_cifar10",
        model=model,
        heterogeneity=heterogeneity,
        num_clients=preset.num_clients,
        participation=preset.participation,
        rounds=rounds,
        local_epochs=preset.local_epochs,
        batch_size=preset.batch_size,
        eval_every=eval_every,
        seed=seed,
    )
    comparison = run_comparison(
        config,
        methods=methods or ALL_METHODS,
        method_params={"fedcross": {"alpha": 0.9, "selection": "lowest"}},
    )
    return Fig5Result(model=model, heterogeneity=heterogeneity, comparison=comparison)


def format_fig5(result: Fig5Result) -> str:
    rounds = [r + 1 for r in result.comparison.eval_rounds()]
    return format_series(
        result.curves(),
        x_values=rounds,
        title=(
            f"Figure 5 panel (scaled): {result.model}, "
            f"heterogeneity={result.heterogeneity} — accuracy vs round"
        ),
    )
