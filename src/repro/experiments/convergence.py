"""Convergence-rate probe (Section III-C, Theorem 1) — extension bench.

Theorem 1 applies to mu-convex local objectives with the decaying step
size eta_t = 2/(mu (t+lambda)). We realise exactly that setting:
logistic regression (convex) on synthetic data, FedCross with in-order
selection (the strategy the proof assumes), and an inverse-time LR
decay implemented by passing per-round learning rates. The bench then
fits the measured global-loss gap against a C/(t+lambda) envelope and
reports the log-log slope (Theorem 1 predicts about -1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.convergence import empirical_convergence_rate, inverse_t_envelope_fit
from repro.data.federated import build_federated_dataset
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.fl.config import FLConfig
from repro.fl.simulation import FLSimulation

__all__ = ["ConvergenceResult", "run_convergence_probe"]


@dataclass
class ConvergenceResult:
    losses: list[float]
    fit: dict[str, float]
    loglog_slope: float
    f_star_estimate: float


def run_convergence_probe(
    scale: str | ExperimentScale | None = None,
    seed: int = 0,
    rounds: int | None = None,
) -> ConvergenceResult:
    """FedCross on a convex objective with decaying LR; fit the O(1/t) law."""
    preset = resolve_scale(scale)
    rounds = rounds or preset.rounds_long
    config = FLConfig(
        method="fedcross",
        dataset="synth_cifar10",
        model="logreg",
        heterogeneity=0.5,
        num_clients=preset.num_clients,
        participation=1.0,  # the proof assumes full participation
        rounds=rounds,
        local_epochs=2,
        batch_size=preset.batch_size,
        lr=0.05,
        momentum=0.0,  # plain SGD, as in the analysis
        eval_every=1,
        seed=seed,
        method_params={"alpha": 0.9, "selection": "in_order"},
    )
    sim = FLSimulation(config)

    # Decay the client LR as 1/(round + lambda), Theorem 1's schedule,
    # by driving the round loop manually.
    lam = 10.0
    base_lr = config.lr
    losses: list[float] = []
    for r in range(config.rounds):
        sim.trainer.lr = base_lr * lam / (r + lam)
        active = sim.server.sample_clients()
        sim.server.run_round(active)
        sim.server.ledger.end_round()
        _, loss = sim.server.evaluate()
        losses.append(loss)
        sim.server.round_idx += 1

    # Estimate F* as slightly below the best observed loss.
    f_star = min(losses) * 0.98
    tail = losses
    fit = inverse_t_envelope_fit(tail, f_star=f_star)
    slope = empirical_convergence_rate(tail, f_star=f_star)
    return ConvergenceResult(
        losses=losses, fit=fit, loglog_slope=slope, f_star_estimate=f_star
    )
