"""Figure 7 — impact of the total number of clients N.

The paper fixes the global sample budget, sweeps N ∈ {50, ..., 1000}
with 10% participation (β=0.5), and observes that more clients (hence
less data per client) slows everyone's convergence while FedCross stays
best. The scaled sweep divides a fixed sample budget across N.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.printers import format_table
from repro.experiments.runner import MethodComparison, run_comparison
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.fl.config import FLConfig

__all__ = ["Fig7Result", "run_fig7", "format_fig7"]

DEFAULT_METHODS = ["fedavg", "scaffold", "fedcross"]


@dataclass
class Fig7Result:
    n_values: tuple[int, ...]
    comparisons: dict[int, MethodComparison]

    def accuracy_by_n(self) -> dict[str, list[float]]:
        methods = next(iter(self.comparisons.values())).results.keys()
        return {
            m: [self.comparisons[n].results[m].history.tail_accuracy(2) for n in self.n_values]
            for m in methods
        }


def run_fig7(
    n_values: tuple[int, ...] = (10, 20, 40),
    scale: str | ExperimentScale | None = None,
    seed: int = 0,
    model: str = "mlp",
    methods: list[str] | None = None,
    beta: float = 0.5,
    total_samples: int | None = None,
) -> Fig7Result:
    """Sweep total clients N at a fixed global sample budget."""
    preset = resolve_scale(scale)
    budget = total_samples or preset.samples_per_client * preset.num_clients
    comparisons: dict[int, MethodComparison] = {}
    for n in n_values:
        config = FLConfig(
            dataset="synth_cifar10",
            model=model,
            heterogeneity=beta,
            num_clients=n,
            participation=0.1 if n >= 10 else 0.5,
            k_active=max(2, n // 10),
            rounds=preset.rounds,
            local_epochs=preset.local_epochs,
            batch_size=preset.batch_size,
            eval_every=preset.eval_every,
            seed=seed,
            dataset_params={"samples_per_client": max(10, budget // n)},
        )
        comparisons[n] = run_comparison(
            config,
            methods=methods or DEFAULT_METHODS,
            method_params={"fedcross": {"alpha": 0.9, "selection": "lowest"}},
        )
    return Fig7Result(n_values=tuple(n_values), comparisons=comparisons)


def format_fig7(result: Fig7Result) -> str:
    by_n = result.accuracy_by_n()
    headers = ["Method"] + [f"N={n}" for n in result.n_values]
    body = [[m] + [100.0 * a for a in accs] for m, accs in by_n.items()]
    return format_table(
        headers, body, title="Figure 7 (scaled): tail accuracy (%) vs total clients N"
    )
