"""Shared experiment runner utilities."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import compare_methods
from repro.fl.config import FLConfig
from repro.fl.simulation import SimulationResult

__all__ = ["ALL_METHODS", "DEFAULT_METHOD_PARAMS", "MethodComparison", "run_comparison"]

# The six methods of the paper's evaluation, in its column order.
ALL_METHODS = ["fedavg", "fedprox", "scaffold", "fedgen", "clusamp", "fedcross"]

# Paper-tuned method defaults (Section IV-A2): FedProx mu per dataset is
# handled by callers; FedCross uses alpha=0.99 + lowest similarity at
# paper scale — at "quick" scale harnesses pass a faster-mixing alpha.
DEFAULT_METHOD_PARAMS: dict[str, dict] = {
    "fedprox": {"mu": 0.01},
    "fedcross": {"alpha": 0.99, "selection": "lowest"},
}


@dataclass
class MethodComparison:
    """Results of running several methods under one shared config."""

    config: FLConfig
    results: dict[str, SimulationResult] = field(default_factory=dict)

    def final_accuracies(self) -> dict[str, float]:
        return {m: r.final_accuracy for m, r in self.results.items()}

    def best_accuracies(self) -> dict[str, float]:
        return {m: r.best_accuracy for m, r in self.results.items()}

    def curves(self) -> dict[str, list[float]]:
        return {m: r.history.accuracies for m, r in self.results.items()}

    def eval_rounds(self) -> list[int]:
        first = next(iter(self.results.values()))
        return first.history.rounds


def run_comparison(
    config: FLConfig,
    methods: list[str] | None = None,
    method_params: dict[str, dict] | None = None,
) -> MethodComparison:
    """Run ``methods`` under identical data/init and collect results."""
    methods = methods or ALL_METHODS
    merged = {m: dict(DEFAULT_METHOD_PARAMS.get(m, {})) for m in methods}
    for m, params in (method_params or {}).items():
        merged.setdefault(m, {}).update(params)
    results = compare_methods(methods, base_config=config, method_params=merged)
    return MethodComparison(config=config, results=results)
