"""ASCII rendering of experiment results (paper-style tables/series)."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Fixed-width table with a header rule, like the paper's tables."""
    rendered_rows = []
    for row in rows:
        rendered_rows.append(
            [float_fmt.format(cell) if isinstance(cell, float) else str(cell) for cell in row]
        )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    label_to_series: dict[str, Sequence[float]],
    x_values: Sequence[int] | None = None,
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Aligned multi-series listing (learning curves as text).

    One row per label; columns are the series values at ``x_values``
    (round indices when given).
    """
    lines = []
    if title:
        lines.append(title)
    width = max((len(label) for label in label_to_series), default=5)
    if x_values is not None:
        header = " " * (width + 2) + " ".join(f"{x:>7d}" for x in x_values)
        lines.append(header)
    for label, series in label_to_series.items():
        values = " ".join(f"{float_fmt.format(v):>7s}" for v in series)
        lines.append(f"{label.ljust(width)}: {values}")
    return "\n".join(lines)
