"""Gram-based anomaly screening of landed uploads.

The streaming collect path already maintains a ``(K, K)`` Gram matrix
incrementally — :class:`repro.core.gram.GramTracker` refreshes one row
per upload.  That matrix is enough to score every upload's distance
from the pool mean *without touching the (K, P) data again*:

    ‖v_i − v̄‖² = G_ii − (2/K) · Σ_j G_ij + (1/K²) · Σ_jl G_jl

Poisoned uploads (sign flips, boosted updates, heavy noise) land far
from the honest cluster, so their distance score is a large multiple
of the cohort median.  The threshold is deliberately conservative —

    flag i  ⇔  score_i > max(median + sigma·MAD, boost·median)

— a row must be both a statistical outlier (``sigma`` median absolute
deviations out) *and* at least ``boost``× the median distance, so the
ordinary spread of honest non-IID updates is never flagged.  Screening
is O(K²) arithmetic per round on the cached Gram.

Flagged rows become :class:`SuspectRecord` entries: surfaced in history
extras, fired through ``ServerCallback.on_suspect_upload``, and — under
``screen="carry"`` — quarantined by restoring the dispatched middleware
row, exactly the stand-in the PR 8 ``carry`` failure policy uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SuspectRecord", "screen_scores"]


@dataclass(frozen=True)
class SuspectRecord:
    """One flagged upload, JSON-friendly via :meth:`summary`."""

    row: int
    client_id: int
    score: float
    threshold: float
    action: str

    def summary(self) -> dict:
        return {
            "row": int(self.row),
            "client": int(self.client_id),
            "score": float(self.score),
            "threshold": float(self.threshold),
            "action": self.action,
        }


def screen_scores(gram, *, sigma: float = 3.0, boost: float = 2.0):
    """``(scores, threshold, flagged_rows)`` from a ``(K, K)`` Gram.

    ``scores[i]`` is ‖v_i − v̄‖ computed purely from Gram algebra (the
    cancellation caveat of ``GramTracker.dispersion`` applies: scores
    are clamped at zero).  ``flagged_rows`` is a sorted index array of
    rows beyond the conservative two-part threshold.
    """
    g = np.asarray(gram, dtype=np.float64)
    k = g.shape[0]
    if g.shape != (k, k) or k < 3:
        raise ValueError(f"screening needs a (K, K) Gram with K >= 3, got {g.shape}")
    diag = np.diag(g)
    d2 = diag - (2.0 / k) * g.sum(axis=1) + g.sum() / (k * k)
    scores = np.sqrt(np.maximum(d2, 0.0))
    med = float(np.median(scores))
    mad = float(np.median(np.abs(scores - med)))
    threshold = max(med + sigma * mad, boost * med)
    flagged = np.flatnonzero(scores > threshold)
    return scores, threshold, flagged
