"""Seeded Byzantine upload attacks.

An attack is a pure function of the *dispatched* row ``d`` (the state
the server sent), the honestly *trained* row ``t`` (what the client
would have uploaded) and a fixed integer seed key — never of wall
clock, backend, or landing order.  Attacks run at the upload boundary:
serial/thread/process backends apply them coordinator-side right after
the trained state lands in the upload buffer, and the distributed
backend applies the same transform host-side so poisoned rows still
never transit the coordinator.  Both sides compute ``d`` and ``t`` in
the pool's buffer dtype and the transform in float64, so the poisoned
bytes are bit-identical on every backend.

Kinds
-----
``sign_flip``
    ``d - scale * (t - d)`` — upload the *negated*, amplified local
    update.  The classic model-poisoning baseline.
``gauss_noise``
    ``t + scale * N(0, I)`` with noise drawn from ``seed_key`` alone,
    so retries and redispatches regenerate identical noise.
``scale``
    ``d + scale * (t - d)`` — an amplified (boosted) honest update.
``label_flip``
    Emulates training on permuted labels by reversing the class axis
    of the classifier head (the lexicographically last 2-D float
    ``.weight`` field and its matching ``.bias``) of the trained row.

Integer columns (step counters and the like) are always restored from
the trained row: attacks poison learnable parameters, not bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.layout import StateLayout

__all__ = [
    "ATTACK_KINDS",
    "DEFAULT_ATTACK_SCALES",
    "AttackSpec",
    "attacked_row",
    "apply_upload_attack",
]

ATTACK_KINDS = ("sign_flip", "gauss_noise", "scale", "label_flip")

#: Per-kind default magnitudes used when ``FaultScenario.attack_scale``
#: is left unset.  Chosen so each attack is clearly harmful to a plain
#: mean under a 20% Byzantine fraction without being numerically silly.
DEFAULT_ATTACK_SCALES = {
    "sign_flip": 4.0,
    "gauss_noise": 1.0,
    "scale": 10.0,
    "label_flip": 1.0,
}


@dataclass(frozen=True)
class AttackSpec:
    """One client-round attack decision, wire-serializable.

    ``seed_key`` is the full RNG key (salt, run seed, round, client) so
    any party — a retried leg, a redispatched stand-in, a remote shard
    host — regenerates exactly the same attack from the spec alone.
    """

    kind: str
    scale: float
    seed_key: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in ATTACK_KINDS:
            raise ValueError(
                f"unknown attack kind {self.kind!r}; valid kinds: {list(ATTACK_KINDS)}"
            )
        if not self.scale > 0:
            raise ValueError(f"attack scale must be > 0, got {self.scale}")

    def to_wire(self) -> dict:
        """JSON-safe dict for the distributed ``train_leg`` meta."""
        return {
            "kind": self.kind,
            "scale": float(self.scale),
            "seed_key": [int(v) for v in self.seed_key],
        }

    @classmethod
    def from_wire(cls, data) -> "AttackSpec":
        return cls(
            kind=str(data["kind"]),
            scale=float(data["scale"]),
            seed_key=tuple(int(v) for v in data["seed_key"]),
        )


def _head_fields(layout: StateLayout):
    """Classifier-head (weight, bias) field specs, bias possibly None.

    Heuristic: the head is the lexicographically *last* 2-D float
    ``.weight`` field (layout keys are sorted, and every bundled model
    names its output ``Linear`` after its hidden blocks); its bias is
    the 1-D field sharing the prefix with matching fan-out.
    """
    weight = None
    for spec in layout.fields:
        if (
            spec.key.endswith(".weight")
            and len(spec.shape) == 2
            and not spec.is_integer
        ):
            weight = spec
    if weight is None:
        raise ValueError(
            "label_flip needs a 2-D float '.weight' classifier head; "
            f"none found among {list(layout.keys)}"
        )
    bias = layout.by_key.get(weight.key[: -len("weight")] + "bias")
    if bias is not None and (
        bias.is_integer or len(bias.shape) != 1 or bias.shape[0] != weight.shape[0]
    ):
        bias = None
    return weight, bias


def attacked_row(
    spec: AttackSpec,
    layout: StateLayout,
    dispatched: np.ndarray,
    trained: np.ndarray,
) -> np.ndarray:
    """Poisoned upload row for ``spec`` (same dtype as ``trained``).

    ``dispatched`` and ``trained`` are 1-D flat rows in the pool's
    buffer dtype; the transform runs in float64 and rounds once on the
    way out, so the result is independent of which backend applies it.
    """
    d = dispatched.astype(np.float64, copy=False)
    t = trained.astype(np.float64, copy=False)
    if spec.kind == "sign_flip":
        out = d - spec.scale * (t - d)
    elif spec.kind == "scale":
        out = d + spec.scale * (t - d)
    elif spec.kind == "gauss_noise":
        noise = np.random.default_rng(list(spec.seed_key)).standard_normal(t.shape[0])
        out = t + spec.scale * noise
    else:  # label_flip
        out = np.array(t, copy=True)
        weight, bias = _head_fields(layout)
        block = t[weight.offset : weight.stop].reshape(weight.shape)
        out[weight.offset : weight.stop] = block[::-1].ravel()
        if bias is not None:
            out[bias.offset : bias.stop] = t[bias.offset : bias.stop][::-1]
    out = out.astype(trained.dtype, copy=False)
    int_mask = layout.integer_mask()
    if int_mask.any():
        out = np.array(out, copy=True) if out is t else out
        out[int_mask] = trained[int_mask]
    return np.array(out, copy=False)


def apply_upload_attack(spec: AttackSpec, uploads, row: int, dispatched_state) -> None:
    """Poison upload ``row`` in place (coordinator-side entry point).

    ``dispatched_state`` is the plan's state dict; it is flattened in
    the buffer dtype so ``d`` matches what a remote host sees in its
    packed dispatch row bit for bit.
    """
    layout = uploads.layout
    dispatched = layout.flatten(dispatched_state, dtype=uploads.dtype)
    trained = np.array(uploads.storage.row(int(row)), copy=True)
    uploads.set_row(int(row), attacked_row(spec, layout, dispatched, trained))
