"""Pluggable aggregation operators over ``PoolBuffer`` blocked row ops.

The server's two aggregation sites — the CrossAggr collaborator blend
and GlobalModelGen / upload averaging — historically hard-coded the
linear mean (``PoolBuffer.cross_aggregate`` / ``mean_state``).  This
module extracts that choice into an :class:`AggregationOperator`
registry mirroring the storage / execution / array-backend plugins:

========================  ====================================================
``mean``                  the reference — delegates to ``mean_state`` /
                          ``cross_aggregate`` and is bitwise identical to the
                          pre-registry server
``trimmed_mean``          per-coordinate mean of the middle ``1 - 2·trim``
                          order statistics (rank-based; ignores weights)
``coordinate_median``     per-coordinate median (rank-based; ignores weights)
``norm_clip``             weighted mean of per-row deviations from the
                          coordinate median, each clipped to the trust radius
========================  ====================================================

Every operator computes through the shard-aware blocked row protocol
(``row_block`` / ``gather_rows`` / ``write_rows`` walked under the
``REPRO_POOL_BLOCK_BYTES`` budget), accumulates in float64 and rounds
once into the buffer dtype, so dense / memmap / sharded / distributed
storage produce bitwise-identical aggregates per budget.  Integer
columns (step counters) are never rank-filtered or averaged: combines
carry them from row 0 (the ``mean_state`` convention) and blends carry
them from the source row (the ``cross_aggregate`` convention).

Robust cross blends use a *trust region*: the operator's robust center
``c`` and the per-row deviation norms ``n_i = ‖m_i − c‖`` give a
radius ``tau = max(med + clip_factor·MAD, 2·med)`` (median /
median-absolute-deviation of the norms — the same robust-location
threshold the Gram screen uses, so honest spread cannot be outvoted
by the outliers it is trying to bound).  Detection reads every float
column for pools under ``2**17`` scalars and a fixed-stride sample
above it (the threshold is scale-free, so the ``√(sample/P)`` norm
shrinkage cancels), keeping the per-round screen an order cheaper
than the full robust center.  Rows outside the region are
*rejected* — replaced by a stand-in before the standard
``alpha``-blend, both as primary rows and as collaborators — so a
poisoned upload neither survives as a pool row nor leaks through a
collaborator pick.  The stand-in is the row's own dispatched
middleware state when the caller supplies the dispatched pool as
``fallback`` (the fault engine's carry degradation: the slot keeps its
honest history, one round stale), else the robust center rounded to
the pool dtype.  Rounds
where no row leaves the trust region
delegate wholesale to ``cross_aggregate``, so benign rounds of a
robust operator remain bitwise identical to the reference blend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.utils.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pool import PoolBuffer


def _pool_ops():
    """The blocked row protocol, imported lazily.

    ``repro.faults`` pulls :mod:`repro.robust.attacks` (hence this
    package) while ``repro.fl`` is still mid-import; a module-level
    ``repro.core`` import here would close that cycle, so the pool
    machinery is fetched on first use instead.
    """
    from repro.core.pool import PoolBuffer, _block_budget, iter_row_spans

    return PoolBuffer, _block_budget, iter_row_spans

__all__ = [
    "AGGREGATION_OPERATORS",
    "AggregationOperator",
    "MeanOperator",
    "TrimmedMeanOperator",
    "CoordinateMedianOperator",
    "NormClipOperator",
    "register_operator",
    "resolve_operator",
    "available_operators",
    "build_operator",
]

AGGREGATION_OPERATORS = Registry("aggregation operator", error_type=ValueError)


def register_operator(name: str):
    """Class decorator registering an :class:`AggregationOperator`."""
    return AGGREGATION_OPERATORS.register(name)


def resolve_operator(name: str) -> type:
    """Operator class for ``name``; ``ValueError`` lists every option."""
    return AGGREGATION_OPERATORS.resolve(name)


def available_operators() -> list[str]:
    """Sorted registered operator names."""
    return AGGREGATION_OPERATORS.available()


def build_operator(name: str, params: Mapping | None = None) -> "AggregationOperator":
    """Instantiate operator ``name`` with ``params`` knobs."""
    return resolve_operator(name)(**dict(params or {}))


def _normalized_weights(weights, k: int) -> np.ndarray:
    if weights is None:
        return np.full(k, 1.0 / k)
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (k,):
        raise ValueError(f"weights of shape {w.shape} != ({k},)")
    total = w.sum()
    if not total > 0:
        raise ValueError("weights must sum to a positive total")
    return w / total


#: Trust-region detection reads at most this many float coordinates —
#: a fixed stride over the float columns, so pools under the cap are
#: screened exactly and larger ones through a deterministic sample
#: whose med/MAD threshold is scale-free.  A pure function of the
#: layout, hence bitwise identical across storage backends.
_DETECTION_SAMPLE = 1 << 17


def _detection_columns(layout, p: int) -> np.ndarray:
    int_mask = layout.integer_mask()
    cols = np.flatnonzero(~int_mask) if int_mask.any() else np.arange(p)
    if cols.size <= _DETECTION_SAMPLE:
        return cols
    stride = -(-cols.size // _DETECTION_SAMPLE)
    return cols[::stride]


def _sorted_median(svals: np.ndarray) -> np.ndarray:
    """Column median of a slab already sorted along axis 0.

    Bitwise ``np.median`` of the float64 cast: the middle order
    statistics are exact casts and the even-K midpoint ``(a + b) / 2``
    is the same IEEE operation ``np.mean`` applies to the two rows.
    """
    k = svals.shape[0]
    mid = svals[(k - 1) // 2].astype(np.float64)
    if k % 2:
        return mid
    return (mid + svals[k // 2].astype(np.float64)) / 2.0


def _deviation_norms(pool: PoolBuffer, center: np.ndarray, float_mask) -> np.ndarray:
    """Per-row ‖m_i − center‖ over float columns, blocked by budget."""
    _, _block_budget, iter_row_spans = _pool_ops()
    storage = pool.storage
    k, p = storage.shape
    block_rows = max(1, _block_budget() // max(1, 2 * p * 8))
    c = center if float_mask is None else center[float_mask]
    norms = np.empty(k, dtype=np.float64)
    for b0, b1 in iter_row_spans(k, block_rows):
        block = storage.row_block(b0, b1).astype(np.float64, copy=False)
        if float_mask is not None:
            block = block[:, float_mask]
        diff = block - c
        norms[b0:b1] = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    return norms


class AggregationOperator:
    """One way to combine pool rows; see the registry table above.

    Subclasses declare accepted constructor knobs in ``params`` (class
    attributes hold the defaults); unknown knobs raise ``ValueError``
    so a typo'd ``--aggregator-params`` fails loudly.
    """

    #: True only when the operator is the linear mean, which is what the
    #: GramTracker closed-form post-blend transform assumes.
    linear = False
    params: tuple[str, ...] = ()

    def __init__(self, **kwargs) -> None:
        unknown = sorted(set(kwargs) - set(self.params))
        if unknown:
            raise ValueError(
                f"unknown {type(self).name!r} aggregator params {unknown}; "
                f"valid params: {list(self.params)}"
            )
        for key, value in kwargs.items():
            setattr(self, key, value)

    def combine(self, pool: PoolBuffer, weights=None, *, precise: bool = True) -> dict:
        """Aggregate all pool rows into one state dict."""
        raise NotImplementedError

    def cross_blend(
        self, pool: PoolBuffer, co_indices, alpha: float, fallback=None
    ) -> PoolBuffer:
        """CrossAggr: blend each row with its collaborator(s).

        ``fallback`` is an optional same-shape :class:`PoolBuffer` of
        per-row stand-in states (the server passes the dispatched
        middleware pool); robust operators replace rejected rows from
        it instead of from their robust center, so a poisoned slot
        degrades to its own one-round-stale honest state — the same
        carry degradation the fault engine applies to failed legs.
        """
        raise NotImplementedError


@register_operator("mean")
class MeanOperator(AggregationOperator):
    """The reference weighted mean — bitwise the pre-registry server."""

    linear = True

    def combine(self, pool, weights=None, *, precise=True):
        return pool.mean_state(weights, precise=precise)

    def cross_blend(self, pool, co_indices, alpha, fallback=None):
        return pool.cross_aggregate(co_indices, alpha)


class _RobustOperator(AggregationOperator):
    """Shared machinery: column-chunked robust center + trust region.

    ``clip_factor`` is the MAD multiplier of the trust radius
    ``tau = max(med + clip_factor·MAD, 2·med)`` — larger values admit
    more spread before a row counts as an outlier.
    """

    params = ("clip_factor",)
    clip_factor = 3.0

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        if not float(self.clip_factor) > 0:
            raise ValueError(f"clip_factor must be > 0, got {self.clip_factor}")

    # -- robust center -----------------------------------------------------
    def _from_sorted(self, svals: np.ndarray) -> np.ndarray:
        """Column statistic of a ``(K, chunk)`` slab sorted along axis 0.

        The slab keeps the buffer dtype; implementations pick their
        order-statistic band and cast it to float64 before averaging,
        which is bitwise what a float64 sort would produce (casts of
        the same values, reduced in the same order) at half the memory
        traffic for float32 pools.
        """
        raise NotImplementedError

    def _center(self, pool: PoolBuffer) -> np.ndarray:
        """Float64 ``(P,)`` robust center, column-chunked under budget.

        Needs all K values of a column at once, so it walks column
        chunks of ``budget / (K·itemsize)`` scalars, filling each
        ``(K, chunk)`` slab through budget row spans and sorting it
        in place (native dtype — the hot path of every robust round).
        Chunking never changes a per-column statistic, so the result
        is bitwise independent of the budget and of the storage
        backend.
        """
        _, _block_budget, iter_row_spans = _pool_ops()
        storage = pool.storage
        k, p = storage.shape
        itemsize = np.dtype(pool.dtype).itemsize
        budget = _block_budget()
        chunk = max(1, budget // max(1, k * itemsize))
        block_rows = max(1, budget // max(1, p * itemsize))
        center = np.empty(p, dtype=np.float64)
        for c0 in range(0, p, chunk):
            c1 = min(c0 + chunk, p)
            vals = np.empty((k, c1 - c0), dtype=pool.dtype)
            for b0, b1 in iter_row_spans(k, block_rows):
                vals[b0:b1] = storage.row_block(b0, b1)[:, c0:c1]
            vals.sort(axis=0)
            center[c0:c1] = self._from_sorted(vals)
        return center

    def _center_state(self, pool: PoolBuffer, center: np.ndarray) -> dict:
        row = center.astype(pool.dtype, copy=False)
        int_mask = pool.layout.integer_mask()
        if int_mask.any():
            row = np.array(row, copy=True)
            row[int_mask] = pool.storage.row(0)[int_mask]
        return pool.layout.unflatten(np.asarray(row), copy=True)

    def _trust_region(self, pool: PoolBuffer):
        """``(center, norms, tau, scales, flagged)`` for the blend.

        ``tau`` is the MAD-based radius from the module docstring;
        ``flagged`` marks rows outside it and ``scales`` holds the
        classic norm-clip ratios ``min(1, tau/n_i)`` for operators
        that want clipping rather than rejection.
        """
        center = self._center(pool)
        int_mask = pool.layout.integer_mask()
        float_mask = ~int_mask if int_mask.any() else None
        norms = _deviation_norms(pool, center, float_mask)
        med = float(np.median(norms))
        mad = float(np.median(np.abs(norms - med)))
        # The 2·med floor keeps a tight honest cluster (tiny MAD) from
        # flagging its own mild stragglers.
        tau = max(med + float(self.clip_factor) * mad, 2.0 * med)
        scales = np.ones(len(norms))
        flagged = norms > tau
        if tau > 0:
            scales[flagged] = tau / norms[flagged]
        else:
            # Majority of rows sit exactly at the center: no spread to
            # estimate a radius from, so nothing is clipped.
            flagged[:] = False
        return center, norms, tau, scales, flagged

    def combine(self, pool, weights=None, *, precise=True):
        # Rank-based combines: weights carry no rank information, so
        # they are deliberately ignored (a zero-weight carried row is
        # just one more order statistic).
        return self._center_state(pool, self._center(pool))

    def _detect(self, pool: PoolBuffer) -> np.ndarray:
        """Boolean flag per row: outside the trust region?

        The blend's hot path: the robust center and the deviation
        norms are taken over :func:`_detection_columns` — every float
        column for pools under the sample cap (bitwise the full trust
        region), a fixed-stride sample above it, where the med/MAD
        threshold is invariant to the ``√(sample/P)`` norm shrinkage.
        """
        _, _block_budget, iter_row_spans = _pool_ops()
        storage = pool.storage
        k, p = storage.shape
        cols = _detection_columns(pool.layout, p)
        itemsize = np.dtype(pool.dtype).itemsize
        block_rows = max(1, _block_budget() // max(1, p * itemsize))
        vals = np.empty((k, cols.size), dtype=pool.dtype)
        for b0, b1 in iter_row_spans(k, block_rows):
            vals[b0:b1] = storage.row_block(b0, b1)[:, cols]
        center = self._from_sorted(np.sort(vals, axis=0))
        diff = vals.astype(np.float64) - center
        norms = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        med = float(np.median(norms))
        mad = float(np.median(np.abs(norms - med)))
        tau = max(med + float(self.clip_factor) * mad, 2.0 * med)
        if not tau > 0:
            # Majority of rows at the center: no spread, nothing flagged.
            return np.zeros(k, dtype=bool)
        return norms > tau

    def cross_blend(self, pool, co_indices, alpha, fallback=None):
        co = np.asarray(co_indices, dtype=np.int64)
        flagged = self._detect(pool)
        if not flagged.any():
            # Every row inside the trust region: the robust blend IS the
            # reference blend, delegated wholesale for bitwise identity.
            return pool.cross_aggregate(co, alpha)
        # Rejection, not projection: a row outside the trust region is
        # replaced by its stand-in *before* the blend, so it neither
        # survives as a pool row nor leaks through a collaborator pick.
        # The stand-ins are patched into the pool for the duration of
        # the reference blend and the original rows restored after —
        # the blend arithmetic stays bitwise the reference path and the
        # caller's pool is bit-identical on return.
        flag_idx = np.flatnonzero(flagged)
        storage = pool.storage
        p = storage.shape[1]
        saved = storage.gather_rows(flag_idx)
        if fallback is not None:
            stand_ins = fallback.storage.gather_rows(flag_idx)
        else:
            # No dispatched pool to degrade to: reject onto the robust
            # center, rounded to the pool dtype like any other row.
            stand_ins = np.broadcast_to(
                self._center(pool).astype(pool.dtype), (flag_idx.size, p)
            )
        int_mask = pool.layout.integer_mask()
        has_int = bool(int_mask.any())
        try:
            for j, i in enumerate(flag_idx):
                row = np.array(stand_ins[j], dtype=pool.dtype, copy=True)
                if has_int:
                    # Integer columns (step counters) survive from the
                    # rejected row itself: the blend carries them from
                    # the source row, never from the stand-in.
                    row[int_mask] = saved[j][int_mask]
                pool.set_row(int(i), row)
            return pool.cross_aggregate(co, alpha)
        finally:
            for j, i in enumerate(flag_idx):
                pool.set_row(int(i), saved[j])


@register_operator("trimmed_mean")
class TrimmedMeanOperator(_RobustOperator):
    """Per-coordinate mean of the middle order statistics.

    ``trim`` is the fraction discarded from *each* end; at small K the
    trim count is clamped so at least one row always survives.
    """

    params = ("trim", "clip_factor")
    trim = 0.25

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        if not 0.0 <= float(self.trim) < 0.5:
            raise ValueError(f"trim must be in [0, 0.5), got {self.trim}")

    def _from_sorted(self, svals):
        k = svals.shape[0]
        lo = min(int(float(self.trim) * k), (k - 1) // 2)
        # dtype=float64 casts each row into the accumulator in the same
        # order a float64 band would reduce — bitwise identical, minus
        # the band-sized temporary.
        return svals[lo : k - lo].mean(axis=0, dtype=np.float64)


@register_operator("coordinate_median")
class CoordinateMedianOperator(_RobustOperator):
    """Per-coordinate median (the K-row 50% breakdown point)."""

    def _from_sorted(self, svals):
        return _sorted_median(svals)


@register_operator("norm_clip")
class NormClipOperator(_RobustOperator):
    """Weighted mean of norm-clipped deviations from the median center.

    Unlike the rank-based operators this one honours sample-count
    weights: the combine is ``c + Σ w_i · min(1, tau/‖d_i‖) · d_i``
    with ``d_i = m_i − c`` and ``c`` the coordinate median.
    """

    def _from_sorted(self, svals):
        return _sorted_median(svals)

    def combine(self, pool, weights=None, *, precise=True):
        _, _block_budget, iter_row_spans = _pool_ops()
        storage = pool.storage
        k, p = storage.shape
        center, _norms, _tau, scales, _flagged = self._trust_region(pool)
        w = _normalized_weights(weights, k)
        block_rows = max(1, _block_budget() // max(1, 2 * p * 8))
        acc = np.zeros(p, dtype=np.float64)
        for b0, b1 in iter_row_spans(k, block_rows):
            block = storage.row_block(b0, b1)
            for i in range(b0, b1):
                dev = block[i - b0].astype(np.float64, copy=False) - center
                acc += (w[i] * scales[i]) * dev
        return self._center_state(pool, center + acc)
