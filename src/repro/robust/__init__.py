"""Byzantine-robust aggregation layer.

PR 8 made the round loop survive *crash* faults; this package makes it
survive *adversarial* uploads — clients that train honestly but upload
poison.  Three pieces, wired through the existing seams:

:mod:`repro.robust.operators`
    The pluggable :class:`AggregationOperator` registry (``mean``,
    ``trimmed_mean``, ``coordinate_median``, ``norm_clip``).  Operators
    compute weighted row combines through the shard-aware blocked row
    protocol of :class:`repro.core.pool.PoolBuffer`, so every backend
    (dense / memmap / sharded / distributed) produces bitwise-identical
    aggregates per block budget.  ``mean`` delegates to the existing
    ``mean_state`` / ``cross_aggregate`` paths and is bitwise identical
    to the reference server.
:mod:`repro.robust.attacks`
    The seeded upload attacks (``sign_flip``, ``gauss_noise``,
    ``scale``, ``label_flip``): pure functions of the dispatched and
    trained flat rows, applied at the upload boundary so the honest
    trained state is never perturbed and every execution backend lands
    the same poisoned bytes.  Which client attacks, and how, is decided
    by :class:`repro.faults.model.ClientPopulation` from a dedicated
    seeded RNG stream.
:mod:`repro.robust.screen`
    Gram-based anomaly screening: each landed upload is scored against
    the pool using the incremental :class:`repro.core.gram.GramTracker`
    similarity already maintained per upload — O(K²) arithmetic on the
    cached Gram, no new (K, P) passes.  Flagged rows surface as
    :class:`SuspectRecord` entries in history extras and the
    :meth:`repro.fl.callbacks.ServerCallback.on_suspect_upload` hook,
    and can be quarantined with ``screen="carry"``.
"""

from repro.robust.attacks import ATTACK_KINDS, AttackSpec, attacked_row
from repro.robust.operators import (
    AGGREGATION_OPERATORS,
    AggregationOperator,
    available_operators,
    build_operator,
    register_operator,
    resolve_operator,
)
from repro.robust.screen import SuspectRecord, screen_scores

__all__ = [
    "ATTACK_KINDS",
    "AttackSpec",
    "attacked_row",
    "AGGREGATION_OPERATORS",
    "AggregationOperator",
    "available_operators",
    "build_operator",
    "register_operator",
    "resolve_operator",
    "SuspectRecord",
    "screen_scores",
]
