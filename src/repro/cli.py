"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    One FL simulation: ``python -m repro run --method fedcross
    --dataset synth_cifar10 --model mlp --rounds 20 --beta 0.1``.
``compare``
    Several methods under shared data/init:
    ``python -m repro compare --methods fedavg,fedcross --rounds 20``.
``bench``
    Regenerate one paper artefact by name:
    ``python -m repro bench table1|table2|table3|fig3|...|fig9``.
``list``
    Show registered methods, models, datasets and pool backends.

Flag defaults mirror :class:`repro.fl.config.FLConfig` (they are read
off a default instance, so the two can never drift): batch size 50,
20 clients, Section IV-A local-training settings.  Beyond the config
fields, the server's phased round loop is exposed through:

``--backend dense|memmap|sharded|distributed`` (alias ``--storage``)
    Pool-storage backend for the server's model buffers
    (:mod:`repro.core.storage`); ``memmap`` keeps pools on disk for
    populations beyond RAM, ``sharded`` splits the pool into N row
    shards (``--shards``, each shard dense or memmap per
    ``--shard-placement``) so no operation ever needs the whole
    matrix as one allocation, and ``distributed`` places the row
    shards on ``--hosts`` socket-RPC worker processes
    (:mod:`repro.distributed`) — all backends are bit-identical.
``--execution serial|thread|process|distributed`` / ``--workers N``
    Client-execution backend for the collect phase
    (:mod:`repro.fl.execution`); ``process`` trains the round's clients
    on a persistent worker pool with shared-memory upload packing,
    ``distributed`` co-locates each leg with the shard host owning its
    upload row (requires ``--backend distributed``).  Histories are
    bit-identical across backends.
``--streaming`` / ``--no-streaming``
    Overlap behaviour of the collect phase (default: streaming).  The
    server consumes uploads *as legs complete*, packing each one — and
    running per-upload work like FedCross's incremental Gram updates —
    while slower clients are still training; ``--no-streaming``
    restores the gathered reference schedule.  Both schedules are
    bit-identical in histories, uploads and RNG state; streaming only
    moves server-side work off the round's critical path.
``--array-backend numpy|cupy|...``
    Array backend tensor math dispatches through
    (:mod:`repro.tensor.backend`); workers of the ``process``
    execution backend activate it too.  The ``numpy`` backend is
    bit-identical to direct-numpy execution; ``cupy`` registers only
    when importable.
``--faults`` / ``--quorum`` / ``--failure-policy`` / ``--leg-retries``
/ ``--leg-timeout`` / ``--leg-backoff``
    The resilience layer (:mod:`repro.faults`): a seeded client-fault
    scenario (availability churn, dropouts, stragglers — identical on
    every backend), the fresh-upload quorum a round must reach, what
    happens to failed legs (``fail`` aborts, ``carry`` keeps the stale
    middleware row, ``redispatch`` reissues once), and the bounded
    retry/timeout/backoff knobs for infrastructure failures.  Scenario
    knobs also cover the seeded adversarial client model
    (``byzantine_frac`` / ``attack`` / ``attack_scale``).
``--aggregator`` / ``--aggregator-params`` / ``--screen``
    The Byzantine-robust aggregation layer (:mod:`repro.robust`):
    which aggregation operator drives CrossAggr blends and
    GlobalModelGen (``mean`` — bitwise the reference path —
    ``trimmed_mean``, ``coordinate_median`` or ``norm_clip``, plus
    operator knobs as JSON), and whether the Gram-based anomaly
    screen flags or quarantines suspect uploads before aggregation.
``--progress``
    Attach a :class:`~repro.fl.callbacks.ThroughputLogger` printing
    per-round wall-clock and a throughput summary to stderr.
``--early-stop-patience N``
    Attach a :class:`~repro.fl.callbacks.BestStateCheckpointer`: stop
    after N non-improving evaluations and restore the best state.
"""

from __future__ import annotations

import argparse
import functools
import json
import sys

from repro.api import compare_methods, run_method
from repro.data.federated import DATASET_BUILDERS
from repro.fl.callbacks import BestStateCheckpointer, ThroughputLogger
from repro.fl.config import FLConfig
from repro.fl.registry import available_methods
from repro.models.registry import available_models

__all__ = ["main", "build_parser"]

# Single source of truth for flag defaults: the config dataclass.
_DEFAULTS = FLConfig()


def _backend(value: str) -> str:
    """Validate ``--backend`` at parse time (fail fast, registry open).

    Resolved against the live backend registry rather than a static
    ``choices`` list, so third-party backends registered before CLI
    invocation remain selectable.
    """
    from repro.core.storage import resolve_backend

    try:
        resolve_backend(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(exc.args[0])
    return value.lower()


def _execution(value: str) -> str:
    """Validate ``--execution`` against the live execution registry."""
    from repro.fl.execution import resolve_execution

    try:
        resolve_execution(value)
    except KeyError as exc:
        raise argparse.ArgumentTypeError(exc.args[0])
    return value.lower()


def _array_backend(value: str) -> str:
    """Validate ``--array-backend`` against the live array-backend registry."""
    from repro.tensor.backend import resolve_array_backend

    try:
        resolve_array_backend(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(exc.args[0])
    return value.lower()


def _aggregator(value: str) -> str:
    """Validate ``--aggregator`` against the live operator registry."""
    from repro.robust.operators import resolve_operator

    try:
        resolve_operator(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(exc.args[0])
    return value.lower()


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default=_DEFAULTS.dataset)
    parser.add_argument("--model", default=_DEFAULTS.model)
    parser.add_argument(
        "--beta",
        default=str(_DEFAULTS.heterogeneity),
        help='Dirichlet beta (float) or "iid"',
    )
    parser.add_argument("--clients", type=int, default=_DEFAULTS.num_clients)
    parser.add_argument(
        "--participation", type=float, default=_DEFAULTS.participation
    )
    parser.add_argument(
        "--k-active",
        type=int,
        default=None,
        help="absolute active-client count per round (overrides --participation)",
    )
    parser.add_argument("--rounds", type=int, default=_DEFAULTS.rounds)
    parser.add_argument("--local-epochs", type=int, default=_DEFAULTS.local_epochs)
    parser.add_argument("--batch-size", type=int, default=_DEFAULTS.batch_size)
    parser.add_argument("--lr", type=float, default=_DEFAULTS.lr)
    parser.add_argument("--momentum", type=float, default=_DEFAULTS.momentum)
    parser.add_argument("--weight-decay", type=float, default=_DEFAULTS.weight_decay)
    parser.add_argument("--eval-every", type=int, default=_DEFAULTS.eval_every)
    parser.add_argument(
        "--eval-batch-size", type=int, default=_DEFAULTS.eval_batch_size
    )
    parser.add_argument(
        "--backend",
        "--storage",
        type=_backend,
        default=_DEFAULTS.backend,
        help=(
            'pool-storage backend: "dense" (in-memory), "memmap" '
            '(file-backed), "sharded" (row shards; see --shards) or '
            '"distributed" (row shards on socket-RPC host processes; '
            "see --hosts)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=_DEFAULTS.shards,
        help=(
            "row-shard count for the sharded pool backend "
            "(default: REPRO_POOL_SHARDS or 4)"
        ),
    )
    parser.add_argument(
        "--shard-placement",
        type=_backend,
        default=_DEFAULTS.shard_placement,
        help=(
            'storage medium of each row shard of the sharded (or '
            'distributed) backend: "dense" (default) or "memmap" '
            "(shards on disk — pools beyond RAM)"
        ),
    )
    parser.add_argument(
        "--hosts",
        type=_positive_int,
        default=_DEFAULTS.hosts,
        help=(
            "shard-host process count for the distributed pool backend "
            "(default: REPRO_POOL_HOSTS or 2)"
        ),
    )
    parser.add_argument(
        "--execution",
        type=_execution,
        default=_DEFAULTS.execution,
        help=(
            'client-execution backend: "serial", "thread", "process" or '
            '"distributed" (legs co-located with their upload shards; '
            "requires --backend distributed)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=_DEFAULTS.workers,
        help="worker count for parallel execution backends (default: one per core)",
    )
    parser.add_argument(
        "--array-backend",
        type=_array_backend,
        default=_DEFAULTS.array_backend,
        help=(
            "array backend tensor math dispatches through "
            '("numpy", "cupy" when installed, ...; default: the '
            "process-wide active backend — REPRO_ARRAY_BACKEND or numpy)"
        ),
    )
    parser.add_argument(
        "--streaming",
        action=argparse.BooleanOptionalAction,
        default=_DEFAULTS.streaming,
        help=(
            "consume client uploads as they complete, overlapping "
            "server-side packing/similarity work with still-running "
            "training legs (bit-identical to the gathered schedule; "
            "--no-streaming restores it)"
        ),
    )
    parser.add_argument(
        "--round-mode",
        default=_DEFAULTS.round_mode,
        choices=("sync", "async"),
        help=(
            "round schedule: sync (default — each round blocks on its "
            "slowest leg) or async (bounded-staleness overlap: round t+1 "
            "dispatches while round t stragglers finish; see "
            "--max-staleness)"
        ),
    )
    parser.add_argument(
        "--max-staleness",
        type=int,
        default=_DEFAULTS.max_staleness,
        help=(
            "async round schedule's staleness bound S: at most S+1 rounds "
            "in flight, and no pool row is blended by a round older than "
            "the round that last wrote it (S=0, the default, is bitwise "
            "the sync schedule)"
        ),
    )
    parser.add_argument(
        "--faults",
        default=_DEFAULTS.faults,
        help=(
            "client-fault scenario: a JSON object of FaultScenario knobs "
            '(e.g. \'{"availability": 0.9, "dropout": 0.1}\') or a path '
            "to a scenario file; decisions are seeded and identical on "
            "every backend (default: no faults)"
        ),
    )
    parser.add_argument(
        "--quorum",
        type=float,
        default=_DEFAULTS.quorum,
        help=(
            "fraction of the cohort that must deliver fresh uploads for a "
            "round to count (default 1.0 — every leg)"
        ),
    )
    parser.add_argument(
        "--failure-policy",
        default=_DEFAULTS.failure_policy,
        choices=("fail", "carry", "redispatch"),
        help=(
            "what happens to a failed leg: abort the round (fail, the "
            "default), keep its stale middleware row (carry), or reissue "
            "it once before carrying (redispatch)"
        ),
    )
    parser.add_argument(
        "--leg-retries",
        type=int,
        default=_DEFAULTS.leg_retries,
        help="bounded retries for leg errors/timeouts (default 0)",
    )
    parser.add_argument(
        "--leg-timeout",
        type=float,
        default=_DEFAULTS.leg_timeout,
        help=(
            "wall-clock seconds to wait for in-flight legs on parallel "
            "backends before declaring the rest timed out (default: none)"
        ),
    )
    parser.add_argument(
        "--leg-backoff",
        type=float,
        default=_DEFAULTS.leg_backoff,
        help="base backoff seconds; retry i sleeps leg_backoff * 2**(i-1)",
    )
    parser.add_argument(
        "--aggregator",
        type=_aggregator,
        default=_DEFAULTS.aggregator,
        help=(
            'aggregation operator for CrossAggr blends and GlobalModelGen: '
            '"mean" (default, bitwise the reference path), "trimmed_mean", '
            '"coordinate_median" or "norm_clip" (repro.robust.operators)'
        ),
    )
    parser.add_argument(
        "--aggregator-params",
        default=None,
        help=(
            "JSON object of operator knobs, e.g. "
            '\'{"trim": 0.25}\' or \'{"clip_factor": 3.0}\''
        ),
    )
    parser.add_argument(
        "--screen",
        default=_DEFAULTS.screen,
        choices=("flag", "carry"),
        help=(
            "Gram-based anomaly screening of landed uploads: flag "
            "(record suspects in history extras) or carry (additionally "
            "quarantine flagged rows; default: off)"
        ),
    )
    parser.add_argument("--seed", type=int, default=_DEFAULTS.seed)
    parser.add_argument("--alpha", type=float, default=0.9, help="FedCross fusion weight")
    parser.add_argument(
        "--selection",
        default="lowest",
        choices=("in_order", "highest", "lowest"),
        help="FedCross CoModelSel strategy",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="log per-round wall-clock and a throughput summary to stderr",
    )
    parser.add_argument(
        "--early-stop-patience",
        type=_positive_int,
        default=None,
        help="stop after this many non-improving evaluations and restore the best state",
    )
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FedCross reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one FL simulation")
    run_p.add_argument("--method", default="fedcross")
    _add_run_args(run_p)

    cmp_p = sub.add_parser("compare", help="compare methods on shared data")
    cmp_p.add_argument(
        "--methods", default="fedavg,fedcross", help="comma-separated method names"
    )
    _add_run_args(cmp_p)

    bench_p = sub.add_parser("bench", help="regenerate a paper table/figure")
    bench_p.add_argument(
        "artifact",
        choices=(
            "table1", "table2", "table3",
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        ),
    )
    bench_p.add_argument("--seed", type=int, default=0)

    sub.add_parser("list", help="list methods, models, datasets and backends")
    return parser


def _heterogeneity(value: str):
    return "iid" if value.lower() == "iid" else float(value)


def _config_kwargs(args) -> dict:
    return dict(
        dataset=args.dataset,
        model=args.model,
        heterogeneity=_heterogeneity(args.beta),
        num_clients=args.clients,
        participation=args.participation,
        k_active=args.k_active,
        rounds=args.rounds,
        local_epochs=args.local_epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        momentum=args.momentum,
        weight_decay=args.weight_decay,
        eval_every=args.eval_every,
        eval_batch_size=args.eval_batch_size,
        backend=args.backend,
        shards=args.shards,
        shard_placement=args.shard_placement,
        hosts=args.hosts,
        execution=args.execution,
        workers=args.workers,
        array_backend=args.array_backend,
        streaming=args.streaming,
        round_mode=args.round_mode,
        max_staleness=args.max_staleness,
        faults=args.faults,
        quorum=args.quorum,
        failure_policy=args.failure_policy,
        leg_timeout=args.leg_timeout,
        leg_retries=args.leg_retries,
        leg_backoff=args.leg_backoff,
        aggregator=args.aggregator,
        aggregator_params=(
            json.loads(args.aggregator_params) if args.aggregator_params else {}
        ),
        screen=args.screen,
        seed=args.seed,
    )


def _callback_factory(args):
    """Zero-arg factory building fresh callbacks from the CLI flags.

    A factory (not a shared list) because the checkpointer is stateful
    and ``compare`` runs several methods back to back.
    """

    def build():
        callbacks = []
        if args.progress:
            callbacks.append(ThroughputLogger(log=functools.partial(print, file=sys.stderr)))
        if args.early_stop_patience is not None:
            callbacks.append(BestStateCheckpointer(patience=args.early_stop_patience))
        return callbacks

    return build


def _cmd_run(args) -> int:
    method_params = (
        {"alpha": args.alpha, "selection": args.selection}
        if args.method == "fedcross"
        else {}
    )
    result = run_method(
        args.method,
        method_params=method_params,
        callbacks=_callback_factory(args)(),
        **_config_kwargs(args),
    )
    if args.json:
        print(
            json.dumps(
                {
                    "method": args.method,
                    "backend": args.backend,
                    "execution": args.execution,
                    "final_accuracy": result.final_accuracy,
                    "best_accuracy": result.best_accuracy,
                    "accuracies": result.history.accuracies,
                    "rounds": result.history.rounds,
                    "comm_params": result.history.total_comm_params(),
                }
            )
        )
    else:
        print(f"method={args.method} dataset={args.dataset} model={args.model}")
        for r, a in zip(result.history.rounds, result.history.accuracies):
            print(f"  round {r + 1:>4}: accuracy {a:.4f}")
        print(f"final={result.final_accuracy:.4f} best={result.best_accuracy:.4f}")
    return 0


def _cmd_compare(args) -> int:
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    results = compare_methods(
        methods,
        method_params={"fedcross": {"alpha": args.alpha, "selection": args.selection}},
        callbacks=_callback_factory(args),
        **_config_kwargs(args),
    )
    if args.json:
        print(
            json.dumps(
                {
                    m: {
                        "final_accuracy": r.final_accuracy,
                        "best_accuracy": r.best_accuracy,
                        "accuracies": r.history.accuracies,
                    }
                    for m, r in results.items()
                }
            )
        )
    else:
        for m, r in results.items():
            print(f"{m:>10}: final={r.final_accuracy:.4f} best={r.best_accuracy:.4f}")
    return 0


def _cmd_bench(args) -> int:
    from repro.experiments import (
        fig3, fig4, fig5, fig6, fig7, fig8, fig9, table1, table2, table3,
    )

    if args.artifact == "table1":
        print(table1.format_table1(table1.run_table1()))
    elif args.artifact == "table2":
        print(table2.format_table2(table2.run_table2(seed=args.seed, row_set="smoke")))
    elif args.artifact == "table3":
        print(table3.format_table3(table3.run_table3(seed=args.seed)))
    elif args.artifact == "fig3":
        print(fig3.format_fig3(fig3.run_fig3(seed=args.seed)))
    elif args.artifact == "fig4":
        print(fig4.format_fig4(fig4.run_fig4(seed=args.seed)))
    elif args.artifact == "fig5":
        print(fig5.format_fig5(fig5.run_fig5_panel(seed=args.seed)))
    elif args.artifact == "fig6":
        print(fig6.format_fig6(fig6.run_fig6(seed=args.seed)))
    elif args.artifact == "fig7":
        print(fig7.format_fig7(fig7.run_fig7(seed=args.seed)))
    elif args.artifact == "fig8":
        print(fig8.format_fig8(fig8.run_fig8(seed=args.seed)))
    elif args.artifact == "fig9":
        print(fig9.format_fig9(fig9.run_fig9(seed=args.seed)))
    return 0


def _cmd_list() -> int:
    from repro.core.storage import available_backends
    from repro.fl.execution import available_executions
    from repro.robust.operators import available_operators
    from repro.tensor.backend import available_array_backends

    print("methods:    ", ", ".join(available_methods()))
    print("models:     ", ", ".join(available_models()))
    print("datasets:   ", ", ".join(sorted(DATASET_BUILDERS)))
    print("backends:   ", ", ".join(available_backends()))
    print("execution:  ", ", ".join(available_executions()))
    print("arrays:     ", ", ".join(available_array_backends()))
    print("aggregators:", ", ".join(available_operators()))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "bench":
        return _cmd_bench(args)
    return _cmd_list()


if __name__ == "__main__":
    sys.exit(main())
