"""The FedCross server (Algorithm 1).

Maintains K middleware models; each round:

* line 4-5: sample K clients and *shuffle* the model→client assignment
  (without shuffling, a middleware model keeps meeting the same
  clients — benched in the shuffle ablation);
* line 7-10: local training of each middleware model on its client;
* line 11-14: ``CoModelSel`` + ``CrossAggr`` produce the next pool;
* line 17: ``GlobalModelGen`` averages the pool into the
  deployment-only global model (used here for per-round evaluation,
  exactly like the paper's "pseudo-global model" for Figure 5).

The pool lives in a vectorized :class:`repro.core.pool.PoolBuffer`
(one ``(K, P)`` float32 matrix) across rounds, so every server-side
step — similarity ranking, cross-aggregation, global-model generation
— is a handful of BLAS-level array ops instead of per-key dict loops.
The ``middleware`` attribute remains a list-of-state-dicts view for
diagnostics and tests.

The K local-training legs themselves run on the server's pluggable
execution backend (:mod:`repro.fl.execution`): each plan carries its
middleware index as the upload-buffer ``row``, so ``process`` workers
pack trained models straight into shared-memory rows in model order —
bit-identical to the sequential schedule, K-way parallel in wall
clock.

Similarity work rides the **incremental Gram engine**
(:class:`repro.core.gram.GramTracker`) whenever cosine similarity
drives ``CoModelSel``: the streaming collect phase feeds one O(K·P)
row update per landing upload (hidden behind still-running legs), so
by aggregation time selection is a ``(K, K)`` argmin on the tracked
Gram, the new pool's Gram follows by the closed-form post-CrossAggr
transform, and ``middleware_similarity()`` / ``pool_dispersion()``
are served as pure algebra without re-reading pool data — within the
ulp tolerances documented in :mod:`repro.core.gram`.  ``in_order``
runs skip the maintenance entirely; ``euclidean`` falls back to the
blocked fresh recompute.

``method_params`` accepted (paper defaults in Section IV-A):

========================  ========================  =============================================
``alpha``                 fusion weight, default 0.99
``selection``             in_order | highest | lowest (default lowest)
``measure``               cosine (default) | euclidean
``shuffle``               bool, Algorithm 1 line 5 (default True)
``propeller_rounds``      rounds of propeller-model warm-up (default 0)
``num_propellers``        propellers per model during warm-up (default 3)
``dynamic_alpha_rounds``  rounds of alpha ramp 0.5→alpha (default 0)
========================  ========================  =============================================
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.acceleration import DynamicAlphaSchedule, propeller_index_matrix
from repro.core.aggregation import validate_alpha
from repro.core.gram import GramTracker
from repro.core.pool import PoolBuffer
from repro.core.selection import CoModelSel
from repro.fl.client import Client
from repro.fl.metrics import TrainingHistory
from repro.fl.registry import register_method
from repro.fl.server import DispatchPlan, FederatedServer
from repro.fl.trainer import LocalResult
from repro.utils.layout import StateLayout

__all__ = ["FedCrossServer"]


@register_method("fedcross")
class FedCrossServer(FederatedServer):
    """Multi-to-multi training with multi-model cross-aggregation."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        params = self.config.method_params
        self.alpha = validate_alpha(params.get("alpha", 0.99))
        self.shuffle = bool(params.get("shuffle", True))
        param_keys = {name for name, _ in self.model.named_parameters()}
        self.selector = CoModelSel(
            strategy=params.get("selection", "lowest"),
            measure=params.get("measure", "cosine"),
            param_keys=param_keys,
        )
        self.propeller_rounds = int(params.get("propeller_rounds", 0))
        self.num_propellers = int(params.get("num_propellers", 3))
        da_rounds = int(params.get("dynamic_alpha_rounds", 0))
        # PM-DA staging (Figure 9): propellers first, then the alpha ramp.
        self._da_schedule = (
            DynamicAlphaSchedule(self.alpha, da_rounds + self.propeller_rounds)
            if da_rounds > 0
            else None
        )

        k = self.config.clients_per_round
        # Line 2 of Algorithm 1: all K middleware models start from the
        # same deterministic init (so FedCross and the baselines share a
        # starting point for fair curves).  The pool is one (K, P)
        # float32 matrix, kept in buffer form for the whole run.
        init_state = self.model.state_dict()
        self._layout = StateLayout.from_state(init_state)
        self._pool = PoolBuffer.broadcast(
            init_state, k, dtype=np.float32, backend=self.backend,
            backend_options=self.backend_options,
        )
        self.result_extras: dict = {}
        # Incremental-similarity engine: when cosine similarity drives
        # CoModelSel, a GramTracker follows the upload buffer row by
        # row as legs land (O(K·P) per upload, hidden behind
        # still-running legs under streaming collect), selection
        # becomes (K, K) algebra on the tracked Gram, and the
        # closed-form post-CrossAggr transform keeps a pool Gram for
        # the diagnostics without ever re-reading pool data.  in_order
        # runs skip the maintenance cost entirely (they never needed
        # similarity) and euclidean falls back to fresh blocked
        # recompute (Gram-recovered distances cancel catastrophically).
        self._track_gram = (
            self.selector.strategy in ("highest", "lowest")
            and self.selector.measure == "cosine"
        )
        self._upload_gram: GramTracker | None = None
        self._pool_gram: GramTracker | None = None

    # -- pool access ---------------------------------------------------------
    @property
    def middleware(self) -> list[dict]:
        """The pool as state dicts (zero-copy views into the buffer)."""
        return self._pool.states()

    @middleware.setter
    def middleware(self, states: Sequence[Mapping[str, np.ndarray]]) -> None:
        self._pool = PoolBuffer.from_states(
            list(states), layout=self._layout, dtype=np.float32,
            backend=self.backend, backend_options=self.backend_options,
        )
        self._pool_gram = None  # pool replaced outside the tracked flow

    @property
    def pool(self) -> PoolBuffer:
        """The live middleware pool buffer."""
        return self._pool

    # -- alpha / acceleration -------------------------------------------------
    def alpha_at(self, round_idx: int) -> float:
        """Effective fusion weight for ``round_idx`` (dynamic-α aware)."""
        if self._da_schedule is not None and round_idx >= self.propeller_rounds:
            return self._da_schedule.alpha_at(round_idx)
        return self.alpha

    def _use_propellers(self, round_idx: int) -> bool:
        return round_idx < self.propeller_rounds

    # -- Algorithm 1 as phases ---------------------------------------------------
    def dispatch(self, active: list[Client]) -> list[DispatchPlan]:
        """Lines 4-5: shuffle the model → client assignment.

        Middleware model i goes to client ``active[assignment[i]]``;
        each plan carries its model index as the upload-buffer ``row``
        so the default ``collect`` packs uploads back in model order.
        """
        k = len(self._pool)
        if len(active) != k:
            raise RuntimeError(
                f"FedCross needs exactly K={k} active clients, got {len(active)}"
            )
        assignment = list(range(k))
        if self.shuffle:
            self.rng.shuffle(assignment)
        plans: list[DispatchPlan | None] = [None] * k
        for i in range(k):
            plans[assignment[i]] = DispatchPlan(
                self._pool.as_state(i), context={"row": i}
            )
        return plans

    def on_upload(self, row: int, result: LocalResult) -> None:
        """Feed the incremental Gram as each upload lands (O(K·P)).

        Row updates are bitwise independent of arrival order (see
        :class:`~repro.core.gram.GramTracker`), so streamed completion
        order and the gathered plan-order schedule produce the same
        Gram — the property that keeps streaming collect bit-identical.
        """
        if not self._track_gram:
            return
        uploads = self.uploads
        if self._upload_gram is None or self._upload_gram.pool is not uploads:
            self._upload_gram = GramTracker(
                uploads, param_keys=self.selector.param_keys
            )
        self._upload_gram.update_row(row)

    def _fresh_upload_gram(self, uploaded: PoolBuffer) -> np.ndarray | None:
        """The round's fully refreshed upload Gram, if one is tracked."""
        gram = self._upload_gram
        if not self._track_gram or gram is None or gram.pool is not uploaded:
            return None
        return gram.gram

    def _screen_uploads(
        self,
        uploaded: PoolBuffer,
        active: list[Client],
        plans: list[DispatchPlan],
        tracker: GramTracker | None,
    ) -> None:
        """Gram-based anomaly screen over this round's landed uploads.

        Scores every row's distance from the upload mean straight off
        the ``(K, K)`` Gram — O(K²) algebra on matrix entries that
        already exist, never a fresh ``(K, P)`` pass when the
        incremental tracker followed the round.  Flagged rows become
        :class:`~repro.robust.screen.SuspectRecord`\\ s on
        ``last_suspects`` (surfaced in the round's history extras) and
        fire :meth:`~repro.fl.callbacks.ServerCallback.on_suspect_upload`;
        under ``screen="carry"`` each flagged row is additionally
        quarantined — its dispatched middleware state restored (the
        same degradation the fault engine applies to failed legs) and
        the tracked Gram refreshed in place, so CoModelSel and
        CrossAggr never see the suspect update.
        """
        mode = self.screen
        k = len(uploaded)
        if mode is None or k < 3:
            return
        from repro.robust.screen import SuspectRecord, screen_scores

        gram = (
            tracker.gram
            if tracker is not None
            else uploaded.gram_matrix(param_keys=self.selector.param_keys)
        )
        scores, threshold, flagged = screen_scores(gram)
        if flagged.size == 0:
            return
        # Plan j carries its middleware index as context["row"] and was
        # trained by active[j] — invert that to name the suspect client.
        by_row: dict[int, tuple[int, DispatchPlan]] = {}
        for j, plan in enumerate(plans):
            if plan is not None and j < len(active):
                by_row[int(plan.context["row"])] = (active[j].client_id, plan)
        records = []
        for row in flagged:
            row = int(row)
            client_id, plan = by_row.get(row, (-1, None))
            records.append(
                SuspectRecord(
                    row=row,
                    client_id=int(client_id),
                    score=float(scores[row]),
                    threshold=float(threshold),
                    action=mode,
                )
            )
            if mode == "carry" and plan is not None:
                uploaded.set_state(row, plan.state)
                if tracker is not None:
                    # In-place Gram refresh: selection below reads the
                    # quarantined row, not the suspect one.
                    tracker.update_row(row)
        self.last_suspects = records
        for record in records:
            for cb in self.callbacks:
                cb.on_suspect_upload(self, record)

    def aggregate(
        self,
        active: list[Client],
        results: list[LocalResult],
        plans: list[DispatchPlan],
    ) -> dict:
        """Lines 11-14: CoModelSel + CrossAggr over the uploaded pool.

        When the tracker followed this round's uploads, CoModelSel runs
        on the tracked Gram (pure ``(K, K)`` algebra — no similarity
        recompute) and the new pool's Gram is derived by the closed-form
        post-CrossAggr transform, keeping ``middleware_similarity`` /
        ``pool_dispersion`` data-free too.

        The blend itself routes through the configured aggregation
        operator (``FLConfig.aggregator``): ``mean`` delegates straight
        to :meth:`~repro.core.pool.PoolBuffer.cross_aggregate` (bitwise
        the reference path); robust operators reject uploads outside
        their trust region first, degrading each rejected slot to its
        dispatched middleware state (the fault engine's carry).  The closed-form Gram transform is
        only valid for the linear mean blend, so non-linear operators
        drop the pool Gram and the diagnostics fall back to fresh
        recomputes.
        """
        k = len(self._pool)
        uploaded = self.uploads  # packed in model order by collect()
        alpha = self.alpha_at(self.round_idx)
        gram = self._fresh_upload_gram(uploaded)
        tracker = self._upload_gram if gram is not None else None
        if self.screen is not None:
            self._screen_uploads(uploaded, active, plans, tracker)
        # The closed-form post-CrossAggr Gram transform models the
        # linear blend exactly; robust operators bend flagged rows, so
        # their output Gram must be recomputed from data when needed.
        track = tracker is not None and self.aggregator.linear
        if k == 1:
            co_indices = np.zeros(1, dtype=np.int64)
            # Copy: the upload buffer is reused next round and must not
            # alias the live pool.
            self._pool = uploaded.copy()
            self._pool_gram = (
                GramTracker(
                    self._pool, param_keys=self.selector.param_keys, gram=gram
                )
                if tracker is not None
                else None
            )
        elif self._use_propellers(self.round_idx):
            props = propeller_index_matrix(self.round_idx, k, self.num_propellers)
            co_indices = props[:, 0]
            self._pool = self.aggregator.cross_blend(
                uploaded, props, alpha, fallback=self._pool
            )
            self._pool_gram = (
                tracker.cross_aggregated(props, alpha, pool=self._pool)
                if track
                else None
            )
        else:
            co_indices = self.selector.select_all(uploaded, self.round_idx, gram=gram)
            self._pool = self.aggregator.cross_blend(
                uploaded, co_indices, alpha, fallback=self._pool
            )
            self._pool_gram = (
                tracker.cross_aggregated(co_indices, alpha, pool=self._pool)
                if track
                else None
            )

        self.charge_round_communication(active)
        return {
            "train_loss": self.mean_local_loss(results),
            "alpha": alpha,
            "co_indices": [int(j) for j in co_indices],
        }

    def finalize_fit(self, history: TrainingHistory) -> None:
        # Surface the converged pool's similarity structure (the paper's
        # "middleware models grow similar" narrative) on the result.
        # Runs before callback on_fit_end hooks, so a checkpointer's
        # best-state restore (which broadcasts one state over the pool)
        # cannot flatten the diagnostic to all-ones first.
        self.result_extras["middleware_similarity"] = self.middleware_similarity()

    # -- deployment --------------------------------------------------------------
    def global_state(self) -> dict:
        """Line 17: deployment-only global model (GlobalModelGen).

        Routed through the configured aggregation operator: ``mean``
        is the paper's uniform pool average (bitwise the
        :func:`~repro.core.aggregation.global_model_generation`
        reference); robust operators deploy their robust center
        instead, so a poisoned middleware row cannot steer the
        deployed model even when it slipped past screening.
        """
        return self.aggregator.combine(self._pool)

    def set_global_state(self, state: Mapping[str, np.ndarray]) -> None:
        """Reset the whole pool to ``state`` (checkpoint restore).

        The deployable model is the uniform pool average, so restoring a
        checkpoint broadcasts it back over all K middleware rows —
        exactly Algorithm 1's line-2 initialisation from a shared state.
        """
        self._pool = PoolBuffer.broadcast(
            state, len(self._pool), dtype=np.float32, backend=self.backend,
            backend_options=self.backend_options,
        )
        self._pool_gram = None  # pool replaced outside the tracked flow

    def middleware_similarity(self) -> np.ndarray:
        """Pairwise cosine similarity of the current pool (diagnostic).

        The paper argues middleware models grow increasingly similar
        over training; the integration tests assert this trend.  When
        the incremental Gram engine followed this pool through the
        round (cosine-selection runs), this is pure ``(K, K)`` algebra
        on the closed-form post-CrossAggr Gram — within documented ulp
        tolerance of a fresh recompute (see :mod:`repro.core.gram`);
        otherwise it falls back to the blocked recompute.
        """
        gram = self._pool_gram
        if gram is not None and gram.pool is self._pool:
            return gram.similarity()
        return self._pool.similarity_matrix(
            measure="cosine", param_keys=self.selector.param_keys
        )

    def pool_dispersion(self) -> float:
        """RMS distance of pool members from their mean (diagnostic).

        Served from the tracked Gram when available (O(K²), no pool
        reads — subject to the converged-pool cancellation caveat in
        :mod:`repro.core.gram`); falls back to the cancellation-safe
        streamed recompute otherwise.
        """
        gram = self._pool_gram
        if gram is not None and gram.pool is self._pool:
            return gram.dispersion()
        return self._pool.dispersion(param_keys=self.selector.param_keys)
