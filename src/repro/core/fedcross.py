"""The FedCross server (Algorithm 1).

Maintains K middleware models; each round:

* line 4-5: sample K clients and *shuffle* the model→client assignment
  (without shuffling, a middleware model keeps meeting the same
  clients — benched in the shuffle ablation);
* line 7-10: local training of each middleware model on its client;
* line 11-14: ``CoModelSel`` + ``CrossAggr`` produce the next pool;
* line 17: ``GlobalModelGen`` averages the pool into the
  deployment-only global model (used here for per-round evaluation,
  exactly like the paper's "pseudo-global model" for Figure 5).

The pool lives in a vectorized :class:`repro.core.pool.PoolBuffer`
(one ``(K, P)`` float32 matrix) across rounds, so every server-side
step — similarity ranking, cross-aggregation, global-model generation
— is a handful of BLAS-level array ops instead of per-key dict loops.
The ``middleware`` attribute remains a list-of-state-dicts view for
diagnostics and tests.

The K local-training legs themselves run on the server's pluggable
execution backend (:mod:`repro.fl.execution`): each plan carries its
middleware index as the upload-buffer ``row``, so ``process`` workers
pack trained models straight into shared-memory rows in model order —
bit-identical to the sequential schedule, K-way parallel in wall
clock.

Similarity work rides the **incremental Gram engine**
(:class:`repro.core.gram.GramTracker`) whenever cosine similarity
drives ``CoModelSel``: the streaming collect phase feeds one O(K·P)
row update per landing upload (hidden behind still-running legs), so
by aggregation time selection is a ``(K, K)`` argmin on the tracked
Gram, the new pool's Gram follows by the closed-form post-CrossAggr
transform, and ``middleware_similarity()`` / ``pool_dispersion()``
are served as pure algebra without re-reading pool data — within the
ulp tolerances documented in :mod:`repro.core.gram`.  ``in_order``
runs skip the maintenance entirely; ``euclidean`` falls back to the
blocked fresh recompute.

``method_params`` accepted (paper defaults in Section IV-A):

========================  ========================  =============================================
``alpha``                 fusion weight, default 0.99
``selection``             in_order | highest | lowest (default lowest)
``measure``               cosine (default) | euclidean
``shuffle``               bool, Algorithm 1 line 5 (default True)
``propeller_rounds``      rounds of propeller-model warm-up (default 0)
``num_propellers``        propellers per model during warm-up (default 3)
``dynamic_alpha_rounds``  rounds of alpha ramp 0.5→alpha (default 0)
========================  ========================  =============================================
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.acceleration import DynamicAlphaSchedule, propeller_index_matrix
from repro.core.aggregation import validate_alpha
from repro.core.gram import GramTracker
from repro.core.pool import PoolBuffer
from repro.core.selection import CoModelSel, select_in_order
from repro.fl.client import Client
from repro.fl.metrics import TrainingHistory
from repro.fl.registry import register_method
from repro.fl.server import DispatchPlan, FederatedServer
from repro.fl.trainer import LocalResult
from repro.utils.layout import StateLayout

__all__ = ["FedCrossServer"]


@register_method("fedcross")
class FedCrossServer(FederatedServer):
    """Multi-to-multi training with multi-model cross-aggregation."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        params = self.config.method_params
        self.alpha = validate_alpha(params.get("alpha", 0.99))
        self.shuffle = bool(params.get("shuffle", True))
        param_keys = {name for name, _ in self.model.named_parameters()}
        self.selector = CoModelSel(
            strategy=params.get("selection", "lowest"),
            measure=params.get("measure", "cosine"),
            param_keys=param_keys,
        )
        self.propeller_rounds = int(params.get("propeller_rounds", 0))
        self.num_propellers = int(params.get("num_propellers", 3))
        da_rounds = int(params.get("dynamic_alpha_rounds", 0))
        # PM-DA staging (Figure 9): propellers first, then the alpha ramp.
        self._da_schedule = (
            DynamicAlphaSchedule(self.alpha, da_rounds + self.propeller_rounds)
            if da_rounds > 0
            else None
        )

        k = self.config.clients_per_round
        # Line 2 of Algorithm 1: all K middleware models start from the
        # same deterministic init (so FedCross and the baselines share a
        # starting point for fair curves).  The pool is one (K, P)
        # float32 matrix, kept in buffer form for the whole run.
        init_state = self.model.state_dict()
        self._layout = StateLayout.from_state(init_state)
        self._pool = PoolBuffer.broadcast(
            init_state, k, dtype=np.float32, backend=self.backend,
            backend_options=self.backend_options,
        )
        self.result_extras: dict = {}
        # Incremental-similarity engine: when cosine similarity drives
        # CoModelSel, a GramTracker follows the upload buffer row by
        # row as legs land (O(K·P) per upload, hidden behind
        # still-running legs under streaming collect), selection
        # becomes (K, K) algebra on the tracked Gram, and the
        # closed-form post-CrossAggr transform keeps a pool Gram for
        # the diagnostics without ever re-reading pool data.  in_order
        # runs skip the maintenance cost entirely (they never needed
        # similarity) and euclidean falls back to fresh blocked
        # recompute (Gram-recovered distances cancel catastrophically).
        self._track_gram = (
            self.selector.strategy in ("highest", "lowest")
            and self.selector.measure == "cosine"
        )
        self._upload_gram: GramTracker | None = None
        self._pool_gram: GramTracker | None = None
        # Async round support: one tracker per live upload buffer (the
        # overlapped scheduler cycles S+1 buffer slots, each mid-round
        # at once) and the cached deployment state of the newest
        # *completed* round (see :meth:`global_state`).
        self._upload_gram_map: dict[int, GramTracker] = {}
        self._async_eval_state: dict | None = None

    # -- pool access ---------------------------------------------------------
    @property
    def middleware(self) -> list[dict]:
        """The pool as state dicts (zero-copy views into the buffer)."""
        return self._pool.states()

    @middleware.setter
    def middleware(self, states: Sequence[Mapping[str, np.ndarray]]) -> None:
        self._pool = PoolBuffer.from_states(
            list(states), layout=self._layout, dtype=np.float32,
            backend=self.backend, backend_options=self.backend_options,
        )
        self._pool_gram = None  # pool replaced outside the tracked flow

    @property
    def pool(self) -> PoolBuffer:
        """The live middleware pool buffer."""
        return self._pool

    # -- alpha / acceleration -------------------------------------------------
    def alpha_at(self, round_idx: int) -> float:
        """Effective fusion weight for ``round_idx`` (dynamic-α aware)."""
        if self._da_schedule is not None and round_idx >= self.propeller_rounds:
            return self._da_schedule.alpha_at(round_idx)
        return self.alpha

    def _use_propellers(self, round_idx: int) -> bool:
        return round_idx < self.propeller_rounds

    # -- Algorithm 1 as phases ---------------------------------------------------
    def dispatch(self, active: list[Client]) -> list[DispatchPlan]:
        """Lines 4-5: shuffle the model → client assignment.

        Middleware model i goes to client ``active[assignment[i]]``;
        each plan carries its model index as the upload-buffer ``row``
        so the default ``collect`` packs uploads back in model order.
        """
        k = len(self._pool)
        if len(active) != k:
            raise RuntimeError(
                f"FedCross needs exactly K={k} active clients, got {len(active)}"
            )
        assignment = list(range(k))
        if self.shuffle:
            self.rng.shuffle(assignment)
        plans: list[DispatchPlan | None] = [None] * k
        for i in range(k):
            plans[assignment[i]] = DispatchPlan(
                self._pool.as_state(i), context={"row": i}
            )
        return plans

    def on_upload(self, row: int, result: LocalResult) -> None:
        """Feed the incremental Gram as each upload lands (O(K·P)).

        Row updates are bitwise independent of arrival order (see
        :class:`~repro.core.gram.GramTracker`), so streamed completion
        order and the gathered plan-order schedule produce the same
        Gram — the property that keeps streaming collect bit-identical.
        """
        if not self._track_gram:
            return
        tracker = self._upload_tracker(self.uploads)
        self._upload_gram = tracker
        tracker.update_row(row)

    def _upload_tracker(self, uploads: PoolBuffer) -> GramTracker:
        """The tracker following ``uploads`` (one per live buffer).

        The sync schedule only ever has one upload buffer mid-round;
        the async schedule cycles ``S + 1`` slots with several
        mid-round at once, so trackers are kept per buffer identity.
        Reuse across rounds on the same buffer is sound: every round's
        K ``on_upload`` calls fully refresh all K rows, and pairwise
        dots among rows landed in the *same* round are recomputed by
        whichever update runs later — the speculative selector only
        ever compares rows within the round's landed set.
        """
        tracker = self._upload_gram_map.get(id(uploads))
        if tracker is None or tracker.pool is not uploads:
            tracker = GramTracker(uploads, param_keys=self.selector.param_keys)
            self._upload_gram_map[id(uploads)] = tracker
        return tracker

    def _fresh_upload_gram(self, uploaded: PoolBuffer) -> np.ndarray | None:
        """The round's fully refreshed upload Gram, if one is tracked."""
        gram = self._upload_gram
        if not self._track_gram or gram is None or gram.pool is not uploaded:
            return None
        return gram.gram

    def _screen_uploads(
        self,
        uploaded: PoolBuffer,
        active: list[Client],
        plans: list[DispatchPlan],
        tracker: GramTracker | None,
    ) -> None:
        """Gram-based anomaly screen over this round's landed uploads.

        Scores every row's distance from the upload mean straight off
        the ``(K, K)`` Gram — O(K²) algebra on matrix entries that
        already exist, never a fresh ``(K, P)`` pass when the
        incremental tracker followed the round.  Flagged rows become
        :class:`~repro.robust.screen.SuspectRecord`\\ s on
        ``last_suspects`` (surfaced in the round's history extras) and
        fire :meth:`~repro.fl.callbacks.ServerCallback.on_suspect_upload`;
        under ``screen="carry"`` each flagged row is additionally
        quarantined — its dispatched middleware state restored (the
        same degradation the fault engine applies to failed legs) and
        the tracked Gram refreshed in place, so CoModelSel and
        CrossAggr never see the suspect update.
        """
        mode = self.screen
        k = len(uploaded)
        if mode is None or k < 3:
            return
        from repro.robust.screen import SuspectRecord, screen_scores

        gram = (
            tracker.gram
            if tracker is not None
            else uploaded.gram_matrix(param_keys=self.selector.param_keys)
        )
        scores, threshold, flagged = screen_scores(gram)
        if flagged.size == 0:
            return
        # Plan j carries its middleware index as context["row"] and was
        # trained by active[j] — invert that to name the suspect client.
        by_row: dict[int, tuple[int, DispatchPlan]] = {}
        for j, plan in enumerate(plans):
            if plan is not None and j < len(active):
                by_row[int(plan.context["row"])] = (active[j].client_id, plan)
        records = []
        for row in flagged:
            row = int(row)
            client_id, plan = by_row.get(row, (-1, None))
            records.append(
                SuspectRecord(
                    row=row,
                    client_id=int(client_id),
                    score=float(scores[row]),
                    threshold=float(threshold),
                    action=mode,
                )
            )
            if mode == "carry" and plan is not None:
                uploaded.set_state(row, plan.state)
                if tracker is not None:
                    # In-place Gram refresh: selection below reads the
                    # quarantined row, not the suspect one.
                    tracker.update_row(row)
        self.last_suspects = records
        for record in records:
            for cb in self.callbacks:
                cb.on_suspect_upload(self, record)

    def aggregate(
        self,
        active: list[Client],
        results: list[LocalResult],
        plans: list[DispatchPlan],
    ) -> dict:
        """Lines 11-14: CoModelSel + CrossAggr over the uploaded pool.

        When the tracker followed this round's uploads, CoModelSel runs
        on the tracked Gram (pure ``(K, K)`` algebra — no similarity
        recompute) and the new pool's Gram is derived by the closed-form
        post-CrossAggr transform, keeping ``middleware_similarity`` /
        ``pool_dispersion`` data-free too.

        The blend itself routes through the configured aggregation
        operator (``FLConfig.aggregator``): ``mean`` delegates straight
        to :meth:`~repro.core.pool.PoolBuffer.cross_aggregate` (bitwise
        the reference path); robust operators reject uploads outside
        their trust region first, degrading each rejected slot to its
        dispatched middleware state (the fault engine's carry).  The closed-form Gram transform is
        only valid for the linear mean blend, so non-linear operators
        drop the pool Gram and the diagnostics fall back to fresh
        recomputes.
        """
        k = len(self._pool)
        uploaded = self.uploads  # packed in model order by collect()
        alpha = self.alpha_at(self.round_idx)
        gram = self._fresh_upload_gram(uploaded)
        tracker = self._upload_gram if gram is not None else None
        if self.screen is not None:
            self._screen_uploads(uploaded, active, plans, tracker)
        # The closed-form post-CrossAggr Gram transform models the
        # linear blend exactly; robust operators bend flagged rows, so
        # their output Gram must be recomputed from data when needed.
        track = tracker is not None and self.aggregator.linear
        if k == 1:
            co_indices = np.zeros(1, dtype=np.int64)
            # Copy: the upload buffer is reused next round and must not
            # alias the live pool.
            self._pool = uploaded.copy()
            self._pool_gram = (
                GramTracker(
                    self._pool, param_keys=self.selector.param_keys, gram=gram
                )
                if tracker is not None
                else None
            )
        elif self._use_propellers(self.round_idx):
            props = propeller_index_matrix(self.round_idx, k, self.num_propellers)
            co_indices = props[:, 0]
            self._pool = self.aggregator.cross_blend(
                uploaded, props, alpha, fallback=self._pool
            )
            self._pool_gram = (
                tracker.cross_aggregated(props, alpha, pool=self._pool)
                if track
                else None
            )
        else:
            co_indices = self.selector.select_all(uploaded, self.round_idx, gram=gram)
            self._pool = self.aggregator.cross_blend(
                uploaded, co_indices, alpha, fallback=self._pool
            )
            self._pool_gram = (
                tracker.cross_aggregated(co_indices, alpha, pool=self._pool)
                if track
                else None
            )

        self.charge_round_communication(active)
        return {
            "train_loss": self.mean_local_loss(results),
            "alpha": alpha,
            "co_indices": [int(j) for j in co_indices],
        }

    def finalize_fit(self, history: TrainingHistory) -> None:
        # Surface the converged pool's similarity structure (the paper's
        # "middleware models grow similar" narrative) on the result.
        # Runs before callback on_fit_end hooks, so a checkpointer's
        # best-state restore (which broadcasts one state over the pool)
        # cannot flatten the diagnostic to all-ones first.
        self.result_extras["middleware_similarity"] = self.middleware_similarity()

    # -- deployment --------------------------------------------------------------
    def global_state(self) -> dict:
        """Line 17: deployment-only global model (GlobalModelGen).

        Routed through the configured aggregation operator: ``mean``
        is the paper's uniform pool average (bitwise the
        :func:`~repro.core.aggregation.global_model_generation`
        reference); robust operators deploy their robust center
        instead, so a poisoned middleware row cannot steer the
        deployed model even when it slipped past screening.

        Under the overlapped async schedule the live pool mixes rows
        from several in-flight rounds; evaluation must reflect the
        newest *completed* round exactly, so the adapter caches that
        round's reconciled pool average here and the cache wins.
        """
        if self._async_eval_state is not None:
            return self._async_eval_state
        return self.aggregator.combine(self._pool)

    def async_adapter(self) -> "FedCrossAsyncAdapter":
        """Speculative cross-aggregation seam for ``round_mode='async'``."""
        return FedCrossAsyncAdapter(self)

    def set_global_state(self, state: Mapping[str, np.ndarray]) -> None:
        """Reset the whole pool to ``state`` (checkpoint restore).

        The deployable model is the uniform pool average, so restoring a
        checkpoint broadcasts it back over all K middleware rows —
        exactly Algorithm 1's line-2 initialisation from a shared state.
        """
        self._pool = PoolBuffer.broadcast(
            state, len(self._pool), dtype=np.float32, backend=self.backend,
            backend_options=self.backend_options,
        )
        self._pool_gram = None  # pool replaced outside the tracked flow

    def middleware_similarity(self) -> np.ndarray:
        """Pairwise cosine similarity of the current pool (diagnostic).

        The paper argues middleware models grow increasingly similar
        over training; the integration tests assert this trend.  When
        the incremental Gram engine followed this pool through the
        round (cosine-selection runs), this is pure ``(K, K)`` algebra
        on the closed-form post-CrossAggr Gram — within documented ulp
        tolerance of a fresh recompute (see :mod:`repro.core.gram`);
        otherwise it falls back to the blocked recompute.
        """
        gram = self._pool_gram
        if gram is not None and gram.pool is self._pool:
            return gram.similarity()
        return self._pool.similarity_matrix(
            measure="cosine", param_keys=self.selector.param_keys
        )

    def pool_dispersion(self) -> float:
        """RMS distance of pool members from their mean (diagnostic).

        Served from the tracked Gram when available (O(K²), no pool
        reads — subject to the converged-pool cancellation caveat in
        :mod:`repro.core.gram`); falls back to the cancellation-safe
        streamed recompute otherwise.
        """
        gram = self._pool_gram
        if gram is not None and gram.pool is self._pool:
            return gram.dispersion()
        return self._pool.dispersion(param_keys=self.selector.param_keys)


class _AsyncRoundCtx:
    """Per-round state of the speculative CrossAggr (one per window slot)."""

    __slots__ = (
        "t", "uploads", "alpha", "tracker", "landed", "co_spec",
        "stale_rows", "spec_blends", "reblends", "stale_skips",
    )

    def __init__(self, t: int, uploads: PoolBuffer, alpha: float, tracker) -> None:
        self.t = t
        self.uploads = uploads
        self.alpha = alpha
        self.tracker = tracker
        self.landed: set[int] = set()
        self.co_spec: dict[int, int] = {}  # row -> last speculative co
        self.stale_rows: set[int] = set()
        self.spec_blends = 0
        self.reblends = 0
        self.stale_skips = 0


class FedCrossAsyncAdapter:
    """Speculative cross-aggregation under the overlapped round driver.

    As each upload of round ``t`` lands, collaborators are selected
    among the round's *already landed* rows on the live per-upload
    :class:`~repro.core.gram.GramTracker` (pairwise dots within the
    landed set are always fresh) and the blend is written straight into
    the live pool row — so a client picking up its round ``t+1`` leg
    trains from the freshest speculative pool available.  At round
    completion the exact reference CrossAggr runs over the full upload
    buffer (bit-identical bytes to the sync blend), reconciling every
    speculative choice; the mismatch count is the measured wasted work.

    Bounded staleness: every pool row remembers the last round that
    blended it (``row_version``).  A round never writes a row a *newer*
    round already owns — such late uploads are discarded for pool
    purposes and counted as ``stale_uploads``.

    Restricted to the configurations whose per-landing selection is
    well-defined: no anomaly screening, no propeller warm-up, and a
    linear (mean) aggregation operator.  Euclidean similarity disables
    *speculation* only (no tracked Gram to select on); the completion
    reconcile still runs the fresh recompute.
    """

    def __init__(self, server: FedCrossServer) -> None:
        if server.screen is not None:
            raise ValueError(
                "round_mode='async' with max_staleness > 0 does not compose "
                "with upload screening (--screen); screening needs the full "
                "round's uploads at once"
            )
        if server.propeller_rounds > 0:
            raise ValueError(
                "round_mode='async' with max_staleness > 0 does not compose "
                "with propeller warm-up rounds (propeller_rounds > 0)"
            )
        if not server.aggregator.linear:
            raise ValueError(
                "round_mode='async' with max_staleness > 0 requires the "
                "linear 'mean' aggregator; robust operators need the full "
                f"round's uploads at once (got {type(server.aggregator).__name__})"
            )
        self.server = server
        self.k = len(server._pool)
        # Resume-safe: rows dispatched before any async round completes
        # are exactly (t - 1)-fresh for the first created round t.
        self.row_version = [server.round_idx - 1] * self.k
        self._last_eval_pool: PoolBuffer | None = None

    # -- scheduler-facing API ----------------------------------------------
    def plan_state(self, row: int) -> dict:
        """Private copy of pool row ``row`` (speculation-race safe)."""
        return self.server._pool.as_state(int(row), copy=True)

    def version_of(self, row: int) -> int:
        return self.row_version[int(row)]

    def begin_round(self, t: int, uploads: PoolBuffer) -> _AsyncRoundCtx:
        server = self.server
        tracker = server._upload_tracker(uploads) if server._track_gram else None
        return _AsyncRoundCtx(t, uploads, server.alpha_at(t), tracker)

    def upload_landed(self, ctx: _AsyncRoundCtx, row: int) -> None:
        ctx.landed.add(int(row))
        self._speculate(ctx)

    # -- speculative blend ---------------------------------------------------
    def _spec_co(self, ctx: _AsyncRoundCtx, i: int) -> int | None:
        """Speculative collaborator for landed row ``i`` (or None yet)."""
        strategy = self.server.selector.strategy
        if strategy == "in_order":
            co = select_in_order(i, ctx.t, self.k)
            return co if (co == i or co in ctx.landed) else None
        if ctx.tracker is None:
            return None  # euclidean: no tracked Gram to speculate on
        return ctx.tracker.select_among(
            i, (j for j in ctx.landed if j != i), highest=(strategy == "highest")
        )

    def _blend_row(self, ctx: _AsyncRoundCtx, i: int, co: int) -> None:
        pool = self.server._pool
        uploads = ctx.uploads
        vi = uploads.masked_row_f64(i, None)
        if co == i:
            blended = vi
        else:
            a = float(ctx.alpha)
            blended = a * vi + (1.0 - a) * uploads.masked_row_f64(co, None)
            int_mask = uploads.layout.integer_mask()
            if int_mask.any():
                # Integer fields carry from the row's own upload,
                # never averaged — cross_aggregate's rule.
                blended[int_mask] = vi[int_mask]
        pool.set_row(i, blended)
        self.server._pool_gram = None  # live pool moved under the tracker

    def _speculate(self, ctx: _AsyncRoundCtx) -> None:
        for i in sorted(ctx.landed):
            co = self._spec_co(ctx, i)
            if co is None or ctx.co_spec.get(i) == co:
                continue
            if self.row_version[i] > ctx.t:
                # A newer round already owns this pool row: blending a
                # late upload backwards would violate bounded staleness.
                if i not in ctx.stale_rows:
                    ctx.stale_rows.add(i)
                    ctx.stale_skips += 1
                continue
            if i in ctx.co_spec:
                ctx.reblends += 1
            else:
                ctx.spec_blends += 1
            self._blend_row(ctx, i, co)
            ctx.co_spec[i] = co
            self.row_version[i] = ctx.t

    # -- completion ----------------------------------------------------------
    def complete_round(self, ctx: _AsyncRoundCtx, active, results, plans) -> dict:
        server = self.server
        uploads = ctx.uploads
        if self.k == 1:
            co = np.zeros(1, dtype=np.int64)
            eval_pool = uploads.copy()
        else:
            gram = ctx.tracker.gram if ctx.tracker is not None else None
            co = server.selector.select_all(uploads, ctx.t, gram=gram)
            # Exact reference CrossAggr over the complete upload buffer:
            # byte-identical to the sync blend of the same uploads.
            eval_pool = server.aggregator.cross_blend(
                uploads, co, ctx.alpha, fallback=None
            )
        fixes = sum(
            1 for i, spec in ctx.co_spec.items() if int(co[i]) != int(spec)
        )
        for i in range(self.k):
            if self.row_version[i] <= ctx.t:
                # Reconcile: the exact blended row replaces whatever the
                # speculative pass wrote (float64 round trip of the f32
                # row is exact).
                server._pool.set_row(i, eval_pool.masked_row_f64(i, None))
                self.row_version[i] = ctx.t
        server._pool_gram = None
        self._last_eval_pool = eval_pool
        # Evaluation (and checkpointing) must see the completed round's
        # reconciled pool, not the live pool mid-speculation.
        server._async_eval_state = server.aggregator.combine(eval_pool)
        return {
            "train_loss": server.mean_local_loss(results),
            "alpha": float(ctx.alpha),
            "co_indices": [int(j) for j in co],
            "async": {
                "speculative_blends": ctx.spec_blends,
                "speculative_reblends": ctx.reblends,
                "reconcile_fixes": fixes,
                "stale_uploads": ctx.stale_skips,
            },
        }

    def finalize(self) -> None:
        """Install the newest completed round's exact pool and drop caches."""
        server = self.server
        if self._last_eval_pool is not None:
            server._pool = self._last_eval_pool
            self._last_eval_pool = None
        server._async_eval_state = None
        server._pool_gram = None
