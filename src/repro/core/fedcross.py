"""The FedCross server (Algorithm 1).

Maintains K middleware models; each round:

* line 4-5: sample K clients and *shuffle* the model→client assignment
  (without shuffling, a middleware model keeps meeting the same
  clients — benched in the shuffle ablation);
* line 7-10: local training of each middleware model on its client;
* line 11-14: ``CoModelSel`` + ``CrossAggr`` produce the next pool;
* line 17: ``GlobalModelGen`` averages the pool into the
  deployment-only global model (used here for per-round evaluation,
  exactly like the paper's "pseudo-global model" for Figure 5).

``method_params`` accepted (paper defaults in Section IV-A):

========================  ========================  =============================================
``alpha``                 fusion weight, default 0.99
``selection``             in_order | highest | lowest (default lowest)
``measure``               cosine (default) | euclidean
``shuffle``               bool, Algorithm 1 line 5 (default True)
``propeller_rounds``      rounds of propeller-model warm-up (default 0)
``num_propellers``        propellers per model during warm-up (default 3)
``dynamic_alpha_rounds``  rounds of alpha ramp 0.5→alpha (default 0)
========================  ========================  =============================================
"""

from __future__ import annotations

import numpy as np

from repro.core.acceleration import DynamicAlphaSchedule, propeller_indices
from repro.core.aggregation import cross_aggregate, global_model_generation, validate_alpha
from repro.core.selection import CoModelSel, similarity_matrix
from repro.fl.client import Client
from repro.fl.registry import register_method
from repro.fl.server import FederatedServer
from repro.utils.params import weighted_average

__all__ = ["FedCrossServer"]


@register_method("fedcross")
class FedCrossServer(FederatedServer):
    """Multi-to-multi training with multi-model cross-aggregation."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        params = self.config.method_params
        self.alpha = validate_alpha(params.get("alpha", 0.99))
        self.shuffle = bool(params.get("shuffle", True))
        param_keys = {name for name, _ in self.model.named_parameters()}
        self.selector = CoModelSel(
            strategy=params.get("selection", "lowest"),
            measure=params.get("measure", "cosine"),
            param_keys=param_keys,
        )
        self.propeller_rounds = int(params.get("propeller_rounds", 0))
        self.num_propellers = int(params.get("num_propellers", 3))
        da_rounds = int(params.get("dynamic_alpha_rounds", 0))
        # PM-DA staging (Figure 9): propellers first, then the alpha ramp.
        self._da_schedule = (
            DynamicAlphaSchedule(self.alpha, da_rounds + self.propeller_rounds)
            if da_rounds > 0
            else None
        )

        k = self.config.clients_per_round
        # Line 2 of Algorithm 1: all K middleware models start from the
        # same deterministic init (so FedCross and the baselines share a
        # starting point for fair curves).
        self.middleware: list[dict] = [self.model.state_dict() for _ in range(k)]
        self.result_extras: dict = {}

    # -- alpha / acceleration -------------------------------------------------
    def alpha_at(self, round_idx: int) -> float:
        """Effective fusion weight for ``round_idx`` (dynamic-α aware)."""
        if self._da_schedule is not None and round_idx >= self.propeller_rounds:
            return self._da_schedule.alpha_at(round_idx)
        return self.alpha

    def _use_propellers(self, round_idx: int) -> bool:
        return round_idx < self.propeller_rounds

    # -- Algorithm 1 ------------------------------------------------------------
    def run_round(self, active: list[Client]) -> dict:
        k = len(self.middleware)
        if len(active) != k:
            raise RuntimeError(
                f"FedCross needs exactly K={k} active clients, got {len(active)}"
            )
        # Line 5: shuffle the model -> client assignment.
        assignment = list(range(k))
        if self.shuffle:
            self.rng.shuffle(assignment)

        # Lines 7-10: local training of middleware model i on client
        # assignment[i]; W[i] is replaced by the uploaded model v_i.
        uploaded: list[dict] = [None] * k  # type: ignore[list-item]
        results = []
        for i in range(k):
            client = active[assignment[i]]
            result = client.train(self.trainer, self.middleware[i])
            uploaded[i] = result.state
            results.append(result)

        # Lines 11-14: collaborative selection + cross-aggregation.
        alpha = self.alpha_at(self.round_idx)
        new_pool: list[dict] = []
        co_indices: list[int] = []
        for i in range(k):
            if self._use_propellers(self.round_idx) and k > 1:
                props = propeller_indices(i, self.round_idx, k, self.num_propellers)
                collaborator = weighted_average([uploaded[j] for j in props])
                co_indices.append(props[0])
            else:
                j = self.selector(i, uploaded, self.round_idx)
                collaborator = uploaded[j]
                co_indices.append(j)
            if k == 1:
                new_pool.append(dict(uploaded[i]))
            else:
                new_pool.append(cross_aggregate(uploaded[i], collaborator, alpha))
        self.middleware = new_pool

        self.charge_round_communication(active)
        return {
            "train_loss": self.mean_local_loss(results),
            "alpha": alpha,
            "co_indices": co_indices,
        }

    # -- deployment --------------------------------------------------------------
    def global_state(self) -> dict:
        """Line 17: deployment-only global model (uniform pool average)."""
        return global_model_generation(self.middleware)

    def middleware_similarity(self) -> np.ndarray:
        """Pairwise cosine similarity of the current pool (diagnostic).

        The paper argues middleware models grow increasingly similar
        over training; the integration tests assert this trend.
        """
        return similarity_matrix(
            self.middleware,
            measure="cosine",
            param_keys=self.selector.param_keys,
        )
