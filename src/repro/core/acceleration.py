"""Training-acceleration heuristics (Section III-D).

Vanilla FedCross converges slowly on large models because alpha ~ 0.99
lets each middleware model absorb only 1% of its collaborator per
round. The paper proposes two coarse-then-fine schemes:

* **Propeller models**: during the first ``pm_rounds`` rounds each
  middleware model aggregates with *multiple* in-order-selected
  "propeller" collaborators instead of one, injecting more knowledge
  per round.
* **Dynamic alpha**: ramp alpha from 0.5 up to its target over
  ``da_rounds`` rounds, so early rounds mix aggressively and late
  rounds fine-tune.

The ``PM-DA`` variant of Figure 9 runs propellers for the first half of
the warm-up and dynamic alpha for the second half.
"""

from __future__ import annotations

import numpy as np

__all__ = ["propeller_indices", "propeller_index_matrix", "DynamicAlphaSchedule"]


def propeller_indices(index: int, round_idx: int, k: int, num_propellers: int) -> list[int]:
    """In-order propeller set for middleware model ``index``.

    Generalises the in-order rule: the ``p``-th propeller of model ``i``
    in round ``r`` is ``(i + (r % (K-1)) + 1 + p) % K`` (skipping ``i``
    itself), giving ``num_propellers`` distinct collaborators.
    """
    if k <= 1:
        return [index]
    num = max(1, min(num_propellers, k - 1))
    start = round_idx % (k - 1) + 1
    out: list[int] = []
    offset = 0
    while len(out) < num:
        candidate = (index + start + offset) % k
        offset += 1
        if candidate == index or candidate in out:
            continue
        out.append(candidate)
    return out


def propeller_index_matrix(round_idx: int, k: int, num_propellers: int) -> np.ndarray:
    """Propeller sets for the whole pool as a ``(K, num)`` index array.

    Row i is :func:`propeller_indices` for model i — the form the
    vectorized :class:`repro.core.pool.PoolBuffer` cross-aggregation
    consumes (each model fuses with the mean of its row's members).
    """
    if k <= 1:
        return np.zeros((max(k, 1), 1), dtype=np.int64)
    return np.asarray(
        [propeller_indices(i, round_idx, k, num_propellers) for i in range(k)],
        dtype=np.int64,
    )


class DynamicAlphaSchedule:
    """Linear alpha ramp: 0.5 → ``target`` over ``ramp_rounds`` rounds.

    ``alpha_at(r)`` returns the fusion weight for round ``r``; after the
    ramp it stays at ``target`` (paper example: target 0.99).
    """

    def __init__(self, target: float, ramp_rounds: int, start: float = 0.5) -> None:
        if not 0.0 < start <= target < 1.0:
            raise ValueError(
                f"require 0 < start <= target < 1, got start={start}, target={target}"
            )
        if ramp_rounds < 0:
            raise ValueError("ramp_rounds must be non-negative")
        self.start = start
        self.target = target
        self.ramp_rounds = ramp_rounds

    def alpha_at(self, round_idx: int) -> float:
        if self.ramp_rounds == 0 or round_idx >= self.ramp_rounds:
            return self.target
        frac = round_idx / self.ramp_rounds
        return self.start + (self.target - self.start) * frac
