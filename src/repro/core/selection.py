"""Collaborative model selection (``CoModelSel``, Section III-B1).

Three strategies trade off the paper's selection criteria:

``in_order``
    Adequacy-and-diversity: the i-th model collaborates with model
    ``(i + (r % (K-1) + 1)) % K`` in round r, so within every K-1
    rounds each middleware model meets every other exactly once.
``highest``
    Gradient-divergence minimisation: pick the *most* similar model.
    The paper shows this is the worst choice — similar models cluster
    and drift apart as groups (Table III).
``lowest``
    Knowledge maximisation: pick the *least* similar model; the paper's
    recommended default (used with alpha = 0.99 in Table II).

Similarity is cosine similarity over flattened parameters (the paper
leaves other measures as future work; ``euclidean`` is provided for the
extension ablation).

The public dict-taking functions are thin wrappers over the vectorized
:class:`repro.core.pool.PoolBuffer` engine (one Gram matmul instead of
O(K²) pairwise flatten+dot passes).  The original per-pair loops are
kept as ``_reference_*`` implementations — the ground truth the
property tests check the engine against.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.pool import VECTORIZED_MEASURES, PoolBuffer
from repro.utils.params import flatten_state_dict

__all__ = [
    "cosine_similarity",
    "euclidean_similarity",
    "select_in_order",
    "select_highest_similarity",
    "select_lowest_similarity",
    "similarity_matrix",
    "CoModelSel",
]

SIMILARITY_MEASURES: dict[str, Callable[[np.ndarray, np.ndarray], float]] = {}


def _register_measure(name: str):
    def decorator(fn):
        SIMILARITY_MEASURES[name] = fn
        return fn

    return decorator


@_register_measure("cosine")
def cosine_similarity(x: np.ndarray, y: np.ndarray) -> float:
    """Standard cosine similarity of two flattened parameter vectors."""
    nx = np.linalg.norm(x)
    ny = np.linalg.norm(y)
    if nx == 0.0 or ny == 0.0:
        return 0.0
    return float(np.dot(x, y) / (nx * ny))


@_register_measure("euclidean")
def euclidean_similarity(x: np.ndarray, y: np.ndarray) -> float:
    """Negative Euclidean distance (higher = more similar).

    The measure the paper defers to future work; included for the
    similarity-measure ablation bench.
    """
    return -float(np.linalg.norm(x - y))


def _flatten_all(
    states: Sequence[Mapping[str, np.ndarray]], param_keys: set[str] | None
) -> np.ndarray:
    vectors = []
    for state in states:
        if param_keys is not None:
            state = {k: v for k, v in state.items() if k in param_keys}
        vectors.append(flatten_state_dict(state))
    return np.stack(vectors)


def _as_pool(
    states: "Sequence[Mapping[str, np.ndarray]] | PoolBuffer",
) -> PoolBuffer:
    """Accept either a PoolBuffer or a sequence of state dicts.

    Dict inputs are packed into a float64 buffer so wrapper callers see
    no precision change versus the historical float64 flatten path.
    """
    if isinstance(states, PoolBuffer):
        return states
    return PoolBuffer.from_states(states, dtype=np.float64)


def similarity_matrix(
    states: "Sequence[Mapping[str, np.ndarray]] | PoolBuffer",
    measure: str = "cosine",
    param_keys: set[str] | None = None,
) -> np.ndarray:
    """Pairwise similarity matrix of a middleware model pool.

    ``param_keys`` restricts the comparison to trainable parameters
    (excluding e.g. batch-norm running stats, whose scale would swamp
    the cosine).  Computed by the vectorized pool engine; accepts a
    :class:`PoolBuffer` directly to skip the packing step.
    """
    if measure not in SIMILARITY_MEASURES:
        raise KeyError(measure)
    if measure not in VECTORIZED_MEASURES:
        # Custom registered measures keep working through the per-pair
        # reference loop.
        states = states.states() if isinstance(states, PoolBuffer) else states
        return _reference_similarity_matrix(states, measure, param_keys)
    return _as_pool(states).similarity_matrix(measure=measure, param_keys=param_keys)


def _reference_similarity_matrix(
    states: Sequence[Mapping[str, np.ndarray]],
    measure: str = "cosine",
    param_keys: set[str] | None = None,
) -> np.ndarray:
    """Original per-pair loop — ground truth for the engine tests."""
    fn = SIMILARITY_MEASURES[measure]
    vectors = _flatten_all(states, param_keys)
    k = len(vectors)
    out = np.zeros((k, k))
    for i in range(k):
        out[i, i] = fn(vectors[i], vectors[i])
        for j in range(i + 1, k):
            out[i, j] = out[j, i] = fn(vectors[i], vectors[j])
    return out


def select_in_order(index: int, round_idx: int, k: int) -> int:
    """The paper's in-order rule: ``(i + (r % (K-1) + 1)) % K``.

    For ``k == 1`` there is no other model; the model is its own
    collaborator (cross-aggregation degenerates to identity).
    """
    if k <= 1:
        return index
    return (index + (round_idx % (k - 1) + 1)) % k


def _select_by_similarity(
    index: int,
    states: "Sequence[Mapping[str, np.ndarray]] | PoolBuffer",
    measure: str,
    param_keys: set[str] | None,
    want_highest: bool,
) -> int:
    if measure not in SIMILARITY_MEASURES:
        raise KeyError(measure)
    if measure not in VECTORIZED_MEASURES:
        states = states.states() if isinstance(states, PoolBuffer) else states
        return _reference_select_by_similarity(
            index, states, measure, param_keys, want_highest
        )
    pool = _as_pool(states)
    k = len(pool)
    if k <= 1:
        return index
    sims = pool.similarity_to(index, measure=measure, param_keys=param_keys)
    if want_highest:
        sims[index] = -np.inf
        return int(sims.argmax())
    sims[index] = np.inf
    return int(sims.argmin())


def _reference_select_by_similarity(
    index: int,
    states: Sequence[Mapping[str, np.ndarray]],
    measure: str,
    param_keys: set[str] | None,
    want_highest: bool,
) -> int:
    """Original per-pair loop — ground truth for the engine tests."""
    k = len(states)
    if k <= 1:
        return index
    fn = SIMILARITY_MEASURES[measure]
    vectors = _flatten_all(states, param_keys)
    best_idx = -1
    best_val = -np.inf if want_highest else np.inf
    for j in range(k):
        if j == index:
            continue
        val = fn(vectors[index], vectors[j])
        if (want_highest and val > best_val) or (not want_highest and val < best_val):
            best_val, best_idx = val, j
    return best_idx


def select_highest_similarity(
    index: int,
    states: "Sequence[Mapping[str, np.ndarray]] | PoolBuffer",
    measure: str = "cosine",
    param_keys: set[str] | None = None,
) -> int:
    """argmax_{j != i} Similarity(v_i, v_j)."""
    return _select_by_similarity(index, states, measure, param_keys, want_highest=True)


def select_lowest_similarity(
    index: int,
    states: "Sequence[Mapping[str, np.ndarray]] | PoolBuffer",
    measure: str = "cosine",
    param_keys: set[str] | None = None,
) -> int:
    """argmin_{j != i} Similarity(v_i, v_j) — the recommended default."""
    return _select_by_similarity(index, states, measure, param_keys, want_highest=False)


class CoModelSel:
    """Configured collaborative-model selector.

    Parameters
    ----------
    strategy:
        ``"in_order"`` | ``"highest"`` | ``"lowest"``.
    measure:
        Similarity measure name for the similarity strategies
        (``"cosine"`` — the paper's choice — or ``"euclidean"``).
    param_keys:
        Optional restriction of the comparison to these state keys.
    """

    STRATEGIES = ("in_order", "highest", "lowest")

    def __init__(
        self,
        strategy: str = "lowest",
        measure: str = "cosine",
        param_keys: set[str] | None = None,
    ) -> None:
        strategy = strategy.lower()
        if strategy not in self.STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected one of {self.STRATEGIES}")
        if measure not in SIMILARITY_MEASURES:
            raise ValueError(
                f"unknown measure {measure!r}; expected one of {sorted(SIMILARITY_MEASURES)}"
            )
        self.strategy = strategy
        self.measure = measure
        self.param_keys = param_keys

    def __call__(
        self,
        index: int,
        states: "Sequence[Mapping[str, np.ndarray]] | PoolBuffer",
        round_idx: int,
    ) -> int:
        """Index of the collaborative model for ``states[index]``."""
        if self.strategy == "in_order":
            return select_in_order(index, round_idx, len(states))
        if self.strategy == "highest":
            return select_highest_similarity(index, states, self.measure, self.param_keys)
        return select_lowest_similarity(index, states, self.measure, self.param_keys)

    def select_all(
        self, pool: PoolBuffer, round_idx: int, gram: np.ndarray | None = None
    ) -> np.ndarray:
        """Collaborator indices for the whole pool in one engine call.

        The server hot path: one Gram matmul covers all K queries,
        instead of K independent ``__call__`` invocations.  Custom
        registered measures fall back to the per-pair reference loop.

        ``gram`` may carry a precomputed raw ``(K, K)`` Gram of the
        masked pool — e.g. one maintained incrementally by a
        :class:`repro.core.gram.GramTracker` as uploads land — turning
        cosine selection into pure ``(K, K)`` algebra that never
        re-reads pool data.  Ignored by ``in_order``; rejected for
        non-cosine measures (see
        :meth:`~repro.core.pool.PoolBuffer.select_collaborators`).
        """
        if self.strategy != "in_order" and self.measure not in VECTORIZED_MEASURES:
            states = pool.states()
            return np.asarray(
                [self(i, states, round_idx) for i in range(len(pool))],
                dtype=np.int64,
            )
        return pool.select_collaborators(
            self.strategy,
            round_idx=round_idx,
            measure=self.measure,
            param_keys=self.param_keys,
            gram=gram,
        )
