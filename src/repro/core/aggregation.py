"""Cross-aggregation and global-model generation (Sections III-B2/B3).

``cross_aggregate`` is the paper's fusion rule

    CrossAggr(v_i, v_co) = alpha * v_i + (1 - alpha) * v_co

applied key-wise over state dicts. ``global_model_generation`` is the
deployment-time average ``w_g = (1/K) sum_i w_i`` — the only point at
which FedCross performs FedAvg-style coarse aggregation, and it never
feeds back into training.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.utils.params import weighted_average

__all__ = ["cross_aggregate", "global_model_generation", "validate_alpha"]


def validate_alpha(alpha: float) -> float:
    """Check alpha is a valid fusion weight.

    The paper restricts alpha to [0.5, 1.0) in the method description
    but sweeps {0.5, ..., 0.999} in the ablation (Table III); we accept
    (0, 1) and leave the [0.5, 1) recommendation to callers.
    """
    alpha = float(alpha)
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    return alpha


def cross_aggregate(
    model: Mapping[str, np.ndarray],
    collaborator: Mapping[str, np.ndarray],
    alpha: float,
) -> dict[str, np.ndarray]:
    """Fuse ``model`` with its collaborative model at weight ``alpha``."""
    alpha = validate_alpha(alpha)
    if set(model) != set(collaborator):
        raise KeyError("model and collaborator state dicts have mismatched keys")
    out: dict[str, np.ndarray] = {}
    for key, value in model.items():
        a = np.asarray(value, dtype=np.float64)
        b = np.asarray(collaborator[key], dtype=np.float64)
        out[key] = (alpha * a + (1.0 - alpha) * b).astype(np.asarray(value).dtype)
    return out


def global_model_generation(
    middleware: Sequence[Mapping[str, np.ndarray]],
) -> dict[str, np.ndarray]:
    """Uniform average of the middleware pool — deployment only."""
    if not middleware:
        raise ValueError("middleware pool is empty")
    return weighted_average(middleware)
