"""Cross-aggregation and global-model generation (Sections III-B2/B3).

``cross_aggregate`` is the paper's fusion rule

    CrossAggr(v_i, v_co) = alpha * v_i + (1 - alpha) * v_co

applied key-wise over state dicts. ``global_model_generation`` is the
deployment-time average ``w_g = (1/K) sum_i w_i`` — the only point at
which FedCross performs FedAvg-style coarse aggregation, and it never
feeds back into training.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.pool import PoolBuffer
from repro.utils.params import weighted_average

__all__ = ["cross_aggregate", "global_model_generation", "validate_alpha"]


def validate_alpha(alpha: float) -> float:
    """Check alpha is a valid fusion weight.

    The paper restricts alpha to [0.5, 1.0) in the method description
    but sweeps {0.5, ..., 0.999} in the ablation (Table III); we accept
    (0, 1) and leave the [0.5, 1) recommendation to callers.
    """
    alpha = float(alpha)
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    return alpha


def cross_aggregate(
    model: Mapping[str, np.ndarray],
    collaborator: Mapping[str, np.ndarray],
    alpha: float,
) -> dict[str, np.ndarray]:
    """Fuse ``model`` with its collaborative model at weight ``alpha``.

    Integer entries (step counters and other non-float buffers) are
    carried from ``model`` unchanged — blending them in floating point
    and truncating back silently corrupts them.
    """
    alpha = validate_alpha(alpha)
    if set(model) != set(collaborator):
        raise KeyError("model and collaborator state dicts have mismatched keys")
    out: dict[str, np.ndarray] = {}
    for key, value in model.items():
        value = np.asarray(value)
        if value.dtype.kind in "iub":
            out[key] = value.copy()
            continue
        a = np.asarray(value, dtype=np.float64)
        b = np.asarray(collaborator[key], dtype=np.float64)
        out[key] = (alpha * a + (1.0 - alpha) * b).astype(value.dtype)
    return out


def global_model_generation(
    middleware: "Sequence[Mapping[str, np.ndarray]] | PoolBuffer",
) -> dict[str, np.ndarray]:
    """Uniform average of the middleware pool — deployment only.

    Accepts either a sequence of state dicts (averaged key-wise via
    :func:`weighted_average`) or a :class:`PoolBuffer`, in which case
    the average is one vectorized row reduction.
    """
    if isinstance(middleware, PoolBuffer):
        return middleware.mean_state()
    if not middleware:
        raise ValueError("middleware pool is empty")
    return weighted_average(middleware)
