"""FedCross: the paper's multi-model cross-aggregation framework.

The server maintains K *middleware models*. Every round (Algorithm 1):

1. sample K clients and shuffle the assignment (line 5 — so each
   middleware model meets fresh clients);
2. each client locally trains its assigned middleware model;
3. for every uploaded model, ``CoModelSel`` picks a collaborative model
   (in-order / highest-similarity / lowest-similarity — Section
   III-B1);
4. ``CrossAggr`` fuses them: ``w_i = alpha * v_i + (1 - alpha) * v_co``
   (Section III-B2);
5. a deployment-only global model is the plain average of the
   middleware pool (``GlobalModelGen``, Section III-B3).

Two acceleration heuristics (Section III-D) are provided: propeller
models (multiple in-order collaborators early on) and dynamic alpha
(ramping alpha from 0.5 to its target).
"""

from repro.core.selection import (
    CoModelSel,
    cosine_similarity,
    euclidean_similarity,
    select_in_order,
    select_highest_similarity,
    select_lowest_similarity,
    similarity_matrix,
)
from repro.core.aggregation import cross_aggregate, global_model_generation
from repro.core.acceleration import (
    DynamicAlphaSchedule,
    propeller_index_matrix,
    propeller_indices,
)
from repro.core.fedcross import FedCrossServer
from repro.core.gram import GramTracker
from repro.core.pool import PoolBuffer, cosine_from_gram
from repro.core.storage import (
    DenseStorage,
    MemmapStorage,
    PoolStorage,
    ShardedStorage,
    available_backends,
    register_backend,
    resolve_backend,
)

__all__ = [
    "CoModelSel",
    "cosine_similarity",
    "euclidean_similarity",
    "select_in_order",
    "select_highest_similarity",
    "select_lowest_similarity",
    "similarity_matrix",
    "cross_aggregate",
    "global_model_generation",
    "DynamicAlphaSchedule",
    "propeller_index_matrix",
    "propeller_indices",
    "FedCrossServer",
    "GramTracker",
    "PoolBuffer",
    "cosine_from_gram",
    "PoolStorage",
    "DenseStorage",
    "MemmapStorage",
    "ShardedStorage",
    "register_backend",
    "resolve_backend",
    "available_backends",
]
