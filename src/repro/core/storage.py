"""Pluggable storage backends for the ``(K, P)`` pool matrix.

:class:`repro.core.pool.PoolBuffer` expresses every Algorithm 1 server
step as array operations on one ``(K, P)`` matrix; *where that matrix
lives* is this module's concern.  A :class:`PoolStorage` backend owns
the allocation and exposes it through a small row-oriented protocol, so
the pool engine — and everything layered on it — is agnostic to the
physical medium:

``dense``
    :class:`DenseStorage`, a plain in-memory ``np.ndarray`` — today's
    default and the fastest option while the pool fits in RAM.
``memmap``
    :class:`MemmapStorage`, an ``np.memmap`` over a temporary file —
    keeps the *resident* pool buffers off the heap at the cost of
    page-cache traffic.  Set ``REPRO_MEMMAP_DIR`` to place the backing
    files on a specific filesystem (e.g. fast local scratch).
``sharded``
    :class:`ShardedStorage`, the ``(K, P)`` matrix split into
    contiguous **row shards**, each shard itself a ``dense`` or
    ``memmap`` storage (the ``placement`` option).  No operation on a
    sharded pool ever requires the full matrix as one allocation: the
    pool engine reads/writes through the row protocol below, serving
    shard-local row blocks as zero-copy views and cross-shard blocks
    as bounded gathered copies.  Shard count comes from the ``shards``
    option (``FLConfig.shards`` / ``--shards``; default
    ``REPRO_POOL_SHARDS`` or 4) — the single-node rehearsal of the
    multi-node pool layout the ROADMAP's millions-of-clients north
    star needs, and the protocol seam a distributed/GPU backend slots
    in behind.
``distributed``
    :class:`repro.distributed.storage.DistributedStorage` (lazily
    registered), the multi-node realisation of that seam: each
    contiguous row shard lives in a ``ShardHost`` worker process and
    the coordinator proxies the row protocol over socket RPC —
    shard-local reductions run on the hosts, only reduced results and
    bounded row blocks cross the wire.  Host count comes from the
    ``hosts`` option (``FLConfig.hosts`` / ``--hosts``; default
    ``REPRO_POOL_HOSTS`` or 2).

Row protocol
------------
Beyond ``allocate``/``from_array``/``array``/``clone``, every backend
serves bounded row access used by the pool engine's blocked
operations (base-class defaults delegate to ``array``, so pre-existing
third-party backends keep working unchanged):

* :meth:`PoolStorage.row` — one writable row (client uploads land
  directly in their owning shard through this);
* :meth:`PoolStorage.row_block` — rows ``[start, stop)`` for reading
  (view where the medium allows, copy otherwise);
* :meth:`PoolStorage.write_rows` / :meth:`PoolStorage.fill_rows` —
  blocked writes;
* :meth:`PoolStorage.gather_rows` — arbitrary row gathers
  (cross-aggregation collaborator rows);
* :meth:`PoolStorage.shard_boundaries` — the row spans owned by each
  shard, consumed by the pool engine's shard-aware block iterator and
  the Gram tracker's shard-local dot updates.

``cross_aggregate``, the similarity paths (blocked Gram cosine,
blocked euclidean differences, ``similarity_to``), the ``dispersion``
diagnostic and both ``mean_state`` modes all operate in bounded row
blocks under the ``REPRO_POOL_BLOCK_BYTES`` budget — no pool operation
materialises a float64 (or, for sharded pools, even a buffer-dtype)
copy of the whole matrix, so full server rounds run out-of-core; the
CI bench smoke and the sharded large-K stress test assert the
peak-allocation bounds.  The incremental
:class:`repro.core.gram.GramTracker` goes further for the similarity
results: O(P) temporaries per row update, pure ``(K, K)`` algebra per
query.

Backends register themselves on :data:`POOL_BACKENDS` via
:func:`register_backend`; third-party backends (GPU arrays,
distributed segments) only need to subclass :class:`PoolStorage` and
register under a new name, then become selectable through
``FLConfig.backend`` and the ``--backend`` CLI flag.

All backends must be *bit-transparent*: the same sequence of array
operations over the same values must produce identical results
regardless of backend (the cross-backend equivalence matrix in
``tests/integration/test_backend_matrix.py`` enforces this for dense,
memmap and sharded end to end).
"""

from __future__ import annotations

import bisect
import os
import tempfile
import weakref
from typing import Iterable, Sequence

import numpy as np

from repro.utils.registry import Registry

__all__ = [
    "PoolStorage",
    "DenseStorage",
    "MemmapStorage",
    "ShardedStorage",
    "POOL_BACKENDS",
    "register_backend",
    "resolve_backend",
    "available_backends",
]


POOL_BACKENDS = Registry("pool backend", error_type=ValueError)


def register_backend(name: str):
    """Class decorator registering a :class:`PoolStorage` backend."""
    return POOL_BACKENDS.register(name)


def resolve_backend(name: str) -> type["PoolStorage"]:
    """Backend class registered under ``name`` (case-insensitive).

    Unknown names raise :class:`ValueError` naming every registered
    backend, so ``--backend`` typos fail with the fix in the message
    instead of a bare ``KeyError``.
    """
    return POOL_BACKENDS.resolve(name)


def available_backends() -> list[str]:
    return POOL_BACKENDS.available()


class PoolStorage:
    """Owner of one 2-D array; subclasses choose the physical medium.

    The core contract is small: allocate, adopt an existing array,
    expose the live ``array``, and clone.  On top of it sits the row
    protocol (:meth:`row`, :meth:`row_block`, :meth:`write_rows`,
    :meth:`gather_rows`, :meth:`fill_rows`, :meth:`shard_boundaries`)
    whose base-class defaults simply index ``array`` — single-medium
    backends inherit them for free, while segmented backends like
    :class:`ShardedStorage` override them so no caller ever needs the
    whole matrix as one allocation.
    """

    name = "abstract"

    @classmethod
    def allocate(cls, shape: tuple[int, int], dtype=np.float32) -> "PoolStorage":
        """Zero-initialised storage of ``shape``/``dtype``."""
        raise NotImplementedError

    @classmethod
    def from_array(cls, array: np.ndarray) -> "PoolStorage":
        """Storage holding ``array``'s values (may adopt without copy)."""
        raise NotImplementedError

    @property
    def array(self) -> np.ndarray:
        """The live backing array (segmented backends may return a copy)."""
        raise NotImplementedError

    def clone(self) -> "PoolStorage":
        """Independent storage with the same values, same backend."""
        return type(self).from_array(np.array(self.array, copy=True))

    def allocate_like(self, shape: tuple[int, int], dtype=np.float32) -> "PoolStorage":
        """Fresh zeroed storage preserving this instance's configuration.

        Derived pools (``cross_aggregate`` outputs, copies) allocate
        through the *instance* so option-carrying backends (shard
        count/placement) propagate; the default just calls the class
        :meth:`allocate`.
        """
        return type(self).allocate(shape, dtype=dtype)

    # -- row protocol ------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """``(K, P)`` without materialising anything."""
        return tuple(self.array.shape)  # type: ignore[return-value]

    @property
    def dtype(self) -> np.dtype:
        return self.array.dtype

    def row(self, index: int) -> np.ndarray:
        """Writable 1-D view of row ``index`` (lives on its shard)."""
        return self.array[index]

    def row_block(self, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` for reading.

        A zero-copy view where the medium allows (single-medium
        backends, shard-local spans of a sharded pool); a bounded
        contiguous copy otherwise.  Callers must not mutate the result.
        """
        return self.array[start:stop]

    def write_rows(self, start: int, values: np.ndarray) -> None:
        """Write the block ``values`` into rows ``start:start+len(values)``."""
        self.array[start : start + values.shape[0]] = values

    def gather_rows(self, indices: np.ndarray) -> np.ndarray:
        """Contiguous copy of the (arbitrary) ``indices`` rows, in order."""
        return self.array[np.asarray(indices, dtype=np.int64)]

    def fill_rows(self, values: np.ndarray) -> None:
        """Broadcast one row's ``values`` over every row."""
        self.array[:] = values

    def shard_boundaries(self) -> tuple[int, ...]:
        """Row-span fenceposts ``(0, ..., K)`` of the physical shards.

        Single-medium backends are one shard: ``(0, K)``.  The pool
        engine's shard-aware block iterator splits shard-local
        operations on these, and the Gram tracker groups its per-row
        dot updates by them.
        """
        return (0, self.shape[0])

    def open_row(self, index: int) -> np.ndarray:
        """Writable staging buffer for a full overwrite of row ``index``.

        Paired with :meth:`commit_row`: the pool engine stages a row's
        new contents here, then commits the finished row in one call.
        Local backends hand out the live row view (commit is then a
        no-op), so the pair costs nothing single-node; remote backends
        return scratch and ship the committed row in **one** message
        instead of per-field writes.
        """
        return self.row(index)

    def commit_row(self, index: int, staged: np.ndarray) -> None:
        """Publish a row staged via :meth:`open_row` (no-op when the
        staging buffer is the live row view)."""
        row = self.row(index)
        if staged is not row:  # pragma: no cover - defensive for 3rd parties
            row[:] = staged

    def masked_dots(
        self, vector: np.ndarray, mask: "np.ndarray | None"
    ) -> "np.ndarray | None":
        """Optional shard-local reduction hook for Gram row updates.

        ``vector`` is one masked contiguous float64 row; a backend that
        can compute ``dot(vector, masked_row_j)`` for every row ``j``
        *where the rows live* returns the ``(K,)`` float64 result
        (bitwise equal to the local per-row contiguous ``np.dot`` loop
        — see :meth:`repro.core.gram.GramTracker.update_row`).  The
        default returns ``None``: the tracker then runs its local loop.
        """
        return None

    def flush(self) -> None:
        """Force dirty state to the backing medium (no-op by default)."""

    @classmethod
    def _reject_options(cls, options: dict) -> None:
        if options:
            raise ValueError(
                f"pool backend {cls.name!r} accepts no storage options, "
                f"got {sorted(options)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        k, p = self.shape
        return f"{type(self).__name__}(shape=({k}, {p}), dtype={self.dtype})"


@register_backend("dense")
class DenseStorage(PoolStorage):
    """In-memory ``np.ndarray`` storage — the default backend."""

    def __init__(self, array: np.ndarray) -> None:
        self._array = np.asarray(array)

    @classmethod
    def allocate(cls, shape, dtype=np.float32, **options) -> "DenseStorage":
        cls._reject_options(options)
        return cls(np.zeros(shape, dtype=dtype))

    @classmethod
    def from_array(cls, array: np.ndarray) -> "DenseStorage":
        # Adopts without copying: PoolBuffer operations hand freshly
        # computed arrays here, and copying would double peak memory.
        return cls(array)

    @property
    def array(self) -> np.ndarray:
        return self._array


def _remove_file(path: str) -> None:
    try:
        os.remove(path)
    except OSError:  # already gone / directory vanished
        pass


@register_backend("memmap")
class MemmapStorage(PoolStorage):
    """``np.memmap`` storage over a temporary file.

    The backing file is created with :func:`tempfile.mkstemp` (honouring
    ``REPRO_MEMMAP_DIR``) and removed by a :func:`weakref.finalize`
    callback when the storage is garbage-collected, so pools never leak
    files across rounds even though aggregation allocates fresh storage.
    """

    def __init__(self, array: np.memmap, path: str) -> None:
        self._array = array
        self.path = path
        self._finalizer = weakref.finalize(self, _remove_file, path)

    @classmethod
    def _create(cls, shape, dtype) -> "MemmapStorage":
        directory = os.environ.get("REPRO_MEMMAP_DIR") or None
        fd, path = tempfile.mkstemp(prefix="repro-pool-", suffix=".mm", dir=directory)
        os.close(fd)
        array = np.memmap(path, dtype=np.dtype(dtype), mode="w+", shape=tuple(shape))
        return cls(array, path)

    @classmethod
    def allocate(cls, shape, dtype=np.float32, **options) -> "MemmapStorage":
        cls._reject_options(options)
        # A fresh w+ memmap is zero-filled by the OS already.
        return cls._create(shape, dtype)

    @classmethod
    def from_array(cls, array: np.ndarray) -> "MemmapStorage":
        array = np.asarray(array)
        storage = cls._create(array.shape, array.dtype)
        storage._array[:] = array
        return storage

    @property
    def array(self) -> np.memmap:
        return self._array

    def flush(self) -> None:
        """Force dirty pages to the backing file."""
        self._array.flush()


# Default shard count when neither the ``shards`` option nor the
# ``REPRO_POOL_SHARDS`` environment override names one.
_DEFAULT_SHARDS = 4


def _even_boundaries(k: int, shards: int) -> tuple[int, ...]:
    """Fenceposts of ``shards`` near-equal contiguous row spans of ``k``."""
    shards = max(1, min(int(shards), max(1, k)))
    return tuple(round(s * k / shards) for s in range(shards + 1))


@register_backend("sharded")
class ShardedStorage(PoolStorage):
    """The ``(K, P)`` matrix split into contiguous row shards.

    Parameters (as ``allocate``/``from_array`` options, wired through
    ``FLConfig.shards`` / ``--shards``):

    ``shards``
        Shard count (clamped to ``[1, K]``; rows are split into
        near-equal contiguous spans).  Defaults to the
        ``REPRO_POOL_SHARDS`` environment variable, then 4.
    ``placement``
        Backend name each shard is stored on — ``"dense"`` (default)
        or ``"memmap"`` (pools beyond RAM; this is the layout the
        large-K stress test drives).  Any registered single-medium
        backend qualifies; ``"sharded"`` itself is rejected.

    The full matrix never exists as one allocation: ``array`` is a
    *gathered, read-only copy* for diagnostics/tests, and every pool
    operation goes through the row protocol — ``row``/``row_block``
    serve shard-local access as zero-copy views into the owning shard,
    cross-shard blocks as bounded gathered copies.  Because a gathered
    block holds exactly the same values in the same contiguous layout
    a single-medium backend would serve, every blocked pool operation
    is **bit-identical** to its dense result (the equivalence-matrix
    suite and the sharded property tests pin this).

    Derived storages (``clone``, ``allocate_like``) keep the shard
    count and placement, so cross-aggregated pools stay sharded the
    same way round after round.
    """

    def __init__(self, shards: Sequence[PoolStorage], boundaries: Sequence[int],
                 requested_shards: int, placement: str) -> None:
        if len(boundaries) != len(shards) + 1:
            raise ValueError("boundaries must have one more entry than shards")
        self._shards = list(shards)
        self._boundaries = tuple(int(b) for b in boundaries)
        self._requested_shards = int(requested_shards)
        self._placement = placement
        p = self._shards[0].shape[1] if self._shards else 0
        self._shape = (self._boundaries[-1], p)

    # -- construction ------------------------------------------------------
    @classmethod
    def _resolve_options(cls, shards, placement) -> tuple[int, str]:
        if shards is None:
            shards = int(os.environ.get("REPRO_POOL_SHARDS") or _DEFAULT_SHARDS)
        shards = int(shards)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        placement = str(placement).lower()
        shard_cls = resolve_backend(placement)
        if issubclass(shard_cls, ShardedStorage):
            raise ValueError("sharded placement cannot itself be 'sharded'")
        return shards, placement

    @classmethod
    def allocate(
        cls, shape, dtype=np.float32, *, shards: int | None = None,
        placement: str = "dense", **options,
    ) -> "ShardedStorage":
        cls._reject_options(options)
        shards, placement = cls._resolve_options(shards, placement)
        k, p = int(shape[0]), int(shape[1])
        bounds = _even_boundaries(k, shards)
        shard_cls = resolve_backend(placement)
        pieces = [
            shard_cls.allocate((bounds[s + 1] - bounds[s], p), dtype=dtype)
            for s in range(len(bounds) - 1)
        ]
        return cls(pieces, bounds, shards, placement)

    @classmethod
    def from_array(
        cls, array: np.ndarray, *, shards: int | None = None,
        placement: str = "dense",
    ) -> "ShardedStorage":
        array = np.asarray(array)
        storage = cls.allocate(array.shape, dtype=array.dtype,
                               shards=shards, placement=placement)
        for (start, stop), piece in zip(storage.shard_spans(), storage._shards):
            piece.array[:] = array[start:stop]
        return storage

    def allocate_like(self, shape, dtype=np.float32) -> "ShardedStorage":
        return type(self).allocate(
            shape, dtype=dtype,
            shards=self._requested_shards, placement=self._placement,
        )

    def clone(self) -> "ShardedStorage":
        pieces = [piece.clone() for piece in self._shards]
        return type(self)(pieces, self._boundaries,
                          self._requested_shards, self._placement)

    # -- shard introspection ----------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def placement(self) -> str:
        """Backend name each shard lives on (``dense`` / ``memmap``)."""
        return self._placement

    @property
    def shards(self) -> tuple[PoolStorage, ...]:
        """The per-shard storages, in row order."""
        return tuple(self._shards)

    def shard_boundaries(self) -> tuple[int, ...]:
        return self._boundaries

    def shard_spans(self) -> list[tuple[int, int]]:
        """``(start, stop)`` row span of each shard, in order."""
        b = self._boundaries
        return [(b[s], b[s + 1]) for s in range(len(b) - 1)]

    def _locate(self, index: int) -> tuple[int, int]:
        """(shard number, row offset inside that shard) of global row."""
        k = self._shape[0]
        if not 0 <= index < k:
            raise IndexError(f"row {index} out of range for pool of {k}")
        s = bisect.bisect_right(self._boundaries, index) - 1
        # Empty leading spans share a boundary value; step to the span
        # that actually contains the row.
        while self._boundaries[s + 1] <= index:  # pragma: no cover - defensive
            s += 1
        return s, index - self._boundaries[s]

    # -- row protocol ------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def dtype(self) -> np.dtype:
        return self._shards[0].dtype if self._shards else np.dtype(np.float32)

    @property
    def array(self) -> np.ndarray:
        """Gathered **read-only copy** of the whole matrix.

        Diagnostic/test convenience only — O(K·P) memory, and writes do
        not reach the shards (the copy is flagged unwritable so silent
        divergence is impossible).  Library code uses the row protocol.
        """
        out = np.empty(self._shape, dtype=self.dtype)
        for (start, stop), piece in zip(self.shard_spans(), self._shards):
            out[start:stop] = piece.array
        out.setflags(write=False)
        return out

    def row(self, index: int) -> np.ndarray:
        s, offset = self._locate(index)
        return self._shards[s].array[offset]

    def row_block(self, start: int, stop: int) -> np.ndarray:
        start, stop = int(start), int(stop)
        s, offset = self._locate(start) if stop > start else (0, 0)
        if stop <= start:
            return np.empty((0, self._shape[1]), dtype=self.dtype)
        if stop <= self._boundaries[s + 1]:
            # Shard-local span: zero-copy view into the owning shard.
            return self._shards[s].array[offset : offset + (stop - start)]
        out = np.empty((stop - start, self._shape[1]), dtype=self.dtype)
        for (b0, b1), piece in zip(self.shard_spans(), self._shards):
            lo, hi = max(start, b0), min(stop, b1)
            if lo < hi:
                out[lo - start : hi - start] = piece.array[lo - b0 : hi - b0]
        return out

    def write_rows(self, start: int, values: np.ndarray) -> None:
        stop = start + values.shape[0]
        for (b0, b1), piece in zip(self.shard_spans(), self._shards):
            lo, hi = max(start, b0), min(stop, b1)
            if lo < hi:
                piece.array[lo - b0 : hi - b0] = values[lo - start : hi - start]

    def gather_rows(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        out = np.empty((indices.shape[0], self._shape[1]), dtype=self.dtype)
        for n, j in enumerate(indices):
            out[n] = self.row(int(j))
        return out

    def fill_rows(self, values: np.ndarray) -> None:
        for piece in self._shards:
            piece.array[:] = values

    def flush(self) -> None:
        for piece in self._shards:
            piece.flush()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        k, p = self._shape
        return (
            f"ShardedStorage(shape=({k}, {p}), dtype={self.dtype}, "
            f"shards={self.num_shards}, placement={self._placement!r})"
        )


# The socket-RPC multi-node backend registers itself on import of
# repro.distributed.storage; the lazy entry makes ``distributed``
# resolvable (CLI validation, FLConfig.backend) without importing the
# subsystem until it is actually selected.
POOL_BACKENDS.lazy("distributed", "repro.distributed.storage")
