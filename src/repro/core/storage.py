"""Pluggable storage backends for the ``(K, P)`` pool matrix.

:class:`repro.core.pool.PoolBuffer` expresses every Algorithm 1 server
step as array operations on one ``(K, P)`` matrix; *where that matrix
lives* is this module's concern.  A :class:`PoolStorage` backend owns
the allocation and exposes it as a NumPy array, so the pool engine —
and everything layered on it — is agnostic to the physical medium:

``dense``
    :class:`DenseStorage`, a plain in-memory ``np.ndarray`` — today's
    default and the fastest option while the pool fits in RAM.
``memmap``
    :class:`MemmapStorage`, an ``np.memmap`` over a temporary file —
    keeps the *resident* pool buffers off the heap at the cost of
    page-cache traffic.  Set ``REPRO_MEMMAP_DIR`` to place the backing
    files on a specific filesystem (e.g. fast local scratch).
    ``cross_aggregate``, the similarity paths (blocked Gram cosine,
    blocked euclidean differences, ``similarity_to``) and the
    ``dispersion`` diagnostic all operate in bounded row blocks, and
    ``mean_state`` streams one row at a time (``precise=True``) or
    reduces in the buffer dtype (``precise=False``) — no pool
    operation materialises a float64 copy of the whole matrix any
    more, so full server rounds (selection included) run out-of-core;
    the CI bench smoke asserts the peak-allocation bound.  The
    incremental :class:`repro.core.gram.GramTracker` goes further for
    the similarity results: O(P) temporaries per row update, pure
    ``(K, K)`` algebra per query.

Backends register themselves on :data:`POOL_BACKENDS` via
:func:`register_backend`; third-party backends (GPU arrays, sharded
segments) only need to subclass :class:`PoolStorage` and register under
a new name, then become selectable through ``FLConfig.backend`` and the
``--backend`` CLI flag.

All backends must be *bit-transparent*: the same sequence of array
operations over the same values must produce identical results
regardless of backend (the memmap equivalence tests enforce this).
"""

from __future__ import annotations

import os
import tempfile
import weakref

import numpy as np

__all__ = [
    "PoolStorage",
    "DenseStorage",
    "MemmapStorage",
    "POOL_BACKENDS",
    "register_backend",
    "resolve_backend",
    "available_backends",
]


POOL_BACKENDS: dict[str, type["PoolStorage"]] = {}


def register_backend(name: str):
    """Class decorator registering a :class:`PoolStorage` backend."""

    def decorator(cls: type["PoolStorage"]) -> type["PoolStorage"]:
        key = name.lower()
        if key in POOL_BACKENDS:
            raise KeyError(f"pool backend {name!r} is already registered")
        POOL_BACKENDS[key] = cls
        cls.name = key
        return cls

    return decorator


def resolve_backend(name: str) -> type["PoolStorage"]:
    """Backend class registered under ``name`` (case-insensitive)."""
    key = str(name).lower()
    if key not in POOL_BACKENDS:
        raise KeyError(
            f"unknown pool backend {name!r}; available: {sorted(POOL_BACKENDS)}"
        )
    return POOL_BACKENDS[key]


def available_backends() -> list[str]:
    return sorted(POOL_BACKENDS)


class PoolStorage:
    """Owner of one 2-D array; subclasses choose the physical medium.

    The contract is deliberately small: allocate, adopt an existing
    array, expose the live ``array``, and clone.  Every array returned
    must behave as a writable ``np.ndarray`` (``np.memmap`` qualifies).
    """

    name = "abstract"

    @classmethod
    def allocate(cls, shape: tuple[int, int], dtype=np.float32) -> "PoolStorage":
        """Zero-initialised storage of ``shape``/``dtype``."""
        raise NotImplementedError

    @classmethod
    def from_array(cls, array: np.ndarray) -> "PoolStorage":
        """Storage holding ``array``'s values (may adopt without copy)."""
        raise NotImplementedError

    @property
    def array(self) -> np.ndarray:
        """The live backing array."""
        raise NotImplementedError

    def clone(self) -> "PoolStorage":
        """Independent storage with the same values, same backend."""
        return type(self).from_array(np.array(self.array, copy=True))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        a = self.array
        return f"{type(self).__name__}(shape={a.shape}, dtype={a.dtype})"


@register_backend("dense")
class DenseStorage(PoolStorage):
    """In-memory ``np.ndarray`` storage — the default backend."""

    def __init__(self, array: np.ndarray) -> None:
        self._array = np.asarray(array)

    @classmethod
    def allocate(cls, shape, dtype=np.float32) -> "DenseStorage":
        return cls(np.zeros(shape, dtype=dtype))

    @classmethod
    def from_array(cls, array: np.ndarray) -> "DenseStorage":
        # Adopts without copying: PoolBuffer operations hand freshly
        # computed arrays here, and copying would double peak memory.
        return cls(array)

    @property
    def array(self) -> np.ndarray:
        return self._array


def _remove_file(path: str) -> None:
    try:
        os.remove(path)
    except OSError:  # already gone / directory vanished
        pass


@register_backend("memmap")
class MemmapStorage(PoolStorage):
    """``np.memmap`` storage over a temporary file.

    The backing file is created with :func:`tempfile.mkstemp` (honouring
    ``REPRO_MEMMAP_DIR``) and removed by a :func:`weakref.finalize`
    callback when the storage is garbage-collected, so pools never leak
    files across rounds even though aggregation allocates fresh storage.
    """

    def __init__(self, array: np.memmap, path: str) -> None:
        self._array = array
        self.path = path
        self._finalizer = weakref.finalize(self, _remove_file, path)

    @classmethod
    def _create(cls, shape, dtype) -> "MemmapStorage":
        directory = os.environ.get("REPRO_MEMMAP_DIR") or None
        fd, path = tempfile.mkstemp(prefix="repro-pool-", suffix=".mm", dir=directory)
        os.close(fd)
        array = np.memmap(path, dtype=np.dtype(dtype), mode="w+", shape=tuple(shape))
        return cls(array, path)

    @classmethod
    def allocate(cls, shape, dtype=np.float32) -> "MemmapStorage":
        # A fresh w+ memmap is zero-filled by the OS already.
        return cls._create(shape, dtype)

    @classmethod
    def from_array(cls, array: np.ndarray) -> "MemmapStorage":
        array = np.asarray(array)
        storage = cls._create(array.shape, array.dtype)
        storage._array[:] = array
        return storage

    @property
    def array(self) -> np.memmap:
        return self._array

    def flush(self) -> None:
        """Force dirty pages to the backing file."""
        self._array.flush()
