"""Incremental Gram similarity engine (``GramTracker``).

``CoModelSel`` and the pool diagnostics (``middleware_similarity``,
``dispersion``) are all functions of one object: the float64 ``(K, K)``
Gram matrix ``G = V @ V.T`` of the masked pool rows.  Rebuilding it
from scratch every round costs O(K²·P); this module maintains it
*incrementally* instead:

* :meth:`GramTracker.update_row` refreshes one row/column pair in
  O(K·P) — called as each client upload lands, so under the streaming
  collect phase the whole-round Gram work hides behind still-running
  training legs and the server's blocking similarity cost drops to
  O(K²) algebra;
* :meth:`GramTracker.cross_aggregated` applies the closed-form
  post-``CrossAggr`` transform.  For ``M' = αM + (1−α)M[co]``::

      G' = α²·G + α(1−α)·(G[:, co] + G[co, :]) + (1−α)²·G[ix(co, co)]

  so the *new* pool's similarity matrix and dispersion never re-read
  pool data at all (the 2-D propeller variant has the analogous
  mean-over-propellers expansion).

Determinism and tolerance contract
----------------------------------
``update_row`` computes each pairwise dot as a single contiguous
float64 1-D ``np.dot`` — the same kernel, operand length and summation
order regardless of which row updates first, and elementwise products
commute exactly in IEEE arithmetic — so the fully refreshed Gram is
**bitwise independent of update order** (streamed completion order vs
the gathered plan-order schedule).  Against a *fresh* recompute the
entries agree to reduction-order round-off: a few ulps of the row-norm
scale, i.e. ``|G_ij − Ĝ_ij| ≲ c·ε·‖v_i‖·‖v_j‖`` with ε the float64
epsilon and c a small multiple of log₂P (the property tests pin this
at ``rtol=1e-9`` plus a norm-scaled ``atol``).  The closed-form
:meth:`cross_aggregated` transform is exact algebra over the *tracked*
Gram; versus a recompute on the rounded new pool it additionally picks
up one buffer-dtype rounding of the blended rows (float32 pools:
~1e-6 relative; float64 pools: ~1e-12).  :meth:`dispersion` recovers
``RMS‖v_i − mean‖`` from Gram sums, which cancels when the pool is far
tighter than its norm scale — accurate while ``dispersion² ≳ ε·‖v‖²``,
degrading to the absolute floor ``√(ε·‖v‖²)`` below that (the
cancellation-safe streamed recompute in
:meth:`repro.core.pool.PoolBuffer.dispersion` remains the ground
truth for converged pools).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.pool import cosine_from_gram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pool import PoolBuffer

__all__ = ["GramTracker"]


class GramTracker:
    """Maintains the float64 ``(K, K)`` Gram of a pool's masked rows.

    Parameters
    ----------
    pool:
        The tracked :class:`~repro.core.pool.PoolBuffer`.  Held by
        reference: ``update_row`` reads the row's *current* contents.
    param_keys:
        Optional restriction to these state keys (the same mask
        ``CoModelSel`` applies — trainable parameters only).
    gram:
        Optional initial ``(K, K)`` Gram (e.g. from
        :meth:`cross_aggregated`).  Defaults to zeros — valid once
        every row has been updated at least once, which is exactly
        what one full collect phase does.
    """

    def __init__(
        self,
        pool: "PoolBuffer",
        param_keys: Iterable[str] | None = None,
        gram: np.ndarray | None = None,
    ) -> None:
        k = len(pool)
        if gram is None:
            gram = np.zeros((k, k))
        else:
            gram = np.array(gram, dtype=np.float64, copy=True)
            if gram.shape != (k, k):
                raise ValueError(
                    f"gram of shape {gram.shape} does not match pool size {k}"
                )
        self.pool = pool
        self.param_keys = set(param_keys) if param_keys is not None else None
        self.gram = gram
        self.updates = 0  # row updates applied (diagnostic/bench counter)

    @classmethod
    def from_pool(
        cls, pool: "PoolBuffer", param_keys: Iterable[str] | None = None
    ) -> "GramTracker":
        """Tracker with a fully refreshed Gram of ``pool``'s current rows."""
        tracker = cls(pool, param_keys=param_keys)
        tracker.refresh()
        return tracker

    def __len__(self) -> int:
        return self.gram.shape[0]

    # -- maintenance -------------------------------------------------------
    def shard_dots(self, index: int, start: int, stop: int) -> np.ndarray:
        """Dot contributions of pool rows ``[start, stop)`` against row
        ``index`` — one shard's share of an :meth:`update_row`.

        This is the distributable unit of Gram maintenance: each shard
        of a sharded pool owns its rows' contributions, computing dots
        of the broadcast updated row against *its own rows only*
        (shard-local reads via
        :meth:`~repro.core.pool.PoolBuffer.masked_row_f64`, O(P) peak
        temporary).  Each dot is a 1-D contiguous ``np.dot`` whose
        summation order depends only on the masked width, so the
        assembled row is bitwise identical no matter how rows are
        sharded or in which order shards report.
        """
        return self._shard_dots(
            self.pool.masked_row_f64(index, self.param_keys), index, start, stop
        )

    def _shard_dots(
        self, vi: np.ndarray, index: int, start: int, stop: int
    ) -> np.ndarray:
        dots = np.empty(stop - start)
        for j in range(start, stop):
            vj = vi if j == index else self.pool.masked_row_f64(j, self.param_keys)
            dots[j - start] = np.dot(vi, vj)
        return dots

    def update_row(self, index: int) -> None:
        """Refresh row/column ``index`` from the pool's current data.

        O(K·P): one contiguous float64 dot against every pool member,
        with O(P) peak temporary memory (one masked row at a time —
        never a ``(K, P)`` float64 cast, so memmap pools update
        out-of-core).  The dots are gathered per storage shard
        (:meth:`shard_dots` — on sharded pools every read is a
        zero-copy view into the owning shard), and because each dot is
        a 1-D contiguous ``np.dot`` the fully refreshed Gram is
        bitwise independent both of the order rows were updated in —
        the property that keeps streamed and gathered collect
        schedules bit-identical — and of the shard layout itself.
        """
        k = len(self)
        if not 0 <= index < k:
            raise IndexError(f"row {index} out of range for pool of {k}")
        vi = self.pool.masked_row_f64(index, self.param_keys)
        # Storages that can run the shard-local reduction *where the
        # rows live* (the RPC-distributed backend) take the whole
        # update: each remote shard runs the exact `_shard_dots` kernel
        # on its own rows, so the assembled row is bitwise identical
        # and only O(P) + O(K) scalars move instead of K rows.
        mask, masked, _ = self.pool._mask_info(self.param_keys)
        dots = self.pool.storage.masked_dots(vi, mask if masked else None)
        if dots is None:
            dots = np.empty(k)
            bounds = self.pool.storage.shard_boundaries()
            for s in range(len(bounds) - 1):
                start, stop = bounds[s], bounds[s + 1]
                dots[start:stop] = self._shard_dots(vi, index, start, stop)
        self.gram[index, :] = dots
        self.gram[:, index] = dots
        self.updates += 1

    def refresh(self) -> None:
        """Rebuild every row through :meth:`update_row` semantics.

        O(K²·P) — the from-scratch cost the incremental path avoids;
        used to (re)base a tracker on a pool whose rows changed outside
        the per-upload update stream.
        """
        for i in range(len(self)):
            self.update_row(i)

    # -- (K, K) algebra ----------------------------------------------------
    @property
    def norms(self) -> np.ndarray:
        """Masked row norms, read off the Gram diagonal."""
        return np.sqrt(np.clip(np.diag(self.gram), 0.0, None))

    def similarity(self) -> np.ndarray:
        """Cosine ``(K, K)`` similarity — pure algebra on the Gram."""
        return cosine_from_gram(self.gram)

    def similarity_to(self, index: int) -> np.ndarray:
        """``(K,)`` cosine similarities to model ``index``."""
        return self.similarity()[index]

    def select_among(
        self, index: int, candidates: Iterable[int], highest: bool = True
    ) -> int | None:
        """Best cosine collaborator for ``index`` among ``candidates``.

        The speculative CoModelSel primitive: restricted to the rows a
        partially landed round has refreshed so far (both endpoints of
        every considered pair must be fresh for the tracked dot to be
        meaningful).  Ties resolve to the lowest candidate index —
        the same rule as the full argmax/argmin in
        :meth:`~repro.core.pool.PoolBuffer.select_collaborators` —
        and an empty candidate set returns ``None``.
        """
        sims = self.similarity()[index]
        best: int | None = None
        best_sim = 0.0
        for j in sorted(int(c) for c in candidates):
            if j == index:
                continue
            s = float(sims[j])
            if best is None or (s > best_sim if highest else s < best_sim):
                best, best_sim = j, s
        return best

    def dispersion(self) -> float:
        """RMS distance of pool members from their mean, from Gram sums.

        ``mean_i ‖v_i − v̄‖² = mean(diag G) − sum(G)/K²`` — O(K²) and
        data-free, clipped at zero against round-off.  See the module
        docstring for the cancellation caveat on converged pools.
        """
        k = len(self)
        if k == 0:
            return 0.0
        var = float(np.mean(np.diag(self.gram)) - self.gram.sum() / (k * k))
        return float(np.sqrt(max(var, 0.0)))

    def cross_aggregated(
        self,
        co_indices: np.ndarray,
        alpha: float,
        pool: "PoolBuffer | None" = None,
    ) -> "GramTracker":
        """Tracker for the pool produced by ``cross_aggregate(co, alpha)``.

        Closed form, O(K²) (O(K²·num²) for a 2-D propeller matrix):
        with ``a = alpha`` and ``b = 1 − alpha``, the blended rows
        ``m'_i = a·m_i + b·mean_j m_{co[i, j]}`` expand bilinearly into
        Gram entries the tracker already holds — no pool data is read.
        ``pool`` should be the *new* buffer the Gram now describes
        (callers use the identity to detect staleness); it defaults to
        the tracked pool for pure-algebra uses.
        """
        co = np.asarray(co_indices, dtype=np.int64)
        if co.ndim not in (1, 2):
            raise ValueError("co_indices must be 1- or 2-dimensional")
        k = len(self)
        if co.shape[0] != k:
            raise ValueError(
                f"co_indices of length {co.shape[0]} does not match pool size {k}"
            )
        # The bilinear expansion assumes every tracked column is blended,
        # but cross_aggregate carries *integer* fields (step counters...)
        # from each row unaveraged — a tracked integer column would make
        # the derived Gram diverge from the real new pool by O(value²),
        # silently voiding the tolerance contract.  Track parameters
        # only (FedCross's selector mask does) or drop integer fields.
        layout = self.pool.layout
        int_in_mask = layout.integer_mask() & layout.mask(self.param_keys)
        if int_in_mask.any():
            raise ValueError(
                "closed-form cross_aggregated is undefined for tracked "
                "integer fields (cross_aggregate carries them unblended); "
                "restrict param_keys to float parameters"
            )
        a = float(alpha)
        b = 1.0 - a
        g = self.gram
        if co.ndim == 1:
            gc = g[:, co]  # gc[i, j] = <v_i, v_co[j]>
            new = a * a * g + a * b * (gc + gc.T) + b * b * g[np.ix_(co, co)]
        else:
            num = co.shape[1]
            # A[i, m] = sum_j <v_co[i, j], v_m>
            acc = np.zeros((k, k))
            for j in range(num):
                acc += g[co[:, j], :]
            # T[i, k] = sum_{j, l} <v_co[i, j], v_co[k, l]>
            tot = np.zeros((k, k))
            for l in range(num):
                tot += acc[:, co[:, l]]
            new = a * a * g + (a * b / num) * (acc + acc.T) + (b * b / (num * num)) * tot
        return GramTracker(
            pool if pool is not None else self.pool,
            param_keys=self.param_keys,
            gram=new,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GramTracker(K={len(self)}, updates={self.updates})"
