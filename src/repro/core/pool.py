"""Vectorized middleware-pool engine (Algorithm 1 on one matrix).

The FedCross server manipulates K middleware models per round.  The
original implementation stored the pool as K state dicts and re-derived
K full flattened vectors *per selection query* — an O(K²·P) copy storm.
:class:`PoolBuffer` stores the entire pool as a single ``(K, P)``
matrix over a cached :class:`repro.utils.layout.StateLayout`, so each
Algorithm 1 server step is one (or a few) BLAS-level array operations:

===========================  ==========================================
Algorithm 1 step             PoolBuffer operation
===========================  ==========================================
line 2  (init K models)      :meth:`PoolBuffer.broadcast`
line 7-10 (collect uploads)  :meth:`PoolBuffer.from_states` /
                             :meth:`set_state` (one pack per upload)
line 11-12 (``CoModelSel``)  :meth:`similarity_matrix` — blocked Gram
                             matmul (:meth:`gram_matrix`) normalized
                             off its diagonal — and
                             :meth:`select_collaborators` (masked row
                             argmax/argmin, optionally fed a Gram
                             maintained incrementally by
                             :class:`repro.core.gram.GramTracker`)
line 13 (``CrossAggr``)      :meth:`cross_aggregate` — fused row blend
                             ``alpha * M + (1-alpha) * M[co]``
line 17 (``GlobalModelGen``) :meth:`mean_state` — weighted row
                             reduction (einsum)
===========================  ==========================================

Float arithmetic is performed in float64 and rounded back to the buffer
dtype, mirroring the dict-based reference implementations in
:mod:`repro.core.selection` / :mod:`repro.core.aggregation` /
:mod:`repro.utils.params` bit-for-bit.  ``param_keys`` masks restrict
similarity to trainable parameters exactly as the dict path does, and
integer fields (step counters and other non-float buffers) are carried
through aggregation unaveraged, never blended in floating point.

The matrix itself lives in a pluggable :class:`repro.core.storage`
backend (``dense`` in-memory array by default, ``memmap`` for pools
beyond RAM, ``sharded`` for row-sharded pools beyond one allocation),
selected with the ``backend=`` argument of the constructors; derived
buffers (``cross_aggregate``, ``copy``) stay on their parent's backend
with its configuration (shard count/placement included).

Blocked operation & sharding contract
-------------------------------------
Every whole-pool operation — cross-aggregation, both similarity
measures, ``similarity_to``, ``dispersion`` and both ``mean_state``
modes — walks the pool through :func:`iter_row_spans`, producing its
temporaries in bounded row blocks (budget ``_BLOCK_BYTES``,
overridable via ``REPRO_POOL_BLOCK_BYTES``), and touches pool data
only through the storage row protocol.  A round therefore never
materialises a ``(K, P)`` float64 copy, and on ``sharded`` storage
never even a whole-pool buffer-dtype copy (cross-shard blocks are
gathered per block, bounded by the budget).

Two span policies keep the backends bit-identical:

* *reduction* operations (Gram, euclidean, ``similarity_to``,
  ``dispersion``, ``mean_state``) partition rows purely by the byte
  budget — a function of (K, P) only, never of the shard layout — so
  for a fixed budget every backend computes the same BLAS calls on
  bit-equal contiguous blocks and the results match **bitwise** across
  dense / memmap / sharded;
* *elementwise* operations (``cross_aggregate``) are bit-identical for
  every block partition by construction, so their spans additionally
  split at shard boundaries (``align=True``) and stay shard-local —
  zero-copy reads and writes on the owning shard.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.storage import DenseStorage, PoolStorage, resolve_backend
from repro.utils.layout import StateLayout

__all__ = [
    "PoolBuffer",
    "VECTORIZED_MEASURES",
    "cosine_from_gram",
    "iter_row_spans",
]


def cosine_from_gram(gram: np.ndarray) -> np.ndarray:
    """Cosine-similarity matrix from a raw ``(K, K)`` Gram matrix.

    Norms come from the diagonal (clipped at zero against ulp-negative
    round-off), and zero-norm rows get similarity 0 everywhere —
    matching the dict-based reference measure ``dot / (nx * ny)``
    exactly in form.  Pure ``(K, K)`` algebra: never touches pool data,
    which is what makes Gram-tracker driven selection and diagnostics
    O(K²) instead of O(K²·P).
    """
    gram = np.asarray(gram, dtype=np.float64)
    norms = np.sqrt(np.clip(np.diag(gram), 0.0, None))
    safe = np.where(norms == 0.0, 1.0, norms)
    sim = gram / (safe[:, None] * safe[None, :])
    zero = norms == 0.0
    if zero.any():
        sim[zero, :] = 0.0
        sim[:, zero] = 0.0
    return sim

# Measures with a vectorized whole-pool implementation.  Custom measures
# registered on repro.core.selection.SIMILARITY_MEASURES fall back to
# the per-pair reference loop there.
VECTORIZED_MEASURES = ("cosine", "euclidean")
_VALID_MEASURES = VECTORIZED_MEASURES

# Soft cap on the float64 temporaries of blocked whole-pool operations
# (cross-aggregation row blocks, Gram row blocks, euclidean difference
# tensors).  Keeps peak working memory bounded for memmap/sharded pools
# far beyond RAM while leaving in-RAM pools effectively unblocked.
# ``REPRO_POOL_BLOCK_BYTES`` overrides it at call time (the out-of-core
# CI smoke and the sharded stress test use tiny budgets to prove no
# whole-pool temp exists).
_BLOCK_BYTES = 64 << 20


def _block_budget() -> int:
    raw = os.environ.get("REPRO_POOL_BLOCK_BYTES")
    return int(raw) if raw else _BLOCK_BYTES


def iter_row_spans(
    k: int,
    block_rows: int,
    boundaries: Sequence[int] | None = None,
) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` row spans of at most ``block_rows`` rows.

    The shard-aware block iterator every blocked pool operation walks.
    With ``boundaries`` (a storage's :meth:`~repro.core.storage
    .PoolStorage.shard_boundaries`), spans additionally split at shard
    fenceposts so each span is shard-local — valid only for operations
    that are bit-identical under any block partition (elementwise
    blends).  Reductions pass ``boundaries=None``: their partition must
    be a pure function of (K, budget) so every backend reduces in the
    same grouping and stays bitwise comparable.
    """
    block_rows = max(1, int(block_rows))
    fences = [b for b in (boundaries or ()) if 0 < b < k]
    start = 0
    for fence in [*fences, k]:
        while start < fence:
            stop = min(start + block_rows, fence)
            yield start, stop
            start = stop


def _check_integer_roundtrip(
    layout: StateLayout, state: Mapping[str, np.ndarray], dtype: np.dtype
) -> None:
    """Refuse to pack integer fields that would be rounded by ``dtype``.

    Integer buffers (step counters, ...) ride inside the float pool
    matrix and are guaranteed to come back unchanged; a value outside
    the float dtype's exact-integer range (2^24 for float32) would be
    silently corrupted at pack time, so fail loudly instead.
    """
    if dtype.kind != "f":
        return
    for key in layout.integer_keys:
        value = np.asarray(state[key])
        if value.size and not np.array_equal(
            value.astype(dtype).astype(value.dtype), value
        ):
            raise ValueError(
                f"integer field {key!r} holds values that do not survive a "
                f"{dtype} round-trip; use a wider pool dtype"
            )


class PoolBuffer:
    """A pool of K model states stored as one ``(K, P)`` matrix.

    Parameters
    ----------
    layout:
        The shared :class:`StateLayout` of every pool member.
    data:
        ``(K, P)`` array (wrapped in :class:`DenseStorage`) or a
        :class:`PoolStorage` backend instance; row i is the flattened
        state of model i.
    """

    def __init__(self, layout: StateLayout, data: "np.ndarray | PoolStorage") -> None:
        storage = data if isinstance(data, PoolStorage) else DenseStorage(np.asarray(data))
        shape = storage.shape
        if len(shape) != 2 or shape[1] != layout.total_size:
            raise ValueError(
                f"matrix of shape {shape} does not match layout "
                f"with {layout.total_size} scalars"
            )
        self.layout = layout
        self.storage = storage

    @property
    def matrix(self) -> np.ndarray:
        """The ``(K, P)`` backing array.

        Live and writable on single-medium backends (``dense``,
        ``memmap``); a gathered **read-only copy** on ``sharded``
        storage (diagnostic use — library code goes through the row
        accessors, which write straight into the owning shard).
        """
        return self.storage.array

    @property
    def backend(self) -> str:
        """Registered name of this buffer's storage backend."""
        return self.storage.name

    @property
    def dtype(self) -> np.dtype:
        """The buffer dtype (without materialising the matrix)."""
        return self.storage.dtype

    # -- construction -----------------------------------------------------
    @classmethod
    def zeros(
        cls,
        layout: StateLayout,
        k: int,
        dtype=np.float32,
        backend: str = "dense",
        backend_options: Mapping | None = None,
    ) -> "PoolBuffer":
        storage = resolve_backend(backend).allocate(
            (k, layout.total_size), dtype=dtype, **dict(backend_options or {})
        )
        return cls(layout, storage)

    @classmethod
    def from_states(
        cls,
        states: Sequence[Mapping[str, np.ndarray]],
        layout: StateLayout | None = None,
        dtype=np.float32,
        backend: str = "dense",
        backend_options: Mapping | None = None,
    ) -> "PoolBuffer":
        """Pack a sequence of state dicts into a fresh buffer."""
        if not states:
            raise ValueError("cannot build a PoolBuffer from an empty pool")
        if layout is None:
            layout = StateLayout.from_state(states[0])
        buf = cls.zeros(
            layout, len(states), dtype=dtype, backend=backend,
            backend_options=backend_options,
        )
        for i, state in enumerate(states):
            buf.set_state(i, state)
        return buf

    @classmethod
    def broadcast(
        cls,
        state: Mapping[str, np.ndarray],
        k: int,
        dtype=np.float32,
        backend: str = "dense",
        backend_options: Mapping | None = None,
    ) -> "PoolBuffer":
        """K identical copies of one state (Algorithm 1 line 2)."""
        layout = StateLayout.from_state(state)
        _check_integer_roundtrip(layout, state, np.dtype(dtype))
        row = layout.flatten(state, dtype=dtype)
        buf = cls.zeros(
            layout, k, dtype=dtype, backend=backend,
            backend_options=backend_options,
        )
        buf.storage.fill_rows(row)
        return buf

    def copy(self) -> "PoolBuffer":
        return PoolBuffer(self.layout, self.storage.clone())

    # -- basic access ------------------------------------------------------
    def __len__(self) -> int:
        return self.storage.shape[0]

    @property
    def num_models(self) -> int:
        return self.storage.shape[0]

    @property
    def num_scalars(self) -> int:
        return self.storage.shape[1]

    def row(self, index: int) -> np.ndarray:
        """Writable flat view of row ``index`` (lives on its shard)."""
        return self.storage.row(index)

    def set_row(self, index: int, values: np.ndarray) -> None:
        """Overwrite row ``index`` with ``values`` (lands on its shard).

        Full-row writes go through the storage staging pair
        (:meth:`~repro.core.storage.PoolStorage.open_row` /
        ``commit_row``): a no-op wrapper around the live row on local
        backends, and a coordinator-side scratch row shipped in one
        message on ``distributed`` storage.
        """
        staged = self.storage.open_row(index)
        staged[:] = values
        self.storage.commit_row(index, staged)

    def set_state(self, index: int, state: Mapping[str, np.ndarray]) -> None:
        """Pack ``state`` into row ``index`` (O(P) single pass).

        Writes through the storage staging protocol, so on sharded
        pools each upload lands directly in its owning shard, and on
        distributed pools the packed row crosses the wire exactly once
        (not once per field).
        """
        if set(state) != set(self.layout.keys):
            raise KeyError("state keys do not match pool layout")
        _check_integer_roundtrip(self.layout, state, self.dtype)
        staged = self.storage.open_row(index)
        self.layout.flatten_into(state, staged)
        self.storage.commit_row(index, staged)

    def as_state(self, index: int, copy: bool = False) -> dict[str, np.ndarray]:
        """State dict of model ``index``.

        With ``copy=False`` the float entries are zero-copy views into
        the buffer row — O(1) metadata, safe to hand to
        ``load_state_dict`` (which copies) but not to mutate in place.
        """
        return self.layout.unflatten(self.storage.row(index), copy=copy)

    def states(self, copy: bool = False) -> list[dict[str, np.ndarray]]:
        """All pool members as state dicts (views unless ``copy``)."""
        return [self.as_state(i, copy=copy) for i in range(len(self))]

    # -- similarity (CoModelSel, Section III-B1) ---------------------------
    def _mask_info(
        self, param_keys: Iterable[str] | None
    ) -> tuple[np.ndarray, bool, int]:
        """Column mask, whether it actually masks, and masked width."""
        mask = self.layout.mask(param_keys)
        masked = not mask.all()
        p_eff = int(mask.sum()) if masked else self.num_scalars
        return mask, masked, p_eff

    def _rows_f64(
        self, start: int, stop: int, mask: np.ndarray, masked: bool
    ) -> np.ndarray:
        """Float64 cast of rows ``start:stop`` restricted to ``mask``.

        Reads through the storage row protocol: shard-local spans are
        zero-copy views, cross-shard spans bounded gathered copies —
        either way the cast produces the same contiguous float64 block
        on every backend (the cross-backend bitwise guarantee).
        """
        block = self.storage.row_block(start, stop)
        if masked:
            block = block[:, mask]
        return np.asarray(block, dtype=np.float64)

    def masked_row_f64(
        self, index: int, param_keys: Iterable[str] | None = None
    ) -> np.ndarray:
        """Contiguous float64 view/copy of one masked row (O(P) temp).

        The unit the :class:`repro.core.gram.GramTracker` consumes:
        extracting one row never materialises a ``(K, P)`` float64
        temporary and never leaves the row's owning shard, so
        incremental Gram maintenance stays out-of-core and
        shard-local.
        """
        mask, masked, _ = self._mask_info(param_keys)
        row = self.storage.row(index)
        if masked:
            row = row[mask]
        return np.ascontiguousarray(row, dtype=np.float64)

    def gram_matrix(
        self,
        param_keys: Iterable[str] | None = None,
        block_rows: int | None = None,
    ) -> np.ndarray:
        """Raw float64 ``(K, K)`` Gram ``V @ V.T`` of the masked rows.

        Computed per block pair of ``block_rows`` rows (default: sized
        to the module's temp budget), so at most two ``(b, P)`` float64
        row casts are live at once — the cosine path never needs a
        float64 copy of the whole pool, making fully out-of-core
        memmap/sharded rounds possible.  Deterministic for a fixed
        block size (and the default depends only on (K, P), never the
        shard layout — so the result is bitwise identical across
        storage backends); across block sizes the P-axis reduction may
        move by the last ulp, the same caveat as the blocked euclidean
        path.
        """
        k = len(self)
        mask, masked, p_eff = self._mask_info(param_keys)
        if block_rows is None:
            # Two (b, P) float64 row casts live at once.
            block_rows = max(1, _block_budget() // max(1, 2 * p_eff * 8))
        out = np.empty((k, k))
        for i0, i1 in iter_row_spans(k, block_rows):
            vi = self._rows_f64(i0, i1, mask, masked)
            out[i0:i1, i0:i1] = vi @ vi.T
            for j0 in range(i1, k, block_rows):
                j1 = min(j0 + block_rows, k)
                vj = self._rows_f64(j0, j1, mask, masked)
                cross = vi @ vj.T
                out[i0:i1, j0:j1] = cross
                out[j0:j1, i0:i1] = cross.T
        return out

    def similarity_matrix(
        self,
        measure: str = "cosine",
        param_keys: Iterable[str] | None = None,
        block_rows: int | None = None,
    ) -> np.ndarray:
        """Pairwise ``(K, K)`` similarity of the pool.

        ``cosine`` is a blocked Gram (:meth:`gram_matrix`) normalized by
        the norms cached on its diagonal — one pass over pool data,
        zero-norm rows get similarity 0 like the dict reference;
        ``euclidean`` is negative pairwise distance over explicit
        difference blocks — cancellation-safe, unlike the
        ``‖x‖²+‖y‖²-2x·y`` expansion, which loses all precision when
        pool members are near-identical (exactly the converged-pool
        regime FedCross ends in).  Both paths produce their float64
        temporaries per block pair of ``block_rows`` rows (default:
        sized to the module's temp budget), so neither materialises a
        float64 copy of the whole pool.  For a fixed block size the
        result is a pure function of the data (deterministic, bitwise
        identical across storage backends; the default block size
        depends only on (K, P)); *across* block sizes the P-axis
        reduction may differ by the last ulp (SIMD summation order
        varies with operand shape/alignment), so exact
        cross-block-size equality is deliberately not promised — unlike
        :meth:`cross_aggregate`, whose elementwise math is bit-identical
        for every block size.
        """
        if measure not in _VALID_MEASURES:
            raise KeyError(measure)
        if measure == "cosine":
            return cosine_from_gram(
                self.gram_matrix(param_keys=param_keys, block_rows=block_rows)
            )
        k = len(self)
        mask, masked, p_eff = self._mask_info(param_keys)
        if block_rows is None:
            # (b, b, P) difference tensor dominates: b^2 * P * 8 bytes.
            block_rows = max(1, int((_block_budget() / (max(1, p_eff) * 8)) ** 0.5))
        out = np.empty((k, k))
        for i0, i1 in iter_row_spans(k, block_rows):
            vi = self._rows_f64(i0, i1, mask, masked)
            for j0, j1 in iter_row_spans(k, block_rows):
                vj = vi if j0 == i0 else self._rows_f64(j0, j1, mask, masked)
                # einsum reduces over P only, the same inner summation
                # as the per-row loop — blocking either axis is exact.
                diff = vi[:, None, :] - vj[None, :, :]
                out[i0:i1, j0:j1] = -np.sqrt(np.einsum("bkp,bkp->bk", diff, diff))
        return out

    def similarity_to(
        self,
        index: int,
        measure: str = "cosine",
        param_keys: Iterable[str] | None = None,
        block_rows: int | None = None,
    ) -> np.ndarray:
        """``(K,)`` similarities of every pool member to model ``index``.

        Runs in row blocks of ``block_rows`` (default: temp-budget
        sized): the cosine path computes per-block dot products and
        norms in one float64 cast each — the norms are derived once
        from those same block casts rather than a second data pass —
        and the euclidean path takes per-block differences.  Neither
        measure materialises a float64 copy of the whole masked pool,
        so single-model queries work out-of-core too.
        """
        if measure not in _VALID_MEASURES:
            raise KeyError(measure)
        k = len(self)
        mask, masked, p_eff = self._mask_info(param_keys)
        if block_rows is None:
            block_rows = max(1, _block_budget() // max(1, 2 * p_eff * 8))
        target = self.masked_row_f64(index, param_keys)
        if measure == "cosine":
            sims = np.empty(k)
            norms = np.empty(k)
            for b0, b1 in iter_row_spans(k, block_rows):
                block = self._rows_f64(b0, b1, mask, masked)
                sims[b0:b1] = block @ target
                norms[b0:b1] = np.sqrt(np.einsum("kp,kp->k", block, block))
            denom = norms * norms[index]
            return np.divide(sims, denom, out=np.zeros(k), where=denom != 0.0)
        out = np.empty(k)
        for b0, b1 in iter_row_spans(k, block_rows):
            diff = self._rows_f64(b0, b1, mask, masked) - target
            out[b0:b1] = -np.sqrt(np.einsum("kp,kp->k", diff, diff))
        return out

    def select_collaborators(
        self,
        strategy: str,
        round_idx: int = 0,
        measure: str = "cosine",
        param_keys: Iterable[str] | None = None,
        gram: np.ndarray | None = None,
    ) -> np.ndarray:
        """Collaborative-model index for every pool member at once.

        Vectorizes all three ``CoModelSel`` strategies: ``in_order`` is
        the closed-form shift, the similarity strategies are a masked
        row argmax/argmin of the similarity matrix (self excluded).
        Ties resolve to the lowest index, like the dict reference.

        ``gram`` may carry a precomputed raw ``(K, K)`` Gram of the
        masked pool (e.g. maintained incrementally by a
        :class:`repro.core.gram.GramTracker`); the cosine strategies
        then run as pure ``(K, K)`` algebra without re-reading pool
        data.  Only valid for ``measure="cosine"`` — euclidean
        distances recovered from a Gram cancel catastrophically in the
        converged-pool regime, so that combination is rejected.
        ``in_order`` ignores ``gram`` (it never needed similarity).
        """
        k = len(self)
        if k <= 1:
            return np.zeros(k, dtype=np.int64)
        if strategy == "in_order":
            shift = round_idx % (k - 1) + 1
            return (np.arange(k) + shift) % k
        if strategy not in ("highest", "lowest"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if gram is not None:
            if measure != "cosine":
                raise ValueError(
                    "a precomputed gram only drives cosine selection; "
                    f"got measure {measure!r}"
                )
            gram = np.asarray(gram, dtype=np.float64)
            if gram.shape != (k, k):
                raise ValueError(
                    f"gram of shape {gram.shape} does not match pool size {k}"
                )
            sim = cosine_from_gram(gram)
        else:
            sim = self.similarity_matrix(measure=measure, param_keys=param_keys)
        eye = np.eye(k, dtype=bool)
        if strategy == "highest":
            np.place(sim, eye, -np.inf)
            return sim.argmax(axis=1)
        np.place(sim, eye, np.inf)
        return sim.argmin(axis=1)

    # -- aggregation (CrossAggr / GlobalModelGen, Sections III-B2/B3) ------
    def cross_aggregate(
        self,
        co_indices: np.ndarray,
        alpha: float,
        block_rows: int | None = None,
    ) -> "PoolBuffer":
        """New pool ``alpha * M + (1 - alpha) * M[co]`` (Algorithm 1 line 13).

        ``co_indices`` may be ``(K,)`` — one collaborator per model —
        or ``(K, num)`` for the propeller variant, where each model
        fuses with the *uniform mean* of its propeller set.  Integer
        fields are carried from each model's own row, never averaged.

        The fusion runs in row blocks of ``block_rows`` (default: sized
        to the module's float64 temp budget): each block casts its own
        rows and gathered collaborator rows to float64, blends, and
        writes the rounded result straight into pre-allocated output
        storage on this buffer's backend.  Peak temporary memory is
        therefore O(block · P) instead of O(K · P) float64 — memmap and
        sharded pools are not capped by RAM — and because the
        per-element arithmetic is unchanged the result is bit-identical
        for every block size.  Spans walk :func:`iter_row_spans` with
        this storage's shard boundaries (elementwise math is partition
        invariant), so on sharded pools each block's own-row reads and
        output writes stay on one shard; only the gathered collaborator
        rows cross shards, by construction.
        """
        co_indices = np.asarray(co_indices, dtype=np.int64)
        if co_indices.ndim not in (1, 2):
            raise ValueError("co_indices must be 1- or 2-dimensional")
        k, p = self.storage.shape
        dtype = self.dtype
        if block_rows is None:
            # Budget across the block's float64 temporaries: own rows,
            # gathered collaborator rows, and the fused result.
            per_row = max(1, 3 * p * 8)
            block_rows = max(1, _block_budget() // per_row)
        storage = self.storage.allocate_like((k, p), dtype=dtype)
        int_mask = self.layout.integer_mask()
        has_int = bool(int_mask.any())
        for start, stop in iter_row_spans(
            k, block_rows, self.storage.shard_boundaries()
        ):
            src = self.storage.row_block(start, stop)
            m = src.astype(np.float64, copy=False)
            if co_indices.ndim == 1:
                collab = self.storage.gather_rows(co_indices[start:stop]).astype(
                    np.float64, copy=False
                )
            else:
                # Accumulate in propeller order so the result matches
                # the dict reference (sequential weighted_average)
                # bit-for-bit.
                num = co_indices.shape[1]
                collab = np.zeros((stop - start, p))
                for j in range(num):
                    collab += (1.0 / num) * self.storage.gather_rows(
                        co_indices[start:stop, j]
                    ).astype(np.float64, copy=False)
            fused = (alpha * m + (1.0 - alpha) * collab).astype(dtype)
            if has_int:
                fused[:, int_mask] = src[:, int_mask]
            storage.write_rows(start, fused)
        return PoolBuffer(self.layout, storage)

    def mean_state(
        self, weights: Iterable[float] | None = None, *, precise: bool = True
    ) -> dict[str, np.ndarray]:
        """Weighted average of the pool as a state dict (line 17).

        ``None`` means uniform — the paper's ``GlobalModelGen``.
        Integer fields are taken from row 0 (the "first state"), exactly
        like the dict-based :func:`repro.utils.params.weighted_average`.

        ``precise=True`` accumulates in float64, sequentially in pool
        order — bit-for-bit the dict reference, streaming one row at a
        time.  ``precise=False`` reduces in the buffer dtype — a BLAS
        matvec per budget-sized row block (one block, hence one matvec,
        for in-RAM pools): ~6× faster at K=50 and accurate to float32
        rounding, the right trade for FedAvg-family aggregation where
        the inputs are float32 to begin with.  Both modes partition
        rows purely by the byte budget, never the shard layout, so for
        a fixed ``REPRO_POOL_BLOCK_BYTES`` every storage backend
        produces the bitwise-identical state.
        """
        k = len(self)
        dtype = self.dtype
        if weights is None:
            w = np.full(k, 1.0 / k)
        else:
            w = np.asarray(list(weights), dtype=np.float64)
            if len(w) != k:
                raise ValueError("weights and pool size mismatch")
            total = w.sum()
            if total <= 0:
                raise ValueError("weights must have a positive sum")
            w = w / total
        p = self.num_scalars
        if precise:
            # Sequential accumulation in pool order mirrors the dict
            # reference's summation order (bit-for-bit reproducible):
            # rows still enter the accumulator one at a time, in order,
            # but are *fetched* in budget-sized blocks — pure batching
            # of reads, so remote/sharded backends pay one row_block
            # per span instead of one RPC per row, while the arithmetic
            # (and hence the result) is unchanged bit-for-bit.
            block_rows = max(1, _block_budget() // max(1, p * 8))
            acc = np.zeros(p)
            for b0, b1 in iter_row_spans(k, block_rows):
                block = self.storage.row_block(b0, b1)
                for i in range(b0, b1):
                    acc += w[i] * block[i - b0].astype(np.float64, copy=False)
            row = acc.astype(dtype)
        else:
            w_low = w.astype(dtype, copy=False)
            block_rows = max(
                1, _block_budget() // max(1, p * np.dtype(dtype).itemsize)
            )
            spans = list(iter_row_spans(k, block_rows))
            if len(spans) == 1:
                # One budget-sized block: the single BLAS matvec of the
                # in-RAM fast path, unchanged.
                row = np.asarray(w_low @ self.storage.row_block(0, k), dtype=dtype)
            else:
                acc_low = np.zeros(p, dtype=dtype)
                for b0, b1 in spans:
                    acc_low += w_low[b0:b1] @ self.storage.row_block(b0, b1)
                row = acc_low
        int_mask = self.layout.integer_mask()
        if int_mask.any():
            row[int_mask] = self.storage.row(0)[int_mask]
        return self.layout.unflatten(row, copy=True)

    # -- diagnostics -------------------------------------------------------
    def dispersion(
        self,
        param_keys: Iterable[str] | None = None,
        block_rows: int | None = None,
    ) -> float:
        """RMS distance of pool members from their mean (Lemma 3.4).

        Two streamed passes in row blocks — mean accumulation, then
        centered norms — so the computation stays cancellation-safe
        (explicit differences, never the ``‖v‖² − K‖mean‖²`` expansion)
        without ever holding a float64 copy of the whole masked pool.
        """
        k = len(self)
        if k == 0:
            return 0.0
        mask, masked, p_eff = self._mask_info(param_keys)
        if block_rows is None:
            block_rows = max(1, _block_budget() // max(1, 2 * p_eff * 8))
        mean = np.zeros(p_eff)
        for b0, b1 in iter_row_spans(k, block_rows):
            mean += self._rows_f64(b0, b1, mask, masked).sum(axis=0)
        mean /= k
        sq = np.empty(k)
        for b0, b1 in iter_row_spans(k, block_rows):
            centered = self._rows_f64(b0, b1, mask, masked) - mean
            sq[b0:b1] = np.einsum("kp,kp->k", centered, centered)
        return float(np.sqrt(sq.mean()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PoolBuffer(K={self.num_models}, P={self.num_scalars}, "
            f"dtype={self.dtype})"
        )
