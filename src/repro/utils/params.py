"""State-dict utilities.

All federated aggregation in this repo operates on *state dicts* — flat
``{name: ndarray}`` mappings detached from any live module — exactly as
the paper's server-side pseudo-code manipulates model parameter lists.
These helpers flatten/unflatten and combine state dicts.

State dicts are normally already host arrays (``Module.state_dict``
transfers), but every entry point here also accepts device arrays from
a non-numpy :class:`~repro.tensor.backend.ArrayBackend` and brings them
to the host via :func:`~repro.tensor.backend.to_host` — a free identity
on the default backend — so aggregation math always runs host-side.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

import numpy as np

from repro.tensor.backend import to_host

__all__ = [
    "flatten_state_dict",
    "unflatten_state_dict",
    "state_dict_like",
    "zeros_like_state",
    "tree_map",
    "weighted_average",
]

StateDict = dict


def flatten_state_dict(state: Mapping[str, np.ndarray]) -> np.ndarray:
    """Concatenate all arrays of a state dict into one float64 vector.

    Keys are traversed in sorted order so that two state dicts of the
    same model always flatten consistently — required for the cosine
    similarity the paper's ``CoModelSel`` strategies compute.
    """
    if not state:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate(
        [np.asarray(to_host(state[k]), dtype=np.float64).reshape(-1) for k in sorted(state)]
    )


def unflatten_state_dict(
    vector: np.ndarray, reference: Mapping[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Inverse of :func:`flatten_state_dict` using ``reference`` shapes."""
    vector = np.asarray(to_host(vector))
    out: dict[str, np.ndarray] = {}
    offset = 0
    for key in sorted(reference):
        ref = np.asarray(to_host(reference[key]))
        size = ref.size
        out[key] = vector[offset : offset + size].reshape(ref.shape).astype(ref.dtype)
        offset += size
    if offset != vector.size:
        raise ValueError(
            f"vector of size {vector.size} does not match reference with {offset} elements"
        )
    return out


def state_dict_like(
    reference: Mapping[str, np.ndarray], fill: Callable[[np.ndarray], np.ndarray]
) -> dict[str, np.ndarray]:
    """Build a new state dict by applying ``fill`` to each reference array."""
    return {k: fill(np.asarray(to_host(v))) for k, v in reference.items()}


def zeros_like_state(reference: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
    """State dict of zeros with the same shapes/dtypes as ``reference``."""
    return state_dict_like(reference, np.zeros_like)


def tree_map(
    fn: Callable[..., np.ndarray], *states: Mapping[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Apply ``fn`` key-wise across one or more aligned state dicts.

    Examples
    --------
    >>> delta = tree_map(lambda a, b: a - b, new_state, old_state)
    """
    if not states:
        raise ValueError("tree_map requires at least one state dict")
    keys = set(states[0])
    for s in states[1:]:
        if set(s) != keys:
            raise KeyError("state dicts have mismatched keys")
    return {k: fn(*(np.asarray(to_host(s[k])) for s in states)) for k in states[0]}


def weighted_average(
    states: Iterable[Mapping[str, np.ndarray]], weights: Iterable[float] | None = None
) -> dict[str, np.ndarray]:
    """Weighted element-wise average of state dicts (FedAvg's core op).

    Weights are normalised to sum to 1; ``None`` means uniform.
    Integer entries (e.g. step counters) are carried from the first
    state instead of averaged — float-averaging then truncating back to
    the integer dtype silently corrupts them.
    """
    states = list(states)
    if not states:
        raise ValueError("cannot average an empty list of state dicts")
    if weights is None:
        w = np.full(len(states), 1.0 / len(states))
    else:
        w = np.asarray(list(weights), dtype=np.float64)
        if len(w) != len(states):
            raise ValueError("weights and states length mismatch")
        total = w.sum()
        if total <= 0:
            raise ValueError("weights must have a positive sum")
        w = w / total
    out: dict[str, np.ndarray] = {}
    for key in states[0]:
        first = np.asarray(to_host(states[0][key]))
        if first.dtype.kind in "iub":
            out[key] = first.copy()
            continue
        acc = np.zeros_like(first, dtype=np.float64)
        for wi, state in zip(w, states):
            acc += wi * np.asarray(to_host(state[key]), dtype=np.float64)
        out[key] = acc.astype(first.dtype)
    return out
