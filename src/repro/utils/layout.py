"""Cached flat-vector layouts for model state dicts.

:func:`repro.utils.params.flatten_state_dict` re-derives key order,
shapes and offsets on every call and allocates a fresh concatenated
vector each time.  That is fine for one-off diagnostics but ruinous on
the FedCross server hot path, which compares and fuses all K middleware
models every round.  A :class:`StateLayout` computes the sorted-key
``offset/shape/dtype`` spec *once* per model architecture and then
provides O(1)-metadata packing/unpacking between state dicts and flat
rows — the backbone of :class:`repro.core.pool.PoolBuffer`.

Layouts are immutable and cached by structural signature
(``(key, shape, dtype)`` triples), so repeated construction from
identically-shaped states is a dict lookup.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.tensor.backend import to_host

__all__ = ["FieldSpec", "StateLayout"]


class FieldSpec:
    """Placement of one state-dict entry inside the flat vector."""

    __slots__ = ("key", "offset", "size", "shape", "dtype")

    def __init__(self, key: str, offset: int, shape: tuple[int, ...], dtype: np.dtype) -> None:
        self.key = key
        self.offset = offset
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self.size = int(np.prod(shape)) if shape else 1

    @property
    def stop(self) -> int:
        return self.offset + self.size

    @property
    def is_integer(self) -> bool:
        """True for integer/bool fields (e.g. step counters), which must
        never be averaged in floating point."""
        return self.dtype.kind in "iub"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FieldSpec({self.key!r}, offset={self.offset}, "
            f"shape={self.shape}, dtype={self.dtype})"
        )


_LAYOUT_CACHE: dict[tuple, "StateLayout"] = {}


class StateLayout:
    """Sorted-key ``{name: ndarray}`` ⇄ flat-vector layout of one model.

    Keys are laid out in sorted order — the same convention as
    :func:`repro.utils.params.flatten_state_dict` — so flat rows built
    through a layout are interchangeable with legacy flattened vectors.
    """

    def __init__(self, fields: Sequence[FieldSpec]) -> None:
        self.fields: tuple[FieldSpec, ...] = tuple(fields)
        self.by_key: dict[str, FieldSpec] = {f.key: f for f in self.fields}
        self.keys: tuple[str, ...] = tuple(f.key for f in self.fields)
        self.total_size: int = self.fields[-1].stop if self.fields else 0
        self._mask_cache: dict[frozenset[str] | None, np.ndarray] = {}
        self._integer_mask: np.ndarray | None = None

    # -- construction -----------------------------------------------------
    @staticmethod
    def _signature(state: Mapping[str, np.ndarray]) -> tuple:
        # Reads only shape/dtype metadata, so device-backend arrays
        # never transfer just to derive a layout.
        sig = []
        for k in sorted(state):
            arr = state[k]
            if not hasattr(arr, "shape"):
                arr = np.asarray(arr)
            sig.append((k, tuple(arr.shape), np.dtype(arr.dtype).str))
        return tuple(sig)

    @classmethod
    def from_state(cls, state: Mapping[str, np.ndarray]) -> "StateLayout":
        """Layout for ``state``, cached by structural signature."""
        return cls.from_signature(cls._signature(state))

    @classmethod
    def from_signature(cls, signature) -> "StateLayout":
        """Layout for a structural signature (``(key, shape, dtype)``
        triples in sorted-key order), cached like :meth:`from_state`.

        Signatures are small picklable tuples, so a layout can be
        rebuilt on the far side of a process boundary without shipping
        a template state dict — the execution engine's shared-payload
        transport relies on this.
        """
        sig = tuple((key, tuple(shape), str(dtype)) for key, shape, dtype in signature)
        layout = _LAYOUT_CACHE.get(sig)
        if layout is None:
            fields = []
            offset = 0
            for key, shape, dtype_str in sig:
                spec = FieldSpec(key, offset, tuple(shape), np.dtype(dtype_str))
                fields.append(spec)
                offset = spec.stop
            layout = cls(fields)
            _LAYOUT_CACHE[sig] = layout
        return layout

    @property
    def signature(self) -> tuple:
        """The structural signature this layout was interned under."""
        return tuple((f.key, f.shape, f.dtype.str) for f in self.fields)

    # -- flat <-> dict -----------------------------------------------------
    def flatten_into(self, state: Mapping[str, np.ndarray], out: np.ndarray) -> np.ndarray:
        """Pack ``state`` into the preallocated flat row ``out``.

        This is the device→host upload boundary: entries may live on a
        non-numpy array backend, and land in the (host shared-memory /
        shard) row through :func:`~repro.tensor.backend.to_host` — an
        identity for host arrays, so the numpy path is byte-for-byte
        the pre-dispatch behaviour.
        """
        if out.shape != (self.total_size,):
            raise ValueError(f"row of shape {out.shape} != ({self.total_size},)")
        for f in self.fields:
            out[f.offset : f.stop] = np.asarray(to_host(state[f.key])).reshape(-1)
        return out

    def flatten(self, state: Mapping[str, np.ndarray], dtype=np.float64) -> np.ndarray:
        """Flat vector of ``state`` (fresh allocation)."""
        if set(state) != set(self.keys):
            raise KeyError("state keys do not match layout")
        return self.flatten_into(state, np.empty(self.total_size, dtype=dtype))

    def unflatten(self, row: np.ndarray, copy: bool = False) -> dict[str, np.ndarray]:
        """State dict over ``row``.

        When ``copy`` is False, entries whose dtype matches the row's are
        zero-copy *views* into ``row`` (mutating them mutates the row);
        mismatched dtypes (e.g. integer counters in a float row) are
        always cast copies.
        """
        out: dict[str, np.ndarray] = {}
        for f in self.fields:
            chunk = row[f.offset : f.stop].reshape(f.shape)
            out[f.key] = chunk.astype(f.dtype, copy=copy)
        return out

    # -- masks -------------------------------------------------------------
    def mask(self, keys: Iterable[str] | None = None) -> np.ndarray:
        """Boolean column mask selecting ``keys`` (``None`` = all).

        Used to restrict similarity to trainable parameters, mirroring
        the ``param_keys`` filtering of the dict-based selection path.
        Cached per key set.
        """
        cache_key = None if keys is None else frozenset(keys)
        cached = self._mask_cache.get(cache_key)
        if cached is not None:
            return cached
        mask = np.zeros(self.total_size, dtype=bool)
        if cache_key is None:
            mask[:] = True
        else:
            for f in self.fields:
                if f.key in cache_key:
                    mask[f.offset : f.stop] = True
        self._mask_cache[cache_key] = mask
        return mask

    def integer_mask(self) -> np.ndarray:
        """Boolean column mask of integer/bool fields (never averaged)."""
        if self._integer_mask is None:
            mask = np.zeros(self.total_size, dtype=bool)
            for f in self.fields:
                if f.is_integer:
                    mask[f.offset : f.stop] = True
            self._integer_mask = mask
        return self._integer_mask

    @property
    def integer_keys(self) -> tuple[str, ...]:
        return tuple(f.key for f in self.fields if f.is_integer)

    def __len__(self) -> int:
        return len(self.fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateLayout({len(self.fields)} fields, {self.total_size} scalars)"
