"""Shared utilities: deterministic RNG streams, parameter flattening,
cached flat-vector state layouts."""

from repro.utils.rng import default_rng, spawn_rng, seed_sequence
from repro.utils.layout import FieldSpec, StateLayout
from repro.utils.params import (
    flatten_state_dict,
    unflatten_state_dict,
    state_dict_like,
    zeros_like_state,
    tree_map,
)

__all__ = [
    "default_rng",
    "spawn_rng",
    "seed_sequence",
    "FieldSpec",
    "StateLayout",
    "flatten_state_dict",
    "unflatten_state_dict",
    "state_dict_like",
    "zeros_like_state",
    "tree_map",
]
