"""Shared utilities: deterministic RNG streams, parameter flattening,
cached flat-vector state layouts, and the generic plugin registry.

Exports resolve lazily (PEP 562): :mod:`repro.utils.layout` and
:mod:`repro.utils.params` import the array-backend module for their
device→host boundaries, while :mod:`repro.tensor.backend` imports
:mod:`repro.utils.registry` — eager package-level imports here would
close that loop into a cycle.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "default_rng": "repro.utils.rng",
    "spawn_rng": "repro.utils.rng",
    "seed_sequence": "repro.utils.rng",
    "FieldSpec": "repro.utils.layout",
    "StateLayout": "repro.utils.layout",
    "flatten_state_dict": "repro.utils.params",
    "unflatten_state_dict": "repro.utils.params",
    "state_dict_like": "repro.utils.params",
    "zeros_like_state": "repro.utils.params",
    "tree_map": "repro.utils.params",
    "Registry": "repro.utils.registry",
}

__all__ = list(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static-analysis view of the API
    from repro.utils.layout import FieldSpec, StateLayout
    from repro.utils.params import (
        flatten_state_dict,
        state_dict_like,
        tree_map,
        unflatten_state_dict,
        zeros_like_state,
    )
    from repro.utils.registry import Registry
    from repro.utils.rng import default_rng, seed_sequence, spawn_rng


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.utils' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
