"""Generic name → class registry.

Three subsystems follow the same plugin pattern — pool storage
(:mod:`repro.core.storage`), client execution (:mod:`repro.fl.execution`)
and array backends (:mod:`repro.tensor.backend`): a module-level mapping
of lowercase names to classes, a ``register_*`` class decorator that
rejects duplicates and stamps ``cls.name``, a ``resolve_*`` lookup whose
error names every registered option, and an ``available_*`` listing.
:class:`Registry` is that pattern extracted once.

The class speaks the mapping protocol (``in``, ``[]``, ``del``, ``len``,
iteration over names), so existing call sites — including tests that
clean up temporary registrations with ``del REGISTRY["name"]`` — keep
working against a ``Registry`` exactly as they did against the plain
dicts it replaces.

``error_type`` parameterises the unknown-name exception because the
pre-existing registries disagree (storage raises :class:`ValueError`,
execution raises :class:`KeyError`) and CLI validators catch the
specific type; unifying them would be an API break for no gain.

Lazy entries (:meth:`Registry.lazy`) map a name to a module path
instead of a class: the module is imported on first :meth:`resolve`
of that name and is expected to perform the real registration as an
import side effect.  This lets heavyweight optional subsystems (the
socket-RPC ``distributed`` backends) stay unimported until actually
selected, while still appearing in :meth:`available` listings and
being resolvable from CLI validators without import cycles.
"""

from __future__ import annotations

import importlib
from typing import Iterator

__all__ = ["Registry"]


class Registry:
    """Mapping of lowercase names to registered classes.

    Parameters
    ----------
    kind:
        Human-readable noun used in error messages, e.g.
        ``"pool backend"`` or ``"execution backend"``.
    error_type:
        Exception class raised by :meth:`resolve` for unknown names.
    """

    def __init__(self, kind: str, error_type: type[Exception] = ValueError) -> None:
        self.kind = kind
        self.error_type = error_type
        self._entries: dict[str, type] = {}
        self._lazy: dict[str, str] = {}

    # -- registration ------------------------------------------------------
    def register(self, name: str):
        """Class decorator registering ``cls`` under ``name``.

        Duplicate names raise :class:`KeyError`; the class gains a
        ``name`` attribute holding its (lowercased) registered key.
        """

        def decorator(cls: type) -> type:
            key = name.lower()
            if key in self._entries:
                raise KeyError(f"{self.kind} {name!r} is already registered")
            self._entries[key] = cls
            self._lazy.pop(key, None)
            cls.name = key
            return cls

        return decorator

    def lazy(self, name: str, module: str) -> None:
        """Register ``name`` as provided by ``module`` on first resolve.

        The module is imported when ``name`` is first resolved and must
        register the real class (via :meth:`register`) at import time.
        A name that is already concretely registered is left alone.
        """
        key = name.lower()
        if key not in self._entries:
            self._lazy[key] = module

    def _load_lazy(self, key: str) -> None:
        module = self._lazy.get(key)
        if module is None:
            return
        importlib.import_module(module)
        if key not in self._entries:  # pragma: no cover - misconfigured lazy
            raise self.error_type(
                f"module {module!r} did not register {self.kind} {key!r}"
            )

    # -- lookup ------------------------------------------------------------
    def resolve(self, name: str) -> type:
        """Class registered under ``name`` (case-insensitive).

        Unknown names raise ``error_type`` naming every registered
        entry, so CLI typos fail with the fix in the message.
        """
        key = str(name).lower()
        if key not in self._entries:
            self._load_lazy(key)
        if key not in self._entries:
            names = sorted(set(self._entries) | set(self._lazy))
            raise self.error_type(
                f"unknown {self.kind} {name!r}; available: {names}"
            )
        return self._entries[key]

    def available(self) -> list[str]:
        """Sorted registered names (lazy entries included)."""
        return sorted(set(self._entries) | set(self._lazy))

    # -- mapping protocol --------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._entries or name in self._lazy

    def __getitem__(self, name: str) -> type:
        return self._entries[name]

    def __setitem__(self, name: str, cls: type) -> None:
        self._entries[name] = cls

    def __delitem__(self, name: str) -> None:
        del self._entries[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self):
        return self._entries.keys()

    def items(self):
        return self._entries.items()

    def values(self):
        return self._entries.values()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {sorted(self._entries)})"
