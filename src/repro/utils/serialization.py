"""Persistence for model states and experiment results.

State dicts serialise to ``.npz`` (one array per key) and training
histories / simulation results to JSON — the formats a downstream user
needs to checkpoint long FL runs and archive experiment outputs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.fl.metrics import RoundRecord, TrainingHistory

__all__ = [
    "save_state_dict",
    "load_state_dict",
    "save_history",
    "load_history",
]


def save_state_dict(path: "str | Path", state: Mapping[str, np.ndarray]) -> Path:
    """Write a state dict to ``path`` (.npz appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    np.savez(path, **{k: np.asarray(v) for k, v in state.items()})
    return path


def load_state_dict(path: "str | Path") -> dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`."""
    with np.load(Path(path)) as data:
        return {k: data[k].copy() for k in data.files}


def _record_to_dict(record: RoundRecord) -> dict:
    return {
        "round_idx": record.round_idx,
        "accuracy": record.accuracy,
        "loss": record.loss,
        "train_loss": record.train_loss,
        "comm_up_params": record.comm_up_params,
        "comm_down_params": record.comm_down_params,
        "extras": _jsonable(record.extras),
    }


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays into JSON-native types."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def save_history(path: "str | Path", history: TrainingHistory) -> Path:
    """Write a training history as JSON."""
    path = Path(path)
    payload = {"records": [_record_to_dict(r) for r in history.records]}
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_history(path: "str | Path") -> TrainingHistory:
    """Read a training history written by :func:`save_history`."""
    payload = json.loads(Path(path).read_text())
    history = TrainingHistory()
    for rec in payload["records"]:
        history.append(
            RoundRecord(
                round_idx=rec["round_idx"],
                accuracy=rec["accuracy"],
                loss=rec["loss"],
                train_loss=rec["train_loss"],
                comm_up_params=rec["comm_up_params"],
                comm_down_params=rec["comm_down_params"],
                extras=rec.get("extras", {}),
            )
        )
    return history
