"""Deterministic random-number streams.

Every stochastic component in the reproduction (weight init, data
synthesis, Dirichlet partitioning, client sampling, local-data shuffling,
dropout) draws from an explicit ``numpy.random.Generator``. Experiments
derive independent child streams from a single root seed with
``SeedSequence.spawn``, so that e.g. changing the number of FL rounds
never perturbs the dataset, and two FL methods sharing a seed see the
*same* data partition — the property the paper's "comparison fairness"
setup depends on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["default_rng", "spawn_rng", "seed_sequence"]


def default_rng(seed: int | None = 0) -> np.random.Generator:
    """Return a PCG64 generator seeded with ``seed`` (default 0)."""
    return np.random.default_rng(seed)


def seed_sequence(seed: int) -> np.random.SeedSequence:
    """Root seed sequence for an experiment."""
    return np.random.SeedSequence(seed)


def spawn_rng(parent: np.random.Generator | int, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically-independent generators.

    Parameters
    ----------
    parent:
        Either an integer root seed or an existing generator whose
        underlying ``SeedSequence`` is spawned.
    n:
        Number of child streams.
    """
    if isinstance(parent, (int, np.integer)):
        seq = np.random.SeedSequence(int(parent))
    else:
        seq = parent.bit_generator.seed_seq  # type: ignore[attr-defined]
    return [np.random.default_rng(child) for child in seq.spawn(n)]
