"""2-D loss-landscape scans (the machinery behind Figure 4 / RQ1).

Implements the filter-normalised random-plane visualisation of
Li et al. 2018 ("Visualizing the Loss Landscape of Neural Nets"), the
method the paper uses to argue FedCross converges into flatter valleys
than FedAvg: two random directions are drawn and rescaled so each
parameter tensor's perturbation matches that tensor's norm, then the
loss is evaluated on the grid ``w + a*d1 + b*d2``.

``sharpness_metrics`` condenses a scan into scalars (loss rise at fixed
radius, gradient of the bowl) so benches can *assert* "FedCross is
flatter than FedAvg" instead of eyeballing contours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.fl.metrics import evaluate_model
from repro.nn.module import Module

__all__ = [
    "random_plane_directions",
    "loss_landscape_2d",
    "LandscapeScan",
    "sharpness_metrics",
    "render_landscape_ascii",
]


def random_plane_directions(
    state: Mapping[str, np.ndarray],
    rng: np.random.Generator,
    param_keys: set[str] | None = None,
) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    """Two filter-normalised random directions in parameter space.

    Each direction tensor is drawn i.i.d. Gaussian then rescaled to the
    norm of the corresponding weight tensor (per-tensor normalisation —
    the variant of Li et al. appropriate for the small models here).
    Non-parameter entries (e.g. batch-norm running stats) get zero
    directions so the scan never perturbs them.
    """
    d1: dict[str, np.ndarray] = {}
    d2: dict[str, np.ndarray] = {}
    for key, value in state.items():
        value = np.asarray(value, dtype=np.float64)
        if param_keys is not None and key not in param_keys:
            d1[key] = np.zeros_like(value)
            d2[key] = np.zeros_like(value)
            continue
        norm = np.linalg.norm(value)
        for out in (d1, d2):
            direction = rng.standard_normal(value.shape)
            dnorm = np.linalg.norm(direction)
            out[key] = direction * (norm / dnorm) if dnorm > 0 and norm > 0 else np.zeros_like(value)
    return d1, d2


@dataclass
class LandscapeScan:
    """Result of a 2-D loss scan around a model state."""

    alphas: np.ndarray  # (A,) grid along direction 1
    betas: np.ndarray  # (B,) grid along direction 2
    losses: np.ndarray  # (A, B) mean loss at each grid point
    center_loss: float

    def loss_at_radius(self, radius: float) -> float:
        """Mean loss over grid points at ~``radius`` from the centre."""
        aa, bb = np.meshgrid(self.alphas, self.betas, indexing="ij")
        dist = np.sqrt(aa**2 + bb**2)
        step = max(
            float(np.diff(self.alphas).max(initial=0.0)),
            float(np.diff(self.betas).max(initial=0.0)),
        )
        ring = np.abs(dist - radius) <= step
        if not ring.any():
            raise ValueError(f"no grid points near radius {radius}")
        return float(self.losses[ring].mean())


def loss_landscape_2d(
    model: Module,
    state: Mapping[str, np.ndarray],
    dataset: ArrayDataset,
    rng: np.random.Generator,
    radius: float = 0.5,
    grid: int = 9,
    batch_size: int = 256,
    param_keys: set[str] | None = None,
) -> LandscapeScan:
    """Scan the loss on a random filter-normalised plane through ``state``.

    Parameters
    ----------
    radius:
        Half-width of the scan in units of per-tensor weight norm.
    grid:
        Points per axis (``grid x grid`` evaluations).
    """
    if grid < 3 or grid % 2 == 0:
        raise ValueError("grid must be an odd integer >= 3")
    d1, d2 = random_plane_directions(state, rng, param_keys=param_keys)
    alphas = np.linspace(-radius, radius, grid)
    betas = np.linspace(-radius, radius, grid)
    losses = np.zeros((grid, grid))
    base = {k: np.asarray(v, dtype=np.float64) for k, v in state.items()}
    for i, a in enumerate(alphas):
        for j, b in enumerate(betas):
            perturbed = {k: base[k] + a * d1[k] + b * d2[k] for k in base}
            model.load_state_dict(
                {k: v.astype(np.asarray(state[k]).dtype) for k, v in perturbed.items()}
            )
            _, loss = evaluate_model(model, dataset, batch_size=batch_size)
            losses[i, j] = loss
    center = losses[grid // 2, grid // 2]
    return LandscapeScan(alphas=alphas, betas=betas, losses=losses, center_loss=float(center))


def sharpness_metrics(scan: LandscapeScan) -> dict[str, float]:
    """Scalar flatness summary of a scan.

    Returns
    -------
    dict with:
      ``center_loss``  loss at the scanned optimum;
      ``rise_half``    mean loss increase at half the scan radius;
      ``rise_full``    mean loss increase at the full radius;
      ``max_rise``     worst-case increase anywhere on the grid.
    Lower rises = flatter valley (the paper's claim for FedCross).
    """
    full = float(scan.alphas[-1])
    rise_half = scan.loss_at_radius(full / 2) - scan.center_loss
    rise_full = scan.loss_at_radius(full) - scan.center_loss
    max_rise = float(scan.losses.max() - scan.center_loss)
    return {
        "center_loss": scan.center_loss,
        "rise_half": rise_half,
        "rise_full": rise_full,
        "max_rise": max_rise,
    }


def render_landscape_ascii(scan: LandscapeScan, levels: str = " .:-=+*#%@") -> str:
    """ASCII contour rendering of a scan (Figure 4 as text)."""
    lo = scan.losses.min()
    hi = scan.losses.max()
    span = max(hi - lo, 1e-12)
    rows = []
    for i in range(scan.losses.shape[0]):
        row = []
        for j in range(scan.losses.shape[1]):
            frac = (scan.losses[i, j] - lo) / span
            row.append(levels[min(int(frac * len(levels)), len(levels) - 1)])
        rows.append("".join(row))
    return "\n".join(rows)
