"""Analysis toolkit: loss landscapes, model similarity, convergence.

Supports the paper's RQ1 (Figure 4 loss-landscape comparison), the
similarity diagnostics behind the selection strategies, the Theorem 1
convergence-rate probe, and the Table I communication model.
"""

from repro.analysis.landscape import (
    LandscapeScan,
    loss_landscape_2d,
    random_plane_directions,
    sharpness_metrics,
    render_landscape_ascii,
)
from repro.analysis.similarity import (
    pairwise_cosine,
    pool_dispersion,
    mean_pairwise_similarity,
)
from repro.analysis.convergence import (
    inverse_t_envelope_fit,
    lemma34_contraction_gap,
    empirical_convergence_rate,
)

__all__ = [
    "LandscapeScan",
    "loss_landscape_2d",
    "random_plane_directions",
    "sharpness_metrics",
    "render_landscape_ascii",
    "pairwise_cosine",
    "pool_dispersion",
    "mean_pairwise_similarity",
    "inverse_t_envelope_fit",
    "lemma34_contraction_gap",
    "empirical_convergence_rate",
]
