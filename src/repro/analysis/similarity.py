"""Model-pool similarity diagnostics.

The paper's narrative rests on middleware models becoming increasingly
similar over training ("the trained middleware models will eventually
become similar") while the highest-similarity strategy fragments the
pool into clusters. These helpers quantify both effects.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.pool import PoolBuffer
from repro.core.selection import similarity_matrix

__all__ = ["pairwise_cosine", "mean_pairwise_similarity", "pool_dispersion"]


def pairwise_cosine(
    states: "Sequence[Mapping[str, np.ndarray]] | PoolBuffer",
    param_keys: set[str] | None = None,
) -> np.ndarray:
    """Pairwise cosine-similarity matrix of a model pool."""
    return similarity_matrix(states, measure="cosine", param_keys=param_keys)


def mean_pairwise_similarity(
    states: "Sequence[Mapping[str, np.ndarray]] | PoolBuffer",
    param_keys: set[str] | None = None,
) -> float:
    """Mean off-diagonal cosine similarity (1.0 = fully unified pool)."""
    sim = pairwise_cosine(states, param_keys)
    k = sim.shape[0]
    if k < 2:
        return 1.0
    off = sim[~np.eye(k, dtype=bool)]
    return float(off.mean())


def pool_dispersion(
    states: "Sequence[Mapping[str, np.ndarray]] | PoolBuffer",
    param_keys: set[str] | None = None,
) -> float:
    """RMS distance of pool members from their mean (0 = identical).

    The quantity the cross-aggregation contraction (Lemma 3.4) drives
    down between local-training phases.  One vectorized pass over the
    pool buffer.
    """
    pool = states if isinstance(states, PoolBuffer) else PoolBuffer.from_states(
        list(states), dtype=np.float64
    )
    return pool.dispersion(param_keys=param_keys)
