"""Empirical probes of the Section III-C convergence theory.

Theorem 1 bounds ``E[F(w_t)] - F*`` by ``C / (t + lambda)`` under
L-smooth / mu-convex losses with decaying step sizes. These helpers

* fit an inverse-t envelope to a measured loss curve
  (:func:`inverse_t_envelope_fit`) so the convergence bench can check
  the O(1/t) *shape*;
* verify the Lemma 3.4 contraction — cross-aggregation never moves the
  pool away from any reference point — directly on state dicts
  (:func:`lemma34_contraction_gap`), which the property-based tests
  exercise with hypothesis.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import curve_fit

from repro.core.aggregation import cross_aggregate
from repro.utils.params import flatten_state_dict

__all__ = [
    "inverse_t_envelope_fit",
    "empirical_convergence_rate",
    "lemma34_contraction_gap",
]


def inverse_t_envelope_fit(losses: Sequence[float], f_star: float = 0.0) -> dict[str, float]:
    """Fit ``loss(t) - f_star ~= c / (t + lam)`` by least squares.

    Returns the fitted ``c`` and ``lam`` plus the R^2 of the fit in
    log-space; R^2 close to 1 means the measured curve is consistent
    with Theorem 1's O(1/t) rate.
    """
    gaps = np.asarray(losses, dtype=np.float64) - f_star
    if (gaps <= 0).any():
        raise ValueError("losses must stay above f_star for an envelope fit")
    t = np.arange(1, len(gaps) + 1, dtype=np.float64)

    def model(t_, c, lam):
        return c / (t_ + lam)

    (c, lam), _ = curve_fit(model, t, gaps, p0=(gaps[0], 1.0), maxfev=20000)
    pred = model(t, c, lam)
    log_resid = np.log(gaps) - np.log(np.clip(pred, 1e-12, None))
    ss_res = float((log_resid**2).sum())
    centered = np.log(gaps) - np.log(gaps).mean()
    ss_tot = float((centered**2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return {"c": float(c), "lam": float(lam), "r2": r2}


def empirical_convergence_rate(losses: Sequence[float], f_star: float = 0.0) -> float:
    """Log-log slope of the loss gap vs t (≈ -1 for an O(1/t) rate)."""
    gaps = np.asarray(losses, dtype=np.float64) - f_star
    if (gaps <= 0).any():
        raise ValueError("losses must stay above f_star")
    t = np.arange(1, len(gaps) + 1, dtype=np.float64)
    slope, _ = np.polyfit(np.log(t), np.log(gaps), 1)
    return float(slope)


def lemma34_contraction_gap(
    pool: Sequence[Mapping[str, np.ndarray]],
    co_indices: Sequence[int],
    alpha: float,
    reference: Mapping[str, np.ndarray],
) -> float:
    """Lemma 3.4 slack: ``mean ||v_i - w*||^2 - mean ||w_i - w*||^2``.

    ``w_i = alpha v_i + (1-alpha) v_{co(i)}``. When ``co_indices`` is a
    permutation — every model chosen as collaborator exactly once, as
    the in-order strategy guarantees (the assumption of the paper's
    proof) — the returned slack is >= 0 for *any* reference point
    ``w*``: cross-aggregation never moves the pool away from a target.
    For non-permutation assignments (possible under the similarity
    strategies) the inequality can fail; the property tests cover both
    regimes.
    """
    ref = flatten_state_dict(dict(reference))
    before = np.stack([flatten_state_dict(dict(s)) for s in pool])
    after = np.stack(
        [
            flatten_state_dict(cross_aggregate(pool[i], pool[j], alpha))
            for i, j in enumerate(co_indices)
        ]
    )
    d_before = ((before - ref) ** 2).sum(axis=1).mean()
    d_after = ((after - ref) ** 2).sum(axis=1).mean()
    return float(d_before - d_after)
