"""High-level convenience API.

Three calls cover the common workflows:

``quick_fedcross``
    Run FedCross with paper-default hyper-parameters on a CPU-scaled
    synthetic CIFAR-10 — the five-second "does it work" entry point.
``run_method``
    Run any registered method from keyword arguments.
``compare_methods``
    Run several methods on the *same* federated dataset and initial
    weights (the paper's comparison-fairness protocol) and return
    results keyed by method name.

All three sit on the phased server protocol
(:class:`~repro.fl.server.FederatedServer`: ``select_cohort`` →
``dispatch`` → ``collect`` → ``aggregate``) and accept a ``callbacks=``
sequence of :class:`~repro.fl.callbacks.ServerCallback` hooks — e.g.
:class:`~repro.fl.callbacks.ThroughputLogger` for round timing or
:class:`~repro.fl.callbacks.BestStateCheckpointer` for best-state
checkpointing with early-stop patience::

    from repro.api import run_method
    from repro.fl.callbacks import BestStateCheckpointer

    ckpt = BestStateCheckpointer(patience=5)
    result = run_method("fedavg", rounds=50, callbacks=[ckpt])

Server-side model buffers live on a pluggable storage backend selected
by the ``backend`` config field (``"dense"`` in-memory default,
``"memmap"`` for pools beyond RAM — see :mod:`repro.core.storage`)::

    result = run_method("fedcross", num_clients=200, backend="memmap")

Client execution — *where* the round's K local-training legs run — is
equally pluggable via the ``execution`` / ``workers`` config fields
(``"serial"`` default, ``"thread"``, or ``"process"`` for a persistent
worker pool with shared-memory upload packing — see
:mod:`repro.fl.execution`)::

    result = run_method("fedcross", k_active=50, execution="process", workers=8)

Every execution backend reproduces the serial schedule **bit-for-bit**
(each client owns an independent RNG stream and a dedicated
upload-buffer row), so parallelism never changes the science — only
the wall-clock.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.data.federated import build_federated_dataset
from repro.fl.config import FLConfig
from repro.fl.simulation import SimulationResult, run_simulation

__all__ = ["quick_fedcross", "run_method", "compare_methods"]


def quick_fedcross(
    seed: int = 0,
    rounds: int = 10,
    num_clients: int = 10,
    heterogeneity: str | float = 0.5,
    callbacks: Sequence | None = None,
    **method_params,
) -> SimulationResult:
    """Small FedCross run on synthetic CIFAR-10 with an MLP."""
    config = FLConfig(
        method="fedcross",
        dataset="synth_cifar10",
        model="mlp",
        heterogeneity=heterogeneity,
        num_clients=num_clients,
        participation=0.5,
        rounds=rounds,
        seed=seed,
        method_params=method_params,
    )
    return run_simulation(config, callbacks=callbacks)


def run_method(
    method: str, callbacks: Sequence | None = None, **config_kwargs
) -> SimulationResult:
    """Run one method; kwargs are :class:`~repro.fl.config.FLConfig` fields."""
    return run_simulation(FLConfig(method=method, **config_kwargs), callbacks=callbacks)


def compare_methods(
    methods: list[str],
    base_config: FLConfig | None = None,
    method_params: dict[str, dict] | None = None,
    callbacks: "Sequence | Callable[[], Sequence] | None" = None,
    **config_kwargs,
) -> dict[str, SimulationResult]:
    """Run several methods under identical data/init/seed.

    Parameters
    ----------
    methods:
        Registered method names to compare.
    base_config:
        Shared configuration; built from ``config_kwargs`` when omitted.
    method_params:
        Optional per-method parameter dicts, e.g.
        ``{"fedprox": {"mu": 0.01}, "fedcross": {"alpha": 0.99}}``.
    callbacks:
        Either a shared callback sequence, or — since callbacks such as
        :class:`~repro.fl.callbacks.BestStateCheckpointer` are stateful
        — a zero-argument factory called once per method so every run
        gets fresh instances.

    Returns
    -------
    dict mapping method name to its :class:`SimulationResult`.
    """
    config = base_config if base_config is not None else FLConfig(**config_kwargs)
    method_params = method_params or {}
    fed_dataset = build_federated_dataset(
        config.dataset,
        num_clients=config.num_clients,
        heterogeneity=config.heterogeneity,
        seed=config.seed,
        **config.dataset_params,
    )
    results: dict[str, SimulationResult] = {}
    for method in methods:
        method_config = config.with_method(method, **method_params.get(method, {}))
        cbs = callbacks() if callable(callbacks) else callbacks
        results[method] = run_simulation(
            method_config, fed_dataset=fed_dataset, callbacks=cbs
        )
    return results
