"""Coordinator-side management of a fleet of shard hosts.

A :class:`HostCluster` spawns ``hosts`` localhost
:mod:`~repro.distributed.host` worker processes, learns their
ephemeral ports through pipes, and multiplexes two
:class:`~repro.distributed.rpc.RPCChannel` sockets per host — ``data``
for storage ops and ``exec`` for training legs, so Gram fan-outs are
never queued behind a slow leg.  Broadcast ops (allocation, trainer
shipping, ``masked_dots`` fan-out) run concurrently across hosts on a
small thread pool; per-host storage calls go straight through the
owning host's data channel.

Clusters are pooled per host count by :func:`get_cluster` — one fleet
serves every buffer of a run (pool, uploads, cross-aggregated pools,
SCAFFOLD variate packs) — and torn down at interpreter exit.  A pooled
cluster whose processes died (the fault-injection tests kill hosts
deliberately) is replaced on the next request, so one poisoned fleet
never leaks into later runs.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Mapping, Sequence

import numpy as np

from repro.distributed.host import shard_host_main
from repro.distributed.rpc import DistributedError, RPCChannel

__all__ = ["HostCluster", "get_cluster", "shutdown_clusters", "DEFAULT_HOSTS"]

# Default fleet size when neither the ``hosts`` storage option nor the
# ``REPRO_POOL_HOSTS`` environment override names one.
DEFAULT_HOSTS = 2

_SPAWN_TIMEOUT_S = 30.0


class _HostHandle:
    """One shard-host process plus its lazily connected channels."""

    def __init__(self, index: int, total: int) -> None:
        self.index = index
        self.label = f"shard host {index}/{total}"
        parent, child = multiprocessing.Pipe()
        self.process = multiprocessing.Process(
            target=shard_host_main, args=(index, child), daemon=True,
            name=f"repro-shard-host-{index}",
        )
        self.process.start()
        child.close()
        if not parent.poll(_SPAWN_TIMEOUT_S):
            raise DistributedError(f"{self.label} did not report a port")
        self.port = int(parent.recv())
        parent.close()
        self._channels: dict[str, RPCChannel] = {}
        self._channel_lock = threading.Lock()
        self._closed = False

    def channel(self, purpose: str = "data") -> RPCChannel:
        with self._channel_lock:
            if self._closed:
                raise DistributedError(f"{self.label} handle is closed")
            chan = self._channels.get(purpose)
            if chan is None:
                chan = RPCChannel(("127.0.0.1", self.port), self.label)
                self._channels[purpose] = chan
            return chan

    def close(self) -> None:
        # Idempotent: explicit teardown followed by the atexit sweep (or
        # a failover replacing this handle) must not raise or leak
        # sockets — channels are closed exactly once and dropped.
        with self._channel_lock:
            if self._closed:
                return
            self._closed = True
            channels, self._channels = list(self._channels.values()), {}
        for chan in channels:
            chan.close()
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)


class HostCluster:
    """A fleet of shard hosts, shared by every buffer of a run."""

    def __init__(self, hosts: int) -> None:
        hosts = int(hosts)
        if hosts < 1:
            raise ValueError(f"hosts must be >= 1, got {hosts}")
        self.handles = [_HostHandle(i, hosts) for i in range(hosts)]
        self._buffer_seq = itertools.count()
        self._pool = ThreadPoolExecutor(
            max_workers=hosts, thread_name_prefix="repro-cluster"
        )
        self._registered_masks: set[str] = set()
        self._mask_lock = threading.Lock()
        self._trainer_token: object = None
        self._trainer_version = 0
        self._trainer_lock = threading.Lock()
        self._closed = False
        # Failover state: enough coordinator-side bookkeeping to rebuild
        # a respawned host — live allocations, registered mask arrays,
        # the last trainer payload, and the replicated storages to ask
        # for row restoration (weak refs: a collected buffer must not be
        # kept alive, or replayed, by the recovery path).
        self._allocs: dict[str, dict] = {}
        self._mask_arrays: dict[str, np.ndarray] = {}
        self._trainer_payload: "tuple | None" = None
        self._restorers: dict[str, object] = {}
        self._recover_lock = threading.RLock()
        # Buffers whose storage was garbage collected.  Finalizers may
        # fire on *any* thread — including one of this pool's own
        # workers, mid-RPC, while channel locks are held — so they must
        # never do socket I/O themselves (a free broadcast submitted to
        # our own bounded pool from inside a worker deadlocks it).
        # They append here instead; the next structural op drains.
        self._pending_frees: list[str] = []
        self._free_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------
    @property
    def num_hosts(self) -> int:
        return len(self.handles)

    def alive(self) -> bool:
        return not self._closed and all(h.process.is_alive() for h in self.handles)

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for handle in self.handles:
            if handle.process.is_alive():
                try:
                    handle.channel("data").call("shutdown")
                except DistributedError:
                    pass
        for handle in self.handles:
            handle.close()
        self._pool.shutdown(wait=False)

    # -- fan-out helpers ---------------------------------------------------
    def call(self, host: int, op: str, meta=None, arrays=None, blob=None,
             purpose: str = "data"):
        """One RPC on one host's channel of the given purpose."""
        return self.handles[host].channel(purpose).call(op, meta, arrays, blob)

    def broadcast(self, op: str, metas: "Sequence[Mapping] | Mapping",
                  arrays=None, blob=None, purpose: str = "data") -> list:
        """Run ``op`` on every host concurrently; results in host order.

        ``metas`` is either one mapping (same meta everywhere) or one
        mapping per host.  A failure on any host propagates after all
        calls have settled.
        """
        if isinstance(metas, Mapping) or metas is None:
            metas = [metas] * self.num_hosts
        futures = [
            self._pool.submit(self.call, i, op, metas[i], arrays, blob, purpose)
            for i in range(self.num_hosts)
        ]
        return [f.result() for f in futures]

    def next_buffer_id(self) -> str:
        return f"buf{next(self._buffer_seq)}"

    # -- storage-facing ops ------------------------------------------------
    def allocate(self, boundaries: Sequence[int], p: int, dtype,
                 placement: str) -> str:
        self._drain_frees()
        buffer = self.next_buffer_id()
        dtype = np.dtype(dtype)
        self.broadcast(
            "alloc",
            [
                {
                    "buffer": buffer,
                    "rows": int(boundaries[i + 1] - boundaries[i]),
                    "p": int(p),
                    "dtype": dtype.str,
                    "placement": placement,
                }
                for i in range(self.num_hosts)
            ],
        )
        with self._recover_lock:
            self._allocs[buffer] = {
                "boundaries": tuple(int(b) for b in boundaries),
                "p": int(p),
                "dtype": dtype.str,
                "placement": placement,
            }
        return buffer

    def free(self, buffer: str) -> None:
        with self._recover_lock:
            self._allocs.pop(buffer, None)
            self._restorers.pop(buffer, None)
        self.broadcast("free", {"buffer": buffer})

    def defer_free(self, buffer: str) -> None:
        """Queue ``buffer`` for release without any I/O or broad locks.

        The storage finalizers' entry point: safe to call from any
        thread at any moment (only a momentary private lock is taken).
        The queued frees run on the next :meth:`allocate`,
        :meth:`clone_buffer` or :meth:`shutdown`.
        """
        with self._free_lock:
            self._pending_frees.append(buffer)

    def _drain_frees(self) -> None:
        with self._free_lock:
            pending, self._pending_frees = self._pending_frees, []
        for buffer in pending:
            try:
                self.free(buffer)
            except DistributedError:
                # Best effort: a dead host's shard died with it anyway,
                # and a recovery replay skips popped allocations.
                pass

    def clone_buffer(self, src: str) -> str:
        self._drain_frees()
        dst = self.next_buffer_id()
        self.broadcast("clone_buffer", {"src": src, "dst": dst})
        with self._recover_lock:
            spec = self._allocs.get(src)
            if spec is not None:
                self._allocs[dst] = dict(spec)
        return dst

    def ensure_mask(self, mask: np.ndarray) -> str:
        """Register ``mask`` on every host once; returns its content id."""
        import hashlib

        mask = np.ascontiguousarray(mask, dtype=bool)
        mask_id = hashlib.sha1(mask.tobytes()).hexdigest()[:16]
        with self._mask_lock:
            if mask_id not in self._registered_masks:
                self.broadcast(
                    "register_mask", {"mask_id": mask_id}, {"mask": mask}
                )
                self._registered_masks.add(mask_id)
                with self._recover_lock:
                    self._mask_arrays[mask_id] = mask
        return mask_id

    def masked_dots(self, buffer: str, vi: np.ndarray,
                    mask_id: str | None) -> np.ndarray:
        """Fan one Gram row update out to every host; concat in host order."""
        meta = {"buffer": buffer}
        if mask_id is not None:
            meta["mask_id"] = mask_id
        replies = self.broadcast("masked_dots", meta, {"vi": vi})
        return np.concatenate(
            [np.array(reply_arrays["dots"], copy=True)
             for _meta, reply_arrays, _blob in replies]
        )

    # -- execution-facing ops ----------------------------------------------
    def ensure_trainer(self, spec, datasets: Mapping) -> None:
        """Ship the trainer spec + full shard table to every host once.

        Keyed by spec identity: the executor builds one spec per run, so
        re-sends only happen when a new executor reuses this fleet.
        Hosts keep their build when the version matches, making this a
        cheap no-op round trip after the first call.
        """
        with self._trainer_lock:
            token = id(spec)
            if self._trainer_token == token:
                return
            self._trainer_version += 1
            payload = (spec, dict(datasets))
            blob = pickle.dumps(payload)
            self.broadcast(
                "init_trainer", {"version": self._trainer_version},
                blob=blob, purpose="exec",
            )
            self._trainer_token = token
            with self._recover_lock:
                self._trainer_payload = payload

    def train_leg(self, host: int, meta: Mapping, state: np.ndarray,
                  hooks_blob: bytes):
        """Run one training leg on ``host``'s exec channel (blocking)."""
        reply, _arrays, _blob = self.call(
            host, "train_leg", meta, {"state": state}, hooks_blob, purpose="exec"
        )
        return reply

    # -- failover ----------------------------------------------------------
    def register_restorer(self, buffer: str, storage) -> None:
        """Ask ``storage`` to replay ``buffer``'s rows after a respawn.

        Held weakly: a replicated storage that has been garbage
        collected (its finalizer frees the buffer) must not be revived
        — or replayed — by a later recovery.
        """
        with self._recover_lock:
            self._restorers[buffer] = weakref.ref(storage)

    def recover_host(self, index: int) -> bool:
        """Respawn shard host ``index`` if dead and rebuild its state.

        Replays, in order: every live buffer allocation (this host's
        row span), every registered mask, the current trainer build,
        and finally each replicated storage's mirror rows via its
        ``restore_host``.  Returns True when a respawn happened, False
        when the host was already alive.  Raises
        :class:`DistributedError` when the replacement itself cannot be
        spawned — at that point the fleet is genuinely gone.
        """
        with self._recover_lock:
            if self._closed:
                raise DistributedError("cluster is shut down; cannot recover")
            if not self._host_down(index):
                return False
            old = self.handles[index]
            old.close()
            handle = _HostHandle(index, self.num_hosts)
            self.handles[index] = handle
            for buffer, spec in self._allocs.items():
                b = spec["boundaries"]
                self.call(
                    index, "alloc",
                    {
                        "buffer": buffer,
                        "rows": int(b[index + 1] - b[index]),
                        "p": spec["p"],
                        "dtype": spec["dtype"],
                        "placement": spec["placement"],
                    },
                )
            for mask_id, mask in self._mask_arrays.items():
                self.call(index, "register_mask", {"mask_id": mask_id},
                          {"mask": mask})
            if self._trainer_payload is not None:
                self.call(
                    index, "init_trainer",
                    {"version": self._trainer_version},
                    blob=pickle.dumps(self._trainer_payload), purpose="exec",
                )
            dead_refs = []
            for buffer, ref in self._restorers.items():
                storage = ref()
                if storage is None:
                    dead_refs.append(buffer)
                    continue
                storage.restore_host(index)
            for buffer in dead_refs:
                self._restorers.pop(buffer, None)
            return True

    def _host_down(self, index: int) -> bool:
        """True when host ``index`` is dead — or a kill is mid-flight.

        ``is_alive`` alone races with SIGKILL: the kernel closes the
        victim's sockets (so RPCs are already failing) a beat before
        the parent can reap the process.  An "alive" host is therefore
        probed with a ping; one that cannot answer is given a moment to
        finish dying, then forced down, so a recovery triggered by its
        connection errors never concludes "nothing to recover".
        """
        handle = self.handles[index]
        if not handle.process.is_alive():
            return True
        try:
            handle.channel("data").call("ping")
            return False
        except DistributedError:
            handle.process.join(timeout=1.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            return True

    def recover(self) -> list[int]:
        """Respawn every dead host; returns the recovered indices."""
        with self._recover_lock:
            return [
                i for i in range(self.num_hosts)
                if self._host_down(i) and self.recover_host(i)
            ]


# -- cluster pool ------------------------------------------------------------
_CLUSTERS: dict[int, HostCluster] = {}
_CLUSTERS_LOCK = threading.Lock()


def get_cluster(hosts: int | None = None) -> HostCluster:
    """The pooled cluster of ``hosts`` shard hosts (spawned on demand).

    ``hosts=None`` resolves ``REPRO_POOL_HOSTS`` then
    :data:`DEFAULT_HOSTS`.  A pooled cluster whose processes have died
    is torn down and respawned, so deliberate host kills (fault tests)
    never poison later runs.
    """
    if hosts is None:
        hosts = int(os.environ.get("REPRO_POOL_HOSTS") or DEFAULT_HOSTS)
    hosts = int(hosts)
    with _CLUSTERS_LOCK:
        cluster = _CLUSTERS.get(hosts)
        if cluster is not None and not cluster.alive():
            cluster.shutdown()
            cluster = None
        if cluster is None:
            cluster = HostCluster(hosts)
            _CLUSTERS[hosts] = cluster
        return cluster


def shutdown_clusters() -> None:
    """Tear down every pooled cluster (idempotent; runs atexit)."""
    with _CLUSTERS_LOCK:
        clusters = list(_CLUSTERS.values())
        _CLUSTERS.clear()
    for cluster in clusters:
        cluster.shutdown()


atexit.register(shutdown_clusters)
