"""Synchronous RPC channels over the framing layer.

A :class:`RPCChannel` is one coordinator-side socket to one shard
host, serving strictly request/response calls under a per-channel
lock.  The cluster keeps *two* channels per host — ``data`` for
storage ops and ``exec`` for training legs — so shard-local reductions
(Gram ``masked_dots``) are never queued behind a long-running training
leg on the same socket.

Failure contract (the robustness satellite): any transport-level error
— connection refused, reset, or EOF because the host process died —
triggers exactly **one** reconnect-and-resend retry; if that also
fails, a :class:`DistributedError` naming the shard host (never a raw
``ConnectionResetError``) is raised.  The retry is safe because every
op is idempotent: storage ops are pure reads/overwrites, and a
``train_leg`` re-runs from the RNG state shipped in the request, so a
replay produces bit-identical results.  Errors raised *by* the remote
op itself (an exception inside the host) come back in the response
header and re-raise as :class:`DistributedError` carrying the remote
traceback — those are not retried.

Each channel also keeps transport instrumentation: per-``(op,
buffer)`` call counts and array-scalar counts sent/received.  The
equivalence tests use these counters to assert the acceptance
property that trained upload rows never transit the coordinator.
"""

from __future__ import annotations

import socket
import threading
from typing import Mapping

import numpy as np

from repro.distributed.framing import ConnectionClosed, recv_message, send_message

__all__ = ["DistributedError", "RPCChannel", "serve_connection"]

_CONNECT_TIMEOUT_S = 10.0


class DistributedError(RuntimeError):
    """A shard host failed (died, unreachable, or raised remotely)."""


class RPCChannel:
    """One lazy-connecting request/response socket to a shard host."""

    def __init__(self, address: tuple[str, int], label: str) -> None:
        self.address = tuple(address)
        self.label = label
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()
        # (op, buffer-id or None) -> call count; scalar tallies count
        # array elements that crossed this channel in each direction.
        self.op_counts: dict[tuple[str, object], int] = {}
        self.scalars_sent = 0
        self.scalars_received = 0
        # Transport-level failures that triggered a reconnect attempt
        # (whether or not the resend then succeeded) — the reconnect
        # tests read the delta to assert exactly-one-retry semantics.
        self.transport_retries = 0

    # -- connection management --------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.create_connection(self.address, timeout=_CONNECT_TIMEOUT_S)
        # Blocking from here on: replies to long ops (training legs) may
        # legitimately take minutes; a dead host still surfaces as EOF.
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close on dead socket
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop()

    # -- calls -------------------------------------------------------------
    def call(
        self,
        op: str,
        meta: Mapping | None = None,
        arrays: "Mapping[str, np.ndarray] | None" = None,
        blob: bytes | None = None,
    ) -> tuple[dict, dict[str, np.ndarray], bytes]:
        """One request/response round trip; returns the reply triple."""
        header = {"op": op, **(meta or {})}
        with self._lock:
            last_error: OSError | None = None
            for _attempt in range(2):
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                    send_message(self._sock, header, arrays, blob)
                    reply, reply_arrays, reply_blob = recv_message(self._sock)
                    break
                except (ConnectionClosed, OSError) as exc:
                    self._drop()
                    self.transport_retries += 1
                    last_error = exc
            else:
                raise DistributedError(
                    f"{self.label} is unreachable for op {op!r} after one "
                    f"reconnect attempt ({type(last_error).__name__}: "
                    f"{last_error})"
                ) from last_error
            key = (op, header.get("buffer"))
            self.op_counts[key] = self.op_counts.get(key, 0) + 1
            self.scalars_sent += sum(int(a.size) for a in (arrays or {}).values())
            self.scalars_received += sum(int(a.size) for a in reply_arrays.values())
        if not reply.get("ok", False):
            error = reply.get("error", {})
            raise DistributedError(
                f"{self.label} failed op {op!r}: "
                f"{error.get('type', 'Exception')}: {error.get('message', '')}\n"
                f"{error.get('traceback', '')}"
            )
        return reply, reply_arrays, reply_blob


def serve_connection(sock: socket.socket, dispatch) -> None:
    """Host-side request loop for one accepted connection.

    ``dispatch(op, meta, arrays, blob)`` returns ``(meta, arrays,
    blob)``; exceptions it raises are reported to the peer in the
    response header (with traceback text) without killing the
    connection.  Returns when the peer disconnects.
    """
    import traceback

    while True:
        try:
            header, arrays, blob = recv_message(sock)
        except (ConnectionClosed, OSError):
            return
        op = header.pop("op", "")
        try:
            meta, reply_arrays, reply_blob = dispatch(op, header, arrays, blob)
        except BaseException as exc:  # noqa: BLE001 - reported to the peer
            try:
                send_message(
                    sock,
                    {
                        "ok": False,
                        "error": {
                            "type": type(exc).__name__,
                            "message": str(exc),
                            "traceback": traceback.format_exc(),
                        },
                    },
                )
            except OSError:
                return
            continue
        try:
            send_message(sock, {"ok": True, **(meta or {})}, reply_arrays, reply_blob)
        except OSError:
            return
