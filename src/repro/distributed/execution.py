"""Co-located client execution on the shard-host fleet.

:class:`DistributedExecution` is the ``distributed`` entry of the
execution-backend registry: each client's local-training leg runs **on
the shard host that owns its upload row**, so the trained ``P`` floats
are packed straight into the host-resident shard and never transit the
coordinator.  Per leg, the coordinator ships the dispatched state (one
buffer-dtype row), the hook specs and the client's RNG state; only
scalars — loss, sample/step counts, the advanced RNG state — ride
back.  Gram fan-outs (``masked_dots`` via the storage) run on the
hosts' ``data`` channels while legs occupy the ``exec`` channels, so
the server's streaming collect overlaps similarity maintenance with
remote training exactly as it does with local threads.

The backend requires the upload buffer to live on
:class:`~repro.distributed.storage.DistributedStorage` — co-location
is meaningless against a coordinator-local matrix — and reuses that
buffer's :class:`~repro.distributed.cluster.HostCluster`.

Measured communication
----------------------
When the server attaches its :class:`~repro.fl.comm
.CommunicationLedger` (the ``ledger`` attribute every backend
carries), this backend records *measured* per-leg parameter counts —
one model down plus any hook payloads the spec declares in
``comm_down_fields`` at dispatch, one model up plus ``comm_up_fields``
at completion — and flags the ledger measured so the server skips its
analytic charge for the round.  For FedCross and SCAFFOLD the measured
totals equal :func:`~repro.fl.comm.analytic_round_cost` exactly, which
the communication tests assert.

Determinism: legs train from the dispatched state and the client's
shipped RNG state with the same trainer arithmetic as every other
backend, and the roundtrip guards (integer + float) reject states the
buffer dtype cannot carry exactly — the distributed leg of the
cross-backend equivalence matrix is bitwise identical to serial.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ThreadPoolExecutor
from typing import Iterator, Mapping

import numpy as np

from repro.distributed.rpc import DistributedError
from repro.faults.policy import LegFailure
from repro.fl.execution import (
    ExecutionBackend,
    _check_float_roundtrip,
    _check_parallel_cohort,
    _require_spec_hook,
    _stream_as_completed,
    _stream_captured,
    _trainer_hypers,
    register_execution,
)
from repro.fl.hooks import HookSpec
from repro.fl.trainer import LocalResult

__all__ = ["DistributedExecution", "LazyUploadState"]


def _hook_comm_extra(plan, attr: str) -> int:
    """Scalars a plan's hook payloads add to one transfer direction.

    Sums the sizes of the state mappings each spec declares under
    ``comm_down_fields`` / ``comm_up_fields`` — SCAFFOLD's control
    variate, FedGen's generator snapshot.  Raw-callable hooks never
    reach here (the spec guard rejects them first).
    """
    total = 0
    for hook in (plan.loss_hook, plan.grad_hook):
        if not isinstance(hook, HookSpec):
            continue
        for name in getattr(hook, attr, ()):
            value = getattr(hook, name, None)
            if isinstance(value, Mapping):
                total += sum(int(np.asarray(v).size) for v in value.values())
    return total


class LazyUploadState(Mapping):
    """Mapping view of an upload row, fetched from its shard on demand.

    The whole point of co-located execution is that trained rows stay
    on their hosts; a :class:`~repro.fl.trainer.LocalResult` still
    carries a ``state`` for callers that need one (SCAFFOLD reads the
    trained state to update control variates).  This mapping defers
    the row fetch until a value is actually requested — FedCross never
    requests one, so its rounds move zero trained rows to the
    coordinator.
    """

    def __init__(self, uploads, row: int) -> None:
        self._uploads = uploads
        self._row = int(row)
        self._state: dict | None = None

    def _fetch(self) -> dict:
        if self._state is None:
            self._state = self._uploads.as_state(self._row, copy=True)
        return self._state

    def __getitem__(self, key):
        return self._fetch()[key]

    def __iter__(self):
        return iter(self._uploads.layout.keys)

    def __len__(self) -> int:
        return len(self._uploads.layout.keys)

    def __contains__(self, key) -> bool:
        return key in self._uploads.layout.keys


@register_execution("distributed")
class DistributedExecution(ExecutionBackend):
    """Training legs scheduled on the shard hosts owning their rows."""

    def __init__(self, spec=None, clients=(), workers=None) -> None:
        super().__init__(spec, clients, workers)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_width = 0

    def _ensure_pool(self, width: int) -> None:
        # One dispatcher thread per in-flight leg: each blocks on its
        # host's exec channel for the leg's full duration.
        if self._pool is None or self._pool_width < width:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            self._pool = ThreadPoolExecutor(
                max_workers=max(1, width), thread_name_prefix="repro-dist"
            )
            self._pool_width = max(1, width)

    def _submit(self, trainer, active, plans, rows, uploads, attacks=None):
        from repro.core.pool import _check_integer_roundtrip
        from repro.distributed.storage import DistributedStorage

        storage = uploads.storage
        if not isinstance(storage, DistributedStorage):
            raise DistributedError(
                "the distributed execution backend co-locates legs with "
                "their upload shards and requires the pool to live on the "
                f"'distributed' storage backend, got {uploads.backend!r}; "
                "run with --backend distributed (FLConfig.backend)"
            )
        n = min(len(active), len(plans))
        _check_parallel_cohort(active[:n], rows[:n])
        for plan in plans[:n]:
            _require_spec_hook(plan.loss_hook, "DispatchPlan.loss_hook")
            _require_spec_hook(plan.grad_hook, "DispatchPlan.grad_hook")
        if self.spec is None:
            raise RuntimeError(
                "distributed execution backend needs a TrainerSpec to build "
                "host-side trainer templates"
            )
        cluster = storage.cluster
        cluster.ensure_trainer(
            self.spec, {c.client_id: c.dataset for c in self.clients}
        )
        layout = uploads.layout
        # Flatten each unique dispatched state once (FedAvg-family plans
        # share one dict; FedCross plans are distinct pool rows) — the
        # packed row is what rides the wire to each leg's host.
        packed: dict[int, np.ndarray] = {}
        for plan in plans[:n]:
            key = id(plan.state)
            if key not in packed:
                if set(plan.state) != set(layout.keys):
                    raise KeyError(
                        "dispatched state keys do not match the model layout; "
                        "the distributed backend can only ship model-shaped "
                        "states"
                    )
                _check_integer_roundtrip(layout, plan.state, uploads.dtype)
                _check_float_roundtrip(layout, plan.state, uploads.dtype)
                row = np.empty(layout.total_size, dtype=uploads.dtype)
                layout.flatten_into(plan.state, row)
                packed[key] = row

        hypers = _trainer_hypers(trainer)
        ledger = self.ledger
        if ledger is not None:
            # This backend measures real transfers; the server's analytic
            # per-round charge would double-count.
            ledger.mark_measured()
        self._ensure_pool(n)
        futures = []
        up_extras = []
        for i, (client, plan) in enumerate(zip(active[:n], plans[:n])):
            host, local = storage.owner_of(int(rows[i]))
            blob = (
                pickle.dumps((plan.loss_hook, plan.grad_hook))
                if plan.loss_hook is not None or plan.grad_hook is not None
                else b""
            )
            meta = {
                "buffer": storage.buffer_id,
                "local_row": int(local),
                "client_id": client.client_id,
                "rng_state": client.rng.bit_generator.state,
                "hypers": hypers,
                "lr_override": plan.lr_override,
            }
            if attacks and i in attacks:
                # Byzantine leg: the owning host poisons its freshly
                # landed row from the dispatched row it already holds —
                # the attack happens at the upload boundary without the
                # trained state ever transiting the coordinator.
                meta["attack"] = attacks[i].to_wire()
            if ledger is not None:
                # Measured download: the dispatched model (no dedup —
                # K clients receiving the same global state still cost
                # K model downloads) plus declared hook payloads.
                ledger.record_down(
                    layout.total_size + _hook_comm_extra(plan, "comm_down_fields")
                )
            up_extras.append(_hook_comm_extra(plan, "comm_up_fields"))
            futures.append(
                self._pool.submit(
                    cluster.train_leg, host, meta, packed[id(plan.state)], blob
                )
            )
        return futures, up_extras

    def run(self, trainer, active, plans, rows, uploads):
        n = min(len(active), len(plans))
        results: list[LocalResult | None] = [None] * n
        for i, result in self.run_streaming(trainer, active, plans, rows, uploads):
            results[i] = result
        return results

    def _landed(self, i, reply, active, rows, uploads, up_extras) -> LocalResult:
        """Book one completed leg: RNG, measured upload, replica note."""
        active[i].rng.bit_generator.state = reply["rng_state"]
        if self.ledger is not None:
            # Measured upload: the trained model landed in its shard
            # (K·P scalars of client→storage movement, the paper's
            # unit) plus declared hook payloads echoed upward.
            self.ledger.record_up(uploads.layout.total_size + up_extras[i])
        note = getattr(uploads.storage, "note_remote_write", None)
        if note is not None:
            # Replicated storage: the row now holds a trained state the
            # coordinator mirror does not — mark it dirty so a host
            # death before aggregation reports it as lost.
            note(int(rows[i]))
        return LocalResult(
            state=LazyUploadState(uploads, int(rows[i])),
            num_samples=int(reply["num_samples"]),
            num_steps=int(reply["num_steps"]),
            mean_loss=float(reply["mean_loss"]),
        )

    def run_streaming(
        self, trainer, active, plans, rows, uploads
    ) -> Iterator[tuple[int, LocalResult]]:
        futures, up_extras = self._submit(trainer, active, plans, rows, uploads)
        indexed = {f: i for i, f in enumerate(futures)}
        for i, reply in _stream_as_completed(futures, indexed):
            yield i, self._landed(i, reply, active, rows, uploads, up_extras)

    def run_streaming_captured(
        self, trainer, active, plans, rows, uploads, timeout=None, attacks=None
    ):
        n = min(len(active), len(plans))
        try:
            futures, up_extras = self._submit(
                trainer, active, plans, rows, uploads, attacks=attacks
            )
        except DistributedError as exc:
            # Fleet-level dispatch failure (dead host mid-broadcast):
            # surface every leg as a structured failure so the engine
            # can recover the fleet and resubmit, instead of aborting.
            for i in range(n):
                yield i, LegFailure(
                    index=i,
                    client_id=active[i].client_id,
                    row=int(rows[i]),
                    kind="error",
                    message=f"{type(exc).__name__}: {exc}",
                )
            return
        indexed = {f: i for i, f in enumerate(futures)}
        for i, leg in _stream_captured(futures, indexed, active, rows, timeout):
            if isinstance(leg, LegFailure):
                yield i, leg
                continue
            yield i, self._landed(i, leg, active, rows, uploads, up_extras)

    supports_async = True

    #: Transfers are measured at the sockets (down at submit, up at
    #: land), so the async driver must never add its analytic charge on
    #: top — the per-round attribution is the landing window.
    measures_comm = True

    def reserve(self, width: int) -> None:
        # Pre-size the dispatcher pool for the whole overlap window so
        # a mid-flight _ensure_pool growth (shutdown+rebuild) can never
        # stall on in-flight legs of an earlier round.
        self._ensure_pool(int(width))

    def submit_group(self, trainer, active, plans, rows, uploads, attacks=None):
        from repro.fl.execution import LegGroup

        futures, up_extras = self._submit(
            trainer, active, plans, rows, uploads, attacks=attacks
        )

        def finalize(j, raw):
            return self._landed(j, raw, active, rows, uploads, up_extras)

        return LegGroup(futures, finalize)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_width = 0
