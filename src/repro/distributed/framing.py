"""Length-prefixed socket frames for the shard-actor RPC layer.

One message is one frame::

    [8-byte big-endian payload length]
    [4-byte big-endian header length][header JSON (utf-8)]
    [array 0 bytes][array 1 bytes]...[opaque blob bytes]

The header is a plain JSON object; two reserved keys describe the
binary tail: ``"__arrays__"`` is a list of ``[name, shape, dtype_str,
nbytes]`` entries (C-contiguous raw array bytes, concatenated in list
order) and ``"__blob__"`` is the byte length of one optional opaque
trailing blob (pickled trainer specs ride here).  Everything is stdlib
plus numpy — the same no-new-deps constraint as
:mod:`repro.utils.serialization`.

Decoded arrays are zero-copy views over one receive buffer (a
``bytearray``), so a shard host can adopt a received row block without
another copy; callers that keep an array beyond the request must copy.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Mapping

import numpy as np

__all__ = ["ConnectionClosed", "encode_message", "send_message", "recv_message"]

_LEN = struct.Struct(">Q")
_HDR = struct.Struct(">I")

# Refuse absurd frames (corrupt peer / wrong protocol) before
# allocating their claimed size: 1 TiB is far above any legitimate
# shard payload and far below an attacker-controlled OOM only in
# degree, but this transport only ever speaks to our own hosts.
_MAX_FRAME = 1 << 40


class ConnectionClosed(OSError):
    """The peer closed the socket mid-message (EOF)."""


def _json_default(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"unserialisable header value of type {type(value).__name__}")


def encode_message(
    header: Mapping,
    arrays: "Mapping[str, np.ndarray] | None" = None,
    blob: bytes | None = None,
) -> "list[bytes | memoryview]":
    """Encode one message as a list of byte chunks (for ``sendmsg``).

    ``arrays`` values are sent as raw C-contiguous bytes; ``blob`` is
    an opaque trailing byte string.  The returned chunks, concatenated,
    form one complete frame including the length prefix.
    """
    header = dict(header)
    chunks: list[np.ndarray | bytes | memoryview] = []
    manifest = []
    for name, value in (arrays or {}).items():
        value = np.ascontiguousarray(value)
        manifest.append(
            [name, list(value.shape), value.dtype.str, int(value.nbytes)]
        )
        # Flat byte view: len() must equal nbytes for the payload-length
        # arithmetic below (an ndarray's raw .data memoryview is
        # N-dimensional, whose len() is shape[0]).
        chunks.append(value.data.cast("B"))
    header["__arrays__"] = manifest
    header["__blob__"] = len(blob) if blob else 0
    if blob:
        chunks.append(blob)
    head = json.dumps(header, default=_json_default).encode("utf-8")
    payload_len = _HDR.size + len(head) + sum(len(c) for c in chunks)
    return [
        _LEN.pack(payload_len),
        _HDR.pack(len(head)),
        head,
        *chunks,
    ]


def send_message(
    sock: socket.socket,
    header: Mapping,
    arrays: "Mapping[str, np.ndarray] | None" = None,
    blob: bytes | None = None,
) -> None:
    """Send one complete frame on ``sock``."""
    # bytes.join accepts any buffer-protocol chunk (memoryview included),
    # so array payloads are copied exactly once, into the send buffer.
    sock.sendall(b"".join(encode_message(header, arrays, blob)))


def _recv_exact(sock: socket.socket, n: int) -> bytearray:
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        read = sock.recv_into(view[got:], n - got)
        if read == 0:
            raise ConnectionClosed("peer closed the connection mid-message")
        got += read
    return buf


def recv_message(
    sock: socket.socket,
) -> tuple[dict, dict[str, np.ndarray], bytes]:
    """Receive one frame: ``(header, arrays, blob)``.

    Arrays are writable zero-copy views over the frame's receive
    buffer; the blob is a plain ``bytes`` copy (pickle needs one
    anyway).  Raises :class:`ConnectionClosed` on EOF at any point.
    """
    (payload_len,) = _LEN.unpack(bytes(_recv_exact(sock, _LEN.size)))
    if payload_len > _MAX_FRAME:
        raise OSError(f"frame of {payload_len} bytes exceeds the transport limit")
    payload = _recv_exact(sock, payload_len)
    (head_len,) = _HDR.unpack(bytes(payload[: _HDR.size]))
    offset = _HDR.size
    header = json.loads(bytes(payload[offset : offset + head_len]).decode("utf-8"))
    offset += head_len
    arrays: dict[str, np.ndarray] = {}
    for name, shape, dtype_str, nbytes in header.pop("__arrays__", []):
        view = memoryview(payload)[offset : offset + nbytes]
        arrays[name] = np.frombuffer(view, dtype=np.dtype(dtype_str)).reshape(shape)
        offset += nbytes
    blob_len = header.pop("__blob__", 0)
    blob = bytes(payload[offset : offset + blob_len]) if blob_len else b""
    return header, arrays, blob
