"""Multi-node shard-actor runtime (socket-RPC distributed pool).

The single-node pool engine deliberately carved the storage row
protocol (``row_block`` / ``write_rows`` / ``gather_rows`` /
``shard_dots``) as its RPC seam; this package is the seam's first
crossing of a process/node boundary:

:mod:`repro.distributed.framing`
    Length-prefixed socket frames carrying a JSON header plus raw
    C-contiguous array payloads — stdlib only, no new dependencies.
:mod:`repro.distributed.rpc`
    :class:`~repro.distributed.rpc.RPCChannel` — one synchronous
    request/response channel per (host, purpose) with bounded
    reconnect-and-retry, surfacing failures as
    :class:`~repro.distributed.rpc.DistributedError` naming the dead
    shard host.
:mod:`repro.distributed.host`
    The ``ShardHost`` worker process: owns one contiguous row shard
    of each distributed pool buffer, serves the row protocol, runs
    shard-local reductions (``masked_dots``) and co-located training
    legs whose trained states land directly in the owning shard.
:mod:`repro.distributed.cluster`
    :class:`~repro.distributed.cluster.HostCluster` — spawns/keeps N
    localhost shard hosts, multiplexes per-host data/exec channels and
    broadcasts (trainer shipping, fan-out reductions).
:mod:`repro.distributed.storage`
    :class:`~repro.distributed.storage.DistributedStorage` — the
    coordinator-side :class:`~repro.core.storage.PoolStorage` proxy
    registered as the ``distributed`` pool backend.
:mod:`repro.distributed.execution`
    :class:`~repro.distributed.execution.DistributedExecution` — the
    ``distributed`` :class:`~repro.fl.execution.ExecutionBackend`
    scheduling each client's leg on the host owning its upload row,
    with measured :class:`~repro.fl.comm.CommunicationLedger`
    accounting.

Both registries carry ``distributed`` as a lazy entry, so importing
:mod:`repro.core.storage` or :mod:`repro.fl.execution` never imports
this package; resolving the name does.
"""

from repro.distributed.rpc import DistributedError

__all__ = ["DistributedError"]
