"""The ``ShardHost`` worker process.

One host owns one contiguous row shard of every distributed pool
buffer: allocation, the row protocol (local offsets — the coordinator
keeps the global span map), shard-local reductions, and co-located
training legs.  The coordinator talks to it over plain sockets via
:mod:`repro.distributed.rpc`; a host never talks to other hosts.

Two properties carry the engine's cross-backend guarantees over the
wire:

* **Bit-transparency** — rows cross the socket as raw buffer-dtype
  bytes (no re-encoding), and ``masked_dots`` computes each pairwise
  dot exactly like :meth:`repro.core.gram.GramTracker.update_row`
  does locally: one contiguous float64 1-D ``np.dot`` per row over
  the same masked values.  Shard-local results are therefore bitwise
  identical to the single-node reference.
* **Co-located uploads** — ``train_leg`` unflattens the dispatched
  state, trains with the client's shipped RNG state, and packs the
  trained state **directly into the host's local shard row**.  The
  ``P`` trained floats never ride a socket back to the coordinator;
  only scalars (loss, counts, the advanced RNG state) do.

The accept loop serves each connection on its own daemon thread.
Array reads/writes from concurrent connections are as racy as the
in-process ``thread``/``process`` backends' concurrent row writes —
benign for the same reason (rows of one round's legs are distinct,
and Gram rows read while a later-landing leg trains are recomputed by
that leg's own update) — while structural ops (buffer allocation,
mask/trainer registration) serialise on one mutex.
"""

from __future__ import annotations

import pickle
import socket
import threading
from typing import Any

import numpy as np

from repro.distributed.rpc import serve_connection
from repro.distributed.framing import send_message  # noqa: F401 (re-export for tests)

__all__ = ["shard_host_main"]


class _HostState:
    """Everything one shard host owns, keyed by coordinator-issued ids."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.lock = threading.Lock()
        self.buffers: dict[str, Any] = {}  # buffer id -> PoolStorage
        self.masks: dict[str, np.ndarray] = {}
        self.trainer = None
        self.trainer_version: int | None = None
        self.datasets: dict = {}
        self.layout = None
        self.stop = threading.Event()

    # -- storage ops -------------------------------------------------------
    def _storage(self, buffer: str):
        try:
            return self.buffers[buffer]
        except KeyError:
            raise KeyError(f"shard host {self.index} has no buffer {buffer!r}")

    def op_alloc(self, meta, arrays, blob):
        from repro.core.storage import resolve_backend

        with self.lock:
            self.buffers[meta["buffer"]] = resolve_backend(
                meta.get("placement", "dense")
            ).allocate((int(meta["rows"]), int(meta["p"])), dtype=np.dtype(meta["dtype"]))
        return {}, {}, b""

    def op_free(self, meta, arrays, blob):
        with self.lock:
            self.buffers.pop(meta["buffer"], None)
        return {}, {}, b""

    def op_clone_buffer(self, meta, arrays, blob):
        with self.lock:
            src = self._storage(meta["src"])
            self.buffers[meta["dst"]] = src.clone()
        return {}, {}, b""

    def op_fill_rows(self, meta, arrays, blob):
        self._storage(meta["buffer"]).fill_rows(arrays["values"])
        return {}, {}, b""

    def op_row_block(self, meta, arrays, blob):
        block = self._storage(meta["buffer"]).row_block(
            int(meta["lo"]), int(meta["hi"])
        )
        return {}, {"block": block}, b""

    def op_write_rows(self, meta, arrays, blob):
        self._storage(meta["buffer"]).write_rows(int(meta["lo"]), arrays["values"])
        return {}, {}, b""

    def op_gather_rows(self, meta, arrays, blob):
        indices = arrays["indices"].astype(np.int64, copy=False)
        return {}, {"block": self._storage(meta["buffer"]).gather_rows(indices)}, b""

    def op_register_mask(self, meta, arrays, blob):
        with self.lock:
            # Copy: the received view aliases the request's frame buffer.
            self.masks[meta["mask_id"]] = arrays["mask"].astype(bool, copy=True)
        return {}, {}, b""

    def op_masked_dots(self, meta, arrays, blob):
        """Shard-local Gram contributions: dots of ``vi`` against every
        local row — the distributable unit of ``GramTracker.update_row``,
        computed with the exact local kernel (contiguous float64 1-D
        ``np.dot`` per row) so the assembled row is bitwise identical."""
        storage = self._storage(meta["buffer"])
        vi = np.ascontiguousarray(arrays["vi"], dtype=np.float64)
        mask_id = meta.get("mask_id")
        mask = self.masks[mask_id] if mask_id is not None else None
        rows = storage.shape[0]
        dots = np.empty(rows)
        for local in range(rows):
            row = storage.row(local)
            if mask is not None:
                row = row[mask]
            vj = np.ascontiguousarray(row, dtype=np.float64)
            dots[local] = np.dot(vi, vj)
        return {}, {"dots": dots}, b""

    # -- co-located execution ----------------------------------------------
    def op_init_trainer(self, meta, arrays, blob):
        from repro.utils.layout import StateLayout

        version = int(meta["version"])
        with self.lock:
            if self.trainer_version == version:
                return {}, {}, b""
            spec, datasets = pickle.loads(blob)
            self.trainer = spec.build()
            self.datasets = datasets
            self.layout = StateLayout.from_state(self.trainer.model.state_dict())
            self.trainer_version = version
        return {}, {}, b""

    def op_train_leg(self, meta, arrays, blob):
        """One client's local-training leg, co-located with its shard.

        Mirrors the process backend's ``_process_leg``: unflatten the
        dispatched buffer-dtype row, train on the host-resident shard
        data with the client's shipped RNG state, then pack the trained
        state straight into the *local* row of the upload buffer — the
        trained ``P`` floats never return to the coordinator.
        """
        from repro.core.pool import _check_integer_roundtrip
        from repro.fl.execution import _apply_hypers, _check_float_roundtrip
        from repro.fl.hooks import resolve_hook

        with self.lock:
            trainer = self.trainer
            layout = self.layout
        if trainer is None:
            raise RuntimeError(
                f"shard host {self.index} has no trainer; init_trainer first"
            )
        storage = self._storage(meta["buffer"])
        _apply_hypers(trainer, meta["hypers"])
        state = layout.unflatten(arrays["state"], copy=True)
        rng = np.random.default_rng()
        rng.bit_generator.state = _rng_state_from_wire(meta["rng_state"])
        loss_hook, grad_hook = pickle.loads(blob) if blob else (None, None)
        result = trainer.train(
            state,
            self.datasets[meta["client_id"]],
            rng,
            loss_hook=resolve_hook(loss_hook, state),
            grad_hook=resolve_hook(grad_hook, state),
            lr_override=meta.get("lr_override"),
        )
        # Same two transport guards as the shared-memory path: the
        # trained state must survive the buffer dtype exactly, or this
        # row would silently differ from the serial reference.
        _check_integer_roundtrip(layout, result.state, storage.dtype)
        _check_float_roundtrip(layout, result.state, storage.dtype)
        landed = storage.row(int(meta["local_row"]))
        layout.flatten_into(result.state, landed)
        if meta.get("attack"):
            # Byzantine leg: poison the landed row in place from the
            # dispatched row that arrived with this request.  Both rows
            # are buffer-dtype and the transform runs in float64, so
            # the bytes match the coordinator-side serial application
            # exactly (idempotent on retry — pure function of inputs).
            from repro.robust.attacks import AttackSpec, attacked_row

            spec = AttackSpec.from_wire(meta["attack"])
            landed[:] = attacked_row(spec, layout, arrays["state"], landed)
        return (
            {
                "num_samples": int(result.num_samples),
                "num_steps": int(result.num_steps),
                "mean_loss": float(result.mean_loss),
                "rng_state": rng.bit_generator.state,
            },
            {},
            b"",
        )

    def op_ping(self, meta, arrays, blob):
        return {"index": self.index}, {}, b""

    def op_stats(self, meta, arrays, blob):
        """Recovery introspection: what this host currently holds.

        The failover tests compare a respawned host's inventory against
        the coordinator's retained state to assert a full replay."""
        with self.lock:
            return (
                {
                    "index": self.index,
                    "buffers": sorted(self.buffers),
                    "masks": sorted(self.masks),
                    "trainer_version": self.trainer_version,
                },
                {},
                b"",
            )

    def op_shutdown(self, meta, arrays, blob):
        self.stop.set()
        return {}, {}, b""

    def dispatch(self, op: str, meta, arrays, blob):
        handler = getattr(self, f"op_{op}", None)
        if handler is None:
            raise KeyError(f"shard host {self.index}: unknown op {op!r}")
        return handler(meta, arrays, blob)


def _rng_state_from_wire(state):
    """Undo JSON's stringification of nothing — PCG64 state dicts are
    plain nested dicts of (big) ints and strings, which JSON round-trips
    exactly; this hook exists so a future bit-generator needing repair
    has one place to do it."""
    return state


def shard_host_main(index: int, port_conn) -> None:
    """Entry point of one shard-host process.

    Binds an ephemeral localhost port, reports it through ``port_conn``
    (a :class:`multiprocessing.Pipe` end), then serves connections until
    a ``shutdown`` op arrives.  Connection threads are daemons, so the
    process exits as soon as the accept loop does.
    """
    state = _HostState(index)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(16)
    port_conn.send(listener.getsockname()[1])
    port_conn.close()
    # Wake the accept loop promptly after a shutdown op: a short accept
    # timeout bounds the post-shutdown lifetime without busy-waiting.
    listener.settimeout(0.2)
    try:
        while not state.stop.is_set():
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=serve_connection,
                args=(conn, state.dispatch),
                daemon=True,
            ).start()
    finally:
        listener.close()
