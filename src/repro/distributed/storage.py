"""Coordinator-side proxy storage over a fleet of shard hosts.

:class:`DistributedStorage` is the ``distributed`` entry of the pool
backend registry: a :class:`~repro.core.storage.PoolStorage` whose
``(K, P)`` matrix lives row-sharded across the
:class:`~repro.distributed.cluster.HostCluster`'s worker processes.
The coordinator holds only the span map (the same
``_even_boundaries`` layout as :class:`~repro.core.storage
.ShardedStorage`) and proxies the row protocol over RPC:

* ``row_block`` / ``gather_rows`` fetch bounded blocks, grouped per
  owning host and reassembled in row order;
* ``write_rows`` / ``fill_rows`` split writes at host boundaries;
* ``open_row``/``commit_row`` stage full-row overwrites coordinator-
  side and ship each committed row in one message (the pool engine's
  ``set_state`` packs into the staging row, so an upload costs one
  RPC, not one per field);
* ``masked_dots`` fans a Gram row update out to every host — the
  shard-local reduction runs where the rows live and only the ``(K,)``
  reduced dots cross the wire.

Rows cross the socket as raw buffer-dtype bytes and every reduction
uses the exact single-node kernels, so a distributed pool is bitwise
identical to ``sharded``/``dense`` under the equivalence matrix.
"""

from __future__ import annotations

import weakref
from typing import Sequence

import numpy as np

from repro.core.storage import (
    PoolStorage,
    _even_boundaries,
    register_backend,
)
from repro.distributed.cluster import HostCluster, get_cluster
from repro.distributed.rpc import DistributedError

__all__ = ["DistributedStorage"]


def _free_buffer(cluster: HostCluster, buffer: str) -> None:
    # Finalizers run on whatever thread the GC pause happens to be on —
    # possibly a cluster pool worker holding a channel lock mid-RPC —
    # so this must never do socket I/O: the free is queued and drained
    # by the cluster's next structural op instead.
    try:
        cluster.defer_free(buffer)
    except Exception:  # pragma: no cover - interpreter/cluster teardown
        pass


@register_backend("distributed")
class DistributedStorage(PoolStorage):
    """The ``(K, P)`` matrix sharded across socket-RPC worker processes.

    Options (via ``FLConfig.hosts`` / ``--hosts`` or direct allocate):

    ``hosts``
        Shard-host count (default ``REPRO_POOL_HOSTS`` or 2).  Hosts
        are pooled per count and shared by every buffer of a run.
    ``placement``
        Storage backend each host keeps its shard on (``"dense"``
        default, ``"memmap"`` for hosts beyond RAM).
    ``cluster``
        An explicit :class:`HostCluster` (tests inject one); mutually
        consistent with ``hosts`` when both are given.
    ``replicate``
        Keep a coordinator-side writable replica of the buffer (the
        resilience layer sets this for non-``fail`` failure policies):
        a killed shard host is respawned and its row span replayed from
        the mirror instead of raising, and rows whose latest write was
        host-side are tracked as *lost* until retrained or rewritten.

    ``row`` returns a *read-only fetched copy* (unlike single-node
    backends there is no live view to hand out); all writes go through
    ``open_row``/``commit_row``/``write_rows``, which the pool engine
    uses exclusively.
    """

    def __init__(
        self,
        cluster: HostCluster,
        buffer: str,
        shape: tuple[int, int],
        dtype,
        boundaries: Sequence[int],
        placement: str,
        replicate: bool = False,
    ) -> None:
        self._cluster = cluster
        self._buffer = buffer
        self._shape = (int(shape[0]), int(shape[1]))
        self._dtype = np.dtype(dtype)
        self._boundaries = tuple(int(b) for b in boundaries)
        self._placement = placement
        self._replicate = bool(replicate)
        if self._replicate:
            # Coordinator-side writable replica: every coordinator write
            # is mirrored here, so a killed host can be respawned and
            # its span replayed.  ``dirty`` marks rows whose latest
            # write happened *host-side* (a distributed training leg) —
            # the mirror predates those, so losing their host marks
            # them ``lost`` until rewritten.
            k, p = self._shape
            self._mirror = np.zeros((k, p), dtype=self._dtype)
            self._dirty = np.zeros(k, dtype=bool)
            self._lost = np.zeros(k, dtype=bool)
            cluster.register_restorer(buffer, self)
        self._finalizer = weakref.finalize(self, _free_buffer, cluster, buffer)

    # -- construction ------------------------------------------------------
    @classmethod
    def allocate(
        cls, shape, dtype=np.float32, *, hosts: int | None = None,
        placement: str = "dense", cluster: HostCluster | None = None,
        replicate: bool = False, **options,
    ) -> "DistributedStorage":
        cls._reject_options(options)
        if cluster is None:
            cluster = get_cluster(hosts)
        elif hosts is not None and cluster.num_hosts != int(hosts):
            raise ValueError(
                f"explicit cluster has {cluster.num_hosts} hosts, "
                f"but hosts={hosts} was requested"
            )
        k, p = int(shape[0]), int(shape[1])
        boundaries = _even_boundaries(k, cluster.num_hosts)
        # Hosts owning an empty span still allocate a (0, p) shard —
        # keeps every op's span math uniform.  ``_even_boundaries``
        # clamps to at most K spans, so pad fenceposts when K < hosts.
        boundaries = boundaries + (k,) * (cluster.num_hosts + 1 - len(boundaries))
        buffer = cluster.allocate(boundaries, p, dtype, placement)
        return cls(
            cluster, buffer, (k, p), dtype, boundaries, placement,
            replicate=replicate,
        )

    @classmethod
    def from_array(
        cls, array: np.ndarray, *, hosts: int | None = None,
        placement: str = "dense", cluster: HostCluster | None = None,
        replicate: bool = False,
    ) -> "DistributedStorage":
        array = np.asarray(array)
        storage = cls.allocate(
            array.shape, dtype=array.dtype, hosts=hosts,
            placement=placement, cluster=cluster, replicate=replicate,
        )
        storage.write_rows(0, array)
        return storage

    def allocate_like(self, shape, dtype=np.float32) -> "DistributedStorage":
        return type(self).allocate(
            shape, dtype=dtype, placement=self._placement,
            cluster=self._cluster, replicate=self._replicate,
        )

    def clone(self) -> "DistributedStorage":
        # Host-local copies: no row data crosses the wire.
        dst = self._cluster.clone_buffer(self._buffer)
        out = type(self)(
            self._cluster, dst, self._shape, self._dtype,
            self._boundaries, self._placement, replicate=self._replicate,
        )
        if self._replicate:
            out._mirror[:] = self._mirror
            out._dirty[:] = self._dirty
            out._lost[:] = self._lost
        return out

    # -- introspection -----------------------------------------------------
    @property
    def cluster(self) -> HostCluster:
        return self._cluster

    @property
    def buffer_id(self) -> str:
        return self._buffer

    @property
    def num_hosts(self) -> int:
        return self._cluster.num_hosts

    @property
    def placement(self) -> str:
        """Backend each host keeps its shard on (``dense`` / ``memmap``)."""
        return self._placement

    def shard_boundaries(self) -> tuple[int, ...]:
        return self._boundaries

    def host_spans(self) -> list[tuple[int, int]]:
        """``(start, stop)`` global row span owned by each host."""
        b = self._boundaries
        return [(b[i], b[i + 1]) for i in range(len(b) - 1)]

    def owner_of(self, index: int) -> tuple[int, int]:
        """(host index, local row offset) owning global row ``index``."""
        k = self._shape[0]
        if not 0 <= index < k:
            raise IndexError(f"row {index} out of range for pool of {k}")
        for host, (start, stop) in enumerate(self.host_spans()):
            if start <= index < stop:
                return host, index - start
        raise IndexError(index)  # pragma: no cover - spans tile [0, K)

    # -- failover ----------------------------------------------------------
    @property
    def replicated(self) -> bool:
        """Whether a coordinator-side writable replica backs this buffer."""
        return self._replicate

    def _recovering_call(self, host, op, meta=None, arrays=None, blob=None,
                         purpose: str = "data"):
        """One host RPC, with one fleet recovery + retry when replicated."""
        try:
            return self._cluster.call(host, op, meta, arrays, blob, purpose)
        except DistributedError:
            if not self._replicate or not self._cluster.recover():
                raise
            return self._cluster.call(host, op, meta, arrays, blob, purpose)

    def _recovering_broadcast(self, op, metas, arrays=None, blob=None):
        try:
            return self._cluster.broadcast(op, metas, arrays, blob)
        except DistributedError:
            if not self._replicate or not self._cluster.recover():
                raise
            return self._cluster.broadcast(op, metas, arrays, blob)

    def note_remote_write(self, row: int) -> None:
        """Record that ``row`` was just written host-side (a training
        leg landed): the mirror no longer holds its latest content."""
        if self._replicate:
            self._dirty[int(row)] = True
            self._lost[int(row)] = False

    def restore_host(self, index: int) -> None:
        """Replay this host's row span from the mirror after a respawn.

        Called by the cluster's ``recover_host`` (under its recovery
        lock — plain ``call``, no recursive recovery).  Rows whose
        latest write was host-side (``dirty``) are restored to their
        *pre-leg* mirror content and flagged ``lost`` until rewritten:
        reads must not silently serve stale trained states.
        """
        if not self._replicate:
            return
        b = self._boundaries
        lo, hi = b[index], b[index + 1]
        if hi > lo:
            self._cluster.call(
                index, "write_rows",
                {"buffer": self._buffer, "lo": 0},
                {"values": self._mirror[lo:hi]},
            )
        span = slice(lo, hi)
        self._lost[span] |= self._dirty[span]
        self._dirty[span] = False

    def ensure_fleet(self) -> list[int]:
        """Respawn any dead hosts; returns recovered host indices.

        A no-op (empty list) without replication — there is nothing to
        replay onto a fresh host, so dying un-replicated fleets keep
        raising :class:`DistributedError` as before.
        """
        if not self._replicate:
            return []
        return self._cluster.recover()

    def lost_rows(self) -> list[int]:
        """Rows whose latest (host-side) write died with its host."""
        if not self._replicate:
            return []
        return [int(i) for i in np.flatnonzero(self._lost)]

    def _check_lost(self, start: int, stop: int) -> None:
        if self._replicate and self._lost[start:stop].any():
            rows = [int(i) for i in np.flatnonzero(self._lost[start:stop]) + start]
            raise DistributedError(
                f"rows {rows} were lost with their shard host (their last "
                "write was host-side and is not in the coordinator mirror); "
                "rewrite or retrain them before reading"
            )

    # -- row protocol ------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def array(self) -> np.ndarray:
        """Gathered **read-only copy** (diagnostics/tests only)."""
        out = np.asarray(self.row_block(0, self._shape[0]))
        out = out.copy() if not out.flags.owndata else out
        out.setflags(write=False)
        return out

    def row(self, index: int) -> np.ndarray:
        """Read-only fetched copy of one row (there is no live view)."""
        row = np.asarray(self.row_block(index, index + 1))[0]
        row.flags.writeable = False
        return row

    def open_row(self, index: int) -> np.ndarray:
        # Coordinator-side staging scratch; commit ships it in one RPC.
        return np.empty(self._shape[1], dtype=self._dtype)

    def commit_row(self, index: int, staged: np.ndarray) -> None:
        self.write_rows(index, staged[None, :])

    def row_block(self, start: int, stop: int) -> np.ndarray:
        start, stop = int(start), int(stop)
        if stop <= start:
            return np.empty((0, self._shape[1]), dtype=self._dtype)
        self._check_lost(start, stop)
        pieces = []
        for host, (b0, b1) in enumerate(self.host_spans()):
            lo, hi = max(start, b0), min(stop, b1)
            if lo < hi:
                _meta, arrays, _blob = self._recovering_call(
                    host, "row_block",
                    {"buffer": self._buffer, "lo": lo - b0, "hi": hi - b0},
                )
                pieces.append((lo, arrays["block"]))
        if len(pieces) == 1 and pieces[0][1].shape[0] == stop - start:
            return pieces[0][1].astype(self._dtype, copy=False)
        out = np.empty((stop - start, self._shape[1]), dtype=self._dtype)
        for lo, block in pieces:
            out[lo - start : lo - start + block.shape[0]] = block
        return out

    def write_rows(self, start: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=self._dtype)
        stop = start + values.shape[0]
        for host, (b0, b1) in enumerate(self.host_spans()):
            lo, hi = max(int(start), b0), min(stop, b1)
            if lo < hi:
                self._recovering_call(
                    host, "write_rows",
                    {"buffer": self._buffer, "lo": lo - b0},
                    {"values": values[lo - start : hi - start]},
                )
        if self._replicate:
            self._mirror[start:stop] = values
            self._dirty[start:stop] = False
            self._lost[start:stop] = False

    def gather_rows(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        out = np.empty((indices.shape[0], self._shape[1]), dtype=self._dtype)
        # Group requested rows per owning host, keeping output positions.
        if self._replicate:
            for j in indices:
                self._check_lost(int(j), int(j) + 1)
        per_host: dict[int, tuple[list[int], list[int]]] = {}
        for pos, j in enumerate(indices):
            host, local = self.owner_of(int(j))
            positions, locals_ = per_host.setdefault(host, ([], []))
            positions.append(pos)
            locals_.append(local)
        for host, (positions, locals_) in per_host.items():
            _meta, arrays, _blob = self._recovering_call(
                host, "gather_rows", {"buffer": self._buffer},
                {"indices": np.asarray(locals_, dtype=np.int64)},
            )
            out[positions] = arrays["block"]
        return out

    def fill_rows(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=self._dtype)
        self._recovering_broadcast(
            "fill_rows", {"buffer": self._buffer}, {"values": values}
        )
        if self._replicate:
            self._mirror[:] = values
            self._dirty[:] = False
            self._lost[:] = False

    def masked_dots(
        self, vector: np.ndarray, mask: "np.ndarray | None"
    ) -> np.ndarray:
        """Gram row update fanned out to the shard hosts.

        Each host computes dots of ``vector`` against *its own rows
        only* with the exact local kernel; the assembled ``(K,)`` row
        is bitwise identical to the tracker's local loop, and only
        O(P) + O(K) scalars cross the wire instead of O(K·P).
        """
        # Deliberately no lost-row guard here: under the engine's
        # write-then-on_upload protocol every Gram entry of a pair is
        # recomputed after that pair's final row writes, so a transient
        # stale read mid-collect cannot survive into the result.
        vector = np.ascontiguousarray(vector, dtype=np.float64)
        try:
            mask_id = self._cluster.ensure_mask(mask) if mask is not None else None
            return self._cluster.masked_dots(self._buffer, vector, mask_id)
        except DistributedError:
            if not self._replicate or not self._cluster.recover():
                raise
            mask_id = self._cluster.ensure_mask(mask) if mask is not None else None
            return self._cluster.masked_dots(self._buffer, vector, mask_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        k, p = self._shape
        return (
            f"DistributedStorage(shape=({k}, {p}), dtype={self._dtype}, "
            f"hosts={self.num_hosts}, placement={self._placement!r}, "
            f"buffer={self._buffer!r})"
        )
