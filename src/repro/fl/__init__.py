"""Federated-learning simulation substrate.

Implements the cloud/client architecture of Section II: a
:class:`~repro.fl.server.FederatedServer` coordinates explicit round
phases (``select_cohort`` → ``dispatch`` → ``collect`` → ``aggregate``)
over :class:`~repro.fl.client.Client` objects holding private shards,
with per-round metric recording, communication accounting, and
:class:`~repro.fl.callbacks.ServerCallback` lifecycle hooks. Concrete
aggregation methods live in :mod:`repro.baselines` (FedAvg, FedProx,
SCAFFOLD, FedGen, CluSamp, FedCluster) and :mod:`repro.core`
(FedCross); all of them aggregate through
:class:`~repro.core.pool.PoolBuffer` row operations.
"""

from repro.fl.config import FLConfig
from repro.fl.client import Client
from repro.fl.trainer import LocalTrainer, LocalResult
from repro.fl.execution import (
    ClientExecutor,
    ExecutionBackend,
    available_executions,
    register_execution,
)
from repro.fl.hooks import (
    ControlVariateSpec,
    DistillationSpec,
    HookSpec,
    ProximalSpec,
)
from repro.fl.server import DispatchPlan, FederatedServer
from repro.fl.callbacks import BestStateCheckpointer, ServerCallback, ThroughputLogger
from repro.fl.metrics import evaluate_model, RoundRecord, TrainingHistory
from repro.fl.comm import CommunicationLedger
from repro.fl.registry import register_method, build_server, available_methods
from repro.fl.simulation import FLSimulation, SimulationResult, run_simulation

__all__ = [
    "FLConfig",
    "Client",
    "LocalTrainer",
    "LocalResult",
    "ClientExecutor",
    "ExecutionBackend",
    "available_executions",
    "register_execution",
    "HookSpec",
    "ProximalSpec",
    "ControlVariateSpec",
    "DistillationSpec",
    "DispatchPlan",
    "FederatedServer",
    "ServerCallback",
    "ThroughputLogger",
    "BestStateCheckpointer",
    "evaluate_model",
    "RoundRecord",
    "TrainingHistory",
    "CommunicationLedger",
    "register_method",
    "build_server",
    "available_methods",
    "FLSimulation",
    "SimulationResult",
    "run_simulation",
]
