"""Method registry: names → server classes.

Baseline servers register themselves on import of
:mod:`repro.baselines`; FedCross registers on import of
:mod:`repro.core`. :func:`build_server` triggers both imports lazily so
the registry is always populated without import cycles.
"""

from __future__ import annotations

import importlib
from typing import Type

from repro.fl.server import FederatedServer

__all__ = ["register_method", "build_server", "available_methods"]

_REGISTRY: dict[str, Type[FederatedServer]] = {}
_PROVIDER_MODULES = ("repro.baselines", "repro.core")


def register_method(name: str):
    """Class decorator registering a :class:`FederatedServer` subclass."""

    def decorator(cls: Type[FederatedServer]) -> Type[FederatedServer]:
        key = name.lower()
        if key in _REGISTRY:
            raise KeyError(f"method {name!r} is already registered")
        _REGISTRY[key] = cls
        cls.method_name = key
        return cls

    return decorator


def _ensure_providers_loaded() -> None:
    for module in _PROVIDER_MODULES:
        importlib.import_module(module)


def available_methods() -> list[str]:
    _ensure_providers_loaded()
    return sorted(_REGISTRY)


def build_server(name: str, *args, **kwargs) -> FederatedServer:
    """Instantiate the server class registered under ``name``."""
    _ensure_providers_loaded()
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown method {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key](*args, **kwargs)
