"""Experiment configuration.

One frozen dataclass describes an FL run end to end — dataset, model,
client population, local-training hyper-parameters and method-specific
options — mirroring the settings table of Section IV-A: batch size 50,
five local epochs, SGD(lr=0.01, momentum=0.5), 10% participation.
CPU-scaled defaults shrink the population/rounds, not the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

__all__ = ["FLConfig"]


@dataclass(frozen=True)
class FLConfig:
    """Full specification of one federated-learning run.

    Attributes
    ----------
    method:
        Registered method name: ``fedavg``, ``fedprox``, ``scaffold``,
        ``fedgen``, ``clusamp`` or ``fedcross``.
    dataset / model:
        Names resolved by :func:`repro.data.build_federated_dataset`
        and :func:`repro.models.build_model`.
    heterogeneity:
        ``"iid"`` or a Dirichlet β (float) — the paper's Dir(β) knob.
    num_clients:
        Total population ``N`` (|C| in the paper).
    participation:
        Fraction of clients active per round; the paper uses 0.1.
        ``k_active`` overrides with an absolute count (Figure 6).
    local_epochs / batch_size / lr / momentum:
        Client-side SGD settings (paper: 5 / 50 / 0.01 / 0.5).
    rounds:
        FL training rounds.
    eval_every:
        Global-model evaluation cadence in rounds.
    backend:
        Pool-storage backend for the server's model buffers —
        ``"dense"`` (in-memory, default), ``"memmap"`` (file-backed
        for pools beyond RAM) or ``"sharded"`` (row shards, each
        dense or memmap — pools beyond one allocation); see
        :mod:`repro.core.storage`.  Resolved lazily against the
        backend registry, so third-party backends registered via
        ``register_backend`` are valid too.
    shards:
        Row-shard count for the ``sharded`` backend (``None`` = the
        backend default: ``REPRO_POOL_SHARDS`` or 4).  Forwarded to
        the backend as a storage option, so only set it for backends
        that accept it (``dense``/``memmap`` reject options loudly).
    shard_placement:
        Storage medium of each row shard of the ``sharded`` backend —
        ``"dense"`` (backend default) or ``"memmap"`` (shards on disk:
        the pools-beyond-RAM layout).  Forwarded like ``shards``.
        The ``distributed`` backend accepts it too (each shard host's
        local medium).
    hosts:
        Shard-host process count for the ``distributed`` backend
        (``None`` = the backend default: ``REPRO_POOL_HOSTS`` or 2).
        Forwarded as a storage option like ``shards``, so only set it
        for the ``distributed`` backend.
    execution:
        Client-execution backend for the ``collect`` phase —
        ``"serial"`` (default), ``"thread"``, ``"process"`` or
        ``"distributed"`` (legs co-located with their upload shards;
        requires ``backend="distributed"``); see
        :mod:`repro.fl.execution`.  All backends are guaranteed to
        produce bit-identical training histories; parallel backends
        trade startup overhead for multi-core round throughput.
        Resolved lazily against the execution registry.
    workers:
        Worker count for parallel execution backends (``None`` = one
        per CPU core).  Ignored by ``serial``.
    array_backend:
        Array backend every tensor/nn/optim operation dispatches
        through — ``None`` (default) keeps the process-wide active
        backend (``REPRO_ARRAY_BACKEND`` or ``"numpy"``); a name such
        as ``"numpy"`` pins the run, including process workers, to
        that backend; see :mod:`repro.tensor.backend`.  The ``numpy``
        backend is bit-identical to direct-numpy execution.  Resolved
        lazily against the array-backend registry.
    streaming:
        Consume client uploads *as they complete* (default ``True``):
        the server packs each upload and runs its per-upload work
        (e.g. FedCross's incremental Gram updates) while slower legs
        are still training.  ``False`` keeps the gathered reference
        schedule.  Both modes are bit-identical in histories, uploads
        and RNG state — streaming only moves server-side work earlier
        in wall clock.
    round_mode:
        Round schedule (:mod:`repro.fl.scheduler`): ``"sync"``
        (default — the reference schedule, each round blocks on its
        slowest leg) or ``"async"`` — dispatch of round ``t+1`` begins
        while round ``t`` stragglers finish, bounded by
        ``max_staleness``.  ``async`` with ``max_staleness=0`` runs
        the rounds strictly sequentially through the same per-round
        primitives and is bit-identical to ``sync`` on every backend.
    max_staleness:
        Bounded-staleness window ``S`` for ``round_mode="async"``: up
        to ``S+1`` rounds may be in flight, and a pool row is blended
        only by the *newest* round that trained it — a row trained
        against a pool version more than ``S`` rounds old is never
        blended stale (its late upload is discarded as wasted work).
        ``0`` (default) keeps the sequential schedule.
    faults:
        Client-fault scenario for the resilience layer
        (:mod:`repro.faults`): a mapping of
        :class:`~repro.faults.model.FaultScenario` knobs
        (``availability``, ``dropout``, ``slow_prob``, ``slow_factor``,
        ``straggler_timeout``, plus the adversarial ``byzantine_frac``,
        ``attack``, ``attack_scale``), inline JSON, or a path to a
        committed scenario file.  ``None`` (default) disables the fault
        model.  Faults are decided server-side under ``seed`` before
        legs are dispatched, so every execution backend sees the
        identical pattern.
    quorum:
        Fraction of the cohort that must deliver *fresh* uploads for a
        round to count (default 1.0 — every leg).  A round falling
        below it raises :class:`~repro.faults.policy.QuorumError`.
    failure_policy:
        What happens to a failed leg: ``"fail"`` (default — abort the
        round, today's bit-identical reference), ``"carry"`` (keep the
        stale middleware row so CrossAggr/GramTracker stay consistent)
        or ``"redispatch"`` (one extra reissue to a healthy
        worker/host, then carry).
    leg_timeout:
        Wall-clock seconds a parallel backend waits for in-flight legs
        before declaring the rest timed out (``None`` disables; the
        serial backend ignores it).  Late work is drained and
        discarded — never written after control returns.  For a
        *deterministic* straggler policy use the scenario's
        ``straggler_timeout`` instead.
    leg_retries:
        Bounded retries for infrastructure leg failures (errors /
        timeouts), with exponential backoff from ``leg_backoff``.
        Simulated faults (dropout, churn) are never retried.
    leg_backoff:
        Base backoff delay in seconds; retry ``i`` sleeps
        ``leg_backoff * 2**(i-1)``.
    aggregator:
        Aggregation operator applied to both CrossAggr collaborator
        blends and GlobalModelGen / upload averaging — ``"mean"``
        (default, bitwise the reference path), ``"trimmed_mean"``,
        ``"coordinate_median"`` or ``"norm_clip"``; see
        :mod:`repro.robust.operators`.  Resolved lazily against the
        operator registry.
    aggregator_params:
        Operator knobs, e.g. ``{"trim": 0.25}`` for ``trimmed_mean``
        or ``{"clip_factor": 3.0}`` for any robust operator.  Unknown
        knobs are rejected loudly.
    screen:
        Gram-based anomaly screening of landed uploads
        (:mod:`repro.robust.screen`): ``None`` (default, off),
        ``"flag"`` (record suspects in history extras and fire
        ``on_suspect_upload``) or ``"carry"`` (additionally quarantine
        flagged rows by restoring their dispatched middleware state
        before selection/aggregation).
    method_params:
        Method-specific options, e.g. ``{"mu": 0.01}`` for FedProx or
        ``{"alpha": 0.99, "selection": "lowest"}`` for FedCross.
    """

    method: str = "fedavg"
    dataset: str = "synth_cifar10"
    model: str = "mlp"
    heterogeneity: str | float = "iid"
    num_clients: int = 20
    participation: float = 0.5
    k_active: int | None = None
    local_epochs: int = 5
    batch_size: int = 50
    lr: float = 0.01
    momentum: float = 0.5
    weight_decay: float = 0.0
    rounds: int = 20
    eval_every: int = 1
    eval_batch_size: int = 256
    backend: str = "dense"
    shards: int | None = None
    shard_placement: str | None = None
    hosts: int | None = None
    execution: str = "serial"
    workers: int | None = None
    array_backend: str | None = None
    streaming: bool = True
    round_mode: str = "sync"
    max_staleness: int = 0
    faults: Any = None
    quorum: float = 1.0
    failure_policy: str = "fail"
    leg_timeout: float | None = None
    leg_retries: int = 0
    leg_backoff: float = 0.05
    aggregator: str = "mean"
    aggregator_params: dict[str, Any] = field(default_factory=dict)
    screen: str | None = None
    seed: int = 0
    dataset_params: dict[str, Any] = field(default_factory=dict)
    model_params: dict[str, Any] = field(default_factory=dict)
    method_params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if not 0.0 < self.participation <= 1.0:
            raise ValueError("participation must be in (0, 1]")
        if self.k_active is not None and not 1 <= self.k_active <= self.num_clients:
            raise ValueError("k_active must be in [1, num_clients]")
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if self.local_epochs <= 0:
            raise ValueError("local_epochs must be positive")
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError("backend must be a non-empty backend name")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be None or >= 1")
        if self.shard_placement is not None and (
            not isinstance(self.shard_placement, str) or not self.shard_placement
        ):
            raise ValueError("shard_placement must be None or a backend name")
        if self.hosts is not None and self.hosts < 1:
            raise ValueError("hosts must be None or >= 1")
        if not isinstance(self.execution, str) or not self.execution:
            raise ValueError("execution must be a non-empty backend name")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be None or >= 1")
        if self.array_backend is not None and (
            not isinstance(self.array_backend, str) or not self.array_backend
        ):
            raise ValueError("array_backend must be None or a backend name")
        if self.round_mode not in ("sync", "async"):
            raise ValueError(
                f"round_mode must be 'sync' or 'async', got {self.round_mode!r}"
            )
        if self.max_staleness < 0:
            raise ValueError("max_staleness must be >= 0")
        if self.faults is not None and not isinstance(self.faults, (str, Mapping)):
            raise ValueError(
                "faults must be None, a scenario mapping, inline JSON or a "
                "scenario file path"
            )
        if not 0.0 < self.quorum <= 1.0:
            raise ValueError(f"quorum must be in (0, 1], got {self.quorum}")
        if self.failure_policy not in ("fail", "carry", "redispatch"):
            raise ValueError(
                "failure_policy must be 'fail', 'carry' or 'redispatch', "
                f"got {self.failure_policy!r}"
            )
        if self.leg_timeout is not None and self.leg_timeout <= 0:
            raise ValueError("leg_timeout must be None or positive seconds")
        if self.leg_retries < 0:
            raise ValueError("leg_retries must be >= 0")
        if self.leg_backoff < 0:
            raise ValueError("leg_backoff must be >= 0 seconds")
        if not isinstance(self.aggregator, str) or not self.aggregator:
            raise ValueError("aggregator must be a non-empty operator name")
        if not isinstance(self.aggregator_params, Mapping):
            raise ValueError("aggregator_params must be a mapping of knobs")
        if self.screen not in (None, "flag", "carry"):
            raise ValueError(
                f"screen must be None, 'flag' or 'carry', got {self.screen!r}"
            )

    @property
    def clients_per_round(self) -> int:
        """K — the number of active clients per round."""
        if self.k_active is not None:
            return self.k_active
        return max(1, int(round(self.participation * self.num_clients)))

    def with_method(self, method: str, **method_params) -> "FLConfig":
        """Copy of this config running a different method.

        Keeps everything else (dataset, seeds, client settings) fixed —
        the comparison-fairness idiom used by every experiment.
        """
        return replace(self, method=method, method_params=dict(method_params))

    def replace(self, **changes) -> "FLConfig":
        """Dataclass ``replace`` with a friendlier name."""
        return replace(self, **changes)
