"""Client-side local training.

``LocalTrainer`` owns a single reusable model instance: for each
(client, round) it loads the dispatched state dict, runs E epochs of
minibatch SGD, and returns the trained state dict — the "local
updating" step of the standard FL iteration. Method-specific behaviour
(FedProx's proximal term, SCAFFOLD's control-variate correction,
FedGen's distillation term) is injected through two hooks rather than
subclassing, so every method shares the exact same training loop.

The serial execution backend drives one trainer per simulation; the
parallel backends (:mod:`repro.fl.execution`) build one private
trainer per worker from a picklable
:class:`~repro.fl.execution.TrainerSpec` and hand each ``train`` call
the client's own RNG stream, which is why a training leg must depend
only on its ``(state, dataset, rng, hooks)`` arguments — never on
residue the template carries from a previous leg (see ``SGD.step``'s
dtype-stability note for the one case where that used to happen).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader
from repro.nn.module import Module
from repro.optim.sgd import SGD
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

__all__ = ["LocalTrainer", "LocalResult"]

# loss_hook(model, logits, targets) -> extra loss Tensor or None
LossHook = Callable[[Module, Tensor, np.ndarray], "Tensor | None"]
# grad_hook(named_params) -> None, mutates .grad in place
GradHook = Callable[[dict], None]


@dataclass
class LocalResult:
    """Outcome of one local-training call."""

    state: dict
    num_samples: int
    num_steps: int
    mean_loss: float


class LocalTrainer:
    """Runs the paper's local-update step on a reusable model template.

    Parameters
    ----------
    model:
        The shared model instance; its weights are overwritten on every
        ``train`` call, so callers must treat it as scratch space.
    local_epochs / batch_size / lr / momentum / weight_decay:
        SGD settings (paper defaults: 5 / 50 / 0.01 / 0.5 / 0).
    """

    def __init__(
        self,
        model: Module,
        local_epochs: int = 5,
        batch_size: int = 50,
        lr: float = 0.01,
        momentum: float = 0.5,
        weight_decay: float = 0.0,
    ) -> None:
        self.model = model
        self.local_epochs = local_epochs
        self.batch_size = batch_size
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay

    def train(
        self,
        state: Mapping[str, np.ndarray],
        dataset: ArrayDataset,
        rng: np.random.Generator,
        loss_hook: LossHook | None = None,
        grad_hook: GradHook | None = None,
        lr_override: float | None = None,
    ) -> LocalResult:
        """Train from ``state`` on ``dataset`` and return the new state.

        The optimiser (and its momentum buffers) is created fresh per
        call: clients are stateless between rounds, as in the paper's
        cross-device setting.
        """
        model = self.model
        model.load_state_dict(dict(state))
        model.train()
        optimizer = SGD(
            model.parameters(),
            lr=lr_override if lr_override is not None else self.lr,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )
        loader = DataLoader(dataset, batch_size=self.batch_size, shuffle=True, rng=rng)
        named = dict(model.named_parameters())

        total_loss = 0.0
        steps = 0
        for _ in range(self.local_epochs):
            for x, y in loader:
                optimizer.zero_grad()
                inputs = x if x.dtype.kind in "iu" else Tensor(x)
                logits = model(inputs)
                loss = F.cross_entropy(logits, y)
                if loss_hook is not None:
                    extra = loss_hook(model, logits, y)
                    if extra is not None:
                        loss = loss + extra
                loss.backward()
                if grad_hook is not None:
                    grad_hook(named)
                optimizer.step()
                total_loss += float(loss.item())
                steps += 1

        return LocalResult(
            state=model.state_dict(),
            num_samples=len(dataset),
            num_steps=steps,
            mean_loss=total_loss / max(steps, 1),
        )
