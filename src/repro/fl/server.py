"""Federated server base class.

Owns the round loop shared by every method: sample K clients, delegate
to the method's ``run_round``, account communication, periodically
evaluate the deployable global model on the held-out test set, and
record history. Subclasses implement ``run_round`` (the aggregation
scheme — the only place the six reproduced methods differ) and
``global_state`` (what gets deployed/evaluated).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.data.federated import FederatedDataset
from repro.fl.client import Client
from repro.fl.comm import CommunicationLedger
from repro.fl.config import FLConfig
from repro.fl.metrics import RoundRecord, TrainingHistory, evaluate_model
from repro.fl.trainer import LocalTrainer
from repro.nn.module import Module

__all__ = ["FederatedServer"]


class FederatedServer:
    """Base class for all FL methods.

    Parameters
    ----------
    config:
        The run specification.
    fed_dataset:
        Client shards + global test set.
    model:
        The shared scratch model (also used for evaluation).
    trainer:
        Local-training engine bound to ``model``.
    clients:
        The full client population.
    rng:
        Server-side generator (client sampling, shuffling, ...).
    """

    method_name = "base"

    def __init__(
        self,
        config: FLConfig,
        fed_dataset: FederatedDataset,
        model: Module,
        trainer: LocalTrainer,
        clients: Sequence[Client],
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.fed_dataset = fed_dataset
        self.model = model
        self.trainer = trainer
        self.clients = list(clients)
        self.rng = rng
        self.ledger = CommunicationLedger()
        self.history = TrainingHistory()
        self.model_size = model.num_parameters()
        self.round_idx = 0

    # -- hooks for subclasses -------------------------------------------
    def run_round(self, active: list[Client]) -> dict:
        """Execute one FL round over ``active`` clients.

        Returns a dict of method-specific extras stored on the round
        record (e.g. mean local loss, middleware similarity).
        """
        raise NotImplementedError

    def global_state(self) -> dict:
        """State dict of the deployable global model."""
        raise NotImplementedError

    # -- shared machinery ------------------------------------------------
    def sample_clients(self) -> list[Client]:
        """Uniformly sample K distinct active clients (paper: 10%)."""
        k = self.config.clients_per_round
        idx = self.rng.choice(len(self.clients), size=k, replace=False)
        return [self.clients[i] for i in idx]

    def evaluate(self) -> tuple[float, float]:
        """Accuracy/loss of the deployable global model on the test set."""
        self.model.load_state_dict(self.global_state())
        return evaluate_model(
            self.model, self.fed_dataset.test, batch_size=self.config.eval_batch_size
        )

    def fit(self, rounds: int | None = None) -> TrainingHistory:
        """Run the full FL training loop and return the history."""
        rounds = rounds if rounds is not None else self.config.rounds
        eval_every = self.config.eval_every
        for local_round in range(rounds):
            active = self.sample_clients()
            extras = self.run_round(active) or {}
            up, down = self.ledger.end_round()
            record = RoundRecord(
                round_idx=self.round_idx,
                train_loss=extras.pop("train_loss", None),
                comm_up_params=up,
                comm_down_params=down,
                extras=extras,
            )
            # Compare against the *local* round counter: ``self.round_idx``
            # is global across fit() calls, so a resumed fit(n) would
            # otherwise never hit its guaranteed final-round evaluation.
            if (self.round_idx + 1) % eval_every == 0 or local_round == rounds - 1:
                record.accuracy, record.loss = self.evaluate()
            self.history.append(record)
            self.round_idx += 1
        return self.history

    # -- convenience -------------------------------------------------------
    def mean_local_loss(self, results) -> float:
        """Sample-weighted mean of local losses (progress diagnostic)."""
        total = sum(r.num_samples for r in results)
        if total == 0:
            return float("nan")
        return sum(r.mean_loss * r.num_samples for r in results) / total

    def charge_round_communication(self, active: list[Client], extra_down: int = 0, extra_up: int = 0) -> None:
        """Charge the standard 2K-model round cost plus method extras."""
        k = len(active)
        self.ledger.record_down(k * self.model_size + extra_down)
        self.ledger.record_up(k * self.model_size + extra_up)
